"""The top-level package surface."""

import repro


def test_every_name_in_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    assert repro.__version__ == "1.0.0"


def test_quickstart_from_module_docstring_runs():
    program = repro.figure1_program()
    result, recorder = repro.record_run(program)
    order = repro.estimate_first_use(program)
    sim = repro.run_nonstrict(
        program, recorder.trace, order, repro.T1_LINK, cpi=50
    )
    base = repro.strict_baseline(
        program, recorder.trace, repro.T1_LINK, cpi=50
    )
    assert 0 < sim.normalized_to(base.total_cycles) < 200


def test_error_hierarchy():
    from repro.errors import (
        AssemblyError,
        BytecodeError,
        ClassFileError,
        CompileError,
        ConstantPoolError,
        ReproError,
        SimulationError,
        StackUnderflowError,
        TransferError,
        VerificationError,
        VMError,
        WorkloadError,
    )

    for error in (
        BytecodeError,
        ClassFileError,
        CompileError,
        SimulationError,
        TransferError,
        VerificationError,
        VMError,
        WorkloadError,
    ):
        assert issubclass(error, ReproError)
    assert issubclass(AssemblyError, BytecodeError)
    assert issubclass(ConstantPoolError, ClassFileError)
    assert issubclass(StackUnderflowError, VMError)


def test_paper_benchmark_registry():
    assert len(repro.PAPER_BENCHMARKS) == 6
    assert repro.benchmark_spec("BIT").cpi == 147
