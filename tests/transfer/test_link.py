"""Link model constants and conversions."""

import pytest

from repro.errors import TransferError
from repro.transfer import (
    CPU_HZ,
    MODEM_LINK,
    T1_LINK,
    NetworkLink,
    link_from_bandwidth,
)


def test_paper_constants():
    assert T1_LINK.cycles_per_byte == 3815.0
    assert MODEM_LINK.cycles_per_byte == 134698.0


def test_transfer_cycles():
    assert T1_LINK.transfer_cycles(1000) == 3_815_000
    assert MODEM_LINK.transfer_cycles(1) == 134_698


def test_transfer_seconds_on_500mhz_alpha():
    # 1 KB over the modem: 134698 * 1024 cycles / 500 MHz ≈ 0.276 s.
    assert MODEM_LINK.transfer_seconds(1024) == pytest.approx(
        134698 * 1024 / CPU_HZ
    )


def test_link_from_bandwidth_roundtrip():
    t1ish = link_from_bandwidth("t1ish", 1_000_000)  # 1 Mb/s
    # 500e6 cycles/s / 125000 B/s = 4000 cycles per byte.
    assert t1ish.cycles_per_byte == pytest.approx(4000.0)


def test_bytes_per_cycle_inverse():
    assert T1_LINK.bytes_per_cycle == pytest.approx(1 / 3815.0)


def test_invalid_links_rejected():
    with pytest.raises(TransferError):
        NetworkLink("bad", 0)
    with pytest.raises(TransferError):
        link_from_bandwidth("bad", -5)
    with pytest.raises(TransferError):
        T1_LINK.transfer_cycles(-1)
