"""Transfer controllers: strict, interleaved, parallel, schedule."""

import pytest

from repro.errors import TransferError
from repro.program import MethodId
from repro.reorder import estimate_first_use, restructure
from repro.transfer import (
    InterleavedController,
    ParallelController,
    StreamEngine,
    StrictSequentialController,
    T1_LINK,
    TransferPolicy,
    UnitKind,
    build_interleaved_file,
    build_program_plans,
    build_schedule,
)
from repro.workloads import figure1_program


@pytest.fixture()
def restructured():
    program = figure1_program()
    order = estimate_first_use(program)
    return restructure(program, order), order


def test_interleaved_file_order(restructured):
    program, order = restructured
    plans = build_program_plans(program, TransferPolicy.NON_STRICT)
    sequence = build_interleaved_file(plans, order)
    labels = [
        (unit.kind, unit.class_name, getattr(unit.method, "method_name", None))
        for unit in sequence
    ]
    # Figure 5: A's globals, main, then B's globals, Bar_B, then the
    # remaining methods interleaved by first use.
    assert labels[0] == (UnitKind.GLOBAL_DATA, "A", None)
    assert labels[1] == (UnitKind.METHOD, "A", "main")
    assert labels[2] == (UnitKind.GLOBAL_DATA, "B", None)
    assert labels[3] == (UnitKind.METHOD, "B", "Bar_B")
    assert labels[4] == (UnitKind.METHOD, "A", "Bar_A")
    assert labels[5] == (UnitKind.METHOD, "A", "Foo_A")
    assert labels[6] == (UnitKind.METHOD, "B", "Foo_B")


def test_interleaved_file_conserves_bytes(restructured):
    program, order = restructured
    plans = build_program_plans(program, TransferPolicy.NON_STRICT)
    sequence = build_interleaved_file(plans, order)
    assert sum(unit.size for unit in sequence) == sum(
        plan.total_bytes for plan in plans.values()
    )


def test_interleaved_controller_single_stream(restructured):
    program, order = restructured
    controller = InterleavedController(program, order)
    engine = StreamEngine(T1_LINK)
    controller.setup(engine)
    assert len(engine.active) == 1
    unit = controller.required_unit(MethodId("B", "Bar_B"))
    assert unit.method == MethodId("B", "Bar_B")


def test_strict_controller_requires_whole_class():
    program = figure1_program()
    controller = StrictSequentialController(program)
    unit = controller.required_unit(MethodId("B", "Foo_B"))
    assert unit.kind == UnitKind.CLASS_FILE
    assert unit.class_name == "B"
    engine = StreamEngine(T1_LINK)
    controller.setup(engine)
    engine.run_until(1e12)
    assert engine.idle


def test_schedule_dependencies_and_prefixes(restructured):
    program, order = restructured
    plans = build_program_plans(program, TransferPolicy.NON_STRICT)
    schedule = build_schedule(program, plans, order)
    a = schedule.start_for("A")
    b = schedule.start_for("B")
    # The entry class must start immediately and depends on nothing.
    assert a.start_after_bytes == 0.0
    assert a.dependency_bytes == 0.0
    assert a.dependency_classes == ()
    # B depends on A: its trigger counts bytes delivered from A, and
    # its required prefix runs through Bar_B (global data + Bar_B).
    assert b.dependency_classes == ("A",)
    assert b.dependency_bytes > 0
    assert b.required_prefix_bytes == plans["B"].prefix_bytes_through(
        "Bar_B"
    )
    with pytest.raises(TransferError):
        schedule.start_for("Zed")


def test_schedule_start_threshold_clamped_at_zero(restructured):
    program, order = restructured
    plans = build_program_plans(program, TransferPolicy.NON_STRICT)
    schedule = build_schedule(program, plans, order)
    b = schedule.start_for("B")
    # B's required prefix exceeds main's predicted unique bytes, so it
    # is released immediately — Figure 4's "B starts before A is done".
    assert b.start_after_bytes == max(
        0.0, b.dependency_bytes - b.required_prefix_bytes
    )


def test_schedule_orders_by_threshold(restructured):
    program, order = restructured
    plans = build_program_plans(program, TransferPolicy.NON_STRICT)
    schedule = build_schedule(program, plans, order)
    starts = schedule.in_start_order()
    thresholds = [start.start_after_bytes for start in starts]
    assert thresholds == sorted(thresholds)


def test_parallel_controller_releases_scheduled_streams(restructured):
    program, order = restructured
    controller = ParallelController(
        program, order, T1_LINK, cpi=100, max_streams=4
    )
    engine = StreamEngine(T1_LINK, max_streams=4)
    controller.setup(engine)
    # Both classes have near-zero start times at this CPI.
    engine.run_until(
        1e12,
        wakeup=controller.next_wakeup,
        on_advance=controller.on_advance,
    )
    assert engine.idle
    assert set(engine.stream_start_times) == {"A", "B"}


def test_parallel_demand_fetch_on_stall():
    from repro.reorder import FirstUseEntry, FirstUseOrder

    program = figure1_program()
    static = estimate_first_use(program)
    # Predict B's first use after an enormous byte budget, so its
    # scheduled start threshold is far in the future.
    entries = [
        FirstUseEntry(
            method=entry.method,
            bytes_before=0 if entry.method.class_name == "A" else 10**9,
            instructions_before=entry.instructions_before,
        )
        for entry in static.entries
    ]
    order = FirstUseOrder(entries=entries, source="static")
    target = restructure(program, order)
    controller = ParallelController(
        target, order, T1_LINK, cpi=100, max_streams=4
    )
    engine = StreamEngine(T1_LINK, max_streams=4)
    controller.setup(engine)
    # B is scheduled far in the future; a stall on Bar_B must fetch it.
    assert "B" not in engine.stream_start_times
    controller.on_stall(engine, MethodId("B", "Bar_B"))
    assert controller.demand_fetches == [MethodId("B", "Bar_B")]
    unit = controller.required_unit(MethodId("B", "Bar_B"))
    arrival = engine.run_until_unit(
        unit,
        wakeup=controller.next_wakeup,
        on_advance=controller.on_advance,
    )
    assert arrival > 0


def test_parallel_stall_on_active_stream_is_noop(restructured):
    program, order = restructured
    controller = ParallelController(
        program, order, T1_LINK, cpi=100, max_streams=4
    )
    engine = StreamEngine(T1_LINK, max_streams=4)
    controller.setup(engine)
    controller.on_stall(engine, MethodId("A", "main"))
    assert controller.demand_fetches == []
