"""The byte-triggered greedy schedule (§5.1) in isolation."""

import pytest

from repro.program import MethodId
from repro.reorder import FirstUseEntry, FirstUseOrder
from repro.reorder import estimate_first_use, restructure
from repro.transfer import (
    T1_LINK,
    ParallelController,
    StreamEngine,
    TransferPolicy,
    build_program_plans,
    build_schedule,
)
from repro.workloads import figure1_program, mutual_recursion_program


def test_dependency_bytes_are_dep_class_prefixes():
    """B's trigger counts only what class A will have delivered by
    Bar_B's first use — A's global data plus main's unit."""
    program = figure1_program()
    order = estimate_first_use(program)
    target = restructure(program, order)
    plans = build_program_plans(target, TransferPolicy.NON_STRICT)
    schedule = build_schedule(target, plans, order)
    b = schedule.start_for("B")
    expected = plans["A"].prefix_bytes_through("main")
    assert b.dependency_bytes == pytest.approx(expected)


def test_dependency_bytes_grow_along_first_use_order():
    program = mutual_recursion_program()
    order = estimate_first_use(program)
    target = restructure(program, order)
    plans = build_program_plans(target, TransferPolicy.NON_STRICT)
    schedule = build_schedule(target, plans, order)
    starts = {
        start.class_name: start for start in schedule.starts
    }
    assert starts["Even"].dependency_bytes == 0
    assert starts["Odd"].dependency_bytes > 0


def test_threshold_never_exceeds_dependency_capacity():
    """The corrected accounting: a class's trigger must be satisfiable
    by its dependency classes' own bytes (else it would deadlock into
    a demand fetch every time)."""
    program = figure1_program()
    order = estimate_first_use(program)
    target = restructure(program, order)
    plans = build_program_plans(target, TransferPolicy.NON_STRICT)
    schedule = build_schedule(target, plans, order)
    for start in schedule.starts:
        capacity = sum(
            plans[dependency].total_bytes
            for dependency in start.dependency_classes
        )
        assert start.start_after_bytes <= capacity + 1e-9


def test_eager_start_requests_everything_immediately():
    program = figure1_program()
    order = estimate_first_use(program)
    target = restructure(program, order)
    # Force B's threshold away from zero so the flag is observable.
    entries = [
        FirstUseEntry(
            method=entry.method,
            bytes_before=0 if entry.method.class_name == "A" else 10**9,
            instructions_before=entry.instructions_before,
        )
        for entry in order.entries
    ]
    heavy = FirstUseOrder(entries=entries, source="static")
    lazy = ParallelController(target, heavy, T1_LINK, cpi=100)
    eager = ParallelController(
        target, heavy, T1_LINK, cpi=100, eager_start=True
    )
    for controller, expected in ((lazy, {"A"}), (eager, {"A", "B"})):
        engine = StreamEngine(T1_LINK, max_streams=4)
        controller.setup(engine)
        assert set(engine.stream_start_times) == expected


def test_globals_only_class_is_scheduled_last():
    from repro.classfile import ClassFileBuilder
    from repro.program import Program

    program = figure1_program()
    data_only = ClassFileBuilder("DataOnly")
    data_only.add_field("blob", initial_value=1)
    extended = Program(
        classes=list(program.classes) + [data_only.build()],
        entry_point=MethodId("A", "main"),
    )
    order = estimate_first_use(extended)
    target = restructure(extended, order)
    plans = build_program_plans(target, TransferPolicy.NON_STRICT)
    schedule = build_schedule(target, plans, order)
    data_start = schedule.start_for("DataOnly")
    assert set(data_start.dependency_classes) == {"A", "B"}
    assert data_start.required_prefix_bytes == plans[
        "DataOnly"
    ].total_bytes
