"""Stream engine: bandwidth sharing, limits, queuing — hand-computed."""

import pytest

from repro.errors import TransferError
from repro.transfer import NetworkLink, StreamEngine, TransferUnit, UnitKind


def unit(name, size, method=None):
    return TransferUnit(
        kind=UnitKind.GLOBAL_DATA, class_name=name, size=size
    )


#: 1 cycle per byte makes the arithmetic readable.
LINK = NetworkLink("unit-link", 1.0)


def test_single_stream_sequential_arrivals():
    engine = StreamEngine(LINK)
    first = unit("a", 100)
    second = unit("a2", 50)
    engine.request_stream("a", [first, second])
    engine.run_until(200)
    assert engine.arrival_time(first) == pytest.approx(100)
    assert engine.arrival_time(second) == pytest.approx(150)
    assert engine.total_delivered == pytest.approx(150)


def test_two_streams_share_bandwidth_equally():
    engine = StreamEngine(LINK)
    a = unit("a", 100)
    b = unit("b", 100)
    engine.request_stream("a", [a])
    engine.request_stream("b", [b])
    engine.run_until(500)
    # Each gets half the bandwidth: both finish at t=200.
    assert engine.arrival_time(a) == pytest.approx(200)
    assert engine.arrival_time(b) == pytest.approx(200)


def test_finisher_frees_bandwidth_for_the_other():
    engine = StreamEngine(LINK)
    small = unit("s", 50)
    large = unit("l", 150)
    engine.request_stream("s", [small])
    engine.request_stream("l", [large])
    engine.run_until(1000)
    # Shared until t=100 (small done, large has 100 left at full rate).
    assert engine.arrival_time(small) == pytest.approx(100)
    assert engine.arrival_time(large) == pytest.approx(200)


def test_stream_limit_queues_excess():
    engine = StreamEngine(LINK, max_streams=1)
    a = unit("a", 100)
    b = unit("b", 100)
    engine.request_stream("a", [a])
    engine.request_stream("b", [b])
    engine.run_until(1000)
    assert engine.arrival_time(a) == pytest.approx(100)
    assert engine.arrival_time(b) == pytest.approx(200)
    assert engine.stream_start_times["b"] == pytest.approx(100)


def test_front_request_jumps_queue():
    engine = StreamEngine(LINK, max_streams=1)
    engine.request_stream("a", [unit("a", 100)])
    b = unit("b", 100)
    c = unit("c", 100)
    engine.request_stream("b", [b])
    engine.request_stream("c", [c], front=True)
    engine.run_until(1000)
    assert engine.arrival_time(c) == pytest.approx(200)
    assert engine.arrival_time(b) == pytest.approx(300)


def test_demand_fetch_mid_run_jumps_whole_waiting_queue():
    """§5.1 regression: a demand-fetched stream admitted *while a
    queue already exists* starts ahead of every earlier-queued stream,
    not merely ahead of later arrivals."""
    engine = StreamEngine(LINK, max_streams=1)
    engine.request_stream("active", [unit("active", 100)])
    b = unit("b", 100)
    c = unit("c", 100)
    engine.request_stream("b", [b])
    engine.request_stream("c", [c])
    demanded = unit("d", 50)
    fired = []

    def wakeup(e):
        return None if fired else 40.0

    def on_advance(e):
        if not fired and e.time >= 40.0:
            fired.append(True)
            e.request_stream("d", [demanded], front=True)

    engine.run_until(1000, wakeup=wakeup, on_advance=on_advance)
    # The active stream is never preempted: it finishes at t=100.
    # The demand fetch then gets the slot before b and c.
    assert engine.stream_start_times["d"] == pytest.approx(100)
    assert engine.arrival_time(demanded) == pytest.approx(150)
    assert engine.arrival_time(b) == pytest.approx(250)
    assert engine.arrival_time(c) == pytest.approx(350)


def test_promote_moves_waiting_stream_forward():
    engine = StreamEngine(LINK, max_streams=1)
    engine.request_stream("a", [unit("a", 100)])
    engine.request_stream("b", [unit("b", 100)])
    c_stream = engine.request_stream("c", [unit("c", 100)])
    engine.promote(c_stream)
    engine.run_until(1000)
    assert engine.stream_start_times["c"] < engine.stream_start_times["b"]


def test_run_until_unit_returns_exact_time():
    engine = StreamEngine(LINK)
    target = unit("t", 75)
    engine.request_stream("t", [target])
    arrival = engine.run_until_unit(target)
    assert arrival == pytest.approx(75)
    assert engine.arrived(target)


def test_run_until_unit_idle_engine_raises():
    engine = StreamEngine(LINK)
    ghost = unit("ghost", 10)
    with pytest.raises(TransferError):
        engine.run_until_unit(ghost)


def test_arrival_time_of_unarrived_unit_raises():
    engine = StreamEngine(LINK)
    pending = unit("p", 1000)
    engine.request_stream("p", [pending])
    engine.run_until(10)
    with pytest.raises(TransferError):
        engine.arrival_time(pending)


def test_cannot_run_backwards():
    engine = StreamEngine(LINK)
    engine.run_until(100)
    with pytest.raises(TransferError):
        engine.run_until(50)


def test_remaining_bytes_accounting():
    engine = StreamEngine(LINK)
    engine.request_stream("a", [unit("a", 100), unit("a2", 100)])
    engine.run_until(50)
    assert engine.remaining_bytes == pytest.approx(150)
    engine.run_until(200)
    assert engine.remaining_bytes == pytest.approx(0)
    assert engine.idle


def test_empty_stream_rejected():
    engine = StreamEngine(LINK)
    with pytest.raises(TransferError):
        engine.request_stream("empty", [])


def test_bad_stream_limit_rejected():
    with pytest.raises(TransferError):
        StreamEngine(LINK, max_streams=0)


def test_wakeup_bounds_steps():
    """A wakeup callback gains control at its requested time."""
    engine = StreamEngine(LINK)
    engine.request_stream("a", [unit("a", 1000)])
    seen = []

    def wakeup(e):
        return 100.0

    def on_advance(e):
        seen.append(e.time)

    engine.run_until(250, wakeup=wakeup, on_advance=on_advance)
    assert 100.0 in [pytest.approx(t) for t in seen]


def test_on_advance_can_admit_streams():
    """Streams admitted mid-run by the callback still share correctly."""
    engine = StreamEngine(LINK)
    a = unit("a", 200)
    b = unit("b", 100)
    engine.request_stream("a", [a])
    admitted = []

    def wakeup(e):
        return None if admitted else 100.0

    def on_advance(e):
        if not admitted and e.time >= 100.0:
            admitted.append(True)
            e.request_stream("b", [b])

    engine.run_until(400, wakeup=wakeup, on_advance=on_advance)
    # a alone until 100 (100 left), then shared: a done at 300.
    assert engine.arrival_time(a) == pytest.approx(300)
    assert engine.arrival_time(b) == pytest.approx(300)


def test_three_way_share_with_uneven_sizes():
    engine = StreamEngine(LINK)
    a = unit("a", 30)
    b = unit("b", 60)
    c = unit("c", 90)
    for name, u in (("a", a), ("b", b), ("c", c)):
        engine.request_stream(name, [u])
    engine.run_until(10_000)
    # Three-way share: a done at 90 (30 bytes at 1/3 rate).
    assert engine.arrival_time(a) == pytest.approx(90)
    # Then two-way: b has 30 left, done at 90 + 60 = 150.
    assert engine.arrival_time(b) == pytest.approx(150)
    # Then full rate: c has 30 left, done at 180.
    assert engine.arrival_time(c) == pytest.approx(180)


def test_huge_time_values_make_progress():
    """Float-resolution guard: modem-scale cycle counts still finish."""
    modem = NetworkLink("modem", 134698.0)
    engine = StreamEngine(modem)
    units = [unit(f"u{i}", 1) for i in range(50)]
    engine.request_stream("tiny-units", units)
    engine.run_until(1e11)
    assert all(engine.arrived(u) for u in units)
