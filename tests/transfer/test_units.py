"""Transfer unit decomposition per policy."""

import pytest

from repro.classfile import METHOD_DELIMITER_SIZE, class_layout
from repro.errors import TransferError
from repro.transfer import (
    TransferPolicy,
    TransferUnit,
    UnitKind,
    build_class_plan,
    build_program_plans,
)
from repro.workloads import figure1_program


@pytest.fixture()
def classfile():
    return figure1_program().class_named("A")


def test_strict_plan_is_single_unit(classfile):
    plan = build_class_plan(classfile, TransferPolicy.STRICT)
    assert len(plan.units) == 1
    assert plan.units[0].kind == UnitKind.CLASS_FILE
    assert plan.total_bytes == class_layout(classfile).strict_size


def test_nonstrict_plan_structure(classfile):
    plan = build_class_plan(classfile, TransferPolicy.NON_STRICT)
    kinds = [unit.kind for unit in plan.units]
    assert kinds[0] == UnitKind.GLOBAL_DATA
    assert kinds.count(UnitKind.METHOD) == len(classfile.methods)
    assert plan.total_bytes == class_layout(classfile).nonstrict_size


def test_nonstrict_method_units_include_delimiter(classfile):
    plan = build_class_plan(classfile, TransferPolicy.NON_STRICT)
    unit = plan.method_unit("main")
    assert (
        unit.size
        == classfile.method("main").size + METHOD_DELIMITER_SIZE
    )


def test_partitioned_plan_conserves_bytes(classfile):
    nonstrict = build_class_plan(classfile, TransferPolicy.NON_STRICT)
    partitioned = build_class_plan(
        classfile, TransferPolicy.DATA_PARTITIONED
    )
    assert partitioned.total_bytes == nonstrict.total_bytes
    assert partitioned.units[0].kind == UnitKind.GLOBAL_FIRST
    # The needed-first chunk is smaller than the full global unit.
    assert partitioned.units[0].size < nonstrict.units[0].size


def test_partitioned_method_units_carry_gmd(classfile):
    nonstrict = build_class_plan(classfile, TransferPolicy.NON_STRICT)
    partitioned = build_class_plan(
        classfile, TransferPolicy.DATA_PARTITIONED
    )
    for method in classfile.methods:
        assert (
            partitioned.method_unit(method.name).size
            >= nonstrict.method_unit(method.name).size
        )


def test_required_unit_semantics(classfile):
    strict = build_class_plan(classfile, TransferPolicy.STRICT)
    assert strict.required_unit_for("main").kind == UnitKind.CLASS_FILE
    nonstrict = build_class_plan(classfile, TransferPolicy.NON_STRICT)
    required = nonstrict.required_unit_for("Bar_A")
    assert required.kind == UnitKind.METHOD
    assert required.method.method_name == "Bar_A"


def test_prefix_bytes_through(classfile):
    plan = build_class_plan(classfile, TransferPolicy.NON_STRICT)
    first = plan.prefix_bytes_through("main")
    assert first == plan.units[0].size + plan.units[1].size
    everything = plan.prefix_bytes_through(classfile.methods[-1].name)
    # Last method's prefix spans all method units.
    assert everything == sum(
        unit.size
        for unit in plan.units
        if unit.kind in (UnitKind.GLOBAL_DATA, UnitKind.METHOD)
    )


def test_unknown_method_rejected(classfile):
    plan = build_class_plan(classfile, TransferPolicy.NON_STRICT)
    with pytest.raises(TransferError):
        plan.method_unit("missing")
    with pytest.raises(TransferError):
        plan.prefix_bytes_through("missing")


def test_unit_validation():
    with pytest.raises(TransferError):
        TransferUnit(kind=UnitKind.GLOBAL_DATA, class_name="A", size=-1)
    with pytest.raises(TransferError):
        TransferUnit(kind=UnitKind.METHOD, class_name="A", size=5)


def test_build_program_plans_covers_all_classes():
    program = figure1_program()
    plans = build_program_plans(program, TransferPolicy.NON_STRICT)
    assert set(plans) == {"A", "B"}
