"""Wire compression extension."""

import pytest

from repro.reorder import estimate_first_use, restructure
from repro.transfer import (
    T1_LINK,
    CompressedInterleavedController,
    InterleavedController,
    StreamEngine,
    TransferPolicy,
    class_compression_ratio,
    compress_plan,
    compress_plans,
    build_class_plan,
    program_compression_ratios,
)
from repro.workloads import figure1_program


def test_ratio_in_unit_interval():
    program = figure1_program()
    for classfile in program.classes:
        ratio = class_compression_ratio(classfile)
        assert 0 < ratio <= 1


def test_program_ratios_cover_all_classes():
    program = figure1_program()
    ratios = program_compression_ratios(program)
    assert set(ratios) == {"A", "B"}


def test_compress_plan_scales_sizes():
    program = figure1_program()
    plan = build_class_plan(
        program.classes[0], TransferPolicy.NON_STRICT
    )
    compressed = compress_plan(plan, 0.5)
    assert compressed.total_bytes < plan.total_bytes
    assert len(compressed.units) == len(plan.units)
    # Unit identity (kind/class/method) is preserved.
    for original, scaled in zip(plan.units, compressed.units):
        assert original.kind == scaled.kind
        assert original.method == scaled.method
        assert scaled.size >= 1


def test_compress_plan_rejects_bad_ratio():
    program = figure1_program()
    plan = build_class_plan(
        program.classes[0], TransferPolicy.NON_STRICT
    )
    with pytest.raises(ValueError):
        compress_plan(plan, 0.0)
    with pytest.raises(ValueError):
        compress_plan(plan, 1.5)


def test_compress_plans_uses_per_class_ratio():
    program = figure1_program()
    plans = {
        classfile.name: build_class_plan(
            classfile, TransferPolicy.NON_STRICT
        )
        for classfile in program.classes
    }
    compressed = compress_plans(plans, {"A": 0.5})  # B defaults to 1.0
    assert compressed["A"].total_bytes < plans["A"].total_bytes
    assert compressed["B"].total_bytes == plans["B"].total_bytes


def test_compressed_controller_transfers_fewer_bytes():
    program = figure1_program()
    order = estimate_first_use(program)
    target = restructure(program, order)
    plain = InterleavedController(target, order)
    compressed = CompressedInterleavedController(target, order)
    plain_bytes = sum(unit.size for unit in plain.sequence)
    compressed_bytes = sum(unit.size for unit in compressed.sequence)
    assert compressed_bytes < plain_bytes
    # And it still drives the engine to completion.
    engine = StreamEngine(T1_LINK)
    compressed.setup(engine)
    engine.run_until(1e12)
    assert engine.idle
