"""Data-partitioned streams: prerequisites always precede a method.

The co-simulator's requirement check is just "has the method's unit
arrived"; that is only sound because every plan delivers a method's
prerequisites (its class's needed-first chunk, and all earlier GMDs)
*before* the method unit in stream order.  These tests pin that
invariant for both transfer methodologies.
"""

from repro.reorder import estimate_first_use, restructure
from repro.transfer import (
    T1_LINK,
    InterleavedController,
    ParallelController,
    StreamEngine,
    TransferPolicy,
    UnitKind,
    build_class_plan,
)
from repro.workloads import figure1_program
from repro.workloads.synthetic import generate_workload


def prepared(name="Hanoi"):
    workload = generate_workload(name)
    order = estimate_first_use(workload.program)
    return restructure(workload.program, order), order


def test_class_plan_streams_global_first():
    program, _ = prepared()
    for classfile in program.classes:
        for policy in (
            TransferPolicy.NON_STRICT,
            TransferPolicy.DATA_PARTITIONED,
        ):
            plan = build_class_plan(classfile, policy)
            kinds = [unit.kind for unit in plan.units]
            assert kinds[0] in (
                UnitKind.GLOBAL_DATA,
                UnitKind.GLOBAL_FIRST,
            )
            # Unused trailing data, if any, comes after all methods.
            if UnitKind.GLOBAL_UNUSED in kinds:
                assert kinds.index(UnitKind.GLOBAL_UNUSED) > max(
                    index
                    for index, kind in enumerate(kinds)
                    if kind == UnitKind.METHOD
                )


def _assert_arrivals_sound(engine, controller, program):
    """Every method unit arrives after its class's leading global."""
    leading = {}
    for class_name, plan in controller.plans.items():
        leading[class_name] = plan.units[0]
    for unit, time in engine.arrival_times.items():
        if unit.kind == UnitKind.METHOD:
            lead = leading[unit.class_name]
            assert engine.arrival_times[lead] <= time + 1e-6


def test_interleaved_dp_arrival_order():
    program, order = prepared()
    controller = InterleavedController(
        program, order, data_partitioning=True
    )
    engine = StreamEngine(T1_LINK)
    controller.setup(engine)
    engine.run_until(1e14)
    assert engine.idle
    _assert_arrivals_sound(engine, controller, program)


def test_parallel_dp_arrival_order():
    program, order = prepared()
    controller = ParallelController(
        program,
        order,
        T1_LINK,
        cpi=100,
        max_streams=4,
        data_partitioning=True,
    )
    engine = StreamEngine(T1_LINK, max_streams=4)
    controller.setup(engine)
    engine.run_until(
        1e14,
        wakeup=controller.next_wakeup,
        on_advance=controller.on_advance,
    )
    # Force any still-pending scheduled classes (their triggers need
    # delivered bytes, which stop growing when the engine idles).
    for start in list(controller.schedule.starts):
        controller._request(engine, start.class_name)
    engine.run_until(2e14)
    assert engine.idle
    _assert_arrivals_sound(engine, controller, program)


def test_figure1_dp_gmd_rides_with_methods():
    program = figure1_program()
    plan_plain = build_class_plan(
        program.classes[0], TransferPolicy.NON_STRICT
    )
    plan_dp = build_class_plan(
        program.classes[0], TransferPolicy.DATA_PARTITIONED
    )
    # The DP leading chunk is strictly smaller; methods strictly larger.
    assert plan_dp.units[0].size < plan_plain.units[0].size
    for plain_unit, dp_unit in zip(
        plan_plain.units[1:], plan_dp.units[1:]
    ):
        if dp_unit.kind == UnitKind.METHOD:
            assert dp_unit.size >= plain_unit.size
