"""Incremental linking order, lazy resolution, cost model."""

import pytest

from repro.errors import LinkError
from repro.linker import IncrementalLinker, LinkCostModel, ResolutionTable
from repro.program import MethodId
from repro.workloads import figure1_program


def test_strict_link_all():
    program = figure1_program()
    linker = IncrementalLinker(program)
    report = linker.link_all_strict()
    assert report.classes_prepared == 2
    assert report.methods_verified == 5
    assert report.methods_resolved == 5
    assert report.total_cycles == 0.0  # zero cost model


def test_incremental_order_enforced():
    program = figure1_program()
    linker = IncrementalLinker(program)
    with pytest.raises(LinkError):
        linker.on_method_arrival(MethodId("A", "main"))
    linker.on_global_data("A")
    with pytest.raises(LinkError):
        linker.on_first_invocation(MethodId("A", "main"))
    linker.on_method_arrival(MethodId("A", "main"))
    linker.on_first_invocation(MethodId("A", "main"))
    assert MethodId("A", "main") in linker.verified_methods


def test_events_are_idempotent():
    program = figure1_program()
    linker = IncrementalLinker(program)
    linker.on_global_data("A")
    linker.on_global_data("A")
    linker.on_method_arrival(MethodId("A", "main"))
    linker.on_method_arrival(MethodId("A", "main"))
    linker.on_first_invocation(MethodId("A", "main"))
    linker.on_first_invocation(MethodId("A", "main"))
    assert linker.report.classes_prepared == 1
    assert linker.report.methods_verified == 1
    assert linker.report.methods_resolved == 1


def test_cost_model_accumulates():
    program = figure1_program()
    linker = IncrementalLinker(
        program, LinkCostModel.default_overhead()
    )
    report = linker.link_all_strict()
    assert report.verification_cycles > 0
    assert report.resolution_cycles > 0
    assert report.total_cycles == pytest.approx(
        report.verification_cycles + report.resolution_cycles
    )


def test_resolution_finds_internal_and_external():
    from repro.bytecode import assemble
    from repro.classfile import ClassFileBuilder
    from repro.program import Program

    builder = ClassFileBuilder("R")
    internal_ref = builder.method_ref("R", "helper", "()V")
    external_ref = builder.method_ref("java/Sys", "nat", "()V")
    builder.add_method(
        "main",
        "()V",
        assemble(f"call {internal_ref}\ncall {external_ref}\nreturn"),
    )
    builder.add_method("helper", "()V", assemble("return"))
    program = Program(classes=[builder.build()])
    table = ResolutionTable(program)
    refs = table.resolve_method(MethodId("R", "main"))
    assert [ref.internal for ref in refs] == [True, False]
    assert table.external_references() == {("java/Sys", "nat")}


def test_resolution_missing_internal_member_raises():
    from repro.bytecode import assemble
    from repro.classfile import ClassFileBuilder
    from repro.program import Program

    builder = ClassFileBuilder("R")
    bad_ref = builder.method_ref("R", "ghost", "()V")
    builder.add_method("main", "()V", assemble(f"call {bad_ref}\nreturn"))
    program = Program(classes=[builder.build()])
    with pytest.raises(LinkError):
        ResolutionTable(program).resolve_method(MethodId("R", "main"))
    # Lenient mode records it as external instead.
    lenient = ResolutionTable(program, strict_missing=False)
    refs = lenient.resolve_method(MethodId("R", "main"))
    assert not refs[0].internal


def test_resolution_caches():
    program = figure1_program()
    table = ResolutionTable(program)
    first = table.resolve_method(MethodId("A", "main"))
    second = table.resolve_method(MethodId("A", "main"))
    assert first is second
    assert table.is_resolved(MethodId("A", "main"))


def test_resolve_all_covers_program():
    program = figure1_program()
    table = ResolutionTable(program)
    resolved = table.resolve_all()
    assert set(resolved) == set(program.method_ids())
