"""The verifier: accepts well-formed code, rejects each violation."""

import pytest

from repro.bytecode import Instruction, Opcode, assemble
from repro.classfile import ClassFileBuilder, MethodInfo
from repro.errors import VerificationError
from repro.lang import compile_source
from repro.linker import verify_class, verify_global_data, verify_method
from repro.workloads import (
    fibonacci_program,
    figure1_program,
    mutual_recursion_program,
)


def test_example_programs_verify():
    for program in (
        figure1_program(),
        fibonacci_program(),
        mutual_recursion_program(),
    ):
        for classfile in program.classes:
            verify_class(classfile)


def test_compiled_mini_programs_verify():
    program = compile_source(
        """
        class A {
          global g = 1;
          func main() {
            var i = 0;
            while (i < 3) { A.g = A.g * 2; i = i + 1; }
            print(work(A.g));
          }
          func work(x) { if (x > 4) { return x - 4; } return x; }
        }
        """
    )
    for classfile in program.classes:
        verify_class(classfile)


def build_method(source, descriptor="()V", max_stack=16, max_locals=8):
    builder = ClassFileBuilder("V")
    builder.add_method(
        "m",
        descriptor,
        assemble(source),
        max_stack=max_stack,
        max_locals=max_locals,
    )
    classfile = builder.build()
    return classfile, classfile.method("m")


def test_stack_underflow_rejected():
    classfile, method = build_method("pop\nreturn")
    with pytest.raises(VerificationError):
        verify_method(classfile, method)


def test_stack_overflow_rejected():
    classfile, method = build_method(
        "iconst 1\niconst 2\niconst 3\npop\npop\npop\nreturn",
        max_stack=2,
    )
    with pytest.raises(VerificationError):
        verify_method(classfile, method)


def test_inconsistent_join_depth_rejected():
    # One path leaves a value, the other does not.
    classfile, method = build_method(
        """
        load 0
        ifeq skip
        iconst 9
        skip:
        return
        """
    )
    with pytest.raises(VerificationError):
        verify_method(classfile, method)


def test_value_left_at_return_rejected():
    classfile, method = build_method("iconst 1\nreturn")
    with pytest.raises(VerificationError):
        verify_method(classfile, method)


def test_return_kind_must_match_descriptor():
    classfile, method = build_method("return", descriptor="()I")
    with pytest.raises(VerificationError):
        verify_method(classfile, method)
    classfile, method = build_method(
        "iconst 1\nireturn", descriptor="()V"
    )
    with pytest.raises(VerificationError):
        verify_method(classfile, method)


def test_local_slot_beyond_max_locals_rejected():
    classfile, method = build_method(
        "load 7\npop\nreturn", max_locals=4
    )
    with pytest.raises(VerificationError):
        verify_method(classfile, method)


def test_arity_beyond_max_locals_rejected():
    classfile, method = build_method(
        "return", descriptor="(IIIII)V", max_locals=2
    )
    with pytest.raises(VerificationError):
        verify_method(classfile, method)


def test_empty_method_rejected():
    builder = ClassFileBuilder("V")
    builder.add_method("m", "()V", [])
    classfile = builder.build()
    with pytest.raises(VerificationError):
        verify_method(classfile, classfile.method("m"))


def test_fall_off_end_rejected():
    classfile, method = build_method("iconst 1\npop")
    with pytest.raises(VerificationError):
        verify_method(classfile, method)


def test_ldc_of_non_loadable_rejected():
    builder = ClassFileBuilder("V")
    class_index = builder.constant_pool.add_class("Other")
    builder.add_method(
        "m", "()V", assemble(f"ldc {class_index}\npop\nreturn")
    )
    classfile = builder.build()
    with pytest.raises(VerificationError):
        verify_method(classfile, classfile.method("m"))


def test_call_operand_must_be_method_ref():
    builder = ClassFileBuilder("V")
    field_ref = builder.field_ref("V", "x")
    builder.add_field("x")
    builder.add_method("m", "()V", assemble(f"call {field_ref}\nreturn"))
    classfile = builder.build()
    with pytest.raises(VerificationError):
        verify_method(classfile, classfile.method("m"))


def test_getstatic_operand_must_be_field_ref():
    builder = ClassFileBuilder("V")
    method_ref = builder.method_ref("V", "m", "()V")
    builder.add_method(
        "m", "()V", assemble(f"getstatic {method_ref}\npop\nreturn")
    )
    classfile = builder.build()
    with pytest.raises(VerificationError):
        verify_method(classfile, classfile.method("m"))


def test_loop_with_balanced_stack_accepted():
    classfile, method = build_method(
        """
        iconst 10
        store 0
        loop:
        load 0
        ifle out
        load 0
        iconst 1
        sub
        store 0
        goto loop
        out:
        return
        """
    )
    verify_method(classfile, method)


def test_global_data_bad_field_descriptor_rejected():
    from repro.classfile import ClassFile, FieldInfo

    classfile = ClassFile(
        name="V", fields=(FieldInfo("x", descriptor="Z"),)
    )
    with pytest.raises(VerificationError):
        verify_global_data(classfile)


def test_structure_duplicate_methods_rejected():
    from repro.classfile import ClassFile

    classfile = ClassFile(
        name="V",
        methods=[
            MethodInfo(name="m", instructions=[Instruction(Opcode.RETURN)]),
            MethodInfo(name="m", instructions=[Instruction(Opcode.RETURN)]),
        ],
    )
    with pytest.raises(VerificationError):
        verify_class(classfile)
