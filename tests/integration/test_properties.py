"""Property-based tests across subsystems.

Random Mini programs are generated structurally (never from raw text),
so every sample is syntactically valid; the properties under test are
semantic: compiled programs verify, run deterministically, and survive
restructuring and splitting unchanged.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import compile_source, estimate_first_use, restructure
from repro.errors import VMError
from repro.linker import verify_class
from repro.transfer import (
    NetworkLink,
    StreamEngine,
    TransferUnit,
    UnitKind,
)
from repro.vm import VirtualMachine

# --- random Mini program generation -----------------------------------

_INT = st.integers(-100, 100)


def _expr(depth: int):
    """An expression strategy over locals a, b and global G.x."""
    leaf = st.one_of(
        _INT.map(str),
        st.sampled_from(["a", "b", "G.x"]),
    )
    if depth <= 0:
        return leaf
    sub = _expr(depth - 1)
    binary = st.tuples(
        sub, st.sampled_from(["+", "-", "*"]), sub
    ).map(lambda t: f"({t[0]} {t[1]} {t[2]})")
    compare = st.tuples(
        sub, st.sampled_from(["<", "<=", "==", "!="]), sub
    ).map(lambda t: f"({t[0]} {t[1]} {t[2]})")
    return st.one_of(leaf, binary, compare)


def _statement(depth: int):
    expression = _expr(2)
    assign = st.tuples(
        st.sampled_from(["a", "b"]), expression
    ).map(lambda t: f"{t[0]} = {t[1]};")
    global_assign = expression.map(lambda e: f"G.x = {e};")
    print_statement = expression.map(lambda e: f"print({e});")
    if depth <= 0:
        return st.one_of(assign, global_assign, print_statement)
    block = st.lists(
        _statement(depth - 1), min_size=1, max_size=3
    ).map(lambda statements: " ".join(statements))
    if_statement = st.tuples(_expr(1), block).map(
        lambda t: f"if ({t[0]}) {{ {t[1]} }}"
    )
    # Loops use the dedicated counter ``c`` that no other generated
    # statement assigns, so every loop provably terminates (an inner
    # loop leaves c == 0, which only makes the outer loop exit sooner).
    bounded_while = st.tuples(
        st.integers(1, 5), block
    ).map(
        lambda t: (
            f"c = {t[0]}; while (c > 0) {{ {t[1]} c = c - 1; }}"
        )
    )
    return st.one_of(
        assign, global_assign, print_statement, if_statement,
        bounded_while,
    )


@st.composite
def mini_programs(draw):
    body = " ".join(
        draw(st.lists(_statement(2), min_size=1, max_size=6))
    )
    helper_body = " ".join(
        draw(st.lists(_statement(1), min_size=1, max_size=3))
    )
    return (
        "class Main { func main() { var a = 0; var b = 0; var c = 0; "
        f"{body} helper(); }} "
        "func helper() { var a = 1; var b = 1; var c = 0; "
        f"{helper_body} }} }}"
        " class G { global x = 3; }"
    )


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(source=mini_programs())
def test_random_programs_compile_verify_run(source):
    program = compile_source(source)
    for classfile in program.classes:
        verify_class(classfile)
    try:
        first = VirtualMachine(program, max_instructions=200_000).run()
        second = VirtualMachine(program, max_instructions=200_000).run()
    except VMError as error:
        # Division is not generated, so only the instruction limit can
        # trip — and the generator's loops are bounded, so it must not.
        pytest.fail(f"unexpected VM error: {error}")
    assert first.output == second.output
    assert first.globals == second.globals


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(source=mini_programs())
def test_restructuring_never_changes_semantics(source):
    program = compile_source(source)
    order = estimate_first_use(program)
    restructured = restructure(program, order)
    original = VirtualMachine(program, max_instructions=200_000).run()
    modified = VirtualMachine(
        restructured, max_instructions=200_000
    ).run()
    assert original.output == modified.output
    assert original.globals == modified.globals
    assert (
        original.instructions_executed == modified.instructions_executed
    )


# --- stream engine conservation ---------------------------------------


@st.composite
def unit_streams(draw):
    count = draw(st.integers(1, 8))
    streams = []
    for index in range(count):
        sizes = draw(
            st.lists(st.integers(1, 5000), min_size=1, max_size=6)
        )
        # Distinct class names per unit keep units unique, matching the
        # plan builders' guarantee (the engine rejects duplicates).
        streams.append(
            [
                TransferUnit(
                    kind=UnitKind.GLOBAL_DATA
                    if position == 0
                    else UnitKind.GLOBAL_UNUSED,
                    class_name=f"c{index}u{position}",
                    size=size,
                )
                for position, size in enumerate(sizes)
            ]
        )
    return streams


@settings(max_examples=60, deadline=None)
@given(
    streams=unit_streams(),
    cycles_per_byte=st.floats(0.5, 5000),
    max_streams=st.one_of(st.none(), st.integers(1, 4)),
)
def test_engine_conserves_bytes_and_orders_arrivals(
    streams, cycles_per_byte, max_streams
):
    link = NetworkLink("prop", cycles_per_byte)
    engine = StreamEngine(link, max_streams=max_streams)
    total = 0
    for index, units in enumerate(streams):
        engine.request_stream(f"s{index}", units)
        total += sum(unit.size for unit in units)
    engine.run_until(total * cycles_per_byte * 2 + 10)

    # Conservation: everything delivered, nothing remaining.
    assert engine.total_delivered == pytest.approx(total, rel=1e-6)
    assert engine.remaining_bytes == pytest.approx(0, abs=1e-3)
    assert engine.idle
    # Every unit arrived exactly once.
    assert len(engine.arrival_times) == sum(
        len(units) for units in streams
    )
    # Within each stream, arrivals are in order.
    for index, units in enumerate(streams):
        times = [engine.arrival_times[unit] for unit in units]
        assert times == sorted(times)
    # Aggregate finish time can never beat the link's raw bandwidth.
    finish = max(engine.arrival_times.values())
    assert finish >= total * cycles_per_byte - 1e-3


@settings(max_examples=40, deadline=None)
@given(
    streams=unit_streams(),
    split_point=st.floats(0.1, 0.9),
)
def test_engine_time_slicing_is_consistent(streams, split_point):
    """Running to T in one call equals running in two calls."""
    link = NetworkLink("prop", 7.0)
    total = sum(
        unit.size for units in streams for unit in units
    )
    horizon = total * 7.0 + 10

    single = StreamEngine(link)
    double = StreamEngine(link)
    for index, units in enumerate(streams):
        single.request_stream(f"s{index}", units)
        double.request_stream(f"s{index}", units)
    single.run_until(horizon)
    double.run_until(horizon * split_point)
    double.run_until(horizon)
    assert single.total_delivered == pytest.approx(
        double.total_delivered, rel=1e-9
    )
    for unit, time in single.arrival_times.items():
        assert double.arrival_times[unit] == pytest.approx(
            time, rel=1e-6, abs=1e-3
        )
