"""End-to-end integration: Mini source → every subsystem → simulation."""

import pytest

from repro import (
    MODEM_LINK,
    T1_LINK,
    compile_source,
    estimate_first_use,
    order_from_profile,
    profile_program,
    record_run,
    restructure,
    run_nonstrict,
    run_strict,
    strict_baseline,
)
from repro.classfile import class_layout, deserialize, serialize
from repro.datapart import partition_class
from repro.linker import IncrementalLinker, verify_class
from repro.program import MethodId
from repro.vm import VirtualMachine

SOURCE = """
class App {
    global checksum = 0;

    func main() {
        var blocks = new[16];
        var i = 0;
        while (i < len(blocks)) {
            blocks[i] = Hash.mix(i, 41);
            i = i + 1;
        }
        App.checksum = Fold.sum(blocks);
        print(App.checksum);
        Report.emit(App.checksum);
    }
}

class Hash {
    global salt = 7;

    func mix(value, key) {
        return (value * 31 + key) % 1000 + Hash.salt;
    }

    // Input-dependent cold path.
    func rehash(value) {
        return mix(value, 97);
    }
}

class Fold {
    func sum(values) {
        var total = 0;
        var i = 0;
        while (i < len(values)) {
            total = total + values[i];
            i = i + 1;
        }
        return total;
    }
}

class Report {
    func emit(value) { print(value); }
    func emit_verbose(value) { print(value); print(value); }
}
"""

CPI = 80.0


@pytest.fixture(scope="module")
def compiled():
    return compile_source(SOURCE)


def test_compiled_classes_verify_and_roundtrip(compiled):
    for classfile in compiled.classes:
        verify_class(classfile)
        image = serialize(classfile)
        assert serialize(deserialize(image)) == image


def test_execution_and_profile(compiled):
    result, recorder = record_run(compiled)
    expected = sum((i * 31 + 41) % 1000 + 7 for i in range(16))
    assert result.output == [expected, expected]
    order = recorder.profile.order
    assert order[0] == MethodId("App", "main")
    assert MethodId("Hash", "rehash") not in order  # cold path
    assert MethodId("Report", "emit_verbose") not in order


def test_restructure_preserves_behaviour_and_bytes(compiled):
    profile = profile_program(compiled)
    order = order_from_profile(compiled, profile)
    restructured = restructure(compiled, order)
    baseline = VirtualMachine(compiled).run()
    modified = VirtualMachine(restructured).run()
    assert baseline.output == modified.output
    for original in compiled.classes:
        other = restructured.class_named(original.name)
        assert (
            class_layout(original).strict_size
            == class_layout(other).strict_size
        )


def test_partitioning_consistent_after_restructure(compiled):
    order = estimate_first_use(compiled)
    restructured = restructure(compiled, order)
    for classfile in restructured.classes:
        partition = partition_class(classfile)
        layout = class_layout(classfile)
        assert partition.total_global_bytes == layout.global_size


@pytest.mark.parametrize("link", [T1_LINK, MODEM_LINK], ids=["t1", "modem"])
@pytest.mark.parametrize("method", ["interleaved", "parallel"])
@pytest.mark.parametrize("partitioned", [False, True], ids=["plain", "dp"])
def test_simulation_matrix(compiled, link, method, partitioned):
    _, recorder = record_run(compiled)
    order = order_from_profile(compiled, recorder.profile)
    base = strict_baseline(compiled, recorder.trace, link, CPI)
    sim = run_nonstrict(
        compiled,
        recorder.trace,
        order,
        link,
        CPI,
        method=method,
        max_streams=4 if method == "parallel" else None,
        data_partitioning=partitioned,
    )
    assert sim.total_cycles > 0
    assert sim.total_cycles == pytest.approx(
        sim.execution_cycles + sim.stall_cycles
    )
    # Cold code exists, so some bytes should never transfer.
    assert sim.bytes_terminated > 0
    # Non-strict never exceeds strict by more than the delimiter
    # overhead on this workload.
    assert sim.normalized_to(base.total_cycles) < 110


def test_strict_simulation_agrees_with_arithmetic_bound(compiled):
    _, recorder = record_run(compiled)
    base = strict_baseline(compiled, recorder.trace, T1_LINK, CPI)
    simulated = run_strict(compiled, recorder.trace, T1_LINK, CPI)
    assert simulated.total_cycles <= base.total_cycles + 1


def test_incremental_linker_follows_simulated_arrival_order(compiled):
    """Drive the incremental linker with the exact unit arrival order a
    non-strict transfer produces: globals, then methods, in stream
    order — linking must succeed with no ordering violations."""
    from repro.transfer import (
        InterleavedController,
        StreamEngine,
        UnitKind,
    )

    order = estimate_first_use(compiled)
    restructured = restructure(compiled, order)
    controller = InterleavedController(restructured, order)
    engine = StreamEngine(T1_LINK)
    controller.setup(engine)
    engine.run_until(1e12)
    arrivals = sorted(
        engine.arrival_times.items(), key=lambda item: item[1]
    )
    linker = IncrementalLinker(restructured)
    for unit, _time in arrivals:
        if unit.kind in (UnitKind.GLOBAL_DATA, UnitKind.GLOBAL_FIRST):
            linker.on_global_data(unit.class_name)
        elif unit.kind == UnitKind.METHOD:
            linker.on_method_arrival(unit.method)
    # Every method arrived and verified; now first invocations resolve.
    _, recorder = record_run(compiled)
    for method in recorder.trace.first_use_order():
        linker.on_first_invocation(method)
    assert linker.report.methods_verified == restructured.method_count
    assert linker.report.classes_prepared == len(restructured.classes)


def test_procedure_splitting_integrates(compiled):
    from repro.reorder import split_large_methods

    split = split_large_methods(compiled, max_unit_bytes=40)
    baseline = VirtualMachine(compiled).run()
    result = VirtualMachine(split).run()
    assert result.output == baseline.output
    for classfile in split.classes:
        verify_class(classfile)
