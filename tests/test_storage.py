"""Program/trace/profile persistence."""

import json

import pytest

from repro import (
    load_profile,
    load_program,
    load_trace,
    record_run,
    save_profile,
    save_program,
    save_trace,
)
from repro.classfile import serialize
from repro.errors import ClassFileError, ReproError
from repro.program import MethodId
from repro.vm import VirtualMachine
from repro.workloads import figure1_program, mutual_recursion_program


@pytest.fixture()
def stored(tmp_path):
    program = figure1_program()
    directory = save_program(program, tmp_path / "prog")
    return program, directory


def test_program_roundtrip(stored):
    program, directory = stored
    loaded = load_program(directory)
    assert loaded.class_names == program.class_names
    assert loaded.entry_point == program.entry_point
    for original, recovered in zip(program.classes, loaded.classes):
        assert serialize(original) == serialize(recovered)


def test_loaded_program_runs_identically(stored):
    program, directory = stored
    loaded = load_program(directory)
    assert (
        VirtualMachine(loaded).run().globals
        == VirtualMachine(program).run().globals
    )


def test_package_separators_flattened(tmp_path):
    from repro.workloads.synthetic import generate_workload

    program = generate_workload("Hanoi").program  # names contain '/'
    directory = save_program(program, tmp_path / "hanoi")
    loaded = load_program(directory)
    assert loaded.class_names == program.class_names


def test_missing_manifest_rejected(tmp_path):
    with pytest.raises(ClassFileError):
        load_program(tmp_path)


def test_corrupt_manifest_rejected(tmp_path):
    (tmp_path / "program.json").write_text("{not json")
    with pytest.raises(ClassFileError):
        load_program(tmp_path)


def test_missing_class_file_rejected(stored, tmp_path):
    _, directory = stored
    (directory / "A.rclass").unlink()
    with pytest.raises(ClassFileError):
        load_program(directory)


def test_manifest_name_mismatch_rejected(stored):
    program, directory = stored
    manifest = json.loads((directory / "program.json").read_text())
    manifest["classes"][0]["name"] = "Wrong"
    (directory / "program.json").write_text(json.dumps(manifest))
    with pytest.raises(ClassFileError):
        load_program(directory)


def test_trace_roundtrip(tmp_path):
    program = figure1_program()
    _, recorder = record_run(program)
    path = save_trace(recorder.trace, tmp_path / "trace.json")
    loaded = load_trace(path)
    assert loaded.segments == recorder.trace.segments
    assert (
        loaded.total_instructions == recorder.trace.total_instructions
    )


def test_corrupt_trace_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"segments": [["A"]]}')
    with pytest.raises(ReproError):
        load_trace(path)
    path.write_text("nonsense")
    with pytest.raises(ReproError):
        load_trace(path)


def test_profile_roundtrip(tmp_path):
    program = mutual_recursion_program()
    _, recorder = record_run(program)
    path = save_profile(recorder.profile, tmp_path / "profile.json")
    loaded = load_profile(path)
    assert loaded.order == recorder.profile.order
    assert (
        loaded.total_instructions
        == recorder.profile.total_instructions
    )
    method = MethodId("Even", "is_even")
    assert (
        loaded.method_stats[method].invocations
        == recorder.profile.method_stats[method].invocations
    )


def test_loaded_profile_drives_reordering(tmp_path):
    from repro.reorder import order_from_profile

    program = figure1_program()
    _, recorder = record_run(program)
    path = save_profile(recorder.profile, tmp_path / "p.json")
    loaded = load_profile(path)
    from_disk = order_from_profile(program, loaded)
    direct = order_from_profile(program, recorder.profile)
    assert from_disk.order == direct.order


def test_corrupt_profile_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"events": [{"class": "A"}], "stats": []}')
    with pytest.raises(ReproError):
        load_profile(path)
