"""Overlapping JIT compilation with transfer (§8 extension)."""

import pytest

from repro.core import (
    JitModel,
    simulate_jit_overlap,
    strict_jit_total,
)
from repro.reorder import estimate_first_use
from repro.transfer import MODEM_LINK, T1_LINK, NetworkLink
from repro.vm import record_run
from repro.workloads import figure1_program

# Heavy enough that compilation matters against this toy program's
# small wire size (the delimiter overhead is ~80 KCycles on T1).
JIT = JitModel(compile_cycles_per_byte=5000.0, compiled_cpi=10.0)


@pytest.fixture(scope="module")
def setup():
    program = figure1_program()
    _, recorder = record_run(program)
    order = estimate_first_use(program)
    return program, recorder.trace, order


def test_overlap_beats_strict_jit(setup):
    program, trace, order = setup
    strict = strict_jit_total(program, trace, T1_LINK, JIT)
    overlapped = simulate_jit_overlap(
        program, trace, order, T1_LINK, JIT
    )
    assert overlapped.total_cycles < strict


def test_strict_jit_is_the_arithmetic_sum(setup):
    program, trace, order = setup
    from repro.core import program_wire_bytes

    strict = strict_jit_total(program, trace, T1_LINK, JIT)
    transfer = T1_LINK.transfer_cycles(program_wire_bytes(program))
    compile_cycles = sum(
        JIT.compile_cycles(m.code_bytes) for _, m in program.methods()
    )
    execution = trace.total_instructions * JIT.compiled_cpi
    assert strict == pytest.approx(
        transfer + compile_cycles + execution
    )


def test_all_compilation_is_accounted(setup):
    program, trace, order = setup
    result = simulate_jit_overlap(program, trace, order, MODEM_LINK, JIT)
    used_methods = trace.methods_used()
    minimum = sum(
        JIT.compile_cycles(program.method(m).code_bytes)
        for m in used_methods
    )
    # Every used method compiled; unused ones only if a stall had room.
    assert result.compile_cycles >= minimum - 1e-6
    assert (
        result.overlapped_compile_cycles <= result.compile_cycles
    )
    assert 0 <= result.overlap_fraction <= 1


def test_slow_link_hides_all_compilation(setup):
    """On the modem, stalls dwarf compile times: overlap ≈ 100%."""
    program, trace, order = setup
    result = simulate_jit_overlap(program, trace, order, MODEM_LINK, JIT)
    assert result.overlap_fraction > 0.95


def test_fast_link_cannot_hide_compilation(setup):
    """On a near-instant link there are no stalls to hide work in."""
    program, trace, order = setup
    instant = NetworkLink("instant", 1e-6)
    result = simulate_jit_overlap(program, trace, order, instant, JIT)
    assert result.overlap_fraction < 0.05
    # Total ≈ execution + visible compilation.
    assert result.total_cycles == pytest.approx(
        result.execution_cycles
        + (result.compile_cycles - result.overlapped_compile_cycles),
        rel=1e-3,
    )


def test_total_decomposition(setup):
    program, trace, order = setup
    result = simulate_jit_overlap(program, trace, order, T1_LINK, JIT)
    visible_compile = (
        result.compile_cycles - result.overlapped_compile_cycles
    )
    assert result.total_cycles == pytest.approx(
        result.execution_cycles
        + result.stall_cycles
        + result.overlapped_compile_cycles
        + visible_compile,
        rel=1e-6,
    )
