"""Failure injection at the simulation API boundary."""

import pytest

from repro.core import run_nonstrict
from repro.errors import ReproError
from repro.program import MethodId
from repro.reorder import estimate_first_use
from repro.transfer import T1_LINK
from repro.vm import ExecutionTrace, TraceSegment, record_run
from repro.workloads import figure1_program


@pytest.fixture(scope="module")
def setup():
    program = figure1_program()
    _, recorder = record_run(program)
    return program, recorder.trace, estimate_first_use(program)


def test_trace_with_unknown_class_rejected(setup):
    program, _, order = setup
    ghost_trace = ExecutionTrace(
        segments=[TraceSegment(MethodId("Ghost", "main"), 10)]
    )
    with pytest.raises(ReproError):
        run_nonstrict(program, ghost_trace, order, T1_LINK, 10)


def test_trace_with_unknown_method_rejected(setup):
    program, _, order = setup
    ghost_trace = ExecutionTrace(
        segments=[TraceSegment(MethodId("A", "ghost"), 10)]
    )
    with pytest.raises(ReproError):
        run_nonstrict(program, ghost_trace, order, T1_LINK, 10)


def test_negative_cpi_rejected(setup):
    program, trace, order = setup
    with pytest.raises(ReproError):
        run_nonstrict(program, trace, order, T1_LINK, -5)


def test_zero_instruction_segments_are_harmless(setup):
    program, trace, order = setup
    padded = ExecutionTrace(
        segments=[
            TraceSegment(MethodId("A", "main"), 0),
            *trace.segments,
        ]
    )
    result = run_nonstrict(program, padded, order, T1_LINK, 10)
    reference = run_nonstrict(program, trace, order, T1_LINK, 10)
    assert result.total_cycles == pytest.approx(reference.total_cycles)


def test_restructure_false_matches_prefix_layout(setup):
    """Ablation path: simulate against the original textual layout."""
    program, trace, _ = setup
    from repro.reorder import textual_first_use

    order = textual_first_use(program)
    result = run_nonstrict(
        program, trace, order, T1_LINK, 10, restructure=False
    )
    assert result.total_cycles > 0
