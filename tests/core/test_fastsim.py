"""Batched engine equivalence: bit-identical to the reference.

The contract of :mod:`repro.core.fastsim` is *exact* replication —
every cycle count, stall boundary, and per-method first-invocation
latency must equal the reference simulator's floats bit for bit, not
approximately.  All comparisons below use ``==`` on raw floats on
purpose.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import compile_source
from repro.core import run_nonstrict, run_strict
from repro.core.fastsim import numpy_enabled
from repro.core.simulation import resolve_engine
from repro.errors import SimulationError
from repro.harness import BENCHMARK_NAMES, bundle
from repro.observe import TraceRecorder
from repro.reorder import estimate_first_use
from repro.sched import run_striped
from repro.transfer import MODEM_LINK, T1_LINK, links_from_bandwidths
from repro.vm import record_run
from repro.workloads import figure1_program


def _key(result):
    """Every observable field of a SimulationResult, exactly."""
    return (
        result.total_cycles,
        result.execution_cycles,
        result.stall_cycles,
        result.invocation_latency,
        result.bytes_delivered,
        result.bytes_terminated,
        result.controller_name,
        tuple(
            (stall.method, stall.start, stall.duration)
            for stall in result.stalls
        ),
        tuple(
            (entry.method, entry.latency, entry.demand_fetched)
            for entry in result.latencies.entries
        ),
    )


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
@pytest.mark.parametrize("method", ["parallel", "interleaved"])
@pytest.mark.parametrize("ordering", ["SCG", "Train"])
def test_engine_equivalence(name, method, ordering):
    item = bundle(name)
    workload = item.workload
    order = item.order(ordering)
    kwargs = dict(
        method=method,
        max_streams=4 if method == "parallel" else None,
    )
    reference = run_nonstrict(
        workload.program,
        workload.test_trace,
        order,
        T1_LINK,
        workload.cpi,
        engine="reference",
        **kwargs,
    )
    batched = run_nonstrict(
        workload.program,
        workload.test_trace,
        order,
        T1_LINK,
        workload.cpi,
        engine="batched",
        **kwargs,
    )
    assert _key(reference) == _key(batched)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_striped_equivalence(name):
    item = bundle(name)
    workload = item.workload
    links = links_from_bandwidths((57_600, 28_800))
    results = [
        run_striped(
            workload.program,
            workload.test_trace,
            item.order("SCG"),
            links,
            workload.cpi,
            engine=engine,
        )
        for engine in ("reference", "batched")
    ]
    assert _key(results[0]) == _key(results[1])


def test_data_partitioned_equivalence():
    item = bundle(BENCHMARK_NAMES[0])
    workload = item.workload
    for method in ("parallel", "interleaved"):
        keys = [
            _key(
                run_nonstrict(
                    workload.program,
                    workload.test_trace,
                    item.order("Test"),
                    MODEM_LINK,
                    workload.cpi,
                    method=method,
                    max_streams=4 if method == "parallel" else None,
                    data_partitioning=True,
                    engine=engine,
                )
            )
            for engine in ("reference", "batched")
        ]
        assert keys[0] == keys[1]


def test_strict_equivalence():
    program = figure1_program()
    _, recorder = record_run(program)
    keys = [
        _key(
            run_strict(
                program, recorder.trace, T1_LINK, 30.0, engine=engine
            )
        )
        for engine in ("reference", "batched")
    ]
    assert keys[0] == keys[1]


def test_numpy_fallback_identical(monkeypatch):
    item = bundle(BENCHMARK_NAMES[1])
    workload = item.workload

    def run():
        # Fresh program copy each time so no compiled-trace or
        # controller cache carries state between representation modes.
        return _key(
            run_nonstrict(
                workload.program,
                workload.test_trace,
                item.order("SCG"),
                T1_LINK,
                workload.cpi,
                method="parallel",
                max_streams=4,
                restructure=True,
                engine="batched",
                recorder=None,
            )
        )

    monkeypatch.delenv("REPRO_FASTSIM_NUMPY", raising=False)
    default = run()
    # Clear caches so the fallback actually recompiles the traces.
    workload.program.__dict__.pop("_batched_config_cache", None)
    monkeypatch.setenv("REPRO_FASTSIM_NUMPY", "0")
    assert not numpy_enabled()
    assert run() == default


def test_recorder_runs_use_reference_loop():
    """A recorder forces the reference path: event streams must exist
    and results must match a recorder-less batched run exactly."""
    program = figure1_program()
    _, vm_recorder = record_run(program)
    order = estimate_first_use(program)
    recorder = TraceRecorder(clock="cycles")
    recorded = run_nonstrict(
        program,
        vm_recorder.trace,
        order,
        T1_LINK,
        30.0,
        method="parallel",
        recorder=recorder,
        engine="batched",
    )
    assert len(recorder.events) > 0
    batched = run_nonstrict(
        program,
        vm_recorder.trace,
        order,
        T1_LINK,
        30.0,
        method="parallel",
        engine="batched",
    )
    assert _key(recorded) == _key(batched)


def test_engine_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
    assert resolve_engine(None) == "reference"
    assert resolve_engine("batched") == "batched"
    monkeypatch.setenv("REPRO_SIM_ENGINE", "batched")
    assert resolve_engine(None) == "batched"
    # Explicit argument beats the environment.
    assert resolve_engine("reference") == "reference"
    with pytest.raises(SimulationError, match="unknown simulation"):
        resolve_engine("warp")
    monkeypatch.setenv("REPRO_SIM_ENGINE", "warp")
    with pytest.raises(SimulationError, match="unknown simulation"):
        resolve_engine(None)


def test_config_cache_reused_across_links():
    """The batched config cache is keyed on order identity and shared
    across links (the schedule ignores the link)."""
    item = bundle(BENCHMARK_NAMES[2])
    workload = item.workload
    workload.program.__dict__.pop("_batched_config_cache", None)
    for link in (T1_LINK, MODEM_LINK):
        run_nonstrict(
            workload.program,
            workload.test_trace,
            item.order("SCG"),
            link,
            workload.cpi,
            method="parallel",
            max_streams=4,
            engine="batched",
        )
    cache = workload.program.__dict__["_batched_config_cache"]
    assert len(cache) == 1  # one config entry served both links


_SNIPPETS = st.sampled_from(
    [
        "var x = 0; while (x < 8) { x = x + 1; helper(); } print(x);",
        "G.x = 2; helper(); print(G.x * 3); helper();",
        "var a = 1; if (a < 5) { helper(); } print(a);",
        "helper(); helper(); print(9);",
    ]
)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(body=_SNIPPETS, cpi=st.sampled_from([1.0, 12.5, 30.0, 77.0]))
def test_property_random_programs_equivalent(body, cpi):
    """Random programs, fresh traces: both engines agree exactly."""
    source = (
        f"class Main {{ func main() {{ {body} }} "
        "func helper() { var t = 3; print(t); } } "
        "class G { global x = 3; }"
    )
    program = compile_source(source)
    _, recorder = record_run(program)
    order = estimate_first_use(program)
    for method in ("parallel", "interleaved"):
        keys = [
            _key(
                run_nonstrict(
                    program,
                    recorder.trace,
                    order,
                    MODEM_LINK,
                    cpi,
                    method=method,
                    engine=engine,
                )
            )
            for engine in ("reference", "batched")
        ]
        assert keys[0] == keys[1]
