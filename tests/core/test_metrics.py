"""Baseline metrics: Table 3/4 accounting conventions."""

import pytest

from repro.core import (
    invocation_latency_cycles,
    program_wire_bytes,
    strict_baseline,
)
from repro.classfile import METHOD_DELIMITER_SIZE, class_layout
from repro.errors import SimulationError
from repro.program import MethodId
from repro.reorder import estimate_first_use, restructure
from repro.transfer import MODEM_LINK, T1_LINK, TransferPolicy
from repro.vm import record_run
from repro.workloads import figure1_program


@pytest.fixture(scope="module")
def setup():
    program = figure1_program()
    _, recorder = record_run(program)
    return program, recorder.trace


def test_program_wire_bytes_sums_layouts(setup):
    program, _ = setup
    expected = sum(
        class_layout(classfile).strict_size
        for classfile in program.classes
    )
    assert program_wire_bytes(program) == expected


def test_strict_baseline_is_the_sum(setup):
    program, trace = setup
    base = strict_baseline(program, trace, T1_LINK, cpi=10)
    assert base.execution_cycles == trace.total_instructions * 10
    assert base.transfer_cycles == T1_LINK.transfer_cycles(
        program_wire_bytes(program)
    )
    assert base.total_cycles == (
        base.execution_cycles + base.transfer_cycles
    )


def test_strict_baseline_rejects_bad_cpi(setup):
    program, trace = setup
    with pytest.raises(SimulationError):
        strict_baseline(program, trace, T1_LINK, cpi=0)


def test_invocation_latency_strict_is_first_class(setup):
    program, _ = setup
    latency = invocation_latency_cycles(
        program, T1_LINK, TransferPolicy.STRICT
    )
    first = class_layout(program.classes[0]).strict_size
    assert latency == T1_LINK.transfer_cycles(first)


def test_invocation_latency_nonstrict_is_prefix(setup):
    program, _ = setup
    order = estimate_first_use(program)
    restructured = restructure(program, order)
    latency = invocation_latency_cycles(
        restructured, T1_LINK, TransferPolicy.NON_STRICT
    )
    layout = class_layout(restructured.classes[0])
    expected_bytes = (
        layout.global_size
        + layout.method_size("main")
        + METHOD_DELIMITER_SIZE
    )
    assert latency == T1_LINK.transfer_cycles(expected_bytes)


def test_invocation_latency_ordering(setup):
    """strict >= non-strict >= partitioned, on both links."""
    program, _ = setup
    restructured = restructure(program, estimate_first_use(program))
    for link in (T1_LINK, MODEM_LINK):
        strict = invocation_latency_cycles(
            restructured, link, TransferPolicy.STRICT
        )
        nonstrict = invocation_latency_cycles(
            restructured, link, TransferPolicy.NON_STRICT
        )
        partitioned = invocation_latency_cycles(
            restructured, link, TransferPolicy.DATA_PARTITIONED
        )
        assert partitioned < nonstrict < strict


def test_invocation_latency_custom_entry(setup):
    program, _ = setup
    default = invocation_latency_cycles(
        program, T1_LINK, TransferPolicy.NON_STRICT
    )
    # Bar_A sits deeper in class A's file, so its prefix is longer.
    deeper = invocation_latency_cycles(
        program,
        T1_LINK,
        TransferPolicy.NON_STRICT,
        entry=MethodId("A", "Bar_A"),
    )
    assert deeper > default


def test_unrestructured_entry_method_costs_more(setup):
    """Without restructuring, a mis-laid-out class honestly pays for
    the methods ahead of the entry method."""
    program, _ = setup
    # In figure1's textual layout main is already first, so reorder it
    # to the back to create the mis-layout.
    classfile = program.class_named("A")
    shuffled = classfile.reordered(["Foo_A", "Bar_A", "main"])
    from repro.program import Program

    shuffled_program = Program(
        classes=[shuffled, program.class_named("B")],
        entry_point=MethodId("A", "main"),
    )
    good = invocation_latency_cycles(
        program, T1_LINK, TransferPolicy.NON_STRICT
    )
    bad = invocation_latency_cycles(
        shuffled_program, T1_LINK, TransferPolicy.NON_STRICT
    )
    assert bad > good
