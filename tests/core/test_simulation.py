"""Co-simulator invariants and hand-checked scenarios."""

import pytest

from repro.core import (
    Simulator,
    run_nonstrict,
    run_strict,
    strict_baseline,
)
from repro.errors import SimulationError
from repro.reorder import estimate_first_use, profile_first_use
from repro.transfer import (
    MODEM_LINK,
    T1_LINK,
    InterleavedController,
    NetworkLink,
)
from repro.vm import ExecutionTrace, record_run
from repro.workloads import figure1_program

CPI = 50.0


@pytest.fixture(scope="module")
def setup():
    program = figure1_program()
    _, recorder = record_run(program)
    order = estimate_first_use(program)
    return program, recorder.trace, order


def test_total_is_execution_plus_stalls(setup):
    program, trace, order = setup
    result = run_nonstrict(program, trace, order, T1_LINK, CPI)
    assert result.total_cycles == pytest.approx(
        result.execution_cycles + result.stall_cycles
    )


def test_invocation_latency_equals_first_stall(setup):
    program, trace, order = setup
    result = run_nonstrict(program, trace, order, T1_LINK, CPI)
    # Execution cannot begin before main's unit arrives, so the first
    # stall *is* the invocation latency here.
    assert result.invocation_latency == pytest.approx(
        result.stalls[0].start + result.stalls[0].duration
    )


def test_nonstrict_invocation_latency_beats_strict(setup):
    program, trace, order = setup
    nonstrict = run_nonstrict(program, trace, order, T1_LINK, CPI)
    strict = run_strict(program, trace, T1_LINK, CPI)
    assert nonstrict.invocation_latency < strict.invocation_latency


def test_interleaved_no_worse_than_parallel_inf(setup):
    program, trace, order = setup
    interleaved = run_nonstrict(
        program, trace, order, T1_LINK, CPI, method="interleaved"
    )
    parallel = run_nonstrict(
        program, trace, order, T1_LINK, CPI, method="parallel"
    )
    assert interleaved.total_cycles <= parallel.total_cycles + 1


def test_data_partitioning_helps_invocation_latency(setup):
    program, trace, order = setup
    plain = run_nonstrict(program, trace, order, T1_LINK, CPI)
    partitioned = run_nonstrict(
        program, trace, order, T1_LINK, CPI, data_partitioning=True
    )
    assert (
        partitioned.invocation_latency < plain.invocation_latency
    )


def test_faster_link_scales_stalls_down(setup):
    program, trace, order = setup
    t1 = run_nonstrict(program, trace, order, T1_LINK, CPI)
    modem = run_nonstrict(program, trace, order, MODEM_LINK, CPI)
    assert modem.stall_cycles > t1.stall_cycles
    assert modem.total_cycles > t1.total_cycles
    # Execution cycles are link-independent.
    assert modem.execution_cycles == t1.execution_cycles


def test_total_at_least_needed_bytes_transfer_time(setup):
    """Execution can never outrun the wire."""
    program, trace, order = setup
    result = run_nonstrict(program, trace, order, T1_LINK, CPI)
    assert (
        result.total_cycles
        >= T1_LINK.transfer_cycles(result.bytes_delivered) - 1
    )


def test_unused_method_transfer_terminated():
    """A never-called method's bytes are cut off at completion."""
    from repro.bytecode import assemble
    from repro.classfile import ClassFileBuilder
    from repro.program import Program

    builder = ClassFileBuilder("U")
    builder.add_method("main", "()V", assemble("nop\nreturn"))
    builder.add_method(
        "unused",
        "()V",
        assemble("\n".join(["nop"] * 500 + ["return"])),
        local_data=b"\x00" * 400,
    )
    program = Program(classes=[builder.build()])
    _, recorder = record_run(program)
    order = estimate_first_use(program)
    result = run_nonstrict(
        program, recorder.trace, order, T1_LINK, CPI
    )
    assert result.bytes_terminated > 800
    base = strict_baseline(program, recorder.trace, T1_LINK, CPI)
    # Skipping the unused method makes non-strict clearly faster.
    assert result.normalized_to(base.total_cycles) < 60


def test_strict_baseline_matches_table3_accounting(setup):
    program, trace, order = setup
    base = strict_baseline(program, trace, T1_LINK, CPI)
    assert base.total_cycles == pytest.approx(
        base.execution_cycles + base.transfer_cycles
    )
    assert 0 < base.percent_transfer < 100
    assert base.execution_cycles == pytest.approx(
        trace.total_instructions * CPI
    )


def test_simulated_strict_bounded_by_arithmetic_baseline(setup):
    program, trace, order = setup
    base = strict_baseline(program, trace, T1_LINK, CPI)
    simulated = run_strict(program, trace, T1_LINK, CPI)
    # Sequential strict with overlap can only beat the no-overlap sum.
    assert simulated.total_cycles <= base.total_cycles + 1


def test_normalized_to_requires_positive_baseline(setup):
    program, trace, order = setup
    result = run_nonstrict(program, trace, order, T1_LINK, CPI)
    with pytest.raises(SimulationError):
        result.normalized_to(0)


def test_invalid_cpi_rejected(setup):
    program, trace, order = setup
    controller = InterleavedController(program, order)
    with pytest.raises(SimulationError):
        Simulator(program, trace, controller, T1_LINK, cpi=0)


def test_unknown_method_name_rejected(setup):
    program, trace, order = setup
    with pytest.raises(SimulationError):
        run_nonstrict(
            program, trace, order, T1_LINK, CPI, method="teleport"
        )


def test_profile_order_simulation(setup):
    program, trace, _ = setup
    order = profile_first_use(program)
    result = run_nonstrict(program, trace, order, T1_LINK, CPI)
    assert result.total_cycles > 0
    assert result.controller_name == "interleaved"


def test_empty_trace_runs():
    program = figure1_program()
    order = estimate_first_use(program)
    result = run_nonstrict(
        program, ExecutionTrace(), order, T1_LINK, CPI
    )
    assert result.total_cycles == 0
    assert result.invocation_latency == 0


def test_fast_link_and_slow_cpu_hides_all_transfer():
    """With a near-infinite link, non-strict total ≈ pure execution."""
    program = figure1_program()
    _, recorder = record_run(program)
    order = estimate_first_use(program)
    instant = NetworkLink("instant", 1e-6)
    result = run_nonstrict(
        program, recorder.trace, order, instant, CPI
    )
    assert result.stall_cycles < 1.0
    assert result.total_cycles == pytest.approx(
        result.execution_cycles, rel=1e-6
    )
