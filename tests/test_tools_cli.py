"""The repro-inspect command-line toolbox."""

import pytest

from repro import record_run, save_program, save_trace
from repro.tools import main
from repro.workloads import figure1_program


@pytest.fixture()
def stored(tmp_path):
    program = figure1_program()
    directory = save_program(program, tmp_path / "prog")
    _, recorder = record_run(program)
    trace = save_trace(recorder.trace, tmp_path / "trace.json")
    return str(directory), str(trace)


def test_layout(stored, capsys):
    directory, _ = stored
    assert main(["layout", directory]) == 0
    out = capsys.readouterr().out
    assert "A:" in out and "global" in out


def test_layout_verbose_lists_methods(stored, capsys):
    directory, _ = stored
    assert main(["layout", directory, "--verbose"]) == 0
    assert "Bar_A" in capsys.readouterr().out


def test_disasm_lists_and_dumps(stored, capsys):
    directory, _ = stored
    assert main(["disasm", directory, "B"]) == 0
    listing = capsys.readouterr().out
    assert "Foo_B(I)I" in listing
    assert main(["disasm", directory, "B", "Foo_B"]) == 0
    body = capsys.readouterr().out
    assert "ireturn" in body


def test_order(stored, capsys):
    directory, _ = stored
    assert main(["order", directory]) == 0
    out = capsys.readouterr().out
    assert out.splitlines()[0].endswith("(bytes before: 0)")
    assert "A.main" in out


def test_partition(stored, capsys):
    directory, _ = stored
    assert main(["partition", directory]) == 0
    assert "%" in capsys.readouterr().out


def test_verify_ok(stored, capsys):
    directory, _ = stored
    assert main(["verify", directory]) == 0
    out = capsys.readouterr().out
    assert out.count("OK") == 2


def test_verify_reports_failures(tmp_path, capsys):
    """A corrupted method body must be caught and exit non-zero."""
    from repro.bytecode import Instruction, Opcode
    from repro.classfile import ClassFileBuilder
    from repro.program import Program
    from repro import save_program

    builder = ClassFileBuilder("Broken")
    builder.add_method(
        "main", "()V", [Instruction(Opcode.POP), Instruction(Opcode.RETURN)]
    )
    save_program(
        Program(classes=[builder.build()]), tmp_path / "broken"
    )
    assert main(["verify", str(tmp_path / "broken")]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_simulate(stored, capsys):
    directory, trace = stored
    assert (
        main(
            [
                "simulate",
                directory,
                trace,
                "--link",
                "modem",
                "--cpi",
                "50",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "normalized:" in out
    assert "strict total:" in out


def test_simulate_striped_links(stored, capsys):
    directory, trace = stored
    assert (
        main(
            [
                "simulate",
                directory,
                trace,
                "--links",
                "modem,57600",
                "--sched-policy",
                "deadline",
                "--cpi",
                "50",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "striped links:" in out
    assert "modem, link1@57600bps" in out
    assert "policy deadline" in out


def test_simulate_engine_ab_identical(stored, capsys):
    """--engine batched prints exactly what --engine reference does."""
    directory, trace = stored
    outputs = {}
    for engine in ("reference", "batched"):
        assert (
            main(
                [
                    "simulate",
                    directory,
                    trace,
                    "--link",
                    "modem",
                    "--cpi",
                    "50",
                    "--method",
                    "parallel",
                    "--engine",
                    engine,
                ]
            )
            == 0
        )
        outputs[engine] = capsys.readouterr().out
    assert outputs["reference"] == outputs["batched"]


def test_simulate_rejects_bad_links_spec(stored, capsys):
    directory, trace = stored
    assert (
        main(["simulate", directory, trace, "--links", "t1,carrier-pigeon"])
        == 2
    )
    assert "bad --links token" in capsys.readouterr().err


def test_errors_exit_2(tmp_path, capsys):
    assert main(["layout", str(tmp_path / "missing")]) == 2
    assert "error:" in capsys.readouterr().err


def _dead_method_program(tmp_path):
    from repro.bytecode import assemble
    from repro.classfile import ClassFileBuilder
    from repro.program import MethodId, Program

    builder = ClassFileBuilder("W")
    builder.add_method("main", "()V", assemble("return"))
    builder.add_method("unused", "()V", assemble("return"))
    program = Program(
        classes=[builder.build()],
        entry_point=MethodId("W", "main"),
    )
    return str(save_program(program, tmp_path / "warn"))


def test_lint_fail_on_thresholds(tmp_path, capsys):
    directory = _dead_method_program(tmp_path)
    # Warnings (dead-method) but no errors: default threshold passes.
    assert main(["lint", directory]) == 0
    out = capsys.readouterr().out
    assert "dead-method" in out
    # Tightening the threshold turns the same findings into failures.
    assert main(["lint", directory, "--fail-on", "warning"]) == 1
    capsys.readouterr()
    assert main(["lint", directory, "--fail-on", "note"]) == 1
    capsys.readouterr()


def test_lint_fail_on_note_passes_on_findingless_run(stored, capsys):
    directory, trace = stored
    code = main(
        ["lint", directory, "--trace", trace, "--fail-on", "note"]
    )
    out = capsys.readouterr().out
    if "findings: none" in out:
        assert code == 0
    else:
        assert code == 1


def test_interproc_summary(stored, capsys):
    directory, _ = stored
    assert main(["interproc", directory]) == 0
    out = capsys.readouterr().out
    assert "reachable:         5/5 methods (0 dead)" in out
    assert "monomorphic" in out


def test_interproc_json(stored, tmp_path, capsys):
    import json

    directory, _ = stored
    target = tmp_path / "interproc.json"
    assert main(["interproc", directory, "--json", str(target)]) == 0
    payload = json.loads(target.read_text())
    assert payload["dead"] == 0
    assert payload["reachable"] == 5
    assert payload["monomorphic_sites"] == payload["feasible_sites"]
    assert payload["prune_bytes_saved"] == 0
    assert payload["top_edges"]
    capsys.readouterr()


def test_interproc_requires_exactly_one_source(stored, capsys):
    directory, _ = stored
    assert main(["interproc"]) == 2
    assert main(["interproc", directory, "--workload", "Hanoi"]) == 2
    capsys.readouterr()
