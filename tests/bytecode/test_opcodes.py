"""Consistency checks on the opcode table."""

from repro.bytecode import (
    COMPARE_BRANCHES,
    CONDITIONAL_BRANCHES,
    MNEMONICS,
    OPCODE_TABLE,
    Opcode,
    OperandKind,
    operand_size,
)


def test_every_opcode_has_metadata():
    for opcode in Opcode:
        assert opcode in OPCODE_TABLE


def test_mnemonics_are_unique_and_lowercase():
    assert len(MNEMONICS) == len(OPCODE_TABLE)
    for mnemonic in MNEMONICS:
        assert mnemonic == mnemonic.lower()


def test_opcode_byte_values_are_unique():
    values = [int(opcode) for opcode in Opcode]
    assert len(values) == len(set(values))


def test_size_is_one_plus_operand_widths():
    for info in OPCODE_TABLE.values():
        expected = 1 + sum(operand_size(kind) for kind in info.operands)
        assert info.size == expected


def test_branches_take_one_s2_operand():
    for opcode, info in OPCODE_TABLE.items():
        if info.is_branch:
            assert info.operands == (OperandKind.S2,)


def test_conditional_branch_sets():
    assert COMPARE_BRANCHES <= CONDITIONAL_BRANCHES
    assert Opcode.GOTO not in CONDITIONAL_BRANCHES
    assert Opcode.IF_ICMPEQ in COMPARE_BRANCHES
    assert Opcode.IFEQ in CONDITIONAL_BRANCHES
    assert Opcode.IFEQ not in COMPARE_BRANCHES


def test_returns_and_calls_flagged():
    assert OPCODE_TABLE[Opcode.RETURN].is_return
    assert OPCODE_TABLE[Opcode.IRETURN].is_return
    assert OPCODE_TABLE[Opcode.CALL].is_call
    assert not OPCODE_TABLE[Opcode.GOTO].is_call


def test_operand_sizes():
    assert operand_size(OperandKind.U1) == 1
    assert operand_size(OperandKind.U2) == 2
    assert operand_size(OperandKind.S2) == 2
    assert operand_size(OperandKind.I4) == 4
