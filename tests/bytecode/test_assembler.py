"""Textual assembler and CodeBuilder behaviour."""

import pytest

from repro.bytecode import (
    CodeBuilder,
    Instruction,
    Opcode,
    assemble,
    disassemble,
    encode,
)
from repro.errors import AssemblyError


def test_assemble_simple_method():
    instructions = assemble(
        """
        iconst 5
        store 0
        return
        """
    )
    assert instructions == [
        Instruction(Opcode.ICONST, (5,)),
        Instruction(Opcode.STORE, (0,)),
        Instruction(Opcode.RETURN),
    ]


def test_assemble_backward_branch_label():
    instructions = assemble(
        """
        loop:
            load 0
            ifeq done
            load 0
            iconst 1
            sub
            store 0
            goto loop
        done:
            return
        """
    )
    goto = instructions[-2]
    assert goto.opcode == Opcode.GOTO
    # goto starts at 2+3+2+5+1+2 = 15; loop label is offset 0.
    assert goto.operand == -15
    ifeq = instructions[1]
    # ifeq starts at offset 2; done label at 15 + 3 = 18.
    assert ifeq.operand == 16


def test_assemble_forward_branch_label():
    instructions = assemble(
        """
        ifne skip
        nop
        skip: return
        """
    )
    assert instructions[0].operand == 4  # ifne(3) + nop(1)


def test_comments_and_blank_lines_ignored():
    instructions = assemble("; header\n\n  nop ; trailing\n")
    assert instructions == [Instruction(Opcode.NOP)]


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblyError):
        assemble("frobnicate 1")


def test_duplicate_label_rejected():
    with pytest.raises(AssemblyError):
        assemble("a:\nnop\na:\nnop")


def test_undefined_label_rejected():
    with pytest.raises(AssemblyError):
        assemble("goto nowhere")


def test_wrong_operand_count_rejected():
    with pytest.raises(AssemblyError):
        assemble("iconst")
    with pytest.raises(AssemblyError):
        assemble("add 3")


def test_builder_matches_text_assembler():
    builder = CodeBuilder()
    loop = builder.new_label("loop")
    done = builder.new_label("done")
    builder.bind(loop)
    builder.emit(Opcode.LOAD, 0)
    builder.branch(Opcode.IFEQ, done)
    builder.emit(Opcode.LOAD, 0)
    builder.emit(Opcode.ICONST, 1)
    builder.emit(Opcode.SUB)
    builder.emit(Opcode.STORE, 0)
    builder.branch(Opcode.GOTO, loop)
    builder.bind(done)
    builder.emit(Opcode.RETURN)
    text_version = assemble(
        """
        loop:
            load 0
            ifeq done
            load 0
            iconst 1
            sub
            store 0
            goto loop
        done:
            return
        """
    )
    assert builder.build() == text_version


def test_builder_rejects_unbound_label():
    builder = CodeBuilder()
    dangling = builder.new_label("dangling")
    builder.branch(Opcode.GOTO, dangling)
    with pytest.raises(AssemblyError):
        builder.build()


def test_builder_rejects_double_bind():
    builder = CodeBuilder()
    label = builder.new_label()
    builder.bind(label)
    with pytest.raises(AssemblyError):
        builder.bind(label)


def test_builder_rejects_non_branch_label_use():
    builder = CodeBuilder()
    label = builder.new_label()
    with pytest.raises(AssemblyError):
        builder.branch(Opcode.ADD, label)


def test_disassemble_assemble_roundtrip():
    source = """
    start:
        iconst 10
        store 0
    loop:
        load 0
        ifle end
        load 0
        iconst 1
        sub
        store 0
        goto loop
    end:
        return
    """
    original = assemble(source)
    recovered = assemble(disassemble(original))
    assert recovered == original
    assert encode(recovered) == encode(original)
