"""Binary encode/decode round-trips, including property-based coverage."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bytecode import (
    OPCODE_TABLE,
    Instruction,
    Opcode,
    OperandKind,
    code_size,
    decode,
    decode_one,
    encode,
)
from repro.errors import BytecodeError

_OPERAND_STRATEGIES = {
    OperandKind.U1: st.integers(0, 0xFF),
    OperandKind.U2: st.integers(0, 0xFFFF),
    OperandKind.S2: st.integers(-0x8000, 0x7FFF),
    OperandKind.I4: st.integers(-(2**31), 2**31 - 1),
}


@st.composite
def instructions(draw):
    opcode = draw(st.sampled_from(sorted(Opcode)))
    info = OPCODE_TABLE[opcode]
    operands = tuple(
        draw(_OPERAND_STRATEGIES[kind]) for kind in info.operands
    )
    return Instruction(opcode, operands)


@given(st.lists(instructions(), max_size=50))
def test_roundtrip(instruction_list):
    blob = encode(instruction_list)
    assert len(blob) == code_size(instruction_list)
    assert decode(blob) == instruction_list


@given(instructions())
def test_decode_one_matches_size(instruction):
    blob = encode([instruction])
    decoded = decode_one(blob, 0)
    assert decoded == instruction
    assert decoded.size == len(blob)


def test_decode_rejects_unknown_opcode():
    with pytest.raises(BytecodeError):
        decode(bytes([0xFF]))


def test_decode_rejects_truncated_operand():
    blob = encode([Instruction(Opcode.ICONST, (7,))])
    with pytest.raises(BytecodeError):
        decode(blob[:-1])


def test_decode_one_rejects_offset_past_end():
    with pytest.raises(BytecodeError):
        decode_one(b"", 0)


def test_known_encoding_bytes():
    # iconst 1 -> opcode 0x01 then big-endian int32.
    assert encode([Instruction(Opcode.ICONST, (1,))]) == bytes(
        [0x01, 0, 0, 0, 1]
    )
    # goto -2 -> opcode 0x3c then big-endian int16 two's complement.
    assert encode([Instruction(Opcode.GOTO, (-2,))]) == bytes(
        [0x3C, 0xFF, 0xFE]
    )
