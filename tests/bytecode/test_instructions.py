"""Instruction construction, validation, and size accounting."""

import pytest

from repro.bytecode import Instruction, Opcode, code_size, offsets_of
from repro.errors import BytecodeError


def test_simple_instruction():
    instruction = Instruction(Opcode.ADD)
    assert instruction.size == 1
    assert instruction.mnemonic == "add"
    assert str(instruction) == "add"


def test_operand_instruction():
    instruction = Instruction(Opcode.ICONST, (42,))
    assert instruction.size == 5
    assert instruction.operand == 42
    assert str(instruction) == "iconst 42"


def test_wrong_operand_count_rejected():
    with pytest.raises(BytecodeError):
        Instruction(Opcode.ADD, (1,))
    with pytest.raises(BytecodeError):
        Instruction(Opcode.ICONST)


def test_operand_range_checked():
    with pytest.raises(BytecodeError):
        Instruction(Opcode.LOAD, (256,))
    with pytest.raises(BytecodeError):
        Instruction(Opcode.LDC, (-1,))
    with pytest.raises(BytecodeError):
        Instruction(Opcode.GOTO, (40000,))
    # Boundary values are accepted.
    Instruction(Opcode.LOAD, (255,))
    Instruction(Opcode.GOTO, (-0x8000,))
    Instruction(Opcode.ICONST, (2**31 - 1,))


def test_operand_property_requires_single_operand():
    with pytest.raises(BytecodeError):
        _ = Instruction(Opcode.ADD).operand


def test_branch_target_is_relative_to_instruction_start():
    branch = Instruction(Opcode.GOTO, (-6,))
    assert branch.branch_target(10) == 4
    with pytest.raises(BytecodeError):
        Instruction(Opcode.ADD).branch_target(0)


def test_code_size_and_offsets():
    instructions = [
        Instruction(Opcode.ICONST, (1,)),  # 5 bytes
        Instruction(Opcode.STORE, (0,)),  # 2 bytes
        Instruction(Opcode.RETURN),  # 1 byte
    ]
    assert code_size(instructions) == 8
    assert offsets_of(instructions) == [0, 5, 7]


def test_instructions_are_hashable_and_equal_by_value():
    a = Instruction(Opcode.LOAD, (3,))
    b = Instruction(Opcode.LOAD, (3,))
    assert a == b
    assert hash(a) == hash(b)
    assert a != Instruction(Opcode.LOAD, (4,))


def test_instruction_size_helper():
    from repro.bytecode import instruction_size

    assert instruction_size(Opcode.NOP) == 1
    assert instruction_size(Opcode.ICONST) == 5
    assert instruction_size(Opcode.CALL) == 3
