"""TraceRecorder: typed helpers, ordering, and the disabled fast path."""

import pytest

from repro.observe import (
    EVENT_SCHEMA,
    STALL_END,
    TraceRecorder,
    UNIT_ARRIVED,
    validate_event,
)


def fully_populated_recorder():
    recorder = TraceRecorder(clock="cycles")
    recorder.unit_arrived(10.0, class_name="A", kind="method", size=64, method="main")
    recorder.method_first_invoke(12.0, method="A.main", latency=12.0)
    recorder.stall_begin(20.0, method="A.helper")
    recorder.stall_end(25.0, method="A.helper", duration=5.0)
    recorder.demand_fetch(30.0, method="B.run")
    recorder.frame_sent(31.0, kind="UNIT", size=128)
    recorder.schedule_decision(32.0, action="promote", target="B")
    recorder.fault_injected(33.0, fault="cut", detail=800, frame=3)
    recorder.reconnect(34.0, attempt=1, backoff=0.05)
    recorder.unit_retry(35.0, class_name="B", method="run", reason="crc")
    recorder.degraded_to_strict(36.0, reason="4 reconnects exhausted")
    recorder.analysis_finding(
        37.0, rule="proven-stall", severity="info", target="B.run"
    )
    recorder.cache_lookup(38.0, hit=True, policy="non_strict")
    recorder.connection_rejected(39.0, reason="busy", limit=64)
    recorder.unit_issued(40.0, class_name="B", link="0:t1", bytes=64)
    recorder.link_busy(40.0, link="0:t1", duration=3.0, label="B")
    recorder.stripe_rebalance(43.0, reason="link_outage", requeued=2)
    recorder.link_outage(44.0, link="1", reason="3 failures", requeued=2)
    recorder.link_restored(45.0, link="1", probes=2)
    recorder.hedge_fired(46.0, class_name="B", link="0", method="run")
    recorder.hedge_won(46.5, class_name="B", link="0", role="hedge")
    return recorder


def test_every_helper_emits_a_schema_valid_event():
    recorder = fully_populated_recorder()
    for event in recorder.events:
        validate_event(event)
    # Every taxonomy name is exercised by the helper set.
    assert {e.name for e in recorder.events} == set(EVENT_SCHEMA)


def test_disabled_recorder_appends_nothing():
    recorder = TraceRecorder(enabled=False)
    recorder.unit_arrived(1.0, class_name="A", kind="method", size=1)
    recorder.method_first_invoke(2.0, method="A.main", latency=2.0)
    recorder.stall_begin(3.0, method="A.main")
    recorder.stall_end(4.0, method="A.main", duration=1.0)
    recorder.demand_fetch(5.0, method="A.main")
    recorder.frame_sent(6.0, kind="UNIT", size=1)
    recorder.schedule_decision(7.0, action="promote", target="A")
    recorder.emit("unit_arrived", 8.0, class_name="A", kind="method", size=1)
    assert len(recorder) == 0
    assert recorder.events == []


def test_recorder_can_be_re_enabled_mid_run():
    recorder = TraceRecorder(enabled=False)
    recorder.frame_sent(1.0, kind="UNIT", size=1)
    recorder.enabled = True
    recorder.frame_sent(2.0, kind="UNIT", size=2)
    assert len(recorder) == 1
    assert recorder.events[0].ts == 2.0


def test_stall_end_emits_instant_and_span():
    recorder = TraceRecorder()
    recorder.stall_end(25.0, method="A.helper", duration=5.0)
    instants = [e for e in recorder.named(STALL_END) if e.phase == "i"]
    spans = [e for e in recorder.named(STALL_END) if e.phase == "X"]
    assert len(instants) == 1 and instants[0].ts == 25.0
    assert len(spans) == 1
    assert spans[0].ts == 20.0
    assert spans[0].dur == 5.0
    assert spans[0].end == 25.0


def test_named_and_sorted_events():
    recorder = TraceRecorder()
    recorder.frame_sent(5.0, kind="UNIT", size=1)
    recorder.unit_arrived(2.0, class_name="A", kind="method", size=1)
    assert [e.name for e in recorder.sorted_events()] == [
        UNIT_ARRIVED,
        "frame_sent",
    ]
    assert len(recorder.named(UNIT_ARRIVED)) == 1


def test_raw_emit_rejects_unknown_names():
    recorder = TraceRecorder()
    with pytest.raises(ValueError):
        recorder.emit("not_a_real_event", 1.0)


def test_extra_args_are_allowed_and_kept():
    recorder = TraceRecorder()
    recorder.unit_arrived(
        1.0, class_name="A", kind="method", size=9, method="main"
    )
    (event,) = recorder.events
    validate_event(event)
    assert event.args["method"] == "main"
