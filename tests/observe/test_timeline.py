"""ASCII timeline renderer."""

import pytest

from repro.observe import TraceRecorder, render_timeline


def test_empty_recorder_renders_placeholder():
    assert render_timeline(TraceRecorder()) == "(no events)"


def test_narrow_width_is_rejected():
    with pytest.raises(ValueError):
        render_timeline(TraceRecorder(), width=5)


def test_rows_show_arrival_invoke_and_demand_markers():
    recorder = TraceRecorder()
    recorder.unit_arrived(0.0, class_name="A", kind="method", size=1, method="main")
    recorder.method_first_invoke(10.0, method="A.main", latency=10.0)
    recorder.unit_arrived(50.0, class_name="B", kind="method", size=1, method="run")
    recorder.demand_fetch(40.0, method="B.run")
    recorder.method_first_invoke(
        50.0, method="B.run", latency=50.0, demand_fetched=True
    )
    recorder.stall_end(50.0, method="B.run", duration=10.0)
    text = render_timeline(recorder, width=40)
    lines = text.splitlines()
    a_row = next(line for line in lines if line.startswith("A.main"))
    b_row = next(line for line in lines if line.startswith("B.run"))
    assert "U" in a_row and "X" in a_row
    # Demand-fetched first invoke renders as '!' instead of 'X'.
    assert "!" in b_row
    stalls = next(line for line in lines if line.startswith("stalls"))
    assert "s" in stalls
    assert "U unit arrived" in text  # legend
