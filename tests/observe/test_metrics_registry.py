"""MetricsRegistry: labeled series, aggregation, and snapshots."""

import pytest

from repro.observe import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_is_monotonic():
    counter = Counter()
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    gauge = Gauge()
    gauge.set(10)
    gauge.inc(5)
    gauge.dec(2)
    assert gauge.value == 13.0


def test_histogram_buckets_and_summary_stats():
    histogram = Histogram(buckets=(1.0, 10.0))
    for value in (0.5, 2.0, 5.0, 100.0):
        histogram.observe(value)
    assert histogram.count == 4
    assert histogram.total == 107.5
    assert histogram.min == 0.5
    assert histogram.max == 100.0
    assert histogram.mean == pytest.approx(26.875)
    # <=1.0, <=10.0, +Inf overflow
    assert histogram.bucket_counts == [1, 2, 1]


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram(buckets=(5.0, 1.0))
    with pytest.raises(ValueError):
        Histogram(buckets=())


def test_registry_series_are_keyed_by_name_and_labels():
    registry = MetricsRegistry()
    a = registry.counter("requests", {"peer": "a"})
    b = registry.counter("requests", {"peer": "b"})
    assert a is not b
    # Label insertion order does not create a new series.
    assert registry.counter("x", {"p": "1", "q": "2"}) is registry.counter(
        "x", {"q": "2", "p": "1"}
    )
    a.inc(3)
    b.inc(4)
    assert registry.counter_total("requests") == 7.0
    assert registry.counter_total("missing") == 0.0


def test_snapshot_is_plain_sorted_data():
    registry = MetricsRegistry()
    registry.counter("frames", {"conn": "1"}).inc(2)
    registry.gauge("inflight").set(1)
    registry.histogram("stall_seconds", buckets=(0.1, 1.0)).observe(0.5)
    snap = registry.snapshot()
    assert snap["counters"] == [
        {"name": "frames", "labels": {"conn": "1"}, "value": 2.0}
    ]
    assert snap["gauges"][0]["value"] == 1.0
    (hist,) = snap["histograms"]
    assert hist["count"] == 1
    assert hist["buckets"] == {"0.1": 0, "1.0": 1, "+Inf": 0}


def test_histogram_quantile_interpolates_within_buckets():
    histogram = Histogram(buckets=(1.0, 2.0, 4.0))
    for value in (0.5, 1.5, 1.5, 3.0):
        histogram.observe(value)
    # p50 lands in the (1.0, 2.0] bucket.
    assert 1.0 <= histogram.quantile(0.5) <= 2.0
    # The top quantile is clamped to the observed max.
    assert histogram.quantile(1.0) == 3.0
    # The bottom of the estimate never drops below the observed min.
    assert histogram.quantile(0.01) >= 0.5


def test_histogram_quantile_edge_cases():
    histogram = Histogram(buckets=(1.0,))
    assert histogram.quantile(0.5) == 0.0  # empty
    histogram.observe(5.0)  # overflow bucket only
    assert histogram.quantile(0.5) == 5.0
    with pytest.raises(ValueError):
        histogram.quantile(0.0)
    with pytest.raises(ValueError):
        histogram.quantile(1.5)
