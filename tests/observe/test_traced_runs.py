"""Cross-subsystem acceptance: one taxonomy, two clocks.

A cycle-exact simulated run and a real-socket netserve run of the same
workload must emit event streams that (a) validate against the shared
:data:`~repro.observe.EVENT_SCHEMA` and (b) agree with the run's own
:class:`~repro.core.metrics.InvocationLatencyReport` — the
``method_first_invoke`` timestamps ARE the report's latencies.
"""

import asyncio

import pytest

from repro.core import run_nonstrict
from repro.netserve import ClassFileServer, fetch_and_run
from repro.observe import (
    EVENT_SCHEMA,
    METHOD_FIRST_INVOKE,
    TraceRecorder,
    UNIT_ARRIVED,
    validate_event,
)
from repro.reorder import estimate_first_use
from repro.transfer import T1_LINK
from repro.vm import record_run
from repro.workloads import figure1_program

CPI = 100.0


@pytest.fixture()
def workload():
    program = figure1_program()
    _, vm_recorder = record_run(program)
    return program, vm_recorder.trace


def simulated_traced_run(workload):
    program, trace = workload
    recorder = TraceRecorder(clock="cycles")
    order = estimate_first_use(program)
    result = run_nonstrict(
        program, trace, order, T1_LINK, CPI, recorder=recorder
    )
    return result, recorder


def netserve_traced_run(workload):
    program, trace = workload

    async def scenario():
        server = ClassFileServer(program, once=True)
        await server.start()
        host, port = server.address
        recorder = TraceRecorder(clock="seconds")
        try:
            result, _ = await fetch_and_run(
                host, port, trace, CPI, recorder=recorder
            )
        finally:
            await server.aclose()
        return result, recorder

    return asyncio.run(scenario())


def assert_stream_conforms(recorder):
    assert recorder.events, "traced run emitted nothing"
    for event in recorder.events:
        validate_event(event)
    names = {event.name for event in recorder.events}
    assert UNIT_ARRIVED in names
    assert METHOD_FIRST_INVOKE in names
    assert names <= set(EVENT_SCHEMA)


def first_invokes(recorder):
    return {
        event.args["method"]: event
        for event in recorder.named(METHOD_FIRST_INVOKE)
    }


def test_simulated_run_emits_conformant_stream(workload):
    _, recorder = simulated_traced_run(workload)
    assert_stream_conforms(recorder)


def test_netserve_run_emits_conformant_stream(workload):
    _, recorder = netserve_traced_run(workload)
    assert_stream_conforms(recorder)


def test_simulated_first_invokes_match_latency_report(workload):
    result, recorder = simulated_traced_run(workload)
    invokes = first_invokes(recorder)
    assert len(invokes) == len(result.latencies)
    for entry in result.latencies.entries:
        event = invokes[str(entry.method)]
        assert event.ts == entry.latency
        assert event.args["latency"] == entry.latency
        assert event.args["demand_fetched"] == entry.demand_fetched


def test_netserve_first_invokes_match_latency_report(workload):
    result, recorder = netserve_traced_run(workload)
    invokes = first_invokes(recorder)
    assert len(invokes) == len(result.latencies)
    for entry in result.latencies.entries:
        event = invokes[str(entry.method)]
        assert event.ts == entry.latency
        assert event.args["latency"] == entry.latency


def test_both_modes_share_one_event_schema(workload):
    """The acceptance criterion: simulated and measured streams are
    directly comparable — same names, same per-name arg shape, only the
    clock differs."""
    _, simulated = simulated_traced_run(workload)
    _, measured = netserve_traced_run(workload)
    assert simulated.clock == "cycles"
    assert measured.clock == "seconds"
    shared = {e.name for e in simulated.events} & {
        e.name for e in measured.events
    }
    assert UNIT_ARRIVED in shared and METHOD_FIRST_INVOKE in shared
    for name in shared:
        required = set(EVENT_SCHEMA[name])
        for stream in (simulated, measured):
            for event in stream.named(name):
                assert required <= set(event.args)
