"""Exporters: JSONL round-trip and Chrome trace-event structure."""

import json

from repro.observe import (
    TraceRecorder,
    chrome_trace_json,
    events_from_jsonl,
    to_chrome_trace,
    to_jsonl,
)


def sample_recorder(clock="cycles"):
    recorder = TraceRecorder(clock=clock)
    recorder.unit_arrived(10.0, class_name="A", kind="method", size=64, method="main")
    recorder.method_first_invoke(12.0, method="A.main", latency=12.0)
    recorder.stall_end(25.0, method="A.helper", duration=5.0)
    recorder.schedule_decision(30.0, action="promote", target="B")
    return recorder


def test_jsonl_round_trip_is_identity():
    recorder = sample_recorder()
    text = to_jsonl(recorder.events)
    restored = events_from_jsonl(text)
    assert restored == recorder.events
    # And stable: exporting the restored events reproduces the text.
    assert to_jsonl(restored) == text


def test_jsonl_of_nothing_is_empty():
    assert to_jsonl([]) == ""
    assert events_from_jsonl("") == []
    assert events_from_jsonl("\n\n") == []


def test_chrome_trace_structure():
    trace = to_chrome_trace(sample_recorder())
    assert trace["otherData"] == {"clock": "cycles"}
    events = trace["traceEvents"]
    metadata = [e for e in events if e["ph"] == "M"]
    # One process_name plus one thread_name per lane.
    assert {m["name"] for m in metadata} == {"process_name", "thread_name"}
    lanes = {
        m["args"]["name"] for m in metadata if m["name"] == "thread_name"
    }
    assert lanes == {"transfer", "execute", "schedule", "misc"}
    instants = [e for e in events if e["ph"] == "i"]
    assert all(e["s"] == "t" for e in instants)
    spans = [e for e in events if e["ph"] == "X"]
    assert len(spans) == 1 and spans[0]["dur"] == 5.0
    # Same-lane events share a tid; cross-lane events do not.
    by_name = {e["name"]: e for e in events if e["ph"] in ("i", "X")}
    assert by_name["unit_arrived"]["tid"] != by_name["schedule_decision"]["tid"]


def test_chrome_trace_scales_seconds_to_microseconds():
    cycles = to_chrome_trace(sample_recorder("cycles"))
    seconds = to_chrome_trace(sample_recorder("seconds"))

    def first_invoke_ts(trace):
        return next(
            e["ts"]
            for e in trace["traceEvents"]
            if e["name"] == "method_first_invoke"
        )

    assert first_invoke_ts(cycles) == 12.0
    assert first_invoke_ts(seconds) == 12.0 * 1e6


def test_chrome_trace_json_is_loadable():
    text = chrome_trace_json(sample_recorder(), indent=2)
    parsed = json.loads(text)
    assert parsed["displayTimeUnit"] == "ms"
    assert any(
        e["name"] == "method_first_invoke" for e in parsed["traceEvents"]
    )
