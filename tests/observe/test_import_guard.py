"""``import repro`` must stay light: no exporters, no renderers.

The observe package lazy-loads its submodules (PEP 562).  The netserve
stats layer legitimately pulls in ``repro.observe.metrics`` at import
time; everything else — exporters, the timeline renderer, the VM
instrument, the recorder — must not load until first use.
"""

import json
import subprocess
import sys


def test_import_repro_does_not_load_observe_machinery():
    code = (
        "import json, sys\n"
        "import repro\n"
        "print(json.dumps(sorted("
        "m for m in sys.modules if m.startswith('repro.observe'))))\n"
    )
    output = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
    ).stdout
    loaded = set(json.loads(output))
    forbidden = {
        "repro.observe.events",
        "repro.observe.export",
        "repro.observe.instrument",
        "repro.observe.recorder",
        "repro.observe.timeline",
    }
    assert not (loaded & forbidden), loaded
    # The netserve stats layer is allowed (and expected) to bring in
    # the metrics registry.
    assert "repro.observe.metrics" in loaded


def test_lazy_attribute_access_loads_on_demand():
    code = (
        "import sys\n"
        "import repro.observe as observe\n"
        "assert 'repro.observe.export' not in sys.modules\n"
        "observe.to_jsonl([])\n"
        "assert 'repro.observe.export' in sys.modules\n"
        "print('ok')\n"
    )
    output = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
    ).stdout
    assert output.strip() == "ok"
