"""The ``repro-inspect trace`` subcommand, driven like a shell user."""

import json

import pytest

from repro import figure1_program, record_run, save_program, save_trace
from repro.tools import main


@pytest.fixture()
def stored(tmp_path):
    program = figure1_program()
    directory = save_program(program, tmp_path / "prog")
    _, recorder = record_run(program)
    trace = save_trace(recorder.trace, tmp_path / "trace.json")
    return str(directory), str(trace)


def test_trace_simulated_writes_chrome_trace_and_timeline(
    stored, tmp_path, capsys
):
    directory, trace = stored
    out = tmp_path / "trace_out.json"
    jsonl = tmp_path / "events.jsonl"
    code = main(
        [
            "trace",
            directory,
            trace,
            "--out",
            str(out),
            "--jsonl",
            str(jsonl),
            "--timeline",
            "--width",
            "50",
        ]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "mode:" in printed
    assert "A.main" in printed
    assert "legend:" in printed  # the ASCII timeline rendered

    chrome = json.loads(out.read_text())
    assert chrome["otherData"]["clock"] == "cycles"
    names = {e["name"] for e in chrome["traceEvents"]}
    assert "method_first_invoke" in names
    assert "unit_arrived" in names

    lines = [
        json.loads(line)
        for line in jsonl.read_text().splitlines()
        if line.strip()
    ]
    assert any(r["name"] == "method_first_invoke" for r in lines)


def test_trace_strict_policy_runs(stored, capsys):
    directory, trace = stored
    code = main(["trace", directory, trace, "--policy", "strict"])
    assert code == 0
    assert "A.main" in capsys.readouterr().out


def test_trace_netserve_measures_wall_clock(stored, tmp_path, capsys):
    directory, trace = stored
    out = tmp_path / "wall.json"
    code = main(
        [
            "trace",
            directory,
            trace,
            "--netserve",
            "--bandwidth",
            "200000",
            "--out",
            str(out),
        ]
    )
    assert code == 0
    assert "netserve" in capsys.readouterr().out
    chrome = json.loads(out.read_text())
    assert chrome["otherData"]["clock"] == "seconds"
    assert any(
        e["name"] == "frame_sent" or e["name"] == "unit_arrived"
        for e in chrome["traceEvents"]
    )
