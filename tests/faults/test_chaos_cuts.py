"""The acceptance sweep: seeded cut points, convergence, determinism.

Every test moves real bytes over real sockets with a fault plan on the
server side, so assertions are on *convergence* (same bytes, same
method set as a fault-free run) and on *seeded determinism* (same plan
⇒ same fault and recovery event streams), never on wall-clock values.
"""

import asyncio

import pytest

from repro import figure1_program
from repro.faults import FaultPlan
from repro.netserve import (
    ClassFileServer,
    NonStrictFetcher,
    ResilientFetcher,
)
from repro.observe import TraceRecorder
from repro.program import MethodId


def run(coroutine):
    return asyncio.run(coroutine)


#: Args that must replay identically for a fixed seed (timestamps and
#: ephemeral peer ports are excluded by construction).
_STABLE_ARGS = {
    "fault_injected": ("fault", "detail", "frame"),
    "reconnect": ("attempt", "backoff"),
    "unit_retry": ("class_name", "method"),
    "degraded_to_strict": ("reason",),
}


def event_signature(recorder):
    """The deterministic shape of a recorder's fault/recovery stream."""
    signature = []
    for event in recorder.events:
        stable = _STABLE_ARGS.get(event.name)
        if stable is None:
            continue
        signature.append(
            (event.name, tuple(event.args.get(key) for key in stable))
        )
    return signature


async def clean_reference(program):
    """Fault-free per-class bytes, method set, and wire size."""
    server = ClassFileServer(program)
    host, port = await server.start()
    fetcher = NonStrictFetcher(host, port)
    manifest = await fetcher.connect()
    await fetcher.wait_until_complete()
    data = {name: fetcher.class_bytes(name) for name in fetcher.buffers}
    methods = {
        MethodId(class_name, method)
        for _, class_name, method, _ in manifest["sequence"]
        if method is not None
    }
    wire_bytes = fetcher.stats.bytes_received
    await fetcher.aclose()
    await server.aclose()
    return data, methods, wire_bytes


async def chaos_fetch(program, plan, **kwargs):
    """One resilient fetch against a faulty server."""
    server = ClassFileServer(program, fault_plan=plan)
    host, port = await server.start()
    fetcher = ResilientFetcher(
        host,
        port,
        backoff_base=0.005,
        backoff_jitter=0.0,
        **kwargs,
    )
    await fetcher.connect()
    await fetcher.wait_until_complete()
    data = {name: fetcher.class_bytes(name) for name in fetcher.buffers}
    await fetcher.aclose()
    await server.aclose()
    return data, fetcher


# -- the 25-point cut sweep --------------------------------------------


def test_cut_sweep_converges_to_the_clean_run():
    """25 distinct seeded cut offsets across the whole stream: every
    one converges to byte-identical classes and the full method set."""

    async def scenario():
        program = figure1_program()
        clean, methods, wire_bytes = await clean_reference(program)
        offsets = sorted(
            {max(1, (i * wire_bytes) // 26) for i in range(1, 26)}
        )
        assert len(offsets) == 25
        for offset in offsets:
            plan = FaultPlan(seed=offset, cut_after_bytes=(offset,))
            data, fetcher = await chaos_fetch(
                program, plan, seed=offset
            )
            assert data == clean, f"diverged at cut offset {offset}"
            for method_id in methods:
                assert fetcher.is_method_available(method_id)
            assert fetcher.stats.reconnects >= 1
            assert fetcher.stats.degraded == 0

    run(scenario())


def test_multiple_cuts_across_reconnects():
    """Each reconnect hits its own cut until the plan runs dry."""

    async def scenario():
        program = figure1_program()
        clean, _, wire_bytes = await clean_reference(program)
        cuts = (wire_bytes // 4, wire_bytes // 3, wire_bytes // 2)
        plan = FaultPlan(seed=5, cut_after_bytes=cuts)
        data, fetcher = await chaos_fetch(program, plan, seed=5)
        assert data == clean
        assert fetcher.stats.reconnects == len(cuts)

    run(scenario())


# -- graceful degradation ----------------------------------------------


def test_zero_reconnects_degrades_to_successful_strict_fetch():
    """With ``max_reconnects=0`` the first cut falls straight back to
    a one-shot strict transfer — which still completes the program."""

    async def scenario():
        program = figure1_program()
        _, methods, _ = await clean_reference(program)
        plan = FaultPlan(seed=11, cut_after_frames=(0,))
        recorder = TraceRecorder()
        server = ClassFileServer(program, fault_plan=plan)
        host, port = await server.start()
        fetcher = ResilientFetcher(
            host,
            port,
            max_reconnects=0,
            backoff_base=0.005,
            recorder=recorder,
        )
        await fetcher.connect()
        await fetcher.wait_until_complete()
        assert fetcher.stats.degraded == 1
        assert fetcher.stats.reconnects == 0
        for method_id in methods:
            assert fetcher.is_method_available(method_id)
        names = [event.name for event in recorder.events]
        assert "degraded_to_strict" in names
        await fetcher.aclose()
        await server.aclose()

    run(scenario())


# -- seeded determinism ------------------------------------------------


@pytest.mark.parametrize(
    "plan",
    [
        FaultPlan(seed=21, cut_after_bytes=(600,), corrupt_frames=(1,)),
        FaultPlan(seed=21, drop_frames=(1, 3), jitter_seconds=0.002),
        FaultPlan(seed=21, drop_probability=0.15),
    ],
    ids=["cut+corrupt", "drops+jitter", "lottery"],
)
def test_identical_seed_replays_identical_event_streams(plan):
    async def one_run():
        program = figure1_program()
        server_recorder = TraceRecorder()
        client_recorder = TraceRecorder()
        server = ClassFileServer(
            program, fault_plan=plan, recorder=server_recorder
        )
        host, port = await server.start()
        fetcher = ResilientFetcher(
            host,
            port,
            backoff_base=0.005,
            backoff_jitter=0.1,
            seed=plan.seed,
            recorder=client_recorder,
        )
        await fetcher.connect()
        await fetcher.wait_until_complete()
        data = {
            name: fetcher.class_bytes(name) for name in fetcher.buffers
        }
        await fetcher.aclose()
        await server.aclose()
        return (
            event_signature(server_recorder),
            event_signature(client_recorder),
            data,
        )

    first = run(one_run())
    second = run(one_run())
    assert first == second
    assert first[0], "plan injected no faults at all"
