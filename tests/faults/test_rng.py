"""Scoped RNG derivation: deterministic, independent, collision-safe."""

from repro.faults import derive_rng, derive_seed


def test_derive_seed_is_deterministic():
    assert derive_seed(7, "backoff", "link", 1) == derive_seed(
        7, "backoff", "link", 1
    )


def test_derive_seed_separates_scopes():
    seeds = {
        derive_seed(7, "backoff"),
        derive_seed(7, "backoff", "link", 0),
        derive_seed(7, "backoff", "link", 1),
        derive_seed(8, "backoff", "link", 1),
        derive_seed(7, "jitter", "link", 1),
    }
    assert len(seeds) == 5


def test_derive_seed_is_prefix_safe():
    """Length-prefixed folding: ("ab","c") must not equal ("a","bc")."""
    assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")
    assert derive_seed(0, "", "x") != derive_seed(0, "x", "")


def test_derive_rng_streams_are_independent_per_link():
    streams = [
        [
            derive_rng(3, "backoff", "", "link", link).random()
            for _ in range(8)
        ]
        for link in range(4)
    ]
    for index, stream in enumerate(streams):
        for other in streams[index + 1:]:
            assert stream != other


def test_derive_rng_replays_identically():
    first = derive_rng(11, "backoff", "scope", "link", 2)
    second = derive_rng(11, "backoff", "scope", "link", 2)
    assert [first.random() for _ in range(16)] == [
        second.random() for _ in range(16)
    ]
