"""Per-fault recovery paths, timeouts, and typed failure context."""

import asyncio

import pytest

from repro import figure1_program
from repro.errors import (
    ConnectionLostError,
    ResilienceExhaustedError,
    StreamDecodeError,
    TransferError,
)
from repro.faults import FaultPlan
from repro.netserve import (
    ClassFileServer,
    NonStrictFetcher,
    ResilientFetcher,
    encode_frame,
    hello_ack_frame,
    read_frame,
    unit_frame,
)
from repro.program import MethodId
from repro.transfer import TransferUnit, UnitKind


def run(coroutine):
    return asyncio.run(coroutine)


async def clean_bytes(program):
    server = ClassFileServer(program)
    host, port = await server.start()
    fetcher = NonStrictFetcher(host, port)
    await fetcher.connect()
    await fetcher.wait_until_complete()
    data = {name: fetcher.class_bytes(name) for name in fetcher.buffers}
    await fetcher.aclose()
    await server.aclose()
    return data


async def resilient_fetch(program, plan, **kwargs):
    server = ClassFileServer(program, fault_plan=plan)
    host, port = await server.start()
    fetcher = ResilientFetcher(
        host, port, backoff_base=0.005, backoff_jitter=0.0, **kwargs
    )
    await fetcher.connect()
    try:
        await fetcher.wait_until_complete()
        return {
            name: fetcher.class_bytes(name) for name in fetcher.buffers
        }, fetcher
    finally:
        await fetcher.aclose()
        await server.aclose()


# -- one fault type at a time ------------------------------------------


def test_corrupted_frame_is_retried_in_place():
    async def scenario():
        program = figure1_program()
        clean = await clean_bytes(program)
        plan = FaultPlan(seed=7, corrupt_frames=(1,))
        data, fetcher = await resilient_fetch(program, plan, seed=7)
        assert data == clean
        assert fetcher.stats.unit_retries >= 1

    run(scenario())


def test_dropped_frame_is_recovered_by_resume():
    async def scenario():
        program = figure1_program()
        clean = await clean_bytes(program)
        plan = FaultPlan(seed=7, drop_frames=(2,))
        data, fetcher = await resilient_fetch(program, plan, seed=7)
        assert data == clean
        assert fetcher.stats.reconnects >= 1

    run(scenario())


def test_duplicated_frames_are_suppressed_by_wire_key():
    async def scenario():
        program = figure1_program()
        clean = await clean_bytes(program)
        plan = FaultPlan(seed=7, duplicate_frames=(1, 2))
        data, fetcher = await resilient_fetch(program, plan, seed=7)
        assert data == clean
        assert fetcher.stats.duplicate_units == 2
        assert fetcher.stats.reconnects == 0

    run(scenario())


def test_stall_and_jitter_need_no_recovery():
    async def scenario():
        program = figure1_program()
        clean = await clean_bytes(program)
        plan = FaultPlan(
            seed=7,
            stall_before_frame=1,
            stall_seconds=0.05,
            jitter_seconds=0.005,
        )
        data, fetcher = await resilient_fetch(program, plan, seed=7)
        assert data == clean
        assert fetcher.stats.reconnects == 0
        assert fetcher.stats.unit_retries == 0

    run(scenario())


def test_demand_fetch_still_works_through_recovery():
    """A first-use miss mid-chaos resolves like on a clean link."""

    async def scenario():
        program = figure1_program()
        plan = FaultPlan(seed=3, cut_after_bytes=(400,))
        server = ClassFileServer(program, fault_plan=plan)
        host, port = await server.start()
        fetcher = ResilientFetcher(
            host, port, backoff_base=0.005, seed=3
        )
        manifest = await fetcher.connect()
        _, class_name, method, _ = next(
            entry
            for entry in reversed(manifest["sequence"])
            if entry[2] is not None
        )
        await fetcher.wait_for_method(MethodId(class_name, method))
        assert fetcher.is_method_available(MethodId(class_name, method))
        await fetcher.aclose()
        await server.aclose()

    run(scenario())


# -- exhaustion and deadlines ------------------------------------------


def test_cutting_every_connection_exhausts_resilience():
    """When even the strict fallback's connection is cut, the typed
    exhaustion error surfaces from every waiter."""

    async def scenario():
        program = figure1_program()
        plan = FaultPlan(seed=1, cut_after_frames=(0,) * 8)
        server = ClassFileServer(program, fault_plan=plan)
        host, port = await server.start()
        fetcher = ResilientFetcher(
            host, port, max_reconnects=2, backoff_base=0.005
        )
        await fetcher.connect()
        with pytest.raises(ResilienceExhaustedError):
            await fetcher.wait_until_complete()
        await fetcher.aclose()
        await server.aclose()

    run(scenario())


def test_deadline_bounds_the_whole_fetch():
    async def scenario():
        program = figure1_program()
        plan = FaultPlan(
            seed=1, stall_before_frame=1, stall_seconds=5.0
        )
        server = ClassFileServer(program, fault_plan=plan)
        host, port = await server.start()
        fetcher = ResilientFetcher(
            host, port, deadline=0.2, backoff_base=0.005
        )
        await fetcher.connect()
        with pytest.raises(TransferError, match="deadline"):
            await fetcher.wait_until_complete()
        await fetcher.aclose()
        await server.aclose()

    run(scenario())


def test_negative_max_reconnects_is_rejected():
    with pytest.raises(TransferError):
        ResilientFetcher("127.0.0.1", 1, max_reconnects=-1)


# -- connect timeout ----------------------------------------------------


def test_connect_timeout_against_a_silent_server():
    """A server that accepts but never answers the handshake."""

    async def scenario():
        async def silent(reader, writer):
            await asyncio.sleep(30)

        server = await asyncio.start_server(silent, "127.0.0.1", 0)
        host, port = server.sockets[0].getsockname()[:2]
        fetcher = NonStrictFetcher(host, port, connect_timeout=0.1)
        with pytest.raises(ConnectionLostError, match="timed out"):
            await fetcher.connect()
        server.close()
        await server.wait_closed()

    run(scenario())


def test_connect_refused_is_a_typed_error():
    async def scenario():
        server = await asyncio.start_server(
            lambda r, w: None, "127.0.0.1", 0
        )
        host, port = server.sockets[0].getsockname()[:2]
        server.close()
        await server.wait_closed()
        fetcher = NonStrictFetcher(host, port, connect_timeout=0.5)
        with pytest.raises(ConnectionLostError, match="cannot connect"):
            await fetcher.connect()

    run(scenario())


# -- mid-stream decode context -----------------------------------------


def test_stream_decode_error_names_unit_and_byte_offset():
    """A handcrafted server corrupts its second unit's payload: the
    plain fetcher's failure names the unit and the stream offset."""

    async def scenario():
        good_unit = TransferUnit(
            kind=UnitKind.GLOBAL_DATA, class_name="Cold", size=8
        )
        bad_unit = TransferUnit(
            kind=UnitKind.METHOD,
            class_name="Hot",
            size=8,
            method=MethodId("Hot", "run"),
        )
        good = encode_frame(unit_frame(good_unit, b"\x01" * 8))
        corrupted = bytearray(
            encode_frame(unit_frame(bad_unit, b"\x02" * 8))
        )
        corrupted[-1] ^= 0xFF  # break the CRC, keep the names readable

        async def handler(reader, writer):
            await read_frame(reader)  # the HELLO
            writer.write(
                encode_frame(
                    hello_ack_frame(
                        unit_count=2, total_bytes=16, entry=None
                    )
                )
            )
            writer.write(good)
            writer.write(bytes(corrupted))
            await writer.drain()

        server = await asyncio.start_server(handler, "127.0.0.1", 0)
        host, port = server.sockets[0].getsockname()[:2]
        fetcher = NonStrictFetcher(host, port)
        await fetcher.connect()
        with pytest.raises(StreamDecodeError) as excinfo:
            await fetcher.wait_until_complete()
        error = excinfo.value
        assert error.class_name == "Hot"
        assert error.method_name == "run"
        assert error.byte_offset == len(good)
        assert "Hot.run" in str(error)
        await fetcher.aclose()
        server.close()
        await server.wait_closed()

    run(scenario())
