"""Lossy-link model: expected-value math and validation."""

import pytest

from repro.errors import TransferError
from repro.transfer import (
    MODEM_LINK,
    T1_LINK,
    LossyLink,
    NetworkLink,
    lossy_link,
)


def test_zero_loss_returns_the_base_link_unchanged():
    assert lossy_link(T1_LINK, 0.0) is T1_LINK


def test_effective_rate_matches_expected_value_formula():
    p, penalty, mtu = 0.1, 1_000_000.0, 1500.0
    link = lossy_link(
        T1_LINK, p, retransmit_penalty_cycles=penalty, mtu_bytes=mtu
    )
    expected = T1_LINK.cycles_per_byte / (1 - p) + (
        p / (1 - p)
    ) * penalty / mtu
    assert link.cycles_per_byte == pytest.approx(expected)


def test_loss_without_penalty_is_pure_bandwidth_inflation():
    link = lossy_link(MODEM_LINK, 0.5)
    assert link.cycles_per_byte == pytest.approx(
        2 * MODEM_LINK.cycles_per_byte
    )


def test_loss_monotonically_slows_the_link():
    rates = [
        lossy_link(T1_LINK, p, retransmit_penalty_cycles=1e5).cycles_per_byte
        for p in (0.01, 0.05, 0.1, 0.25, 0.5)
    ]
    assert rates == sorted(rates)
    assert rates[0] > T1_LINK.cycles_per_byte


def test_lossy_link_is_a_network_link():
    link = lossy_link(T1_LINK, 0.2)
    assert isinstance(link, LossyLink)
    assert isinstance(link, NetworkLink)
    assert link.name == "T1+loss0.2"
    assert link.base_cycles_per_byte == T1_LINK.cycles_per_byte
    # The simulator-facing interface is untouched.
    assert link.transfer_cycles(100) == 100 * link.cycles_per_byte


@pytest.mark.parametrize(
    "kwargs",
    [
        {"loss_probability": 1.0},
        {"loss_probability": -0.1},
        {"loss_probability": 0.1, "retransmit_penalty_cycles": -1.0},
        {"loss_probability": 0.1, "mtu_bytes": 0.0},
    ],
)
def test_invalid_parameters_raise(kwargs):
    with pytest.raises(TransferError):
        lossy_link(T1_LINK, **kwargs)
