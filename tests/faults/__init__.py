"""Chaos suite: fault injection, recovery, and degradation."""
