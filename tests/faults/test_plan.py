"""FaultPlan: validation, serialization, determinism of directives."""

import pytest

from repro.errors import FaultPlanError, ReproError
from repro.faults import ConnectionFaults, FaultInjector, FaultPlan


# -- validation ---------------------------------------------------------


def test_default_plan_is_noop():
    assert FaultPlan().is_noop


@pytest.mark.parametrize(
    "kwargs",
    [
        {"cut_after_bytes": (100,)},
        {"cut_after_frames": (2,)},
        {"corrupt_frames": (1,)},
        {"drop_frames": (0,)},
        {"duplicate_frames": (3,)},
        {"drop_probability": 0.2},
        {"jitter_seconds": 0.01},
        {"stall_before_frame": 1, "stall_seconds": 0.5},
    ],
)
def test_any_fault_field_defeats_noop(kwargs):
    assert not FaultPlan(**kwargs).is_noop


@pytest.mark.parametrize(
    "kwargs",
    [
        {"cut_after_bytes": (-1,)},
        {"corrupt_frames": ("x",)},
        {"drop_probability": 1.0},
        {"drop_probability": -0.1},
        {"jitter_seconds": -1.0},
        {"stall_seconds": -0.5},
        {"stall_before_frame": -1, "stall_seconds": 1.0},
        {"stall_before_frame": 2},  # stall index without a duration
    ],
)
def test_invalid_plans_raise_typed_error(kwargs):
    with pytest.raises(FaultPlanError):
        FaultPlan(**kwargs)


def test_fault_plan_error_is_a_repro_error():
    assert issubclass(FaultPlanError, ReproError)


# -- serialization ------------------------------------------------------


def test_to_dict_from_dict_round_trips():
    plan = FaultPlan(
        seed=9,
        cut_after_bytes=(100, 200),
        corrupt_frames=(1,),
        drop_probability=0.25,
        jitter_seconds=0.01,
        stall_before_frame=3,
        stall_seconds=0.2,
    )
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_to_dict_is_json_ready():
    import json

    plan = FaultPlan(cut_after_frames=(4,), duplicate_frames=(1, 2))
    assert FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict()))) == plan


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(FaultPlanError, match="explode_frames"):
        FaultPlan.from_dict({"seed": 1, "explode_frames": [2]})


# -- directive determinism ---------------------------------------------


def _directives(plan, index, lengths):
    faults = ConnectionFaults(plan=plan, index=index)
    return [faults.next_directive(length) for length in lengths]


def test_same_plan_same_connection_replays_identically():
    plan = FaultPlan(
        seed=42,
        corrupt_frames=(1,),
        drop_probability=0.3,
        jitter_seconds=0.05,
    )
    lengths = [64, 128, 256, 32, 512]
    assert _directives(plan, 0, lengths) == _directives(plan, 0, lengths)


def test_connection_index_changes_the_random_stream():
    plan = FaultPlan(seed=42, drop_probability=0.5, jitter_seconds=0.05)
    lengths = [64] * 12
    first = _directives(plan, 0, lengths)
    second = _directives(plan, 1, lengths)
    assert first != second


def test_cut_entries_are_consumed_per_connection():
    plan = FaultPlan(seed=0, cut_after_bytes=(100,))
    injector = FaultInjector(plan)
    cut_conn = injector.connection()
    directive = cut_conn.next_directive(150)
    assert directive.cut_at == 100
    # The next accepted connection runs clean: resume can finish.
    clean_conn = injector.connection()
    assert clean_conn.next_directive(150).clean


def test_frame_cut_severs_at_frame_boundary():
    plan = FaultPlan(seed=0, cut_after_frames=(2,))
    faults = ConnectionFaults(plan=plan, index=0)
    assert faults.next_directive(64).cut_at is None
    assert faults.next_directive(64).cut_at is None
    cut = faults.next_directive(64)
    assert cut.cut_at == 0
    assert [fault.kind for fault in cut.faults] == ["cut"]


def test_corrupt_offset_lands_past_the_header():
    plan = FaultPlan(seed=3, corrupt_frames=(0,))
    faults = ConnectionFaults(plan=plan, index=0)
    directive = faults.next_directive(200)
    assert directive.corrupt_offset is not None
    assert directive.corrupt_offset >= 8  # never destroys the framing


def test_duplicate_sends_two_copies_once():
    plan = FaultPlan(seed=0, duplicate_frames=(0,))
    faults = ConnectionFaults(plan=plan, index=0)
    assert faults.next_directive(64).copies == 2
    assert faults.next_directive(64).copies == 1
