"""Static first-use estimation (§4.1), including its heuristics."""

import pytest

from repro.bytecode import CodeBuilder, Opcode, assemble
from repro.classfile import ClassFileBuilder
from repro.errors import ReorderError
from repro.program import MethodId, Program
from repro.reorder import estimate_first_use
from repro.workloads import figure1_program, mutual_recursion_program


def test_figure1_static_order():
    order = estimate_first_use(figure1_program())
    assert order.order == [
        MethodId("A", "main"),
        MethodId("B", "Bar_B"),
        MethodId("A", "Bar_A"),
        MethodId("A", "Foo_A"),
        MethodId("B", "Foo_B"),
    ]
    assert order.source == "static"


def test_bytes_before_accumulates_static_sizes():
    program = figure1_program()
    order = estimate_first_use(program)
    cumulative = 0
    for entry in order.entries:
        assert entry.bytes_before == cumulative
        cumulative += program.method(entry.method).size
        assert entry.estimated


def test_unreachable_methods_appended_in_file_order():
    builder = ClassFileBuilder("M")
    builder.add_method("main", "()V", assemble("return"))
    builder.add_method("dead_b", "()V", assemble("return"))
    builder.add_method("dead_a", "()V", assemble("return"))
    program = Program(classes=[builder.build()])
    order = estimate_first_use(program)
    assert order.order == [
        MethodId("M", "main"),
        MethodId("M", "dead_b"),
        MethodId("M", "dead_a"),
    ]


def test_loop_priority_heuristic_prefers_loop_path():
    """At a forward branch, the path with more static loops wins (§4.1),
    even when textual order says otherwise."""
    builder = ClassFileBuilder("H")
    plain_ref = builder.method_ref("H", "plain", "()V")
    loopy_ref = builder.method_ref("H", "loopy", "()V")
    main = CodeBuilder()
    else_branch = main.new_label("else")
    join = main.new_label("join")
    main.emit(Opcode.LOAD, 0)
    main.branch(Opcode.IFEQ, else_branch)
    # Fallthrough path: a plain call, no loops ahead.
    main.emit(Opcode.CALL, plain_ref)
    main.branch(Opcode.GOTO, join)
    # Taken path: contains a loop, then a call.
    main.bind(else_branch)
    main.emit(Opcode.ICONST, 3)
    main.emit(Opcode.STORE, 1)
    loop = main.new_label("loop")
    main.bind(loop)
    main.emit(Opcode.LOAD, 1)
    main.emit(Opcode.ICONST, 1)
    main.emit(Opcode.SUB)
    main.emit(Opcode.STORE, 1)
    main.emit(Opcode.CALL, loopy_ref)
    main.emit(Opcode.LOAD, 1)
    main.branch(Opcode.IFGT, loop)
    main.bind(join)
    main.emit(Opcode.RETURN)

    builder.add_method("main", "()V", main.build())
    builder.add_method("plain", "()V", assemble("return"))
    builder.add_method("loopy", "()V", assemble("return"))
    program = Program(classes=[builder.build()])
    order = estimate_first_use(program)
    # 'loopy' sits on the loop-bearing path, so it is predicted first.
    assert order.position(MethodId("H", "loopy")) < order.position(
        MethodId("H", "plain")
    )


def test_loop_body_calls_precede_loop_exit_calls():
    """Calls inside a loop are encountered before calls after it."""
    builder = ClassFileBuilder("L")
    inner_ref = builder.method_ref("L", "inner", "()V")
    after_ref = builder.method_ref("L", "after", "()V")
    source = f"""
        iconst 3
        store 0
    loop:
        load 0
        ifle done
        call {inner_ref}
        load 0
        iconst 1
        sub
        store 0
        goto loop
    done:
        call {after_ref}
        return
    """
    builder.add_method("main", "()V", assemble(source))
    builder.add_method("inner", "()V", assemble("return"))
    builder.add_method("after", "()V", assemble("return"))
    program = Program(classes=[builder.build()])
    order = estimate_first_use(program)
    assert order.position(MethodId("L", "inner")) < order.position(
        MethodId("L", "after")
    )


def test_recursive_program_terminates():
    order = estimate_first_use(mutual_recursion_program())
    assert len(order) == 3
    assert order.order[0] == MethodId("Even", "main")


def test_class_order_and_method_orders():
    order = estimate_first_use(figure1_program())
    assert order.class_order() == ["A", "B"]
    method_orders = order.method_orders()
    assert method_orders["A"] == ["main", "Bar_A", "Foo_A"]
    assert method_orders["B"] == ["Bar_B", "Foo_B"]


def test_position_of_unknown_method_raises():
    order = estimate_first_use(figure1_program())
    with pytest.raises(ReorderError):
        order.position(MethodId("A", "nope"))


def test_validate_against_rejects_other_program():
    order = estimate_first_use(figure1_program())
    with pytest.raises(ReorderError):
        order.validate_against(mutual_recursion_program())


# -- permutation invariance (property) ----------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

_METHODS_PER_CLASS = 2


def _build_call_program(num_classes, calls, class_order):
    """One program from an adjacency map, declaring classes in
    ``class_order``.  Method index 0 of class 0 is the entry."""
    classes = []
    for class_index in class_order:
        builder = ClassFileBuilder(f"K{class_index}")
        for method_index in range(_METHODS_PER_CLASS):
            flat = class_index * _METHODS_PER_CLASS + method_index
            lines = []
            for callee in calls.get(flat, ()):
                callee_class, callee_method = divmod(
                    callee, _METHODS_PER_CLASS
                )
                callee_name = (
                    "main" if callee == 0 else f"m{callee_method}"
                )
                ref = builder.method_ref(
                    f"K{callee_class}", callee_name, "()V"
                )
                lines.append(f"call {ref}")
            lines.append("return")
            name = "main" if flat == 0 else f"m{method_index}"
            builder.add_method(name, "()V", assemble("\n".join(lines)))
        classes.append(builder.build())
    return Program(
        classes=classes, entry_point=MethodId("K0", "main")
    )


@st.composite
def _call_structures(draw):
    num_classes = draw(st.integers(min_value=2, max_value=4))
    total = num_classes * _METHODS_PER_CLASS
    calls = {}
    for flat in range(total):
        calls[flat] = draw(
            st.lists(
                st.integers(min_value=0, max_value=total - 1),
                max_size=3,
            )
        )
    permutation = draw(st.permutations(list(range(num_classes))))
    return num_classes, calls, permutation


@settings(max_examples=30, deadline=None)
@given(_call_structures())
def test_scg_order_invariant_under_class_permutation(structure):
    """The SCG prediction depends on the call structure, never on the
    order classes happen to be declared in: the reachable prefix of
    the order is identical under any permutation of the class list.
    (The unreachable tail is appended in file order by design, so it
    is excluded.)"""
    num_classes, calls, permutation = structure
    baseline = _build_call_program(
        num_classes, calls, list(range(num_classes))
    )
    permuted = _build_call_program(num_classes, calls, permutation)

    from repro.cfg import build_call_graph

    reachable = set(
        build_call_graph(baseline).reachable_from(
            MethodId("K0", "main")
        )
    )
    baseline_order = [
        method
        for method in estimate_first_use(baseline).order
        if method in reachable
    ]
    permuted_order = [
        method
        for method in estimate_first_use(permuted).order
        if method in reachable
    ]
    assert baseline_order == permuted_order
