"""The weighted (optimized-layout) first-use strategy."""

from repro.harness.experiments import bundle
from repro.reorder import weighted_first_use
from repro.vm import synthesize_profile


def _hanoi():
    item = bundle("Hanoi")
    profile = synthesize_profile(
        item.workload.program, item.workload.train_trace
    )
    return item.workload, profile


def test_weighted_order_is_valid_and_tagged():
    workload, profile = _hanoi()
    order = weighted_first_use(
        workload.program, profile=profile, cpi=workload.cpi
    )
    assert order.source == "weighted"
    # validate_against raised inside the builder already; re-check the
    # coverage invariant explicitly.
    assert {entry.method for entry in order.entries} == set(
        workload.program.method_ids()
    )
    # Cumulative prefixes are monotone.
    previous = -1
    for entry in order.entries:
        assert entry.bytes_before > previous or entry.bytes_before == 0
        previous = entry.bytes_before


def test_weighted_order_is_deterministic():
    workload, profile = _hanoi()
    first = weighted_first_use(
        workload.program, profile=profile, cpi=workload.cpi
    )
    second = weighted_first_use(
        workload.program, profile=profile, cpi=workload.cpi
    )
    assert [e.method for e in first.entries] == [
        e.method for e in second.entries
    ]


def test_measured_methods_keep_measured_relative_order():
    workload, profile = _hanoi()
    order = weighted_first_use(
        workload.program, profile=profile, cpi=workload.cpi
    )
    measured_times = {
        event.method: event.dynamic_instructions_before
        for event in profile.events
    }
    seen = [
        measured_times[entry.method]
        for entry in order.entries
        if entry.method in measured_times
    ]
    # The measured spine is ground truth: never reordered.
    assert seen == sorted(seen)
    # Measured entries are not flagged as estimated; the rest are.
    for entry in order.entries:
        assert entry.estimated == (entry.method not in measured_times)


def test_static_mode_without_profile():
    workload, _ = _hanoi()
    order = weighted_first_use(workload.program, cpi=workload.cpi)
    assert order.source == "weighted"
    assert {entry.method for entry in order.entries} == set(
        workload.program.method_ids()
    )
    # Without a profile everything is an estimate, and the entry
    # method leads the stream.
    assert all(entry.estimated for entry in order.entries)
    assert order.entries[0].method == workload.program.resolve_entry()


def test_profile_changes_the_layout():
    workload, profile = _hanoi()
    with_profile = weighted_first_use(
        workload.program, profile=profile, cpi=workload.cpi
    )
    without = weighted_first_use(workload.program, cpi=workload.cpi)
    assert [e.method for e in with_profile.entries] != [
        e.method for e in without.entries
    ]
