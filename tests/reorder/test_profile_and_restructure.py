"""Profile-guided ordering (§4.2) and restructuring (Figure 3)."""

import pytest

from repro.bytecode import assemble
from repro.classfile import ClassFileBuilder, class_layout
from repro.errors import ReorderError
from repro.program import MethodId, Program
from repro.reorder import (
    estimate_first_use,
    order_from_profile,
    profile_first_use,
    profile_program,
    restructure,
)
from repro.vm import FirstUseEvent, FirstUseProfile
from repro.workloads import figure1_program


def input_dependent_program():
    """main(flag): flag != 0 calls `hot`, else calls `cold`."""
    builder = ClassFileBuilder("P")
    hot_ref = builder.method_ref("P", "hot", "()V")
    cold_ref = builder.method_ref("P", "cold", "()V")
    builder.add_method(
        "main",
        "(I)V",
        assemble(
            f"""
            load 0
            ifeq cold_path
            call {hot_ref}
            return
        cold_path:
            call {cold_ref}
            return
            """
        ),
    )
    builder.add_method("cold", "()V", assemble("nop\nreturn"))
    builder.add_method("hot", "()V", assemble("nop\nreturn"))
    return Program(
        classes=[builder.build()], entry_point=MethodId("P", "main")
    )


def test_profile_order_matches_execution():
    program = figure1_program()
    order = profile_first_use(program)
    assert order.order == [
        MethodId("A", "main"),
        MethodId("B", "Bar_B"),
        MethodId("A", "Bar_A"),
        MethodId("A", "Foo_A"),
        MethodId("B", "Foo_B"),
    ]
    assert order.source == "profile"
    assert all(not entry.estimated for entry in order.entries)


def test_unexecuted_methods_fall_back_to_static_order():
    program = input_dependent_program()
    profile = profile_program(program, args=(1,))  # takes the hot path
    order = order_from_profile(program, profile)
    assert order.order[:2] == [
        MethodId("P", "main"),
        MethodId("P", "hot"),
    ]
    cold_entry = order.entry_for(MethodId("P", "cold"))
    assert cold_entry.estimated
    # The fallback entry sorts after every profiled method's bytes.
    hot_entry = order.entry_for(MethodId("P", "hot"))
    assert cold_entry.bytes_before >= hot_entry.bytes_before


def test_train_vs_test_input_divergence():
    """Profiling with one input mispredicts the other — the paper's
    Train-vs-Test distinction."""
    program = input_dependent_program()
    train_profile = profile_program(program, args=(0,))  # cold path
    order = order_from_profile(program, train_profile)
    assert order.position(MethodId("P", "cold")) < order.position(
        MethodId("P", "hot")
    )
    test_profile = profile_program(program, args=(1,))  # hot path
    assert test_profile.was_executed(MethodId("P", "hot"))
    assert not test_profile.was_executed(MethodId("P", "cold"))


def test_profile_with_unknown_method_rejected():
    program = input_dependent_program()
    bogus = FirstUseProfile(
        events=[
            FirstUseEvent(
                method=MethodId("Zed", "zed"),
                index=0,
                dynamic_instructions_before=0,
                unique_bytes_before=0,
            )
        ]
    )
    with pytest.raises(ReorderError):
        order_from_profile(program, bogus)


def test_restructure_matches_figure3():
    program = figure1_program()
    order = estimate_first_use(program)
    restructured = restructure(program, order)
    assert [m.name for m in restructured.class_named("A").methods] == [
        "main",
        "Bar_A",
        "Foo_A",
    ]
    assert [m.name for m in restructured.class_named("B").methods] == [
        "Bar_B",
        "Foo_B",
    ]


def test_restructure_preserves_sizes_and_original():
    program = figure1_program()
    order = estimate_first_use(program)
    before_a = class_layout(program.class_named("A"))
    restructured = restructure(program, order)
    after_a = class_layout(restructured.class_named("A"))
    assert before_a.strict_size == after_a.strict_size
    assert before_a.global_size == after_a.global_size
    # Original program untouched.
    assert [m.name for m in program.class_named("A").methods] == [
        "main",
        "Foo_A",
        "Bar_A",
    ]


def test_restructure_preserves_semantics():
    from repro.vm import VirtualMachine

    program = figure1_program()
    restructured = restructure(program, estimate_first_use(program))
    original = VirtualMachine(program).run()
    modified = VirtualMachine(restructured).run()
    assert original.globals == modified.globals
    assert (
        original.instructions_executed == modified.instructions_executed
    )


def test_restructure_rejects_mismatched_order():
    program = figure1_program()
    other_order = estimate_first_use(input_dependent_program())
    with pytest.raises(ReorderError):
        restructure(program, other_order)
