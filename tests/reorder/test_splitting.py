"""Procedure splitting: semantics preserved, units shrink."""

import pytest

from repro.bytecode import CodeBuilder, Instruction, Opcode, SysCall
from repro.classfile import ClassFileBuilder
from repro.errors import ReorderError
from repro.program import MethodId, Program
from repro.reorder import split_large_methods, split_method
from repro.vm import VirtualMachine


def build_straightline_program(chunks=6, chunk_work=8):
    """A long straight-line main accumulating into a global."""
    builder = ClassFileBuilder("Big")
    builder.add_field("acc", initial_value=0)
    acc = builder.field_ref("Big", "acc")
    code = CodeBuilder()
    for chunk in range(chunks):
        for step in range(chunk_work):
            code.emit(Opcode.GETSTATIC, acc)
            code.emit(Opcode.ICONST, chunk * chunk_work + step)
            code.emit(Opcode.ADD)
            code.emit(Opcode.PUTSTATIC, acc)
    code.emit(Opcode.RETURN)
    builder.add_method("main", "()V", code.build())
    return Program(classes=[builder.build()])


def test_split_preserves_semantics():
    program = build_straightline_program()
    baseline = VirtualMachine(program).run()
    split_class = split_method(program.classes[0], "main", 120)
    split_program = Program(
        classes=[split_class], entry_point=MethodId("Big", "main")
    )
    result = VirtualMachine(split_program).run()
    assert result.global_value("Big", "acc") == baseline.global_value(
        "Big", "acc"
    )


def test_split_produces_multiple_bounded_pieces():
    program = build_straightline_program()
    original_size = program.method(MethodId("Big", "main")).code_bytes
    split_class = split_method(program.classes[0], "main", 120)
    pieces = [m for m in split_class.methods if m.name.startswith("main")]
    assert len(pieces) >= 3
    # Every piece but possibly the last is within bound plus call glue.
    for piece in pieces:
        assert piece.code_bytes < original_size


def test_split_forwards_locals():
    """A local set in the first piece must be visible in later pieces."""
    builder = ClassFileBuilder("Loc")
    builder.add_field("out")
    out = builder.field_ref("Loc", "out")
    code = CodeBuilder()
    code.emit(Opcode.ICONST, 1234)
    code.emit(Opcode.STORE, 0)
    for _ in range(30):  # padding so a split point exists in between
        code.emit(Opcode.ICONST, 0)
        code.emit(Opcode.SYS, SysCall.BLACKHOLE)
    code.emit(Opcode.LOAD, 0)
    code.emit(Opcode.PUTSTATIC, out)
    code.emit(Opcode.RETURN)
    builder.add_method("main", "()V", code.build())
    split_class = split_method(builder.build(), "main", 60)
    program = Program(
        classes=[split_class], entry_point=MethodId("Loc", "main")
    )
    result = VirtualMachine(program).run()
    assert result.global_value("Loc", "out") == 1234


def test_split_propagates_return_value():
    builder = ClassFileBuilder("Ret")
    code = CodeBuilder()
    code.emit(Opcode.ICONST, 10)
    code.emit(Opcode.STORE, 0)
    for _ in range(30):
        code.emit(Opcode.ICONST, 0)
        code.emit(Opcode.SYS, SysCall.BLACKHOLE)
    code.emit(Opcode.LOAD, 0)
    code.emit(Opcode.IRETURN)
    builder.add_method("compute", "()I", code.build())
    ref = builder.method_ref("Ret", "compute", "()I")
    builder.add_field("res")
    builder.add_method(
        "main",
        "()V",
        [
            Instruction(Opcode.CALL, (ref,)),
            Instruction(Opcode.PUTSTATIC, (builder.field_ref("Ret", "res"),)),
            Instruction(Opcode.RETURN),
        ],
    )
    split_class = split_method(builder.build(), "compute", 60)
    program = Program(
        classes=[split_class], entry_point=MethodId("Ret", "main")
    )
    result = VirtualMachine(program).run()
    assert result.global_value("Ret", "res") == 10


def test_branchy_method_rejected():
    builder = ClassFileBuilder("Br")
    from repro.bytecode import assemble

    builder.add_method(
        "main",
        "()V",
        assemble("loop:\nload 0\nifgt loop\nreturn"),
    )
    with pytest.raises(ReorderError):
        split_method(builder.build(), "main", 2)


def test_small_method_rejected():
    program = build_straightline_program(chunks=1, chunk_work=1)
    with pytest.raises(ReorderError):
        split_method(program.classes[0], "main", 10_000)


def test_split_large_methods_is_opportunistic():
    program = build_straightline_program()
    split_program = split_large_methods(program, 120)
    assert split_program.method_count > program.method_count
    baseline = VirtualMachine(program).run()
    result = VirtualMachine(split_program).run()
    assert result.globals == baseline.globals
    # A program with nothing to split passes through unchanged.
    from repro.workloads import figure1_program

    untouched = split_large_methods(figure1_program(), 10_000)
    assert untouched.method_count == figure1_program().method_count
