"""FirstUseOrder model: helpers beyond the estimators."""

import pytest

from repro.errors import ReorderError
from repro.program import MethodId
from repro.reorder import (
    FirstUseEntry,
    FirstUseOrder,
    estimate_first_use,
    textual_first_use,
)
from repro.workloads import figure1_program


def test_duplicate_entries_rejected():
    entry = FirstUseEntry(method=MethodId("A", "m"), bytes_before=0)
    with pytest.raises(ReorderError):
        FirstUseOrder(entries=[entry, entry])


def test_membership_and_length():
    order = estimate_first_use(figure1_program())
    assert MethodId("A", "main") in order
    assert MethodId("A", "zz") not in order
    assert len(order) == 5


def test_entry_for_and_bytes_before():
    order = estimate_first_use(figure1_program())
    entry = order.entry_for(MethodId("B", "Bar_B"))
    assert entry.bytes_before == order.bytes_before(
        MethodId("B", "Bar_B")
    )
    assert entry.bytes_before > 0


def test_interleaved_order_equals_order():
    order = estimate_first_use(figure1_program())
    assert order.interleaved_order() == order.order


def test_textual_first_use_is_file_order():
    program = figure1_program()
    order = textual_first_use(program)
    assert order.order == list(program.method_ids())
    assert order.source == "textual"
    # Cumulative byte/instruction prefixes are monotone.
    byte_values = [entry.bytes_before for entry in order.entries]
    assert byte_values == sorted(byte_values)
    assert byte_values[0] == 0
    instruction_values = [
        entry.instructions_before for entry in order.entries
    ]
    assert instruction_values == sorted(instruction_values)


def test_textual_order_drives_restructure_as_identity():
    from repro.reorder import restructure

    program = figure1_program()
    identity = restructure(program, textual_first_use(program))
    assert [m.name for c in identity.classes for m in c.methods] == [
        m.name for c in program.classes for m in c.methods
    ]


def test_class_order_first_use_of_classes():
    order = estimate_first_use(figure1_program())
    assert order.class_order() == ["A", "B"]
