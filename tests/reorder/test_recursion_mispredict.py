"""Static estimation on recursive call graphs, cross-checked against
the analyzer's misprediction report and the simulator's demand fetches.

The static estimator must terminate and produce a total order on
(mutually) recursive call graphs, and — the analyzer/simulator
agreement the paper's pipeline relies on — the set of methods the
analyzer proves mispredicted must match the demand fetches the
cycle-exact simulator actually performs.
"""

from repro import T1_LINK, record_run
from repro.analyze import analyze_transfer_plan
from repro.core import run_nonstrict
from repro.reorder import FirstUseEntry, FirstUseOrder, estimate_first_use
from repro.workloads import fibonacci_program, mutual_recursion_program

CPI = 30.0


def demand_fetch_agreement(program, order):
    """(analyzer mispredict set, simulator demand-fetch set)."""
    _, recorder = record_run(program)
    trace = recorder.trace
    report = analyze_transfer_plan(
        program, order, T1_LINK, CPI, methodology="parallel", trace=trace
    )
    result = run_nonstrict(
        program, trace, order, T1_LINK, CPI, method="parallel"
    )
    demand_fetched = {
        entry.method
        for entry in result.latencies.entries
        if entry.demand_fetched
    }
    return set(report.guaranteed_mispredicts), demand_fetched


def test_estimator_terminates_on_direct_recursion():
    program = fibonacci_program()
    order = estimate_first_use(program)
    order.validate_against(program)
    assert order.order[0] == program.resolve_entry()
    assert any(
        entry.method.method_name == "fib" for entry in order.entries
    )


def test_estimator_terminates_on_mutual_recursion():
    program = mutual_recursion_program()
    order = estimate_first_use(program)
    order.validate_against(program)
    names = {entry.method.method_name for entry in order.entries}
    assert {"main"} < names and len(names) >= 3


def test_recursive_static_order_agrees_with_simulation():
    for program in (fibonacci_program(), mutual_recursion_program()):
        order = estimate_first_use(program)
        claims, demand = demand_fetch_agreement(program, order)
        # The static order predicts these tiny programs perfectly: the
        # analyzer claims no mispredictions and the simulator performs
        # no demand fetches — exact agreement, not just containment.
        assert claims == demand == set()


def test_adversarial_order_mispredicts_match_demand_fetches():
    program = mutual_recursion_program()
    static = estimate_first_use(program)
    entries = []
    cumulative = 0
    for entry in reversed(static.entries):
        entries.append(
            FirstUseEntry(method=entry.method, bytes_before=cumulative)
        )
        cumulative += 10
    order = FirstUseOrder(entries=entries, source="adversarial")
    claims, demand = demand_fetch_agreement(program, order)
    # Soundness: every claim is a real demand fetch.
    assert claims <= demand
