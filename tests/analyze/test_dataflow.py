"""The typed dataflow engine: verifier parity plus definite type errors."""

import pytest

from repro.analyze import ValType, analyze_method
from repro.bytecode import assemble
from repro.classfile import ClassFileBuilder
from repro.errors import VerificationError
from repro.linker import verify_method
from repro.workloads import (
    fibonacci_program,
    figure1_program,
    mutual_recursion_program,
)


def build_method(source, descriptor="()V", max_stack=16, max_locals=8):
    builder = ClassFileBuilder("T")
    builder.add_method(
        "m",
        descriptor,
        assemble(source),
        max_stack=max_stack,
        max_locals=max_locals,
    )
    classfile = builder.build()
    return classfile, classfile.method("m")


def issues_of(source, **kwargs):
    classfile, method = build_method(source, **kwargs)
    return analyze_method(classfile, method).issues


def test_example_programs_are_clean():
    for program in (
        figure1_program(),
        fibonacci_program(),
        mutual_recursion_program(),
    ):
        for classfile in program.classes:
            for method in classfile.methods:
                result = analyze_method(classfile, method)
                assert result.ok, result.issues


def test_entry_states_expose_types():
    classfile, method = build_method(
        """
        iconst 3
        newarray
        store 0
        load 0
        arraylen
        pop
        return
        """
    )
    result = analyze_method(classfile, method)
    assert result.ok
    # Before `load 0` the array is in local slot 0.
    assert result.state_before(3).locals[0] is ValType.ARR
    # Before `arraylen` the array is on the stack.
    assert result.state_before(4).stack[-1] is ValType.ARR
    assert result.reachable_indexes == list(range(7))


def test_unreachable_instructions_have_no_state():
    classfile, method = build_method(
        """
        return
        iconst 1
        pop
        return
        """
    )
    result = analyze_method(classfile, method)
    assert result.ok
    assert result.reachable_indexes == [0]


# -- parity with the historical depth-only verifier ---------------------


def test_stack_underflow_detected():
    issues = issues_of("pop\nreturn")
    assert [issue.kind for issue in issues] == ["stack"]
    assert "T.m: stack underflow" in issues[0].message
    assert issues[0].instruction_index == 0


def test_stack_overflow_detected():
    issues = issues_of(
        "iconst 1\niconst 2\niconst 3\npop\npop\npop\nreturn",
        max_stack=2,
    )
    assert any(issue.kind == "stack" for issue in issues)


def test_inconsistent_join_depth_detected():
    issues = issues_of(
        """
        load 0
        ifeq skip
        iconst 9
        skip:
        return
        """
    )
    assert any(
        issue.kind == "stack" and "inconsistent" in issue.message
        for issue in issues
    )


def test_values_left_at_return_detected():
    issues = issues_of("iconst 1\nreturn")
    assert any(
        "left on the stack" in issue.message for issue in issues
    )


def test_unknown_sys_code_detected():
    issues = issues_of("sys 99\nreturn")
    assert [issue.kind for issue in issues] == ["operand"]


def test_bad_local_slot_detected():
    issues = issues_of("load 7\npop\nreturn", max_locals=4)
    assert [issue.kind for issue in issues] == ["operand"]


def test_return_kind_must_match_descriptor():
    assert any(
        issue.kind == "structure"
        for issue in issues_of("iconst 1\nireturn")  # ()V
    )
    assert any(
        issue.kind == "structure"
        for issue in issues_of("return", descriptor="()I")
    )


# -- new: definite type errors the old walk accepted --------------------


def test_arith_on_string_rejected():
    builder = ClassFileBuilder("T")
    index = builder.add_string_constant("mobile")
    builder.add_method(
        "bad", "()V", assemble(f"ldc {index}\niconst 1\nadd\npop\nreturn")
    )
    classfile = builder.build()
    result = analyze_method(classfile, classfile.method("bad"))
    assert [issue.kind for issue in result.issues] == ["type"]
    assert "T.bad" in result.issues[0].message
    with pytest.raises(VerificationError):
        verify_method(classfile, classfile.method("bad"))


def test_arraylen_of_int_rejected():
    issues = issues_of("iconst 5\narraylen\npop\nreturn")
    assert [issue.kind for issue in issues] == ["type"]


def test_store_into_array_field_requires_array():
    builder = ClassFileBuilder("T")
    builder.add_field("slots", "A")
    field_ref = builder.field_ref("T", "slots", "A")
    builder.add_method(
        "bad",
        "()V",
        assemble(f"iconst 1\nputstatic {field_ref}\nreturn"),
    )
    classfile = builder.build()
    result = analyze_method(classfile, classfile.method("bad"))
    assert [issue.kind for issue in result.issues] == ["type"]


def test_untyped_word_parameters_accept_arrays():
    # The surface compiler writes "I" for every parameter, even ones
    # that carry arrays at runtime (`Fold.sum(blocks)`); an "I" slot
    # is an untyped word, so indexing it must not be flagged.
    builder = ClassFileBuilder("T")
    builder.add_method(
        "sum",
        "(I)I",
        assemble("load 0\narraylen\nireturn"),
        max_locals=1,
    )
    ref = builder.method_ref("T", "sum", "(I)I")
    builder.add_method(
        "m",
        "()V",
        assemble(f"iconst 2\nnewarray\ncall {ref}\npop\nreturn"),
    )
    classfile = builder.build()
    for name in ("sum", "m"):
        result = analyze_method(classfile, classfile.method(name))
        assert result.ok, result.issues
    # A call's "I" return is likewise an unknown word, not an int.
    main = analyze_method(classfile, classfile.method("m"))
    assert main.state_before(3).stack[-1] is ValType.TOP


def test_top_values_are_tolerated():
    # ALOAD results are statically unknown (TOP): using one as an int
    # must NOT be flagged — only *definite* mismatches are errors.
    issues = issues_of(
        """
        iconst 1
        newarray
        iconst 0
        aload
        iconst 1
        add
        pop
        return
        """
    )
    assert issues == []


# -- the refactored verifier delegates here -----------------------------


def test_verify_method_reports_first_issue_message():
    classfile, method = build_method("pop\nreturn")
    with pytest.raises(VerificationError) as excinfo:
        verify_method(classfile, method)
    assert "T.m: stack underflow" in str(excinfo.value)


def test_verify_method_accepts_clean_code():
    classfile, method = build_method("iconst 1\npop\nreturn")
    verify_method(classfile, method)  # must not raise
