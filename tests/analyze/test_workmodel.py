"""Interprocedural first-use work lower bounds (the static work model)."""

import math

from repro import MethodId, record_run
from repro.analyze import first_use_lower_bounds
from repro.lang import compile_source
from repro.workloads import (
    fibonacci_program,
    figure1_program,
    mutual_recursion_program,
)


def test_figure1_bounds_are_exact_shortest_work():
    bounds = first_use_lower_bounds(figure1_program())
    assert bounds.bound(MethodId("A", "main")) == 0.0
    # Figure 1's call structure: main loops, calling Bar_B first.
    assert bounds.bound(MethodId("B", "Bar_B")) == 6.0
    assert bounds.bound(MethodId("A", "Bar_A")) == 12.0
    assert bounds.bound(MethodId("A", "Foo_A")) == 16.0
    assert bounds.bound(MethodId("B", "Foo_B")) == 18.0


def test_bounds_never_exceed_observed_first_use():
    for program in (
        figure1_program(),
        fibonacci_program(),
        mutual_recursion_program(),
    ):
        bounds = first_use_lower_bounds(program)
        _, recorder = record_run(program)
        for event in recorder.profile.events:
            assert (
                bounds.bound(event.method)
                <= event.dynamic_instructions_before
            ), event.method


def test_recursive_call_graphs_get_finite_bounds():
    for program in (fibonacci_program(), mutual_recursion_program()):
        bounds = first_use_lower_bounds(program)
        for method_id in program.method_ids():
            assert bounds.reachable(method_id)
            assert math.isfinite(bounds.bound(method_id))


def test_unreachable_method_is_infinite():
    program = compile_source(
        """
        class A {
          func main() { print(1); }
          func orphan(x) { return x + 1; }
        }
        """
    )
    bounds = first_use_lower_bounds(program)
    assert bounds.bound(MethodId("A", "main")) == 0.0
    assert not bounds.reachable(MethodId("A", "orphan"))
    assert bounds.bound(MethodId("A", "orphan")) == math.inf
