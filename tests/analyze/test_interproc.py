"""Interprocedural analysis: branch probabilities, RTA, pruning.

The pruning soundness check is the load-bearing half: for every
bundled workload a variant with injected dead methods must simulate
*identically* (per-method first-invocation latencies of surviving
methods, pure execution cycles) before and after
:func:`repro.analyze.prune_dead_methods`, under both transfer
methodologies.
"""

import math

import pytest

from repro.analyze import (
    analyze_interproc,
    block_frequencies,
    branch_probabilities,
    prune_dead_methods,
    run_lint,
)
from repro.analyze.interproc import BACK_EDGE_PROBABILITY
from repro.bytecode import assemble
from repro.cfg import analyze_loops, build_cfg
from repro.classfile import ClassFileBuilder
from repro.core import run_nonstrict
from repro.harness.experiments import BENCHMARK_NAMES, bundle
from repro.program import MethodId, Program
from repro.reorder import estimate_first_use, textual_first_use
from repro.transfer import T1_LINK

SIMPLE_LOOP = """
    iconst 10
    store 0
loop:
    load 0
    ifle done
    load 0
    iconst 1
    sub
    store 0
    goto loop
done:
    return
"""


def _loop_cfg():
    cfg = build_cfg(assemble(SIMPLE_LOOP))
    return cfg, analyze_loops(cfg)


def _two_way_blocks(cfg):
    return [
        block.block_id
        for block in cfg.blocks
        if len(cfg.successors(block.block_id)) == 2
    ]


def test_branch_probabilities_sum_to_one():
    cfg, loops = _loop_cfg()
    probabilities = branch_probabilities(cfg, loops=loops)
    branches = _two_way_blocks(cfg)
    assert branches
    for block_id in branches:
        total = sum(
            probabilities[(block_id, successor)]
            for successor in cfg.successors(block_id)
        )
        assert total == pytest.approx(1.0)


def test_loop_back_path_dominates_exit():
    cfg, loops = _loop_cfg()
    probabilities = branch_probabilities(cfg, loops=loops)
    (branch,) = _two_way_blocks(cfg)
    in_loop, exit_block = None, None
    loop = loops.loops[0]
    for successor in cfg.successors(branch):
        if successor in loop.body:
            in_loop = successor
        else:
            exit_block = successor
    assert in_loop is not None and exit_block is not None
    # The loop heuristic anchors the back path at 0.88; further
    # Dempster-Shafer evidence (the exit block returns) only pushes it
    # higher.
    assert probabilities[(branch, in_loop)] >= BACK_EDGE_PROBABILITY
    assert (
        probabilities[(branch, in_loop)]
        > probabilities[(branch, exit_block)]
    )


def test_block_frequencies_scale_loop_bodies():
    cfg, loops = _loop_cfg()
    probabilities = branch_probabilities(cfg, loops=loops)
    frequencies = block_frequencies(cfg, probabilities, loops=loops)
    loop = loops.loops[0]
    body_frequency = max(
        frequencies[block_id] for block_id in loop.body
    )
    assert frequencies[cfg.entry.block_id] == pytest.approx(1.0)
    # The geometric trip-count multiplier makes loop blocks hotter
    # than any straight-line block.
    assert body_frequency > 1.5


def _diamond_program(dead=False, torn=False):
    """main -> a -> b, plus optional dead/torn additions."""
    builder = ClassFileBuilder("C")
    a_ref = builder.method_ref("C", "a", "()V")
    b_ref = builder.method_ref("C", "b", "()V")
    builder.add_method("main", "()V", assemble(f"call {a_ref}\nreturn"))
    body = f"call {b_ref}\nreturn"
    if torn:
        ghost_ref = builder.method_ref("C", "ghost", "()V")
        body = f"call {ghost_ref}\n" + body
    builder.add_method("a", "()V", assemble(body))
    builder.add_method("b", "()V", assemble("return"))
    if dead:
        builder.add_method("unused", "()V", assemble("return"))
    return Program(
        classes=[builder.build()],
        entry_point=MethodId("C", "main"),
    )


def test_reachability_and_dead_methods():
    analysis = analyze_interproc(_diamond_program(dead=True))
    assert MethodId("C", "main") in analysis.reachable
    assert MethodId("C", "a") in analysis.reachable
    assert MethodId("C", "b") in analysis.reachable
    assert analysis.dead == (MethodId("C", "unused"),)
    assert math.isinf(
        analysis.expected_first_use(MethodId("C", "unused"))
    )


def test_monomorphic_and_torn_sites():
    analysis = analyze_interproc(_diamond_program(torn=True))
    monomorphic = {
        (site.caller, site.targets[0])
        for site in analysis.monomorphic_sites
    }
    assert (MethodId("C", "main"), MethodId("C", "a")) in monomorphic
    assert (MethodId("C", "a"), MethodId("C", "b")) in monomorphic
    (torn,) = analysis.torn_sites
    assert torn.caller == MethodId("C", "a")
    assert torn.external_class == "C"
    assert not torn.targets


def test_call_graph_dominators():
    analysis = analyze_interproc(_diamond_program())
    main = MethodId("C", "main")
    a = MethodId("C", "a")
    b = MethodId("C", "b")
    assert analysis.immediate_dominators[main] is None
    assert analysis.immediate_dominators[a] == main
    assert analysis.immediate_dominators[b] == a
    assert analysis.dominates(main, b)
    assert analysis.dominates(a, b)
    assert not analysis.dominates(b, a)


def test_edge_weights_discount_conditional_calls():
    builder = ClassFileBuilder("C")
    hot_ref = builder.method_ref("C", "hot", "()V")
    cold_ref = builder.method_ref("C", "cold", "()V")
    builder.add_method(
        "main",
        "()V",
        assemble(
            f"""
            call {hot_ref}
            load 0
            ifeq skip
            call {cold_ref}
        skip:
            return
            """
        ),
        max_locals=1,
    )
    builder.add_method("hot", "()V", assemble("return"))
    builder.add_method("cold", "()V", assemble("return"))
    program = Program(
        classes=[builder.build()],
        entry_point=MethodId("C", "main"),
    )
    analysis = analyze_interproc(program)
    weights = {
        (edge.caller.method_name, edge.callee.method_name): weight
        for edge, weight in analysis.edge_weights.items()
    }
    assert weights[("main", "hot")] == pytest.approx(1.0)
    assert weights[("main", "cold")] < weights[("main", "hot")]


def test_prune_removes_only_dead_methods():
    program = _diamond_program(dead=True)
    result = prune_dead_methods(program)
    assert result.pruned == (MethodId("C", "unused"),)
    assert result.bytes_saved > 0
    (classfile,) = result.program.classes
    assert [method.name for method in classfile.methods] == [
        "main",
        "a",
        "b",
    ]
    # Constant pool untouched: surviving call operands stay valid.
    (original,) = program.classes
    assert classfile.constant_pool == original.constant_pool


def test_prune_is_identity_without_dead_methods():
    program = _diamond_program()
    result = prune_dead_methods(program)
    assert result.pruned == ()
    assert result.bytes_saved == 0
    assert result.program is program


# -- lint rules ---------------------------------------------------------


def test_lint_dead_method_shipped_and_not_at_tail():
    builder = ClassFileBuilder("C")
    a_ref = builder.method_ref("C", "a", "()V")
    builder.add_method("unused", "()V", assemble("return"))
    builder.add_method("main", "()V", assemble(f"call {a_ref}\nreturn"))
    builder.add_method("a", "()V", assemble("return"))
    program = Program(
        classes=[builder.build()],
        entry_point=MethodId("C", "main"),
    )
    # Textual order ships "unused" first: the rule must fire.
    report = run_lint(program, order=textual_first_use(program))
    assert report.by_rule().get("dead-method-shipped", 0) == 1
    # The static order puts dead methods behind every live one: quiet.
    report = run_lint(program, order=estimate_first_use(program))
    assert report.by_rule().get("dead-method-shipped", 0) == 0


def test_lint_guaranteed_mispredict_order():
    builder = ClassFileBuilder("C")
    helper_ref = builder.method_ref("C", "helper", "()V")
    builder.add_method("helper", "()V", assemble("return"))
    builder.add_method(
        "main", "()V", assemble(f"call {helper_ref}\nreturn")
    )
    program = Program(
        classes=[builder.build()],
        entry_point=MethodId("C", "main"),
    )
    # Textual order places helper before main, its dominator.
    report = run_lint(program, order=textual_first_use(program))
    findings = [
        finding
        for finding in report.findings
        if finding.rule_id == "guaranteed-mispredict-order"
    ]
    assert [f.span.method_name for f in findings] == ["helper"]
    report = run_lint(program, order=estimate_first_use(program))
    assert report.by_rule().get("guaranteed-mispredict-order", 0) == 0


def test_lint_unreachable_call_target_is_error():
    report = run_lint(_diamond_program(torn=True))
    findings = [
        finding
        for finding in report.findings
        if finding.rule_id == "unreachable-call-target"
    ]
    assert len(findings) == 1
    assert findings[0].severity.value == "error"
    assert report.has_errors


def test_workloads_are_clean_under_new_rules():
    for name in BENCHMARK_NAMES:
        report = run_lint(bundle(name).workload.program)
        by_rule = report.by_rule()
        assert by_rule.get("dead-method-shipped", 0) == 0
        assert by_rule.get("unreachable-call-target", 0) == 0


# -- pruning soundness, cross-checked on the simulator ------------------


def _inject_dead_class(program):
    builder = ClassFileBuilder("Deadwood")
    sink_ref = builder.method_ref("Deadwood", "sink", "()V")
    builder.add_method(
        "lump", "()V", assemble(f"call {sink_ref}\nreturn")
    )
    builder.add_method("sink", "()V", assemble("iconst 7\npop\nreturn"))
    import dataclasses

    return dataclasses.replace(
        program, classes=list(program.classes) + [builder.build()]
    )


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
@pytest.mark.parametrize("methodology", ["parallel", "interleaved"])
def test_prune_soundness_on_workloads(name, methodology):
    item = bundle(name)
    variant = _inject_dead_class(item.workload.program)
    analysis = analyze_interproc(variant)
    injected = {
        MethodId("Deadwood", "lump"),
        MethodId("Deadwood", "sink"),
    }
    assert injected <= set(analysis.dead)

    pruned = prune_dead_methods(variant, analysis=analysis)
    assert injected == set(pruned.pruned)

    trace = item.workload.test_trace
    cpi = item.workload.cpi
    unpruned_run = run_nonstrict(
        variant,
        trace,
        estimate_first_use(variant),
        T1_LINK,
        cpi,
        method=methodology,
    )
    pruned_run = run_nonstrict(
        pruned.program,
        trace,
        estimate_first_use(pruned.program),
        T1_LINK,
        cpi,
        method=methodology,
    )
    # Identical VM work: the trace replay never touches dead code.
    assert pruned_run.execution_cycles == pytest.approx(
        unpruned_run.execution_cycles
    )
    # Identical first-invocation latency for every surviving method.
    unpruned_latencies = {
        entry.method: entry.latency
        for entry in unpruned_run.latencies.entries
    }
    for entry in pruned_run.latencies.entries:
        assert entry.latency == pytest.approx(
            unpruned_latencies[entry.method]
        ), entry.method
    # Pruning only ever removes wire bytes.
    assert pruned_run.total_cycles <= unpruned_run.total_cycles
