"""Transfer-plan stall/mispredict/deadlock proofs vs the simulator."""

import math

import pytest

from repro import MethodId, T1_LINK, record_run
from repro.analyze import (
    StallVerdict,
    analyze_schedule,
    analyze_transfer_plan,
)
from repro.core import run_nonstrict
from repro.errors import AnalysisError
from repro.lang import compile_source
from repro.reorder import estimate_first_use
from repro.transfer import build_schedule
from repro.transfer.schedule import ScheduledStart, TransferSchedule
from repro.transfer.units import TransferPolicy, build_program_plans
from repro.workloads import figure1_program

CPI = 30.0


@pytest.fixture()
def figure1():
    program = figure1_program()
    _, recorder = record_run(program)
    order = estimate_first_use(program)
    return program, recorder.trace, order


def test_interleaved_trace_verdicts_are_exact(figure1):
    program, trace, order = figure1
    report = analyze_transfer_plan(
        program, order, T1_LINK, CPI, methodology="interleaved", trace=trace
    )
    assert report.model == "trace"
    result = run_nonstrict(
        program, trace, order, T1_LINK, CPI, method="interleaved"
    )
    stalled = {stall.method for stall in result.stalls}
    # Interleaved arrivals are exact, so the verdict partition must
    # match the simulator with no POSSIBLE_STALL residue.
    assert set(report.proven_stalls) == stalled
    assert report.possible_stalls == []
    executed = {segment.method for segment in trace.segments}
    assert set(report.proven_no_stall) == executed - stalled


def test_entry_method_always_stalls(figure1):
    program, trace, order = figure1
    for methodology in ("parallel", "interleaved"):
        report = analyze_transfer_plan(
            program, order, T1_LINK, CPI,
            methodology=methodology, trace=trace,
        )
        entry = program.resolve_entry()
        assert report.verdicts[entry].verdict is StallVerdict.PROVEN_STALL


def test_static_model_never_claims_mispredicts(figure1):
    program, trace, order = figure1
    for methodology in ("parallel", "interleaved"):
        report = analyze_transfer_plan(
            program, order, T1_LINK, CPI, methodology=methodology
        )
        assert report.model == "static"
        assert report.guaranteed_mispredicts == []
        # Static proofs must stay sound against the simulated run.
        result = run_nonstrict(
            program, trace, order, T1_LINK, CPI, method=methodology
        )
        stalled = {stall.method for stall in result.stalls}
        assert not stalled & set(report.proven_no_stall)


def test_unknown_methodology_rejected(figure1):
    program, _, order = figure1
    with pytest.raises(AnalysisError):
        analyze_transfer_plan(
            program, order, T1_LINK, CPI, methodology="carrier-pigeon"
        )


def test_real_schedules_never_deadlock(figure1):
    program, _, order = figure1
    plans = build_program_plans(program, TransferPolicy.NON_STRICT)
    schedule = build_schedule(program, plans, order, T1_LINK, CPI)
    health = analyze_schedule(schedule, plans)
    assert health.ok
    assert set(health.startable) == set(plans)


def test_tampered_schedule_deadlock_detected(figure1):
    program, trace, order = figure1
    plans = build_program_plans(program, TransferPolicy.NON_STRICT)
    real = build_schedule(program, plans, order, T1_LINK, CPI)
    starts = []
    for start in real.starts:
        if start.class_name == "B":
            # B's trigger waits on B's own bytes: a dependence cycle.
            start = ScheduledStart(
                class_name="B",
                start_after_bytes=plans["B"].total_bytes + 1.0,
                dependency_bytes=start.dependency_bytes,
                required_prefix_bytes=start.required_prefix_bytes,
                dependency_classes=("B",),
            )
        starts.append(start)
    tampered = TransferSchedule(starts=starts)

    health = analyze_schedule(tampered, plans)
    assert not health.ok
    (finding,) = health.deadlocks
    assert finding.class_name == "B"
    assert finding.blocked_on == ("B",)
    assert finding.achievable_bytes < finding.start_after_bytes

    report = analyze_transfer_plan(
        program, order, T1_LINK, CPI,
        methodology="parallel", trace=trace, schedule=tampered,
    )
    assert report.schedule_health is not None
    assert not report.schedule_health.ok
    # B's units can never be scheduled: no B method is stall-free, and
    # the arrival upper bound for B methods is unbounded.
    for method_id, verdict in report.verdicts.items():
        if method_id.class_name != "B":
            continue
        assert verdict.verdict is not StallVerdict.PROVEN_NO_STALL
        if verdict.verdict is not StallVerdict.NOT_EXECUTED:
            assert math.isinf(verdict.arrival_hi)


def test_dead_methods_reported():
    program = compile_source(
        """
        class A {
          func main() { print(live(2)); }
          func live(x) { return x * 2; }
          func orphan(x) { return x + 1; }
        }
        """
    )
    order = estimate_first_use(program)
    report = analyze_transfer_plan(
        program, order, T1_LINK, CPI, methodology="interleaved"
    )
    assert MethodId("A", "orphan") in report.dead_methods
    assert MethodId("A", "live") not in report.dead_methods
    verdict = report.verdicts[MethodId("A", "orphan")]
    assert verdict.verdict is StallVerdict.NOT_EXECUTED
