"""Soundness cross-check: analyzer claims vs the cycle-exact simulator.

For every bundled paper workload and both transfer methodologies, the
analyzer's proofs must hold in simulation:

* a ``PROVEN_NO_STALL`` method never stalls;
* a ``PROVEN_STALL`` or ``GUARANTEED_MISPREDICT`` method always stalls;
* a ``GUARANTEED_MISPREDICT`` method is always demand-fetched.

An adversarial (reversed) first-use order additionally exercises the
misprediction proof: the claims must coincide with the simulator's
demand fetches.
"""

import pytest

from repro import T1_LINK
from repro.analyze import analyze_transfer_plan
from repro.core import run_nonstrict
from repro.reorder import FirstUseEntry, FirstUseOrder, estimate_first_use
from repro.workloads.spec import PAPER_BENCHMARKS, benchmark_spec
from repro.workloads.synthetic import paper_workload

WORKLOAD_NAMES = [spec.name for spec in PAPER_BENCHMARKS]


@pytest.fixture(scope="module")
def workloads():
    loaded = {}
    for name in WORKLOAD_NAMES:
        loaded[name] = paper_workload(benchmark_spec(name))
    return loaded


def reversed_order(program):
    """An adversarial order: static first-use order, reversed."""
    static = estimate_first_use(program)
    entries = []
    cumulative = 0
    for entry in reversed(static.entries):
        entries.append(
            FirstUseEntry(method=entry.method, bytes_before=cumulative)
        )
        cumulative += 10
    return FirstUseOrder(entries=entries, source="adversarial")


def check_soundness(program, trace, order, link, cpi, methodology):
    report = analyze_transfer_plan(
        program, order, link, cpi, methodology=methodology, trace=trace
    )
    result = run_nonstrict(
        program, trace, order, link, cpi, method=methodology
    )
    stalled = {stall.method for stall in result.stalls}
    demand_fetched = {
        entry.method
        for entry in result.latencies.entries
        if entry.demand_fetched
    }
    no_stall = set(report.proven_no_stall)
    proven = set(report.proven_stalls)
    mispredicted = set(report.guaranteed_mispredicts)

    assert not no_stall & stalled, (
        f"{methodology}: PROVEN_NO_STALL methods stalled: "
        f"{sorted(map(str, no_stall & stalled))}"
    )
    assert proven <= stalled, (
        f"{methodology}: PROVEN_STALL methods did not stall: "
        f"{sorted(map(str, proven - stalled))}"
    )
    assert mispredicted <= stalled
    assert mispredicted <= demand_fetched, (
        f"{methodology}: GUARANTEED_MISPREDICT not demand-fetched: "
        f"{sorted(map(str, mispredicted - demand_fetched))}"
    )
    return report, result, demand_fetched


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
@pytest.mark.parametrize("methodology", ["parallel", "interleaved"])
def test_paper_workloads_static_order(workloads, name, methodology):
    workload = workloads[name]
    program = workload.program
    order = estimate_first_use(program)
    check_soundness(
        program, workload.test_trace, order, T1_LINK,
        workload.cpi, methodology,
    )


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
@pytest.mark.parametrize("methodology", ["parallel", "interleaved"])
def test_paper_workloads_adversarial_order(workloads, name, methodology):
    workload = workloads[name]
    program = workload.program
    order = reversed_order(program)
    check_soundness(
        program, workload.test_trace, order, T1_LINK,
        workload.cpi, methodology,
    )


def test_adversarial_order_yields_mispredict_claims(workloads):
    """The mispredict proof has teeth: a wrong order produces claims,
    and every claim is a simulated demand fetch."""
    workload = workloads["Hanoi"]
    program = workload.program
    order = reversed_order(program)
    report, _, demand_fetched = check_soundness(
        program, workload.test_trace, order, T1_LINK,
        workload.cpi, "parallel",
    )
    claims = set(report.guaranteed_mispredicts)
    assert claims, "expected at least one misprediction claim"
    assert claims <= demand_fetched
