"""The lint framework, its exporters, and the repro-inspect lint CLI."""

import json

import pytest

from repro import record_run, save_program, save_trace
from repro.analyze import (
    Severity,
    all_rules,
    run_lint,
    sarif_dumps,
    to_json,
    to_sarif,
    validate_sarif,
)
from repro.bytecode import assemble
from repro.classfile import ClassFileBuilder
from repro.errors import AnalysisError
from repro.observe import MetricsRegistry, TraceRecorder
from repro.program import Program
from repro.tools import main
from repro.workloads import figure1_program

EXPECTED_RULE_IDS = {
    "type-error",
    "schedule-deadlock",
    "guaranteed-mispredict",
    "dead-method",
    "proven-stall",
    "dead-method-shipped",
    "guaranteed-mispredict-order",
    "unreachable-call-target",
}


def broken_program():
    """A runnable program whose helper has a definite type error."""
    builder = ClassFileBuilder("Bad")
    index = builder.add_string_constant("oops")
    builder.add_method("main", "()V", assemble("return"))
    builder.add_method(
        "helper", "()V", assemble(f"ldc {index}\niconst 1\nadd\npop\nreturn")
    )
    return Program(classes=[builder.build()])


def test_registry_contains_the_documented_rules():
    assert {rule.rule_id for rule in all_rules()} == EXPECTED_RULE_IDS


def test_lint_clean_program_with_trace():
    program = figure1_program()
    _, recorder = record_run(program)
    report = run_lint(program, trace=recorder.trace)
    assert not report.has_errors
    assert report.methods_analyzed == 5
    assert report.runtime_seconds > 0
    # Figure 1's textual layout provably stalls on a T1 line.
    assert report.by_rule().get("proven-stall", 0) >= 1
    assert all(
        finding.severity is not Severity.ERROR
        for finding in report.findings
    )


def test_lint_flags_type_errors():
    report = run_lint(broken_program())
    assert report.has_errors
    errors = [
        finding
        for finding in report.findings
        if finding.rule_id == "type-error"
    ]
    assert errors and errors[0].span.qualified_name == "Bad.helper"


def test_lint_publishes_metrics_and_events():
    metrics = MetricsRegistry()
    recorder = TraceRecorder(clock="seconds")
    report = run_lint(
        broken_program(), metrics=metrics, recorder=recorder
    )
    assert metrics.counter_total("analyze_findings_total") == len(
        report.findings
    )
    events = recorder.named("analysis_finding")
    assert len(events) == len(report.findings)
    assert any(
        event.args["rule"] == "type-error" for event in events
    )


def test_sarif_export_is_valid():
    program = figure1_program()
    _, recorder = record_run(program)
    report = run_lint(program, trace=recorder.trace)
    document = to_sarif(report)
    validate_sarif(document)  # must not raise
    reparsed = json.loads(sarif_dumps(report))
    validate_sarif(reparsed)
    run = reparsed["runs"][0]
    assert {rule["id"] for rule in run["tool"]["driver"]["rules"]} == (
        EXPECTED_RULE_IDS
    )
    assert len(run["results"]) == len(report.findings)
    for result in run["results"]:
        assert result["level"] in ("note", "warning", "error")


def test_json_export_counts():
    report = run_lint(broken_program())
    payload = to_json(report)
    assert len(payload["findings"]) == len(report.findings)
    assert payload["counts"]["error"] >= 1
    assert payload["methods_analyzed"] == report.methods_analyzed


@pytest.mark.parametrize(
    "mutate, message_part",
    [
        (lambda d: d.update(version="2.0.0"), "version"),
        (lambda d: d.update(runs=[]), "runs"),
        (
            lambda d: d["runs"][0]["tool"]["driver"].pop("name"),
            "driver.name",
        ),
        (
            lambda d: d["runs"][0]["results"][0].update(level="fatal"),
            "level",
        ),
        (
            lambda d: d["runs"][0]["results"][0].update(ruleIndex=99),
            "ruleIndex",
        ),
        (
            lambda d: d["runs"][0]["results"][0]["locations"][0][
                "physicalLocation"
            ]["region"].update(startLine=0),
            "startLine",
        ),
    ],
)
def test_malformed_sarif_rejected(mutate, message_part):
    report = run_lint(broken_program())
    document = to_sarif(report)
    mutate(document)
    with pytest.raises(AnalysisError) as excinfo:
        validate_sarif(document)
    assert message_part in str(excinfo.value)


# -- the CLI gate -------------------------------------------------------


def test_cli_lint_clean_program_exits_zero(tmp_path, capsys):
    program = figure1_program()
    directory = save_program(program, tmp_path / "prog")
    _, recorder = record_run(program)
    trace = save_trace(recorder.trace, tmp_path / "trace.json")
    sarif_path = tmp_path / "out.sarif"
    json_path = tmp_path / "out.json"
    code = main(
        [
            "lint",
            str(directory),
            "--trace",
            str(trace),
            "--sarif",
            str(sarif_path),
            "--json",
            str(json_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "(trace model)" in out
    validate_sarif(json.loads(sarif_path.read_text()))
    assert json.loads(json_path.read_text())["counts"].get("error", 0) == 0


def test_cli_lint_broken_program_exits_nonzero(tmp_path, capsys):
    directory = save_program(broken_program(), tmp_path / "bad")
    code = main(["lint", str(directory)])
    assert code == 1
    assert "type-error" in capsys.readouterr().out


def test_cli_lint_workload_mode(tmp_path, capsys):
    sarif_path = tmp_path / "hanoi.sarif"
    code = main(["lint", "--workload", "Hanoi", "--sarif", str(sarif_path)])
    assert code == 0
    validate_sarif(json.loads(sarif_path.read_text()))


def test_cli_lint_requires_exactly_one_input(capsys):
    assert main(["lint"]) == 2
