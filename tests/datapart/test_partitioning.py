"""GMD partitioning: exact accounting and first-use attribution."""

import pytest

from repro.bytecode import assemble
from repro.classfile import ClassFileBuilder, class_layout
from repro.datapart import (
    method_pool_references,
    partition_class,
    partition_program,
    reference_closure,
    setup_pool_references,
)
from repro.errors import ClassFileError
from repro.workloads import figure1_program


def test_partition_accounts_for_every_global_byte():
    program = figure1_program()
    for classfile in program.classes:
        partition = partition_class(classfile)
        layout = class_layout(classfile)
        assert partition.total_global_bytes == layout.global_bytes


def test_percentages_sum_to_100():
    for classfile in figure1_program().classes:
        percentages = partition_class(classfile).percentages()
        assert sum(percentages.values()) == pytest.approx(100.0)


def test_entry_attributed_to_first_user():
    """A constant used by two methods lands in the earlier one's GMD."""
    builder = ClassFileBuilder("Share")
    shared_index = builder.add_string_constant(
        "a shared constant string payload"
    )
    builder.add_method(
        "first", "()V", assemble(f"ldc {shared_index}\npop\nreturn")
    )
    builder.add_method(
        "second", "()V", assemble(f"ldc {shared_index}\npop\nreturn")
    )
    partition = partition_class(builder.build())
    assert partition.gmd_size("first") > partition.gmd_size("second")


def test_unused_entries_detected():
    builder = ClassFileBuilder("Waste")
    builder.add_string_constant("never referenced by any method at all")
    builder.add_method("main", "()V", assemble("return"))
    partition = partition_class(builder.build())
    assert partition.unused_bytes > 0


def test_no_unused_when_everything_referenced():
    builder = ClassFileBuilder("Tight")
    index = builder.add_string_constant("used!")
    builder.add_method(
        "main", "()V", assemble(f"ldc {index}\npop\nreturn")
    )
    partition = partition_class(builder.build())
    assert partition.unused_bytes == 0


def test_gmd_order_follows_file_order():
    program = figure1_program()
    reordered = program.class_named("A").reordered(
        ["Bar_A", "main", "Foo_A"]
    )
    partition = partition_class(reordered)
    assert [name for name, _ in partition.gmd_sizes] == [
        "Bar_A",
        "main",
        "Foo_A",
    ]


def test_reordering_moves_shared_bytes_to_new_first_user():
    program = figure1_program()
    classfile = program.class_named("A")
    original = partition_class(classfile)
    reordered = partition_class(
        classfile.reordered(["Bar_A", "main", "Foo_A"])
    )
    # Totals are invariant under reordering.
    assert (
        original.total_global_bytes == reordered.total_global_bytes
    )
    assert original.unused_bytes == reordered.unused_bytes
    assert original.first_bytes == reordered.first_bytes


def test_gmd_lookup_unknown_method_raises():
    partition = partition_class(figure1_program().classes[0])
    with pytest.raises(ClassFileError):
        partition.gmd_size("missing")


def test_setup_references_include_class_and_fields():
    classfile = figure1_program().class_named("A")
    pool = classfile.constant_pool
    setup = setup_pool_references(classfile)
    assert pool.find_utf8("A") in setup
    assert pool.find_utf8("a_total") in setup


def test_method_references_include_call_chain():
    classfile = figure1_program().class_named("A")
    pool = classfile.constant_pool
    main = classfile.method("main")
    refs = method_pool_references(classfile, main)
    # main calls B.Bar_B, so the Utf8 for "Bar_B" must be reachable.
    assert pool.find_utf8("Bar_B") in refs
    assert pool.find_utf8("main") in refs


def test_reference_closure_transitive():
    classfile = figure1_program().class_named("A")
    pool = classfile.constant_pool
    method_ref_index = next(
        index
        for index, entry in pool.entries()
        if type(entry).__name__ == "MethodRefEntry"
    )
    closure = reference_closure(pool, {method_ref_index})
    # MethodRef -> Class -> Utf8 and -> NameAndType -> 2x Utf8.
    assert len(closure) >= 5


def test_partition_program_covers_all_classes():
    partitions = partition_program(figure1_program())
    assert set(partitions) == {"A", "B"}
