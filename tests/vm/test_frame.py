"""Frame: locals, stack, and branch-target plumbing."""

import pytest

from repro.bytecode import assemble
from repro.classfile import MethodInfo
from repro.errors import StackUnderflowError, VMError
from repro.program import MethodId
from repro.vm import Frame


def make_frame(source="nop\nreturn", max_locals=4, locals_=None):
    method = MethodInfo(
        name="m",
        descriptor="()V",
        instructions=assemble(source),
        max_locals=max_locals,
    )
    return Frame(
        method_id=MethodId("C", "m"),
        method=method,
        locals=list(locals_ or []),
    )


def test_locals_prefilled_to_max_locals():
    frame = make_frame(max_locals=4, locals_=[7])
    assert frame.locals == [7, 0, 0, 0]


def test_push_pop_lifo():
    frame = make_frame()
    frame.push(1)
    frame.push(2)
    assert frame.pop() == 2
    assert frame.pop() == 1


def test_pop_empty_underflows():
    with pytest.raises(StackUnderflowError):
        make_frame().pop()


def test_store_extends_within_limit():
    frame = make_frame(max_locals=2)
    frame.store(5, 99)
    assert frame.load(5) == 99


def test_load_unallocated_slot_raises():
    frame = make_frame(max_locals=2)
    with pytest.raises(VMError):
        frame.load(3)


def test_store_beyond_hard_limit_raises():
    frame = make_frame()
    with pytest.raises(VMError):
        frame.store(256, 1)


def test_excessive_max_locals_rejected():
    method = MethodInfo(
        name="m", instructions=assemble("return"), max_locals=500
    )
    with pytest.raises(VMError):
        Frame(method_id=MethodId("C", "m"), method=method)


def test_jump_to_offset_boundaries():
    # iconst(5 bytes) then return at offset 5.
    frame = make_frame("iconst 1\nreturn")
    frame.jump_to_offset(5)
    assert frame.pc == 1
    with pytest.raises(VMError):
        frame.jump_to_offset(3)  # inside the iconst


def test_current_offset_tracks_pc():
    frame = make_frame("iconst 1\nreturn")
    assert frame.current_offset == 0
    frame.pc = 1
    assert frame.current_offset == 5
