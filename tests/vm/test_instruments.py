"""BIT-style instruments: counters over real executions."""

from repro.bytecode import assemble
from repro.classfile import ClassFileBuilder
from repro.program import MethodId, Program
from repro.vm import (
    BasicBlockCounter,
    CallCounter,
    InstructionCounter,
    VirtualMachine,
)
from repro.workloads import fibonacci_program


def looped_program(iterations=5):
    builder = ClassFileBuilder("L")
    builder.add_method(
        "main",
        "()V",
        assemble(
            f"""
            iconst {iterations}
            store 0
        loop:
            load 0
            ifle done
            load 0
            iconst 1
            sub
            store 0
            goto loop
        done:
            return
            """
        ),
    )
    return Program(classes=[builder.build()])


def test_basic_block_counter_counts_loop_iterations():
    counter = BasicBlockCounter()
    VirtualMachine(looped_program(5), instruments=[counter]).run()
    main = MethodId("L", "main")
    blocks = counter.block_entries[main]
    # Block 0 (prologue) once; loop header 6 times (5 taken + exit);
    # loop body 5 times; exit block once.
    assert blocks[0] == 1
    assert blocks[1] == 6
    assert blocks[2] == 5
    assert blocks[3] == 1
    assert counter.total_block_entries() == 13


def test_block_entries_bounded_by_instructions():
    blocks = BasicBlockCounter()
    instructions = InstructionCounter()
    VirtualMachine(
        fibonacci_program(10), instruments=[blocks, instructions]
    ).run()
    assert 0 < blocks.total_block_entries() <= instructions.total


def test_instrument_composition_is_order_independent():
    a = [InstructionCounter(), CallCounter(), BasicBlockCounter()]
    b = [BasicBlockCounter(), InstructionCounter(), CallCounter()]
    VirtualMachine(fibonacci_program(8), instruments=a).run()
    VirtualMachine(fibonacci_program(8), instruments=b).run()
    assert a[0].total == b[1].total
    assert a[1].invocations == b[2].invocations
    assert (
        a[2].total_block_entries() == b[0].total_block_entries()
    )
