"""Interpreter semantics: arithmetic, control flow, calls, globals."""

import pytest

from repro.bytecode import SysCall, assemble
from repro.classfile import ClassFileBuilder
from repro.errors import StackUnderflowError, VMError
from repro.program import MethodId, Program
from repro.vm import VirtualMachine
from repro.workloads import (
    fibonacci_program,
    figure1_program,
    mutual_recursion_program,
)


def run_main(source: str, fields=(), extra_methods=()):
    """Build a one-class program from assembly and run it."""
    builder = ClassFileBuilder("T")
    for name in fields:
        builder.add_field(name)
    for name, descriptor, body in extra_methods:
        builder.add_method(name, descriptor, assemble(body))
    builder.add_method("main", "()V", assemble(source))
    program = Program(classes=[builder.build()])
    machine = VirtualMachine(program)
    return machine.run(entry=MethodId("T", "main"))


def test_print_intrinsic():
    result = run_main(f"iconst 42\nsys {SysCall.PRINT}\nreturn")
    assert result.output == [42]


@pytest.mark.parametrize(
    "op,a,b,expected",
    [
        ("add", 2, 3, 5),
        ("sub", 2, 3, -1),
        ("mul", -4, 3, -12),
        ("div", 7, 2, 3),
        ("div", -7, 2, -3),  # truncation toward zero, Java-style
        ("mod", 7, 2, 1),
        ("mod", -7, 2, -1),
        ("and", 6, 3, 2),
        ("or", 6, 3, 7),
        ("xor", 6, 3, 5),
        ("shl", 1, 4, 16),
        ("shr", 16, 4, 1),
    ],
)
def test_arithmetic(op, a, b, expected):
    result = run_main(
        f"iconst {a}\niconst {b}\n{op}\nsys {SysCall.PRINT}\nreturn"
    )
    assert result.output == [expected]


def test_add_wraps_to_32_bits():
    result = run_main(
        f"iconst 2147483647\niconst 1\nadd\nsys {SysCall.PRINT}\nreturn"
    )
    assert result.output == [-2147483648]


def test_division_by_zero_raises():
    with pytest.raises(VMError):
        run_main("iconst 1\niconst 0\ndiv\nreturn")


def test_neg_dup_pop_swap():
    result = run_main(
        "iconst 5\nneg\n"
        "dup\nadd\n"  # -10
        "iconst 3\nswap\n"  # stack: -10, 3 -> 3, -10? swap to [-10?]
        f"sub\nsys {SysCall.PRINT}\nreturn"
    )
    # stack: push -10, push 3, swap -> [3, -10]; sub -> 3 - (-10) = 13
    assert result.output == [13]


def test_conditional_branch_taken_and_not_taken():
    source = """
        iconst 0
        ifeq yes
        iconst 111
        sys 0
        return
    yes:
        iconst 222
        sys 0
        return
    """
    assert run_main(source).output == [222]


def test_loop_execution():
    source = """
        iconst 4
        store 0
        iconst 0
        store 1
    loop:
        load 0
        ifle done
        load 1
        load 0
        add
        store 1
        load 0
        iconst 1
        sub
        store 0
        goto loop
    done:
        load 1
        sys 0
        return
    """
    assert run_main(source).output == [4 + 3 + 2 + 1]


def test_globals_initialized_and_updated():
    builder = ClassFileBuilder("G")
    builder.add_field("seeded", initial_value=41)
    field_ref = builder.field_ref("G", "seeded")
    builder.add_method(
        "main",
        "()V",
        assemble(
            f"""
            getstatic {field_ref}
            iconst 1
            add
            putstatic {field_ref}
            return
            """
        ),
    )
    program = Program(classes=[builder.build()])
    result = VirtualMachine(program).run()
    assert result.global_value("G", "seeded") == 42


def test_cross_class_call_and_return_value():
    result, = [VirtualMachine(fibonacci_program(10)).run()]
    assert result.global_value("Fib", "result") == 55


def test_mutual_recursion_parity():
    even = VirtualMachine(mutual_recursion_program(8)).run()
    assert even.global_value("Even", "answer") == 1
    odd = VirtualMachine(mutual_recursion_program(9)).run()
    assert odd.global_value("Even", "answer") == 0


def test_figure1_program_globals():
    result = VirtualMachine(figure1_program()).run()
    assert result.global_value("A", "a_total") == 25
    assert result.global_value("B", "b_total") == 18


def test_arrays():
    source = f"""
        iconst 3
        newarray
        store 0
        load 0
        iconst 1
        iconst 77
        astore
        load 0
        iconst 1
        aload
        sys {SysCall.PRINT}
        load 0
        arraylen
        sys {SysCall.PRINT}
        return
    """
    assert run_main(source).output == [77, 3]


def test_array_bounds_checked():
    with pytest.raises(VMError):
        run_main("iconst 2\nnewarray\nstore 0\nload 0\niconst 5\naload\nreturn")


def test_negative_array_size_rejected():
    with pytest.raises(VMError):
        run_main("iconst -1\nnewarray\nreturn")


def test_stack_underflow_detected():
    with pytest.raises(StackUnderflowError):
        run_main("pop\nreturn")


def test_instruction_limit_enforced():
    builder = ClassFileBuilder("Spin")
    builder.add_method(
        "main", "()V", assemble("loop:\ngoto loop")
    )
    program = Program(classes=[builder.build()])
    machine = VirtualMachine(program, max_instructions=1000)
    with pytest.raises(VMError):
        machine.run()


def test_sys_halt_stops_execution():
    result = run_main(
        f"iconst 1\nsys {SysCall.PRINT}\nsys {SysCall.HALT}\n"
        f"iconst 2\nsys {SysCall.PRINT}\nreturn"
    )
    assert result.output == [1]
    assert result.halted


def test_sys_rand_is_seeded_and_deterministic():
    source = f"sys {SysCall.RAND}\nsys {SysCall.PRINT}\nreturn"
    first = run_main(source)
    second = run_main(source)
    assert first.output == second.output
    assert 0 <= first.output[0] < 2**31


def test_sys_time_pushes_instruction_count():
    result = run_main(f"nop\nsys {SysCall.TIME}\nsys {SysCall.PRINT}\nreturn")
    assert result.output == [2]  # nop + the SYS TIME itself


def test_external_call_returns_zero():
    builder = ClassFileBuilder("E")
    ref = builder.method_ref("lib/Native", "mystery", "(I)I")
    builder.add_method(
        "main",
        "()V",
        assemble(f"iconst 9\ncall {ref}\nsys {SysCall.PRINT}\nreturn"),
    )
    program = Program(classes=[builder.build()])
    result = VirtualMachine(program).run()
    assert result.output == [0]


def test_call_arity_mismatch_raises():
    builder = ClassFileBuilder("T")
    builder.add_method("needs_two", "(II)I", assemble("load 0\nireturn"))
    ref = builder.method_ref("T", "needs_two", "(II)I")
    builder.add_method(
        "main", "()V", assemble(f"iconst 1\ncall {ref}\npop\nreturn")
    )
    program = Program(classes=[builder.build()])
    with pytest.raises(StackUnderflowError):
        VirtualMachine(program).run()


def test_missing_entry_point_raises():
    builder = ClassFileBuilder("NoMain")
    builder.add_method("other", "()V", assemble("return"))
    program = Program(classes=[builder.build()])
    with pytest.raises(Exception):
        VirtualMachine(program).run()


def test_deep_recursion_overflows():
    builder = ClassFileBuilder("Deep")
    ref = builder.method_ref("Deep", "spin", "()V")
    builder.add_method("spin", "()V", assemble(f"call {ref}\nreturn"))
    builder.add_method("main", "()V", assemble(f"call {ref}\nreturn"))
    program = Program(classes=[builder.build()])
    with pytest.raises(VMError):
        VirtualMachine(program).run()
