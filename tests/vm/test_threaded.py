"""Threaded dispatch is observably identical to the reference loop."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import compile_source
from repro.bytecode import CodeBuilder, Opcode, SysCall, assemble
from repro.classfile import ClassFileBuilder
from repro.errors import StackUnderflowError, VMError
from repro.program import MethodId, Program
from repro.vm import InstructionCounter, VirtualMachine
from repro.vm.threaded import compiled_method_count
from repro.workloads import (
    fibonacci_program,
    figure1_program,
    mutual_recursion_program,
)


def _result_key(result):
    return (
        result.instructions_executed,
        result.output,
        result.globals,
        result.halted,
    )


def _run_both(program, entry=None, args=(), max_instructions=50_000_000):
    """Run under both dispatchers; return the pair of outcomes.

    Each outcome is either ("ok", result key) or ("err", type, message,
    instruction count at the raise) — errors must match exactly too.
    """
    outcomes = []
    for dispatch in ("reference", "threaded"):
        machine = VirtualMachine(
            program, max_instructions=max_instructions, dispatch=dispatch
        )
        try:
            result = machine.run(entry=entry, args=args)
        except (VMError, StackUnderflowError) as error:
            outcomes.append(
                (
                    "err",
                    type(error),
                    str(error),
                    machine.instructions_executed,
                )
            )
        else:
            outcomes.append(("ok", _result_key(result)))
    return outcomes


def _assemble_main(source):
    builder = ClassFileBuilder("T")
    builder.add_method("main", "()V", assemble(source))
    return Program(classes=[builder.build()])


@pytest.mark.parametrize(
    "factory",
    [figure1_program, fibonacci_program, mutual_recursion_program],
)
def test_workload_programs_identical(factory):
    program = factory()
    reference, threaded = _run_both(program)
    assert reference == threaded
    assert reference[0] == "ok"


def test_compiled_code_is_cached_per_program():
    program = figure1_program()
    VirtualMachine(program, dispatch="threaded").run()
    compiled = compiled_method_count(program)
    assert compiled > 0
    VirtualMachine(program, dispatch="threaded").run()
    assert compiled_method_count(program) == compiled


@pytest.mark.parametrize(
    "source",
    [
        # Fell off the end (no return).
        "iconst 1\npop",
        # Operand stack underflow.
        "add\nreturn",
        # Division by zero.
        "iconst 1\niconst 0\ndiv\nreturn",
        # Load from an unallocated local.
        "load 200\nreturn",
        # Bad array size.
        "iconst -1\nnewarray\nreturn",
        # Array index out of bounds.
        "iconst 3\nnewarray\niconst 9\naload\nreturn",
        # arraylen on a non-array.
        "iconst 5\narraylen\nreturn",
        # Unknown SYS code.
        "iconst 1\nsys 99\nreturn",
    ],
)
def test_error_paths_identical(source):
    program = _assemble_main(source)
    reference, threaded = _run_both(program)
    assert reference == threaded
    assert reference[0] == "err"


def test_instruction_limit_identical():
    # Infinite loop: both dispatchers must stop at the same count
    # with the same message.
    program = _assemble_main("goto 0")
    reference, threaded = _run_both(program, max_instructions=10_000)
    assert reference == threaded
    assert reference[0] == "err"
    assert "instruction limit" in reference[2]
    assert reference[3] == 10_001  # counted, then raised


def test_sys_time_reads_same_counter():
    source = (
        f"sys {SysCall.TIME}\nsys {SysCall.PRINT}\n"
        f"sys {SysCall.TIME}\nsys {SysCall.PRINT}\nreturn"
    )
    program = _assemble_main(source)
    reference, threaded = _run_both(program)
    assert reference == threaded
    assert reference[0] == "ok"


def test_halt_identical():
    source = (
        f"iconst 7\nsys {SysCall.PRINT}\nsys {SysCall.HALT}\n"
        f"iconst 8\nsys {SysCall.PRINT}\nreturn"
    )
    program = _assemble_main(source)
    reference, threaded = _run_both(program)
    assert reference == threaded
    assert reference[1][3] is True  # halted


def test_external_call_identical():
    # CALL to a method the program does not define: args consumed,
    # a zero pushed because the descriptor returns a value.
    builder = ClassFileBuilder("T")
    index = builder.constant_pool.add_method_ref(
        "Native", "mystery", "(II)I"
    )
    code = CodeBuilder()
    code.emit(Opcode.ICONST, 1)
    code.emit(Opcode.ICONST, 2)
    code.emit(Opcode.CALL, index)
    code.emit(Opcode.SYS, SysCall.PRINT)
    code.emit(Opcode.RETURN)
    builder.add_method("main", "()V", code.build())
    program = Program(classes=[builder.build()])
    reference, threaded = _run_both(program)
    assert reference == threaded
    assert reference[1][1] == [0]


def test_entry_args_identical():
    builder = ClassFileBuilder("T")
    builder.add_method(
        "main",
        "(II)I",
        assemble("load 0\nload 1\nmul\nireturn"),
    )
    program = Program(classes=[builder.build()])
    reference, threaded = _run_both(
        program, entry=MethodId("T", "main"), args=(6, 7)
    )
    assert reference == threaded
    assert reference[1][1] == [42]


def test_unknown_dispatch_rejected():
    with pytest.raises(VMError, match="unknown dispatch"):
        VirtualMachine(figure1_program(), dispatch="fastest")


def test_threaded_refuses_instruments():
    with pytest.raises(VMError, match="threaded dispatch"):
        VirtualMachine(
            figure1_program(),
            instruments=[InstructionCounter()],
            dispatch="threaded",
        )


def test_auto_with_instruments_uses_reference_loop():
    counter = InstructionCounter()
    program = figure1_program()
    machine = VirtualMachine(program, instruments=[counter])
    result = machine.run()
    # The reference loop drove the instrument for every instruction.
    assert counter.total == result.instructions_executed


_SNIPPETS = st.sampled_from(
    [
        "var x = 0; while (x < 10) { x = x + 2; } print(x);",
        "print(1 - 3); print(0 - 7 % 4);",
        "G.x = 5; if (G.x >= 5) { print(G.x * G.x); }",
        "var a = 3; var b = 4; print(a * a + b * b);",
        "var i = 0; while (i < 5) { print(i); i = i + 1; }",
    ]
)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(body=_SNIPPETS, seed=st.integers(0, 2**16))
def test_property_random_programs_identical(body, seed):
    source = (
        f"class Main {{ func main() {{ {body} }} }} "
        "class G { global x = 3; }"
    )
    program = compile_source(source)
    expected = None
    for dispatch in ("reference", "threaded"):
        machine = VirtualMachine(
            program, rng_seed=seed, dispatch=dispatch
        )
        key = _result_key(machine.run())
        if expected is None:
            expected = key
        else:
            assert key == expected
