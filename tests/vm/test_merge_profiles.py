"""Multi-input profile merging (§4.2's 'adequate sets of inputs')."""

import pytest

from repro.program import MethodId
from repro.reorder import order_from_profile
from repro.vm import merge_profiles
from repro.reorder import profile_program
from repro.bytecode import assemble
from repro.classfile import ClassFileBuilder
from repro.program import Program


def branchy_program():
    """main(flag): flag!=0 -> left() then shared(); else right() then
    shared()."""
    builder = ClassFileBuilder("P")
    left = builder.method_ref("P", "left", "()V")
    right = builder.method_ref("P", "right", "()V")
    shared = builder.method_ref("P", "shared", "()V")
    builder.add_method(
        "main",
        "(I)V",
        assemble(
            f"""
            load 0
            ifeq other
            call {left}
            call {shared}
            return
        other:
            call {right}
            call {shared}
            return
            """
        ),
    )
    for name in ("left", "right", "shared"):
        builder.add_method(name, "()V", assemble("nop\nreturn"))
    return Program(
        classes=[builder.build()], entry_point=MethodId("P", "main")
    )


def test_merge_requires_input():
    with pytest.raises(ValueError):
        merge_profiles([])


def test_single_profile_passthrough():
    program = branchy_program()
    profile = profile_program(program, args=(1,))
    assert merge_profiles([profile]) is profile


def test_union_of_methods():
    program = branchy_program()
    left_run = profile_program(program, args=(1,))
    right_run = profile_program(program, args=(0,))
    merged = merge_profiles([left_run, right_run])
    names = {m.method_name for m in merged.order}
    assert names == {"main", "left", "right", "shared"}


def test_coverage_sorts_common_methods_first():
    program = branchy_program()
    merged = merge_profiles(
        [
            profile_program(program, args=(1,)),
            profile_program(program, args=(0,)),
        ]
    )
    order = merged.order
    # main and shared ran in both inputs; left/right in one each.
    assert order.index(MethodId("P", "main")) == 0
    assert order.index(MethodId("P", "shared")) < order.index(
        MethodId("P", "left")
    )
    assert order.index(MethodId("P", "shared")) < order.index(
        MethodId("P", "right")
    )


def test_statistics_accumulate():
    program = branchy_program()
    a = profile_program(program, args=(1,))
    b = profile_program(program, args=(0,))
    merged = merge_profiles([a, b])
    main = MethodId("P", "main")
    assert merged.method_stats[main].invocations == 2
    assert merged.total_instructions == (
        a.total_instructions + b.total_instructions
    )


def test_merged_counters_are_monotone_and_usable():
    program = branchy_program()
    merged = merge_profiles(
        [
            profile_program(program, args=(1,)),
            profile_program(program, args=(0,)),
        ]
    )
    befores = [e.dynamic_instructions_before for e in merged.events]
    assert befores == sorted(befores)
    unique = [e.unique_bytes_before for e in merged.events]
    assert unique == sorted(unique)
    # Drives reordering without a static fallback needed.
    order = order_from_profile(program, merged)
    assert len(order) == program.method_count
