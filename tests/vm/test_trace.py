"""Trace recording and first-use profiling."""

from repro.program import MethodId
from repro.vm import (
    CallCounter,
    InstructionCounter,
    TraceRecorder,
    VirtualMachine,
    record_run,
)
from repro.workloads import (
    fibonacci_program,
    figure1_program,
    mutual_recursion_program,
)


def test_first_use_order_matches_paper_example():
    _, recorder = record_run(figure1_program())
    assert recorder.profile.order == [
        MethodId("A", "main"),
        MethodId("B", "Bar_B"),
        MethodId("A", "Bar_A"),
        MethodId("A", "Foo_A"),
        MethodId("B", "Foo_B"),
    ]


def test_trace_total_matches_vm_count():
    result, recorder = record_run(figure1_program())
    assert (
        recorder.trace.total_instructions
        == result.instructions_executed
    )
    assert recorder.profile.total_instructions == (
        result.instructions_executed
    )


def test_trace_first_use_order_consistent_with_profile():
    _, recorder = record_run(figure1_program())
    assert recorder.trace.first_use_order() == recorder.profile.order


def test_segments_alternate_across_calls():
    _, recorder = record_run(fibonacci_program(5))
    methods = [segment.method for segment in recorder.trace.segments]
    assert methods[0] == MethodId("Fib", "main")
    assert MethodId("Fib", "fib") in methods
    # A recursive run must produce many segments, not one per method.
    assert len(recorder.trace) > 5
    assert all(
        segment.instructions > 0 for segment in recorder.trace.segments
    )


def test_first_use_events_are_monotone():
    _, recorder = record_run(figure1_program())
    events = recorder.profile.events
    befores = [event.dynamic_instructions_before for event in events]
    assert befores == sorted(befores)
    unique_bytes = [event.unique_bytes_before for event in events]
    assert unique_bytes == sorted(unique_bytes)
    assert events[0].dynamic_instructions_before == 0
    assert events[0].unique_bytes_before == 0
    assert [event.index for event in events] == list(range(len(events)))


def test_unique_bytes_bounded_by_static_size():
    program = figure1_program()
    _, recorder = record_run(program)
    for method_id, stats in recorder.profile.method_stats.items():
        static_size = sum(
            instruction.size
            for instruction in program.method(method_id).instructions
        )
        assert 0 < stats.unique_bytes <= static_size


def test_invocation_counts():
    _, recorder = record_run(mutual_recursion_program(6))
    stats = recorder.profile.method_stats
    assert stats[MethodId("Even", "main")].invocations == 1
    total_parity_calls = (
        stats[MethodId("Even", "is_even")].invocations
        + stats[MethodId("Odd", "is_odd")].invocations
    )
    assert total_parity_calls == 7  # 6 decrements + the base case


def test_was_executed_and_event_lookup():
    _, recorder = record_run(figure1_program())
    profile = recorder.profile
    assert profile.was_executed(MethodId("A", "main"))
    assert not profile.was_executed(MethodId("A", "missing"))
    event = profile.event_for(MethodId("B", "Bar_B"))
    assert event is not None
    assert event.index == 1
    assert profile.event_for(MethodId("Zz", "zz")) is None


def test_instruction_counter_agrees_with_recorder():
    counter = InstructionCounter()
    recorder = TraceRecorder()
    machine = VirtualMachine(
        figure1_program(), instruments=[counter, recorder]
    )
    result = machine.run()
    assert counter.total == result.instructions_executed
    assert sum(counter.per_method.values()) == counter.total


def test_call_counter_tracks_externals():
    from repro.bytecode import assemble
    from repro.classfile import ClassFileBuilder
    from repro.program import Program

    builder = ClassFileBuilder("X")
    ref = builder.method_ref("sys/Win", "draw", "()V")
    builder.add_method(
        "main", "()V", assemble(f"call {ref}\ncall {ref}\nreturn")
    )
    counter = CallCounter()
    VirtualMachine(
        Program(classes=[builder.build()]), instruments=[counter]
    ).run()
    assert counter.external_calls[MethodId("sys/Win", "draw")] == 2
    assert counter.invocations[MethodId("X", "main")] == 1
