"""Experiment harness: table structure and the paper's claims.

These tests assert the *qualitative shapes* the reproduction must show
(DESIGN.md §4), not absolute numbers.
"""

import pytest

from repro.harness import (
    BENCHMARK_NAMES,
    bundle,
    figure6_summary,
    table2_statistics,
    table3_base_case,
    table4_invocation_latency,
    table7_interleaved,
    table8_global_data,
    table9_data_breakdown,
)
from repro.harness.results import ResultTable


def test_benchmark_names():
    assert BENCHMARK_NAMES == (
        "BIT",
        "Hanoi",
        "JavaCup",
        "Jess",
        "JHLZip",
        "TestDes",
    )


def test_bundle_is_cached_and_complete():
    first = bundle("Hanoi")
    second = bundle("Hanoi")
    assert first is second
    assert first.scg.order[0] == first.workload.program.resolve_entry()
    assert len(first.train) == first.workload.program.method_count
    assert len(first.test) == first.workload.program.method_count


def test_table2_structure():
    table = table2_statistics()
    assert table.column("Program")[:6] == list(BENCHMARK_NAMES)
    jess = table.row_for("Jess")
    assert jess[table.columns.index("Total Files")] == 97
    assert jess[table.columns.index("Total Methods")] == 1568


def test_table3_transfer_dominates_modem():
    """Shape 1: transfer is ~90%+ of strict time on the modem and
    roughly half on T1 (averaged)."""
    table = table3_base_case()
    average = table.row_for("AVG")
    t1 = average[table.columns.index("T1 % Transfer")]
    modem = average[table.columns.index("Modem % Transfer")]
    assert 40 <= t1 <= 62
    assert 85 <= modem <= 100
    # Per-program: every benchmark but Hanoi is modem-dominated.
    for name in BENCHMARK_NAMES:
        if name == "Hanoi":
            continue
        row = table.row_for(name)
        assert row[table.columns.index("Modem % Transfer")] > 90


def test_table4_nonstrict_cuts_invocation_latency():
    """Shape 2: non-strict helps a lot; partitioning helps more."""
    table = table4_invocation_latency()
    average = table.row_for("AVG")
    ns_decrease = average[table.columns.index("T1 NS %dec")]
    dp_decrease = average[table.columns.index("T1 DP %dec")]
    assert 25 <= ns_decrease <= 75
    assert dp_decrease > ns_decrease
    for name in BENCHMARK_NAMES:
        row = table.row_for(name)
        strict = row[table.columns.index("T1 Strict")]
        nonstrict = row[table.columns.index("T1 NonStrict")]
        partitioned = row[table.columns.index("T1 DataPart")]
        assert partitioned <= nonstrict <= strict


def test_table7_ordering_quality():
    """Shape 3: Test <= Train <= SCG (on averages), modem gains exceed
    T1 gains."""
    table = table7_interleaved()
    average = table.row_for("AVG")

    def cell(column):
        return average[table.columns.index(column)]

    assert cell("T1 Test") <= cell("T1 Train") + 0.5
    assert cell("T1 Train") <= cell("T1 SCG") + 0.5
    assert cell("modem Test") <= cell("modem Train") + 0.5
    assert cell("modem Train") <= cell("modem SCG") + 0.5
    # Gains (100 - normalized) are larger on the modem.
    assert (100 - cell("modem SCG")) > (100 - cell("T1 SCG"))


def test_figure6_summary_shapes():
    """Shape 4+5: interleaved beats parallel; partitioning adds gains;
    the overall reduction is tens of percent."""
    table = figure6_summary()

    def row(label):
        return table.row_for(label)

    parallel = row("Parallel File Transfer")
    parallel_dp = row("PFC Data Partitioned")
    interleaved = row("Interleaved File Transfer")
    interleaved_dp = row("IFC Data Partitioned")
    for index in range(1, len(table.columns)):
        # The paper's interleaved transfer beats parallel; in our model
        # the byte-triggered schedule plus demand-fetch correction close
        # that gap (and can even edge ahead on static orderings, where
        # correction fixes what a fixed stream cannot), so assert the
        # two methodologies stay within a few points of each other.
        assert interleaved[index] <= parallel[index] + 3.5
        assert interleaved_dp[index] <= interleaved[index] + 0.5
        # Partitioning clearly helps interleaved transfer; for parallel
        # transfer the trailing-unused unit competes for bandwidth, so
        # allow a small regression there (within noise).
        assert parallel_dp[index] <= parallel[index] + 1.5
        # Everything shows a real reduction versus strict.
        assert interleaved_dp[index] < 90
    # Modem, best configuration: a >25% average reduction.
    best = interleaved_dp[table.columns.index("Modem Test")]
    assert best < 72


def test_table8_pool_dominates_and_utf8_leads():
    table = table8_global_data()
    for name in BENCHMARK_NAMES:
        row = table.row_for(name)
        assert row[table.columns.index("CPool")] > 80
        assert row[table.columns.index("Utf8")] > 30
    # TestDes is the integer-heavy outlier, as in the paper.
    des = table.row_for("TestDes")
    others_ints = [
        table.row_for(name)[table.columns.index("Ints")]
        for name in BENCHMARK_NAMES
        if name != "TestDes"
    ]
    assert des[table.columns.index("Ints")] > max(others_ints)


def test_table9_matches_spec_percentages():
    from repro.workloads.spec import benchmark_spec

    table = table9_data_breakdown()
    for name in BENCHMARK_NAMES:
        spec = benchmark_spec(name)
        row = table.row_for(name)
        assert row[
            table.columns.index("% Needed First")
        ] == pytest.approx(spec.percent_globals_needed_first, abs=6)
        assert row[
            table.columns.index("% In Methods")
        ] == pytest.approx(spec.percent_globals_in_methods, abs=8)


def test_result_table_helpers():
    table = ResultTable(
        key="t", title="T", columns=["Program", "x", "y"]
    )
    table.add_row("a", 1.0, 2.0)
    table.add_row("b", 3.0, 4.0)
    table.add_average_row()
    assert table.cell("AVG", "x") == 2.0
    assert table.column("y") == [2.0, 4.0, 3.0]
    rendered = table.render()
    assert "Program" in rendered and "AVG" in rendered
    with pytest.raises(ValueError):
        table.add_row("too", "few")
    with pytest.raises(KeyError):
        table.row_for("missing")
    as_dict = table.to_dict()
    assert as_dict["key"] == "t"
    assert len(as_dict["rows"]) == 3
