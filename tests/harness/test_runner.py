"""The repro-experiments CLI."""

import pytest

from repro.harness.runner import EXPERIMENTS, main


def test_experiment_registry_covers_all_tables():
    assert set(EXPERIMENTS) == {
        "table2",
        "table3",
        "table4",
        "table5",
        "table6",
        "table7",
        "table8",
        "table9",
        "table10",
        "figure6",
    }


def test_list_flag(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "table5" in out
    assert "figure6" in out


def test_run_single_experiment(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "Jess" in out


def test_unknown_experiment_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["tableX"])
