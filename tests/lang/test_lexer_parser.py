"""Mini lexer and parser."""

import pytest

from repro.errors import CompileError
from repro.lang import TokenKind, parse, tokenize
from repro.lang import ast


def test_tokenize_kinds():
    tokens = tokenize('class A { global x = 3; } // note\n"hi"')
    kinds = [token.kind for token in tokens]
    assert kinds[0] == TokenKind.KEYWORD
    assert kinds[1] == TokenKind.NAME
    assert TokenKind.INT in kinds
    assert TokenKind.STRING in kinds
    assert kinds[-1] == TokenKind.EOF


def test_tokenize_two_char_operators():
    texts = [t.text for t in tokenize("a <= b == c && d || !e")]
    assert "<=" in texts
    assert "==" in texts
    assert "&&" in texts
    assert "||" in texts
    assert "!" in texts


def test_tokenize_positions():
    tokens = tokenize("a\n  b")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (2, 3)


def test_tokenize_rejects_unterminated_string():
    with pytest.raises(CompileError):
        tokenize('"oops')


def test_tokenize_rejects_stray_character():
    with pytest.raises(CompileError):
        tokenize("class A { @ }")


def test_parse_class_structure():
    node = parse(
        """
        class A {
          global count = 5;
          global items;
          func main() { }
          func helper(x, y) { return x + y; }
        }
        """
    )
    assert len(node.classes) == 1
    class_node = node.classes[0]
    assert class_node.name == "A"
    assert [g.name for g in class_node.globals] == ["count", "items"]
    assert class_node.globals[0].initial_value == 5
    assert class_node.globals[1].initial_value is None
    assert [f.name for f in class_node.funcs] == ["main", "helper"]
    assert class_node.funcs[1].params == ("x", "y")


def test_parse_negative_global_initializer():
    node = parse("class A { global x = -7; func main() {} }")
    assert node.classes[0].globals[0].initial_value == -7


def test_parse_precedence():
    node = parse("class A { func main() { var x = 1 + 2 * 3; } }")
    decl = node.classes[0].funcs[0].body[0]
    assert isinstance(decl.value, ast.Binary)
    assert decl.value.op == "+"
    assert isinstance(decl.value.right, ast.Binary)
    assert decl.value.right.op == "*"


def test_parse_if_else_chain():
    node = parse(
        """
        class A { func main() {
          if (1 < 2) { print(1); } else if (2 < 3) { print(2); }
          else { print(3); }
        } }
        """
    )
    if_node = node.classes[0].funcs[0].body[0]
    assert isinstance(if_node, ast.If)
    assert isinstance(if_node.else_body[0], ast.If)


def test_parse_assignment_targets():
    node = parse(
        """
        class A { global g;
          func main() {
            var x = 0;
            x = 1;
            A.g = 2;
            g = 3;
            x = x;
          }
        }
        """
    )
    body = node.classes[0].funcs[0].body
    assert isinstance(body[1], ast.Assign)
    assert isinstance(body[2], ast.GlobalAssign)
    assert body[2].class_name == "A"
    # 'g = 3' with no local g parses as a variable assignment (the
    # compiler reports the undeclared variable).
    assert isinstance(body[3], ast.Assign)


def test_parse_index_assignment():
    node = parse(
        "class A { func main() { var a = new[3]; a[0] = 9; } }"
    )
    assign = node.classes[0].funcs[0].body[1]
    assert isinstance(assign, ast.IndexAssign)


def test_parse_cross_class_call_and_global():
    node = parse(
        "class A { func main() { var v = B.f(1) + B.g; } }"
        "class B { global g; func f(x) { return x; } }"
    )
    value = node.classes[0].funcs[0].body[0].value
    assert isinstance(value.left, ast.Call)
    assert value.left.class_name == "B"
    assert isinstance(value.right, ast.GlobalRef)


def test_parse_rejects_bad_assignment_target():
    with pytest.raises(CompileError):
        parse("class A { func main() { 1 = 2; } }")


def test_parse_rejects_duplicate_params():
    with pytest.raises(CompileError):
        parse("class A { func f(x, x) { } func main() {} }")


def test_parse_rejects_empty_program():
    with pytest.raises(CompileError):
        parse("   // nothing\n")


def test_parse_rejects_missing_semicolon():
    with pytest.raises(CompileError):
        parse("class A { func main() { var x = 1 } }")
