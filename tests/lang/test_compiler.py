"""Mini compiler: end-to-end semantics via the VM."""

import pytest

from repro.errors import CompileError
from repro.lang import compile_source
from repro.program import MethodId
from repro.vm import VirtualMachine


def run(source: str):
    return VirtualMachine(compile_source(source)).run()


def test_arithmetic_and_print():
    result = run(
        "class A { func main() { print(2 + 3 * 4 - 6 / 2); } }"
    )
    assert result.output == [11]


def test_unary_operators():
    result = run(
        "class A { func main() { print(-5); print(!0); print(!7); } }"
    )
    assert result.output == [-5, 1, 0]


@pytest.mark.parametrize(
    "expr,expected",
    [
        ("1 < 2", 1),
        ("2 < 1", 0),
        ("2 <= 2", 1),
        ("3 > 2", 1),
        ("2 >= 3", 0),
        ("4 == 4", 1),
        ("4 != 4", 0),
    ],
)
def test_comparisons(expr, expected):
    result = run(f"class A {{ func main() {{ print({expr}); }} }}")
    assert result.output == [expected]


def test_short_circuit_and():
    # If && were not short-circuit, boom() would print.
    result = run(
        """
        class A {
          func main() { print(0 && boom()); }
          func boom() { print(666); return 1; }
        }
        """
    )
    assert result.output == [0]


def test_short_circuit_or():
    result = run(
        """
        class A {
          func main() { print(1 || boom()); }
          func boom() { print(666); return 1; }
        }
        """
    )
    assert result.output == [1]


def test_while_loop_sum():
    result = run(
        """
        class A { func main() {
          var i = 1; var total = 0;
          while (i <= 100) { total = total + i; i = i + 1; }
          print(total);
        } }
        """
    )
    assert result.output == [5050]


def test_if_else_branches():
    result = run(
        """
        class A { func main() {
          var x = 10;
          if (x > 5) { print(1); } else { print(2); }
          if (x < 5) { print(3); } else { print(4); }
        } }
        """
    )
    assert result.output == [1, 4]


def test_recursion():
    result = run(
        """
        class A {
          func main() { print(fib(12)); }
          func fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
        }
        """
    )
    assert result.output == [144]


def test_cross_class_calls_and_globals():
    result = run(
        """
        class Main {
          func main() {
            Counter.bump(); Counter.bump(); Counter.bump();
            print(Counter.count);
          }
        }
        class Counter {
          global count = 0;
          func bump() { Counter.count = Counter.count + 1; }
        }
        """
    )
    assert result.output == [3]
    assert result.global_value("Counter", "count") == 3


def test_unqualified_global_and_call_resolve_to_own_class():
    result = run(
        """
        class A {
          global acc = 1;
          func main() { A.acc = double(A.acc); print(A.acc); }
          func double(x) { return x * 2; }
        }
        """
    )
    assert result.output == [2]


def test_arrays():
    result = run(
        """
        class A { func main() {
          var a = new[4];
          var i = 0;
          while (i < len(a)) { a[i] = i * i; i = i + 1; }
          print(a[3]);
          print(len(a));
        } }
        """
    )
    assert result.output == [9, 4]


def test_string_literals():
    result = run('class A { func main() { print("hello"); } }')
    assert result.output == ["hello"]


def test_halt_statement():
    result = run(
        "class A { func main() { print(1); halt; print(2); } }"
    )
    assert result.output == [1]
    assert result.halted


def test_rand_is_deterministic_across_runs():
    source = "class A { func main() { print(rand()); } }"
    assert run(source).output == run(source).output


def test_void_call_as_statement_and_value_call_popped():
    result = run(
        """
        class A {
          func main() { noise(); value(); print(7); }
          func noise() { }
          func value() { return 42; }
        }
        """
    )
    assert result.output == [7]


def test_entry_point_set_to_main():
    program = compile_source(
        "class X { func helper() {} }"
        "class Y { func main() { print(0); } }"
    )
    assert program.entry_point == MethodId("Y", "main")


def test_missing_main_rejected():
    with pytest.raises(CompileError):
        compile_source("class A { func helper() {} }")


def test_undeclared_variable_rejected():
    with pytest.raises(CompileError):
        compile_source("class A { func main() { x = 1; } }")


def test_duplicate_variable_rejected():
    with pytest.raises(CompileError):
        compile_source(
            "class A { func main() { var x = 1; var x = 2; } }"
        )


def test_unknown_function_rejected():
    with pytest.raises(CompileError):
        compile_source("class A { func main() { nope(); } }")


def test_unknown_global_rejected():
    with pytest.raises(CompileError):
        compile_source("class A { func main() { print(B.g); } }")


def test_wrong_arity_rejected():
    with pytest.raises(CompileError):
        compile_source(
            "class A { func main() { f(1, 2); } func f(x) { } }"
        )


def test_void_function_in_expression_rejected():
    with pytest.raises(CompileError):
        compile_source(
            "class A { func main() { print(f()); } func f() { } }"
        )


def test_bare_return_in_value_function_rejected():
    with pytest.raises(CompileError):
        compile_source(
            "class A { func main() {} "
            "func f() { if (1) { return 2; } return; } }"
        )


def test_fallthrough_value_function_returns_zero():
    result = run(
        """
        class A {
          func main() { print(f(0)); }
          func f(x) { if (x > 0) { return 9; } }
        }
        """
    )
    assert result.output == [0]


def test_compiled_program_supports_full_pipeline():
    """Compiled programs flow through profiling and restructuring."""
    from repro.reorder import profile_first_use, restructure

    program = compile_source(
        """
        class Main {
          func main() { var v = Helper.work(3); print(v); }
        }
        class Helper {
          func unused() { return 1; }
          func work(n) { return n * 2; }
        }
        """
    )
    order = profile_first_use(program)
    restructured = restructure(program, order)
    assert [m.name for m in restructured.class_named("Helper").methods] == [
        "work",
        "unused",
    ]
    assert VirtualMachine(restructured).run().output == [6]


def test_compile_ast_direct():
    """The AST entry point works without going through the parser."""
    from repro.lang import compile_ast, parse

    tree = parse("class A { func main() { print(4 + 5); } }")
    program = compile_ast(tree)
    assert VirtualMachine(program).run().output == [9]
