"""Server + client over localhost: the acceptance-criteria suite.

These tests move real bytes over real sockets, so they assert on
*ordering* and *population* (deterministic under token-bucket pacing),
never on exact wall-clock values.
"""

import asyncio

import pytest

from repro import figure1_program, record_run
from repro.errors import ConnectionLostError, ProtocolError, TransferError
from repro.netserve import (
    ClassFileServer,
    NonStrictFetcher,
    TokenBucket,
    run_networked,
)
from repro.program import MethodId
from repro.transfer import UnitKind


def run(coroutine):
    return asyncio.run(coroutine)


async def started_server(**kwargs):
    server = ClassFileServer(figure1_program(), **kwargs)
    await server.start()
    return server


def manifest_units(manifest):
    """Announced (class, method) pairs from a HELLO_ACK manifest."""
    return [
        (class_name, method)
        for _, class_name, method, _ in manifest["sequence"]
    ]


# -- full-workload completion ------------------------------------------


def test_multi_class_workload_completes_non_strict():
    async def scenario():
        server = await started_server()
        host, port = server.address
        fetcher = NonStrictFetcher(host, port, policy="non_strict")
        manifest = await fetcher.connect()
        await fetcher.wait_until_complete()
        assert fetcher.stats.units_received == manifest["unit_count"]
        assert fetcher.stats.payload_bytes == manifest["total_bytes"]
        assert fetcher.stats.bytes_received > manifest["total_bytes"]
        # Every method of every class became available.
        for class_name, method in manifest_units(manifest):
            if method is not None:
                assert fetcher.is_method_available(
                    MethodId(class_name, method)
                )
        await fetcher.aclose()
        await server.aclose()

    run(scenario())


def test_intra_class_order_is_preserved():
    """A method unit never precedes its class's global unit."""

    async def scenario():
        server = await started_server()
        host, port = server.address
        fetcher = NonStrictFetcher(host, port)
        await fetcher.connect()
        await fetcher.wait_until_complete()
        globals_seen = set()
        for unit, _ in fetcher.unit_log:
            if unit.kind in (
                UnitKind.GLOBAL_DATA,
                UnitKind.GLOBAL_FIRST,
            ):
                globals_seen.add(unit.class_name)
            elif unit.kind == UnitKind.METHOD:
                assert unit.class_name in globals_seen
        await fetcher.aclose()
        await server.aclose()

    run(scenario())


# -- demand-fetch priority (§5.1 on the wire) --------------------------


def test_demand_fetch_is_served_before_queued_regular_units():
    async def scenario():
        # Slow enough that the demand lands while most units queue.
        server = await started_server(bandwidth=2000, burst=64)
        host, port = server.address
        fetcher = NonStrictFetcher(host, port, policy="non_strict")
        manifest = await fetcher.connect()
        announced = manifest_units(manifest)
        # Force a misprediction: demand the very last announced method.
        last_class, last_method = next(
            (c, m) for c, m in reversed(announced) if m is not None
        )
        target = MethodId(last_class, last_method)
        await fetcher.wait_for_method(target)
        assert fetcher.stats.demand_fetches >= 1
        conn = server.stats.connections[0]
        assert conn.demand_fetches >= 1
        assert conn.promoted_units >= 1
        await fetcher.wait_until_complete()

        # The demanded unit must have overtaken at least one unit that
        # was announced ahead of it: it was served before queued
        # regular units, the front-of-queue rule on the wire.
        arrival_order = [
            (unit.class_name, unit.method.method_name if unit.method else None)
            for unit, _ in fetcher.unit_log
        ]
        demanded_pos = arrival_order.index((last_class, last_method))
        announced_pos = announced.index((last_class, last_method))
        overtaken = [
            pair
            for pair in announced[:announced_pos]
            if arrival_order.index(pair) > demanded_pos
        ]
        assert overtaken, (
            f"demand fetch was not prioritized: announced={announced} "
            f"arrived={arrival_order}"
        )
        await fetcher.aclose()
        await server.aclose()

    run(scenario())


# -- bridge: measured latencies ----------------------------------------


def test_bridge_populates_latency_for_every_invoked_method():
    async def scenario():
        program = figure1_program()
        _, recorder = record_run(program)
        server = await started_server(bandwidth=20_000, burst=128)
        host, port = server.address
        fetcher = NonStrictFetcher(host, port, policy="non_strict")
        await fetcher.connect()
        result = await run_networked(fetcher, recorder.trace, cpi=50)
        invoked = recorder.trace.methods_used()
        assert result.latencies.unit == "seconds"
        for method in invoked:
            assert method in result.latencies
            assert result.latencies.latency_for(method) >= 0.0
        assert len(result.latencies) == len(invoked)
        assert result.invocation_latency >= 0.0
        assert result.wall_seconds >= result.stall_seconds
        assert result.bytes_received > 0
        await fetcher.aclose()
        await server.aclose()

    run(scenario())


# -- paced strict vs non-strict ----------------------------------------


def test_nonstrict_first_method_available_before_strict():
    """Same workload, same pacing: the entry method becomes available
    strictly earlier under non-strict transfer (the paper's Table 4
    effect, measured on a real socket)."""

    async def first_availability(policy):
        server = await started_server(bandwidth=1500, burst=64)
        host, port = server.address
        fetcher = NonStrictFetcher(host, port, policy=policy)
        await fetcher.connect()
        arrival = await fetcher.wait_for_method(
            MethodId("A", "main"), demand=False
        )
        await fetcher.aclose()
        await server.aclose()
        return arrival

    async def scenario():
        strict = await first_availability("strict")
        non_strict = await first_availability("non_strict")
        # Strict waits for all of class A; non-strict only for the
        # global unit plus main's unit.  At 1500 B/s the gap is tens
        # of milliseconds — far above scheduler jitter.
        assert non_strict < strict

    run(scenario())


# -- robustness ---------------------------------------------------------


def test_connection_loss_mid_stream_raises_typed_error():
    async def scenario():
        # Pacing so slow that nearly nothing arrives before the cut.
        server = await started_server(bandwidth=300, burst=16)
        host, port = server.address
        fetcher = NonStrictFetcher(
            host,
            port,
            demand_timeout=0.2,
            demand_retries=2,
        )
        manifest = await fetcher.connect()
        announced = manifest_units(manifest)
        last_class, last_method = next(
            (c, m) for c, m in reversed(announced) if m is not None
        )
        target = MethodId(last_class, last_method)
        waiter = asyncio.ensure_future(
            fetcher.wait_for_method(target, demand=False)
        )
        # Deterministic readiness: yield to the loop until the waiter
        # has registered its arrival event, instead of hoping a fixed
        # sleep is long enough on a loaded CI machine.
        for _ in range(1000):
            if target in fetcher._events:
                break
            await asyncio.sleep(0)
        else:
            raise AssertionError("waiter never registered its event")
        await server.aclose()  # drops the connection mid-stream
        with pytest.raises(ConnectionLostError):
            await asyncio.wait_for(waiter, timeout=5.0)
        with pytest.raises(ConnectionLostError):
            await fetcher.wait_until_complete()
        await fetcher.aclose()

    run(scenario())


def test_demand_fetch_timeout_raises_not_hangs():
    async def scenario():
        server = await started_server(bandwidth=300, burst=16)
        host, port = server.address
        fetcher = NonStrictFetcher(
            host,
            port,
            demand_timeout=0.05,
            demand_retries=2,
        )
        await fetcher.connect()
        # A method the server will never have: retries, then raises.
        with pytest.raises(TransferError):
            await fetcher.wait_for_method(MethodId("Ghost", "spooky"))
        assert fetcher.stats.demand_fetches == 2
        await fetcher.aclose()
        await server.aclose()

    run(scenario())


def test_unknown_policy_is_rejected_with_error_frame():
    async def scenario():
        server = await started_server()
        host, port = server.address
        fetcher = NonStrictFetcher(host, port, policy="telepathy")
        with pytest.raises(ProtocolError):
            await fetcher.connect()
        await fetcher.aclose()
        await server.aclose()

    run(scenario())


# -- concurrency and pacing --------------------------------------------


def test_many_concurrent_clients_each_get_everything():
    async def scenario():
        server = await started_server()
        host, port = server.address

        async def one_client(policy):
            fetcher = NonStrictFetcher(host, port, policy=policy)
            manifest = await fetcher.connect()
            await fetcher.wait_until_complete()
            count = fetcher.stats.units_received
            await fetcher.aclose()
            return count, manifest["unit_count"]

        results = await asyncio.gather(
            *(
                one_client("non_strict" if i % 2 else "strict")
                for i in range(8)
            )
        )
        for received, expected in results:
            assert received == expected
        assert len(server.stats.connections) == 8
        await server.aclose()

    run(scenario())


def test_token_bucket_enforces_long_run_rate():
    async def scenario():
        import time

        bucket = TokenBucket(rate=50_000, burst=100)
        start = time.monotonic()
        total = 0
        while total < 10_000:
            await bucket.consume(1000)
            total += 1000
        elapsed = time.monotonic() - start
        # 10_000 bytes at 50_000 B/s is 0.2s minus the 100-byte burst;
        # allow generous headroom above for slow CI, none below.
        assert elapsed >= 0.15

    run(scenario())


def test_strategy_negotiation_textual_vs_static():
    async def scenario():
        server = await started_server()
        host, port = server.address
        manifests = {}
        for strategy in ("static", "textual"):
            fetcher = NonStrictFetcher(
                host, port, strategy=strategy
            )
            manifests[strategy] = await fetcher.connect()
            await fetcher.wait_until_complete()
            await fetcher.aclose()
        assert manifests["static"]["strategy"] == "static"
        assert manifests["textual"]["strategy"] == "textual"
        # figure1's static first-use order differs from textual order,
        # so the announced sequences must differ.
        assert (
            manifests["static"]["sequence"]
            != manifests["textual"]["sequence"]
        )
        await server.aclose()

    run(scenario())

def test_weighted_strategy_negotiates_and_serves():
    async def scenario():
        server = await started_server()
        host, port = server.address
        fetcher = NonStrictFetcher(host, port, strategy="weighted")
        manifest = await fetcher.connect()
        # Unlike "profile", "weighted" needs no training profile: it
        # degrades to its pure-static layout and keeps its name.
        assert manifest["strategy"] == "weighted"
        await fetcher.wait_until_complete()
        await fetcher.aclose()
        await server.aclose()

    run(scenario())


def test_profile_strategy_without_profile_falls_back_to_static():
    async def scenario():
        server = await started_server()
        host, port = server.address
        fetcher = NonStrictFetcher(host, port, strategy="profile")
        manifest = await fetcher.connect()
        assert manifest["strategy"] == "static"
        await fetcher.wait_until_complete()
        await fetcher.aclose()
        await server.aclose()

    run(scenario())
