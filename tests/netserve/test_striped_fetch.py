"""Striped fetch: pull-mode sessions, scoreboard retire semantics,
hedged demand races, and teardown hygiene.

The chaos scenarios (link cuts, outages, flapping, stalls) live in
``test_striped_chaos.py``; this file covers the mechanism itself.
"""

import asyncio
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import figure1_program
from repro.netserve import (
    ClassFileServer,
    NonStrictFetcher,
    StripedResilientFetcher,
)
from repro.netserve.protocol import (
    FrameKind,
    demand_fetch_frame,
    encode_frame,
    hello_frame,
    read_frame,
)
from repro.netserve.striped import LinkState, _Link
from repro.program import MethodId
from repro.transfer import UnitKind


def run(coroutine):
    return asyncio.run(coroutine)


async def clean_reference(program):
    server = ClassFileServer(program)
    host, port = await server.start()
    fetcher = NonStrictFetcher(host, port)
    manifest = await fetcher.connect()
    await fetcher.wait_until_complete()
    data = {name: fetcher.class_bytes(name) for name in fetcher.buffers}
    methods = {
        MethodId(class_name, method)
        for _, class_name, method, _ in manifest["sequence"]
        if method is not None
    }
    await fetcher.aclose()
    await server.aclose()
    return data, methods


# -- the pull-mode wire protocol ---------------------------------------


def test_pull_session_sends_nothing_until_asked():
    """A pull HELLO gets the manifest but no pushed units; each unit
    arrives only against an explicit resend request, and there is no
    EOF — the client ends the session by closing."""

    async def scenario():
        server = ClassFileServer(figure1_program())
        host, port = await server.start()
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(
            encode_frame(hello_frame("non_strict", pull=True))
        )
        await writer.drain()
        ack = await read_frame(reader)
        assert ack.kind is FrameKind.HELLO_ACK
        fields = ack.field_dict
        assert fields.get("pull") is True
        sequence = fields["sequence"]
        assert sequence

        # Nothing is pushed while we stay silent.
        with pytest.raises(asyncio.TimeoutError):
            await asyncio.wait_for(read_frame(reader), timeout=0.1)

        # Pull exactly one unit: the plan head.
        kind_value, class_name, method_name, _size = sequence[0]
        writer.write(
            encode_frame(
                demand_fetch_frame(
                    class_name,
                    method_name,
                    kind=UnitKind(kind_value),
                    resend=True,
                )
            )
        )
        await writer.drain()
        frame = await asyncio.wait_for(read_frame(reader), timeout=2.0)
        assert frame.kind is FrameKind.UNIT
        assert frame.unit is not None
        assert frame.unit.class_name == class_name

        # Still no EOF, no second unit.
        with pytest.raises(asyncio.TimeoutError):
            await asyncio.wait_for(read_frame(reader), timeout=0.1)

        writer.close()
        await server.aclose()
        assert server.stats.connections[0].pull_sessions == 1

    run(scenario())


# -- whole-stripe behavior ---------------------------------------------


def test_striped_fetch_matches_clean_run_and_uses_every_link():
    async def scenario():
        program = figure1_program()
        clean, methods = await clean_reference(program)
        server = ClassFileServer(program)
        host, port = await server.start()
        fetcher = StripedResilientFetcher(
            [(host, port), (host, port), (host, port)]
        )
        await fetcher.connect()
        await asyncio.wait_for(
            fetcher.wait_until_complete(), timeout=10
        )
        data = {
            name: fetcher.class_bytes(name) for name in fetcher.buffers
        }
        assert data == clean
        for method_id in methods:
            assert fetcher.is_method_available(method_id)
        used = [fetcher.stats.link_units(link) for link in range(3)]
        assert all(count > 0 for count in used)
        assert fetcher.stats.duplicate_units == 0
        await fetcher.aclose()
        await server.aclose()
        assert all(
            conn.pull_sessions == 1
            for conn in server.stats.connections
        )

    run(scenario())


def test_hedged_demand_race_wins_on_the_healthy_link():
    """A demanded unit stuck on a frozen link is raced on the other
    link after ``hedge_delay``; the hedge copy wins, and if the frozen
    copy ever thaws it is suppressed as a duplicate."""
    from repro.faults import FaultPlan
    from repro.observe import TraceRecorder

    async def scenario():
        program = figure1_program()
        good = ClassFileServer(program)
        frozen = ClassFileServer(
            program,
            fault_plan=FaultPlan(
                seed=3, stall_before_frame=0, stall_seconds=30.0
            ),
        )
        good_addr = await good.start()
        frozen_addr = await frozen.start()
        recorder = TraceRecorder()
        fetcher = StripedResilientFetcher(
            [good_addr, frozen_addr],
            hedge_delay=0.05,
            demand_timeout=5.0,
            stall_timeout=60.0,  # keep the watchdog out of the race
            recorder=recorder,
        )
        manifest = await fetcher.connect()
        # The arbiter alternates links over the ready plan, so unit
        # ``seq`` was issued on link ``seq % 2``.  Demand a method
        # stuck on the frozen link whose class lead landed on the
        # healthy one.
        rows = manifest["sequence"]
        lead_seq = {}
        for seq, (kind, class_name, method, _size) in enumerate(rows):
            if method is None:
                lead_seq.setdefault(class_name, seq)
        target_row = next(
            (seq, row)
            for seq, row in enumerate(rows)
            if row[2] is not None
            and seq % 2 == 1
            and lead_seq.get(row[1], 1) % 2 == 0
        )
        target = MethodId(target_row[1][1], target_row[1][2])
        arrival = await asyncio.wait_for(
            fetcher.wait_for_method(target), timeout=10
        )
        assert arrival >= 0.0
        assert fetcher.is_method_available(target)
        assert fetcher.stats.hedges >= 1
        assert fetcher.stats.hedge_wins >= 1
        names = [event.name for event in recorder.events]
        assert "hedge_fired" in names
        won = next(
            event
            for event in recorder.events
            if event.name == "hedge_won"
        )
        assert won.args["role"] == "hedge"
        # Exactly one copy landed.
        landings = [
            event
            for event in recorder.events
            if event.name == "unit_arrived"
            and event.args.get("method") == target.method_name
            and event.args.get("class_name") == target.class_name
        ]
        assert len(landings) == 1
        await fetcher.aclose()
        await good.aclose()
        await frozen.aclose()

    run(scenario())


def test_aclose_mid_transfer_leaks_no_tasks_or_transports():
    """Tearing down a half-finished stripe cancels every background
    task (counted) and closes every link transport."""

    async def scenario():
        program = figure1_program()
        server = ClassFileServer(program, bandwidth=5_000)
        host, port = await server.start()
        fetcher = StripedResilientFetcher([(host, port), (host, port)])
        await fetcher.connect()
        before = {
            task
            for task in asyncio.all_tasks()
            if task is not asyncio.current_task()
        }
        assert before, "no background tasks were started"
        await fetcher.aclose()
        assert fetcher.stats.cancelled_tasks >= 3  # 2 links + watchdog
        for link in fetcher._links:
            assert link.writer is None
            assert link.task is not None and link.task.done()
        await server.aclose()
        # The server's connection handlers unwind asynchronously once
        # their transports close; give them a moment.
        for _ in range(100):
            leftovers = {
                task
                for task in asyncio.all_tasks()
                if task is not asyncio.current_task()
                and not task.done()
            }
            if not leftovers:
                break
            await asyncio.sleep(0.01)
        assert not leftovers

    run(scenario())


# -- retire-order property ---------------------------------------------

_SEQUENCE = (
    # (kind value, class, method, size) manifest rows: two non-strict
    # classes with leading globals, plus one strict whole-file class.
    (UnitKind.GLOBAL_DATA.value, "A", None, 40),
    (UnitKind.METHOD.value, "A", "main", 30),
    (UnitKind.METHOD.value, "A", "helper", 20),
    (UnitKind.CLASS_FILE.value, "B", None, 50),
    (UnitKind.GLOBAL_FIRST.value, "C", None, 10),
    (UnitKind.METHOD.value, "C", "run", 25),
    (UnitKind.GLOBAL_UNUSED.value, "C", None, 15),
)


def _offline_fetcher():
    """A striped fetcher with a scoreboard but no sockets at all."""
    fetcher = StripedResilientFetcher([("127.0.0.1", 1)])
    fetcher._t0 = time.monotonic()
    manifest = {"sequence": [list(row) for row in _SEQUENCE]}
    fetcher._merge_manifest(manifest)
    fetcher.manifest = manifest
    fetcher._build_board()
    return fetcher


@settings(max_examples=60, deadline=None)
@given(st.permutations(list(range(len(_SEQUENCE)))))
def test_any_landing_order_reassembles_plan_order(order):
    """Property: whatever order per-link arrivals land in, a method is
    observable only after its class's leading global retired, and the
    final class bytes equal the plan-order concatenation."""
    fetcher = _offline_fetcher()
    link = _Link(0, "127.0.0.1", 1)
    link.state = LinkState.HEALTHY
    units = list(fetcher._unit_by_key.values())
    payloads = {
        index: bytes([index]) * unit.size
        for index, unit in enumerate(units)
    }
    landed = set()
    for index in order:
        fetcher._land_unit(link, units[index], payloads[index])
        landed.add(index)
        for check, unit in enumerate(units):
            if unit.kind is not UnitKind.METHOD:
                continue
            lead = next(
                pos
                for pos, other in enumerate(units)
                if other.class_name == unit.class_name
                and other.kind
                in (UnitKind.GLOBAL_DATA, UnitKind.GLOBAL_FIRST)
            )
            expected = check in landed and lead in landed
            assert (
                fetcher.is_method_available(unit.method) is expected
            )
    assert fetcher._eof.is_set()
    for class_name in {unit.class_name for unit in units}:
        expected = b"".join(
            payloads[index]
            for index, unit in enumerate(units)
            if unit.class_name == class_name
        )
        assert fetcher.class_bytes(class_name) == expected
