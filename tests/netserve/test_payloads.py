"""Unit payloads: exact sizes, real bytes from the wire image."""

import pytest

from repro.classfile import class_layout, serialize
from repro.netserve import (
    build_class_payloads,
    build_program_payloads,
    fit_payload,
)
from repro.transfer import (
    TransferPolicy,
    UnitKind,
    build_class_plan,
    build_program_plans,
)
from repro.workloads import figure1_program


@pytest.mark.parametrize("policy", list(TransferPolicy))
def test_payload_length_equals_unit_size(policy):
    program = figure1_program()
    plans = build_program_plans(program, policy)
    payloads = build_program_payloads(program, plans)
    all_units = [u for plan in plans.values() for u in plan.units]
    assert set(payloads) == set(all_units)
    for unit in all_units:
        assert len(payloads[unit]) == unit.size


def test_global_payload_is_the_image_prefix():
    program = figure1_program()
    classfile = program.classes[0]
    plan = build_class_plan(classfile, TransferPolicy.NON_STRICT)
    payloads = build_class_payloads(classfile, plan)
    image = serialize(classfile)
    layout = class_layout(classfile)
    global_unit = plan.units[0]
    assert global_unit.kind == UnitKind.GLOBAL_DATA
    assert payloads[global_unit] == image[: layout.global_size]


def test_method_payload_is_the_method_slice_plus_delimiter():
    program = figure1_program()
    classfile = program.classes[0]
    plan = build_class_plan(classfile, TransferPolicy.NON_STRICT)
    payloads = build_class_payloads(classfile, plan)
    image = serialize(classfile)
    layout = class_layout(classfile)
    offset = layout.global_size
    for method_name, method_size in layout.method_sizes:
        unit = plan.method_unit(method_name)
        payload = payloads[unit]
        assert payload[:method_size] == image[offset : offset + method_size]
        # The trailing delimiter is filler overhead, not image bytes.
        assert len(payload) - method_size == unit.size - method_size
        offset += method_size


def test_strict_payload_is_the_whole_image():
    program = figure1_program()
    classfile = program.classes[0]
    plan = build_class_plan(classfile, TransferPolicy.STRICT)
    payloads = build_class_payloads(classfile, plan)
    assert payloads[plan.units[0]] == serialize(classfile)


def test_fit_payload_pads_and_truncates():
    assert fit_payload(b"abc", 3) == b"abc"
    assert fit_payload(b"abcdef", 3) == b"abc"
    padded = fit_payload(b"ab", 9)
    assert len(padded) == 9
    assert padded.startswith(b"ab")
    assert fit_payload(b"", 0) == b""
