"""The shared artifact cache: keys, LRU bounds, and server reuse."""

import asyncio

import pytest

from repro import figure1_program
from repro.errors import ProtocolError
from repro.faults import FaultPlan
from repro.netserve import (
    ArtifactCache,
    ClassFileServer,
    NonStrictFetcher,
    ResilientFetcher,
    program_fingerprint,
)
from repro.observe import MetricsRegistry
from repro.transfer import TransferPolicy


def run(coroutine):
    return asyncio.run(coroutine)


# -- fingerprint -------------------------------------------------------


def test_fingerprint_is_stable_across_instances():
    assert program_fingerprint(figure1_program()) == program_fingerprint(
        figure1_program()
    )


def test_fingerprint_changes_with_content():
    base = figure1_program()
    fingerprint = program_fingerprint(base)
    mutated = figure1_program()
    mutated.classes[0].methods[0].instructions.pop()
    assert program_fingerprint(mutated) != fingerprint


# -- cache mechanics ---------------------------------------------------


def make_cache(**kwargs):
    return ArtifactCache(**kwargs)


class Stub:
    """Just enough artifact for cache mechanics: a size and identity."""

    def __init__(self, wire_bytes=10):
        self.wire_bytes = wire_bytes


def test_get_or_build_counts_hits_and_misses():
    cache = make_cache()
    calls = []
    artifact = Stub()

    def build():
        calls.append(1)
        return artifact

    key = ("fp", "non_strict", "static")
    assert cache.get_or_build(key, build) is artifact
    assert cache.get_or_build(key, build) is artifact
    assert len(calls) == 1
    assert cache.misses == 1
    assert cache.hits == 1
    assert cache.hit_rate == pytest.approx(0.5)


def test_distinct_policy_and_strategy_keys_do_not_collide():
    cache = make_cache()
    built = {}

    def build_for(key):
        def build():
            built[key] = Stub()
            return built[key]

        return build

    keys = [
        ("fp", "non_strict", "static"),
        ("fp", "non_strict", "textual"),
        ("fp", "strict", "static"),
        ("other-fp", "non_strict", "static"),
    ]
    artifacts = {key: cache.get_or_build(key, build_for(key)) for key in keys}
    assert cache.misses == len(keys)
    assert cache.hits == 0
    for key in keys:
        assert artifacts[key] is built[key]
        assert cache.get_or_build(key, build_for(key)) is built[key]
    assert cache.hits == len(keys)


def test_lru_evicts_oldest_entry_first():
    cache = make_cache(max_entries=2)
    a, b, c = ("fp", "p", "a"), ("fp", "p", "b"), ("fp", "p", "c")
    cache.get_or_build(a, Stub)
    cache.get_or_build(b, Stub)
    cache.get_or_build(a, Stub)  # refresh a: b is now oldest
    cache.get_or_build(c, Stub)  # evicts b
    assert cache.evictions == 1
    assert set(cache.keys()) == {a, c}
    cache.get_or_build(b, Stub)
    assert cache.misses == 4  # b was rebuilt


def test_byte_bound_evicts_but_keeps_newest_entry():
    cache = make_cache(max_entries=8, max_bytes=100)
    cache.get_or_build(("fp", "p", "a"), lambda: Stub(60))
    cache.get_or_build(("fp", "p", "b"), lambda: Stub(60))
    assert cache.evictions == 1
    assert cache.entry_count == 1
    # An entry bigger than the whole bound still stays (never evict
    # the most-recently-used entry down to an empty cache).
    cache.get_or_build(("fp", "p", "c"), lambda: Stub(500))
    assert cache.entry_count == 1
    assert list(cache.keys()) == [("fp", "p", "c")]
    assert cache.cached_bytes == 500


def test_cache_publishes_metrics_gauges():
    registry = MetricsRegistry()
    cache = make_cache(metrics=registry)
    key = ("fp", "p", "s")
    cache.get_or_build(key, Stub)
    cache.get_or_build(key, Stub)
    assert registry.counter("netserve_cache_hits").value == 1
    assert registry.counter("netserve_cache_misses").value == 1
    assert registry.gauge("netserve_cache_entries").value == 1


def test_invalid_bounds_are_rejected():
    with pytest.raises(ValueError):
        make_cache(max_entries=0)


# -- server integration ------------------------------------------------


def counting_restructure(monkeypatch):
    """Patch the server module's restructure with a call counter."""
    import repro.netserve.server as server_module

    calls = []
    original = server_module.restructure

    def counted(program, order):
        calls.append(1)
        return original(program, order)

    monkeypatch.setattr(server_module, "restructure", counted)
    return calls


def test_second_client_reuses_cached_plan(monkeypatch):
    calls = counting_restructure(monkeypatch)

    async def scenario():
        server = ClassFileServer(figure1_program())
        host, port = await server.start()
        for _ in range(3):
            fetcher = NonStrictFetcher(host, port)
            await fetcher.connect()
            await fetcher.wait_until_complete()
            await fetcher.aclose()
        await server.aclose()
        return server

    server = run(scenario())
    assert len(calls) == 1
    assert server.artifact_cache.misses == 1
    assert server.artifact_cache.hits == 2


def test_resume_replays_from_cache_without_replanning(monkeypatch):
    calls = counting_restructure(monkeypatch)

    async def scenario():
        server = ClassFileServer(
            figure1_program(),
            fault_plan=FaultPlan(seed=7, cut_after_frames=(2,)),
        )
        host, port = await server.start()
        fetcher = ResilientFetcher(
            host, port, backoff_base=0.005, backoff_jitter=0.0
        )
        await fetcher.connect()
        await fetcher.wait_until_complete()
        assert fetcher.stats.reconnects >= 1
        await fetcher.aclose()
        await server.aclose()
        return server

    server = run(scenario())
    # The RESUME negotiation hit the cache: one plan total.
    assert len(calls) == 1
    assert server.artifact_cache.hits >= 1


def test_distinct_negotiations_build_distinct_artifacts():
    async def scenario():
        server = ClassFileServer(figure1_program())
        host, port = await server.start()
        for policy in ("non_strict", "strict"):
            fetcher = NonStrictFetcher(host, port, policy=policy)
            await fetcher.connect()
            await fetcher.wait_until_complete()
            await fetcher.aclose()
        await server.aclose()
        return server

    server = run(scenario())
    assert server.artifact_cache.misses == 2
    fingerprint = program_fingerprint(figure1_program())
    assert set(server.artifact_cache.keys()) == {
        (fingerprint, "non_strict", "static"),
        (fingerprint, "strict", "static"),
    }


def test_shared_cache_spans_servers():
    cache = ArtifactCache()

    async def one_fetch():
        server = ClassFileServer(figure1_program(), cache=cache)
        host, port = await server.start()
        fetcher = NonStrictFetcher(host, port)
        await fetcher.connect()
        await fetcher.wait_until_complete()
        await fetcher.aclose()
        await server.aclose()

    run(one_fetch())
    run(one_fetch())
    assert cache.misses == 1
    assert cache.hits == 1


def test_unresolvable_strategy_is_rejected_before_planning():
    async def scenario():
        server = ClassFileServer(figure1_program())
        host, port = await server.start()
        fetcher = NonStrictFetcher(host, port, strategy="bogus")
        with pytest.raises(ProtocolError):
            await fetcher.connect()
        await fetcher.aclose()
        await server.aclose()
        return server

    server = run(scenario())
    assert server.artifact_cache.misses == 0


def test_profile_strategy_falls_back_to_static_cache_key():
    async def scenario():
        server = ClassFileServer(figure1_program())  # no profile
        host, port = await server.start()
        for strategy in ("static", "profile"):
            fetcher = NonStrictFetcher(host, port, strategy=strategy)
            manifest = await fetcher.connect()
            assert manifest["strategy"] == "static"
            await fetcher.wait_until_complete()
            await fetcher.aclose()
        await server.aclose()
        return server

    server = run(scenario())
    # Both negotiations resolved to the same cache entry.
    assert server.artifact_cache.misses == 1
    assert server.artifact_cache.hits == 1


def test_policy_enum_round_trip():
    # The cache key uses the policy's wire value; make sure every
    # member maps to a distinct string.
    values = {policy.value for policy in TransferPolicy}
    assert len(values) == len(list(TransferPolicy))
