"""The load-generation harness and its BENCH_serve.json run table."""

import asyncio
import json

import pytest

from repro import figure1_program
from repro.faults import FaultPlan
from repro.netserve import (
    ArtifactCache,
    LoadCell,
    run_cell,
    run_sweep,
    sweep_cells,
    write_bench_json,
)
from repro.netserve.loadgen import format_report, percentile


def run(coroutine):
    return asyncio.run(coroutine)


# -- percentiles -------------------------------------------------------


def test_percentile_exact_values():
    values = [10.0, 20.0, 30.0, 40.0]
    assert percentile(values, 0.0) == 10.0
    assert percentile(values, 100.0) == 40.0
    assert percentile(values, 50.0) == pytest.approx(25.0)
    assert percentile([7.0], 99.0) == 7.0
    assert percentile([], 50.0) == 0.0


def test_percentile_rejects_bad_q():
    with pytest.raises(ValueError):
        percentile([1.0], 101.0)
    with pytest.raises(ValueError):
        percentile([1.0], -1.0)


# -- run table construction --------------------------------------------


def test_sweep_cells_is_full_cross_product():
    plan = FaultPlan(seed=1, drop_frames=(2,))
    cells = sweep_cells(
        [1, 4], bandwidths=[None, 8000.0], fault_plans=[None, plan]
    )
    assert len(cells) == 8
    labels = [cell.label for cell in cells]
    assert len(set(labels)) == 8
    assert "c1-unpaced-non_strict-static" in labels
    assert "c4-bw8000-non_strict-static-faults" in labels


# -- measured cells ----------------------------------------------------


def test_run_cell_measures_latency_and_cache():
    cell = LoadCell(clients=4)
    result = run(run_cell(figure1_program(), cell))
    assert result.completed == 4
    assert result.failed == 0
    assert result.busy_rejected == 0
    assert result.p50_ms > 0
    assert result.p50_ms <= result.p99_ms <= result.p999_ms
    assert result.max_ms >= result.p999_ms
    assert result.cache_misses == 1
    assert result.cache_hits == 3
    assert result.aggregate_bytes > 0
    assert result.achieved_bytes_per_second > 0


def test_run_cell_with_admission_limit_counts_rejections():
    cell = LoadCell(clients=6, bandwidth=8000.0)
    result = run(
        run_cell(figure1_program(), cell, max_connections=2)
    )
    assert result.busy_rejected > 0
    assert result.completed + result.busy_rejected == 6
    assert result.failed == 0


def test_run_cell_with_faults_uses_resilient_fetcher():
    cell = LoadCell(
        clients=2,
        fault_plan=FaultPlan(seed=7, drop_frames=(2,)),
    )
    result = run(run_cell(figure1_program(), cell))
    assert result.faulted
    assert result.completed == 2
    assert result.failed == 0


def test_warm_cache_carries_across_cells():
    cache = ArtifactCache()

    async def scenario():
        program = figure1_program()
        first = await run_cell(
            program, LoadCell(clients=1), cache=cache
        )
        second = await run_cell(
            program, LoadCell(clients=8), cache=cache
        )
        return first, second

    first, second = run(scenario())
    assert first.cache_misses == 1
    assert second.cache_misses == 0
    assert second.cache_hits == 8
    assert second.cache_hit_rate == 1.0


# -- the acceptance criterion ------------------------------------------


def test_hundred_client_sweep_hits_cache_after_warmup(tmp_path):
    """A 100-client sweep completes with >= 95% plan-cache hit rate
    after warmup and emits BENCH_serve.json with p50/p99/p999."""
    cells = [LoadCell(clients=1), LoadCell(clients=100)]
    report = run(run_sweep(figure1_program(), cells))
    warmup, fleet = report.cells
    assert warmup.completed == 1
    assert fleet.completed == 100
    assert fleet.failed == 0
    assert fleet.cache_hit_rate >= 0.95
    assert report.overall_cache_hit_rate >= 0.95

    target = write_bench_json(report, tmp_path / "BENCH_serve.json")
    data = json.loads(target.read_text())
    assert data["schema"] == "repro.netserve.loadgen/1"
    assert data["overall_cache_hit_rate"] >= 0.95
    assert len(data["cells"]) == 2
    fleet_row = data["cells"][1]
    assert fleet_row["clients"] == 100
    for quantile in ("p50", "p99", "p999"):
        assert fleet_row["latency_ms"][quantile] > 0
    assert (
        fleet_row["latency_ms"]["p50"]
        <= fleet_row["latency_ms"]["p99"]
        <= fleet_row["latency_ms"]["p999"]
    )


def test_sweep_populates_latency_histogram():
    report = run(run_sweep(figure1_program(), [LoadCell(clients=3)]))
    snapshot = report.metrics.snapshot()
    series = [
        row
        for row in snapshot["histograms"]
        if row["name"] == "netserve_first_invoke_seconds"
    ]
    assert len(series) == 1
    assert series[0]["count"] == 3


def test_format_report_renders_every_cell():
    report = run(run_sweep(figure1_program(), [LoadCell(clients=2)]))
    text = format_report(report)
    assert "c2-unpaced-non_strict-static" in text
    assert "overall cache hit rate" in text


# -- multi-link striping -----------------------------------------------


def test_multilink_cell_stripes_workers_round_robin(tmp_path):
    cell = LoadCell(clients=5, links=(None, 20_000.0))
    assert cell.label == "c5-links2[unpaced+20000]-non_strict-static"
    assert cell.link_bandwidths == (None, 20_000.0)
    result = run(run_cell(figure1_program(), cell))
    assert result.completed == 5
    assert [row["link"] for row in result.per_worker] == [0, 1, 0, 1, 0]
    assert all(row["status"] == "ok" for row in result.per_worker)
    assert len(result.per_link) == 2
    assert result.per_link[0]["workers"] == 3
    assert result.per_link[1]["workers"] == 2
    assert result.per_link[0]["bandwidth"] is None
    assert result.per_link[1]["bandwidth"] == 20_000.0
    # Aggregates are the sum over links.
    assert result.aggregate_bytes == sum(
        row["bytes_sent"] for row in result.per_link
    )
    # The paced link is measurably slower than the unpaced one.
    assert (
        result.per_link[1]["latency_ms"]["p50"]
        > result.per_link[0]["latency_ms"]["p50"]
    )
    # Breakdowns survive the BENCH_serve.json round trip.
    report = run(
        run_sweep(figure1_program(), [cell])
    )
    target = write_bench_json(report, tmp_path / "BENCH_serve.json")
    data = json.loads(target.read_text())
    row = data["cells"][0]
    assert len(row["per_link"]) == 2
    assert len(row["per_worker"]) == 5
    assert all("status" in worker for worker in row["per_worker"])


def test_single_link_cell_still_reports_breakdowns():
    result = run(run_cell(figure1_program(), LoadCell(clients=2)))
    assert len(result.per_link) == 1
    assert result.per_link[0]["workers"] == 2
    assert [row["worker"] for row in result.per_worker] == [0, 1]


def test_sweep_cells_link_sets_extend_run_table():
    cells = sweep_cells(
        [2], bandwidths=[None], link_sets=[None, (8000.0, 4000.0)]
    )
    assert len(cells) == 2
    assert cells[0].links is None
    assert cells[1].links == (8000.0, 4000.0)
    assert "links2[8000+4000]" in cells[1].label

# -- striped cells -----------------------------------------------------


def test_load_cell_validates_striped_configuration():
    with pytest.raises(ValueError):
        LoadCell(clients=2, striped=True)  # striped needs links
    with pytest.raises(ValueError):
        LoadCell(
            clients=2,
            links=(None, None),
            link_fault_plans=(None,),  # must match links one-to-one
        )
    cell = LoadCell(
        clients=2,
        links=(None, None),
        striped=True,
        link_fault_plans=(None, FaultPlan(seed=1, drop_frames=(2,))),
    )
    assert cell.faulted
    assert cell.plan_for_link(0) is None
    assert cell.plan_for_link(1) is not None
    assert "striped2" in cell.label
    assert cell.label.endswith("-faults")


def test_striped_cell_with_mid_run_link_outage(tmp_path):
    """The acceptance cell: two links, one of which keeps cutting out
    mid-transfer, still completes every worker and lands a measured
    p99 first-invocation latency in BENCH_serve.json."""
    cell = LoadCell(
        clients=4,
        links=(None, 30_000.0),
        striped=True,
        link_fault_plans=(
            None,
            FaultPlan(seed=23, cut_after_frames=(2, 2)),
        ),
    )
    report = run(run_sweep(figure1_program(), [cell]))
    result = report.cells[0]
    assert result.completed == 4
    assert result.failed == 0
    assert result.faulted
    assert result.p99_ms > 0
    assert result.p50_ms <= result.p99_ms
    # Striped workers attribute to the whole stripe, not one link.
    assert [row["link"] for row in result.per_worker] == [
        "striped"
    ] * 4
    assert all(row["status"] == "ok" for row in result.per_worker)
    # Both endpoints actually served bytes.
    assert all(
        row["bytes_sent"] > 0 for row in result.per_link
    )
    target = write_bench_json(report, tmp_path / "BENCH_serve.json")
    data = json.loads(target.read_text())
    row = data["cells"][0]
    assert row["faulted"] is True
    assert row["latency_ms"]["p99"] > 0
    assert row["per_worker"][0]["link"] == "striped"
