"""Wire protocol: round trips, corruption detection, truncation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    FrameCorruptionError,
    ProtocolError,
    TransferError,
    TruncatedFrameError,
)
from repro.netserve import (
    FRAME_OVERHEAD,
    FrameKind,
    decode_frame,
    demand_fetch_frame,
    encode_frame,
    eof_frame,
    error_frame,
    hello_ack_frame,
    hello_frame,
    resume_ack_frame,
    resume_frame,
    salvage_unit_key,
    unit_frame,
    unit_kind_from_code,
    unit_wire_key,
)
from repro.netserve.protocol import unit_kind_code
from repro.program import MethodId
from repro.transfer import TransferUnit, UnitKind


# -- strategies ---------------------------------------------------------

_names = st.text(
    alphabet=st.characters(
        whitelist_categories=("L", "N"), max_codepoint=0x2FFF
    ),
    min_size=1,
    max_size=24,
)


@st.composite
def transfer_units_with_payload(draw):
    kind = draw(st.sampled_from(list(UnitKind)))
    class_name = draw(_names)
    payload = draw(st.binary(min_size=0, max_size=300))
    method = (
        MethodId(class_name, draw(_names))
        if kind == UnitKind.METHOD
        else None
    )
    unit = TransferUnit(
        kind=kind,
        class_name=class_name,
        size=len(payload),
        method=method,
    )
    return unit, payload


# -- round trips --------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(transfer_units_with_payload())
def test_every_unit_kind_round_trips(unit_and_payload):
    unit, payload = unit_and_payload
    encoded = encode_frame(unit_frame(unit, payload))
    decoded, consumed = decode_frame(encoded)
    assert consumed == len(encoded)
    assert decoded.kind == FrameKind.UNIT
    assert decoded.unit == unit
    assert decoded.payload == payload
    assert decoded.wire_size == len(encoded)


@settings(max_examples=50, deadline=None)
@given(
    policy=st.sampled_from(
        ["strict", "non_strict", "data_partitioned"]
    ),
    strategy=st.sampled_from(["static", "textual", "profile"]),
)
def test_hello_round_trips(policy, strategy):
    encoded = encode_frame(hello_frame(policy, strategy))
    decoded, _ = decode_frame(encoded)
    assert decoded.kind == FrameKind.HELLO
    assert decoded.field_dict["policy"] == policy
    assert decoded.field_dict["strategy"] == strategy


@settings(max_examples=50, deadline=None)
@given(class_name=_names, method_name=st.none() | _names)
def test_demand_fetch_round_trips(class_name, method_name):
    encoded = encode_frame(
        demand_fetch_frame(class_name, method_name)
    )
    decoded, _ = decode_frame(encoded)
    assert decoded.kind == FrameKind.DEMAND_FETCH
    assert decoded.field_dict["class"] == class_name
    assert decoded.field_dict["method"] == method_name


def test_control_frames_round_trip():
    for frame in (
        hello_ack_frame(unit_count=7, total_bytes=941, entry=None),
        error_frame("boom"),
        eof_frame(),
    ):
        decoded, _ = decode_frame(encode_frame(frame))
        assert decoded.kind == frame.kind
        assert decoded.field_dict == frame.field_dict


def test_resume_round_trips_with_have_set():
    have = [(1, "A", None), (4, "A", "run"), (4, "B", "main")]
    encoded = encode_frame(
        resume_frame("non_strict", "profile", have=have)
    )
    decoded, _ = decode_frame(encoded)
    assert decoded.kind == FrameKind.RESUME
    assert decoded.field_dict["policy"] == "non_strict"
    assert decoded.field_dict["strategy"] == "profile"
    assert [tuple(k) for k in decoded.field_dict["have"]] == [
        (1, "A", None),
        (4, "A", "run"),
        (4, "B", "main"),
    ]


def test_resume_ack_round_trips():
    frame = resume_ack_frame(
        unit_count=3, total_bytes=120, skipped=5, entry=None
    )
    decoded, _ = decode_frame(encode_frame(frame))
    assert decoded.kind == FrameKind.RESUME_ACK
    assert decoded.field_dict == frame.field_dict


def test_resend_demand_carries_kind_and_flag():
    frame = demand_fetch_frame(
        "Hot", "run", kind=UnitKind.METHOD, resend=True
    )
    decoded, _ = decode_frame(encode_frame(frame))
    assert decoded.field_dict["resend"] is True
    assert unit_kind_from_code(decoded.field_dict["kind"]) == (
        UnitKind.METHOD
    )
    # The legacy shape stays untouched when the extras are absent.
    plain = demand_fetch_frame("Hot", "run")
    assert set(plain.field_dict) == {"class", "method"}


@settings(max_examples=100, deadline=None)
@given(transfer_units_with_payload())
def test_unit_kind_codes_round_trip(unit_and_payload):
    unit, _ = unit_and_payload
    code = unit_kind_code(unit.kind)
    assert unit_kind_from_code(code) == unit.kind
    key = unit_wire_key(unit)
    assert key[0] == code
    assert key[1] == unit.class_name


def test_unknown_unit_kind_code_raises():
    with pytest.raises(FrameCorruptionError):
        unit_kind_from_code(250)


def test_concatenated_frames_decode_sequentially():
    unit = TransferUnit(
        kind=UnitKind.GLOBAL_DATA, class_name="A", size=4
    )
    data = (
        encode_frame(hello_frame("non_strict"))
        + encode_frame(unit_frame(unit, b"abcd"))
        + encode_frame(eof_frame())
    )
    kinds = []
    offset = 0
    while offset < len(data):
        frame, offset = decode_frame(data, offset)
        kinds.append(frame.kind)
    assert kinds == [FrameKind.HELLO, FrameKind.UNIT, FrameKind.EOF]


# -- corruption ---------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    transfer_units_with_payload(),
    st.data(),
)
def test_corrupted_body_raises_typed_error(unit_and_payload, data):
    """Flipping any body byte must raise, never return garbage."""
    unit, payload = unit_and_payload
    encoded = bytearray(encode_frame(unit_frame(unit, payload)))
    header_size = FRAME_OVERHEAD - 4  # header only, CRC excluded
    body_len = len(encoded) - FRAME_OVERHEAD
    if body_len == 0:
        return  # nothing to corrupt
    index = header_size + data.draw(
        st.integers(min_value=0, max_value=body_len - 1)
    )
    encoded[index] ^= 0xFF
    with pytest.raises(ProtocolError):
        decode_frame(bytes(encoded))


@settings(max_examples=100, deadline=None)
@given(transfer_units_with_payload(), st.data())
def test_truncated_frame_raises_truncation_error(
    unit_and_payload, data
):
    unit, payload = unit_and_payload
    encoded = encode_frame(unit_frame(unit, payload))
    cut = data.draw(
        st.integers(min_value=0, max_value=len(encoded) - 1)
    )
    with pytest.raises(TruncatedFrameError):
        decode_frame(encoded[:cut])


@settings(max_examples=150, deadline=None)
@given(transfer_units_with_payload(), st.data())
def test_flipping_any_single_byte_raises_cleanly(
    unit_and_payload, data
):
    """Corruption anywhere — header, names, payload, CRC — must
    surface as a typed ProtocolError, never a struct/index error."""
    unit, payload = unit_and_payload
    encoded = bytearray(encode_frame(unit_frame(unit, payload)))
    index = data.draw(
        st.integers(min_value=0, max_value=len(encoded) - 1)
    )
    encoded[index] ^= data.draw(st.integers(min_value=1, max_value=255))
    with pytest.raises(ProtocolError):
        decode_frame(bytes(encoded))


# -- salvage ------------------------------------------------------------


def test_salvage_recovers_unit_identity_from_payload_corruption():
    unit = TransferUnit(
        kind=UnitKind.METHOD,
        class_name="Hot",
        size=16,
        method=MethodId("Hot", "run"),
    )
    encoded = bytearray(encode_frame(unit_frame(unit, b"\x07" * 16)))
    encoded[-3] ^= 0xFF  # damage the payload/CRC, not the names
    with pytest.raises(FrameCorruptionError):
        decode_frame(bytes(encoded))
    assert salvage_unit_key(bytes(encoded)) == unit_wire_key(unit)


@settings(max_examples=100, deadline=None)
@given(transfer_units_with_payload())
def test_salvage_agrees_with_wire_key_on_intact_frames(
    unit_and_payload
):
    unit, payload = unit_and_payload
    encoded = encode_frame(unit_frame(unit, payload))
    assert salvage_unit_key(encoded) == unit_wire_key(unit)


def test_salvage_returns_none_for_garbage():
    assert salvage_unit_key(b"") is None
    assert salvage_unit_key(b"\x00" * 64) is None
    # Non-unit frames have no unit identity to salvage.
    assert salvage_unit_key(encode_frame(eof_frame())) is None


@settings(max_examples=100, deadline=None)
@given(transfer_units_with_payload(), st.data())
def test_salvage_never_raises_on_corruption(unit_and_payload, data):
    unit, payload = unit_and_payload
    encoded = bytearray(encode_frame(unit_frame(unit, payload)))
    index = data.draw(
        st.integers(min_value=0, max_value=len(encoded) - 1)
    )
    encoded[index] ^= data.draw(st.integers(min_value=1, max_value=255))
    key = salvage_unit_key(bytes(encoded))  # must not throw
    assert key is None or isinstance(key, tuple)


def test_bad_magic_raises():
    encoded = bytearray(encode_frame(eof_frame()))
    encoded[0] ^= 0xFF
    with pytest.raises(FrameCorruptionError):
        decode_frame(bytes(encoded))


def test_bad_crc_raises():
    encoded = bytearray(encode_frame(error_frame("x")))
    encoded[-1] ^= 0xFF
    with pytest.raises(FrameCorruptionError):
        decode_frame(bytes(encoded))


def test_oversized_declared_body_is_corruption_not_allocation():
    import struct

    from repro.netserve.protocol import MAGIC, PROTOCOL_VERSION

    header = struct.pack(
        ">HBBI", MAGIC, PROTOCOL_VERSION, int(FrameKind.UNIT), 2**31
    )
    with pytest.raises(FrameCorruptionError):
        decode_frame(header + b"\x00" * 64)


def test_payload_size_mismatch_rejected_at_encode():
    unit = TransferUnit(
        kind=UnitKind.GLOBAL_DATA, class_name="A", size=10
    )
    with pytest.raises(TransferError):
        unit_frame(unit, b"short")


def test_error_hierarchy_is_typed():
    assert issubclass(FrameCorruptionError, ProtocolError)
    assert issubclass(TruncatedFrameError, ProtocolError)
    assert issubclass(ProtocolError, TransferError)
