"""Wire protocol: round trips, corruption detection, truncation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    FrameCorruptionError,
    ProtocolError,
    TransferError,
    TruncatedFrameError,
)
from repro.netserve import (
    FRAME_OVERHEAD,
    FrameKind,
    decode_frame,
    demand_fetch_frame,
    encode_frame,
    eof_frame,
    error_frame,
    hello_ack_frame,
    hello_frame,
    unit_frame,
)
from repro.program import MethodId
from repro.transfer import TransferUnit, UnitKind


# -- strategies ---------------------------------------------------------

_names = st.text(
    alphabet=st.characters(
        whitelist_categories=("L", "N"), max_codepoint=0x2FFF
    ),
    min_size=1,
    max_size=24,
)


@st.composite
def transfer_units_with_payload(draw):
    kind = draw(st.sampled_from(list(UnitKind)))
    class_name = draw(_names)
    payload = draw(st.binary(min_size=0, max_size=300))
    method = (
        MethodId(class_name, draw(_names))
        if kind == UnitKind.METHOD
        else None
    )
    unit = TransferUnit(
        kind=kind,
        class_name=class_name,
        size=len(payload),
        method=method,
    )
    return unit, payload


# -- round trips --------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(transfer_units_with_payload())
def test_every_unit_kind_round_trips(unit_and_payload):
    unit, payload = unit_and_payload
    encoded = encode_frame(unit_frame(unit, payload))
    decoded, consumed = decode_frame(encoded)
    assert consumed == len(encoded)
    assert decoded.kind == FrameKind.UNIT
    assert decoded.unit == unit
    assert decoded.payload == payload
    assert decoded.wire_size == len(encoded)


@settings(max_examples=50, deadline=None)
@given(
    policy=st.sampled_from(
        ["strict", "non_strict", "data_partitioned"]
    ),
    strategy=st.sampled_from(["static", "textual", "profile"]),
)
def test_hello_round_trips(policy, strategy):
    encoded = encode_frame(hello_frame(policy, strategy))
    decoded, _ = decode_frame(encoded)
    assert decoded.kind == FrameKind.HELLO
    assert decoded.field_dict["policy"] == policy
    assert decoded.field_dict["strategy"] == strategy


@settings(max_examples=50, deadline=None)
@given(class_name=_names, method_name=st.none() | _names)
def test_demand_fetch_round_trips(class_name, method_name):
    encoded = encode_frame(
        demand_fetch_frame(class_name, method_name)
    )
    decoded, _ = decode_frame(encoded)
    assert decoded.kind == FrameKind.DEMAND_FETCH
    assert decoded.field_dict["class"] == class_name
    assert decoded.field_dict["method"] == method_name


def test_control_frames_round_trip():
    for frame in (
        hello_ack_frame(unit_count=7, total_bytes=941, entry=None),
        error_frame("boom"),
        eof_frame(),
    ):
        decoded, _ = decode_frame(encode_frame(frame))
        assert decoded.kind == frame.kind
        assert decoded.field_dict == frame.field_dict


def test_concatenated_frames_decode_sequentially():
    unit = TransferUnit(
        kind=UnitKind.GLOBAL_DATA, class_name="A", size=4
    )
    data = (
        encode_frame(hello_frame("non_strict"))
        + encode_frame(unit_frame(unit, b"abcd"))
        + encode_frame(eof_frame())
    )
    kinds = []
    offset = 0
    while offset < len(data):
        frame, offset = decode_frame(data, offset)
        kinds.append(frame.kind)
    assert kinds == [FrameKind.HELLO, FrameKind.UNIT, FrameKind.EOF]


# -- corruption ---------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    transfer_units_with_payload(),
    st.data(),
)
def test_corrupted_body_raises_typed_error(unit_and_payload, data):
    """Flipping any body byte must raise, never return garbage."""
    unit, payload = unit_and_payload
    encoded = bytearray(encode_frame(unit_frame(unit, payload)))
    header_size = FRAME_OVERHEAD - 4  # header only, CRC excluded
    body_len = len(encoded) - FRAME_OVERHEAD
    if body_len == 0:
        return  # nothing to corrupt
    index = header_size + data.draw(
        st.integers(min_value=0, max_value=body_len - 1)
    )
    encoded[index] ^= 0xFF
    with pytest.raises(ProtocolError):
        decode_frame(bytes(encoded))


@settings(max_examples=100, deadline=None)
@given(transfer_units_with_payload(), st.data())
def test_truncated_frame_raises_truncation_error(
    unit_and_payload, data
):
    unit, payload = unit_and_payload
    encoded = encode_frame(unit_frame(unit, payload))
    cut = data.draw(
        st.integers(min_value=0, max_value=len(encoded) - 1)
    )
    with pytest.raises(TruncatedFrameError):
        decode_frame(encoded[:cut])


def test_bad_magic_raises():
    encoded = bytearray(encode_frame(eof_frame()))
    encoded[0] ^= 0xFF
    with pytest.raises(FrameCorruptionError):
        decode_frame(bytes(encoded))


def test_bad_crc_raises():
    encoded = bytearray(encode_frame(error_frame("x")))
    encoded[-1] ^= 0xFF
    with pytest.raises(FrameCorruptionError):
        decode_frame(bytes(encoded))


def test_oversized_declared_body_is_corruption_not_allocation():
    import struct

    from repro.netserve.protocol import MAGIC, PROTOCOL_VERSION

    header = struct.pack(
        ">HBBI", MAGIC, PROTOCOL_VERSION, int(FrameKind.UNIT), 2**31
    )
    with pytest.raises(FrameCorruptionError):
        decode_frame(header + b"\x00" * 64)


def test_payload_size_mismatch_rejected_at_encode():
    unit = TransferUnit(
        kind=UnitKind.GLOBAL_DATA, class_name="A", size=10
    )
    with pytest.raises(TransferError):
        unit_frame(unit, b"short")


def test_error_hierarchy_is_typed():
    assert issubclass(FrameCorruptionError, ProtocolError)
    assert issubclass(TruncatedFrameError, ProtocolError)
    assert issubclass(ProtocolError, TransferError)
