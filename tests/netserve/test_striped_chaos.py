"""The multi-link chaos suite: every scenario converges byte-identical.

Each scenario runs a striped fetch against seeded per-link fault plans
— mid-stream cuts, a permanent whole-link outage, a flapping link, a
one-slow-link stall, and full degradation — and asserts the fetched
bytes equal a fault-free run's, so striping never trades correctness
for resilience.
"""

import asyncio

import pytest

from repro import figure1_program
from repro.errors import ResilienceExhaustedError
from repro.faults import FaultPlan
from repro.netserve import (
    ClassFileServer,
    LinkState,
    NonStrictFetcher,
    StripedResilientFetcher,
)
from repro.observe import TraceRecorder
from repro.program import MethodId


def run(coroutine):
    return asyncio.run(coroutine)


async def clean_reference(program):
    server = ClassFileServer(program)
    host, port = await server.start()
    fetcher = NonStrictFetcher(host, port)
    manifest = await fetcher.connect()
    await fetcher.wait_until_complete()
    data = {name: fetcher.class_bytes(name) for name in fetcher.buffers}
    methods = {
        MethodId(class_name, method)
        for _, class_name, method, _ in manifest["sequence"]
        if method is not None
    }
    await fetcher.aclose()
    await server.aclose()
    return data, methods


async def striped_chaos(
    program,
    link_plans,
    bandwidths=None,
    timeout=30.0,
    **kwargs,
):
    """One striped fetch over one server per (plan, bandwidth) link."""
    servers = [
        ClassFileServer(
            program,
            fault_plan=plan,
            bandwidth=(
                bandwidths[index] if bandwidths is not None else None
            ),
        )
        for index, plan in enumerate(link_plans)
    ]
    endpoints = [await server.start() for server in servers]
    recorder = TraceRecorder()
    kwargs.setdefault("backoff_base", 0.005)
    kwargs.setdefault("backoff_jitter", 0.0)
    fetcher = StripedResilientFetcher(
        endpoints, recorder=recorder, **kwargs
    )
    await fetcher.connect()
    try:
        await asyncio.wait_for(
            fetcher.wait_until_complete(), timeout=timeout
        )
        data = {
            name: fetcher.class_bytes(name) for name in fetcher.buffers
        }
    finally:
        await fetcher.aclose()
        for server in servers:
            await server.aclose()
    return data, fetcher, recorder


def test_mid_stream_cuts_on_one_link_converge():
    """A link that keeps dropping mid-stream resumes with the session's
    full holdings; the stripe converges without ever degrading."""

    async def scenario():
        program = figure1_program()
        clean, methods = await clean_reference(program)
        plan = FaultPlan(seed=13, cut_after_frames=(2, 2, 2))
        data, fetcher, _ = await striped_chaos(
            program, [None, plan], seed=13
        )
        assert data == clean
        for method_id in methods:
            assert fetcher.is_method_available(method_id)
        assert fetcher.stats.degraded == 0

    run(scenario())


def test_whole_link_outage_requeues_onto_survivors():
    """A server that vanishes mid-run takes its link down for good:
    redials are refused until the budget drains, the flight lands on
    the survivor, and the session never notices."""

    async def scenario():
        program = figure1_program()
        clean, _ = await clean_reference(program)
        # Pace the survivor so the dying link has time to drain its
        # whole reconnect budget before the stripe finishes.
        good = ClassFileServer(program, bandwidth=3_000)
        doomed = ClassFileServer(program)
        good_addr = await good.start()
        doomed_addr = await doomed.start()
        recorder = TraceRecorder()
        fetcher = StripedResilientFetcher(
            [good_addr, doomed_addr],
            seed=29,
            max_reconnects=2,
            failure_threshold=1,
            backoff_base=0.005,
            backoff_jitter=0.0,
            recorder=recorder,
        )
        await fetcher.connect()
        await doomed.aclose()  # the whole endpoint goes away
        try:
            await asyncio.wait_for(
                fetcher.wait_until_complete(), timeout=60
            )
            data = {
                name: fetcher.class_bytes(name)
                for name in fetcher.buffers
            }
        finally:
            await fetcher.aclose()
            await good.aclose()
        assert data == clean
        assert fetcher._links[1].dead
        assert not fetcher._links[0].dead
        assert fetcher.stats.degraded == 0
        assert fetcher.stats.link_outages >= 1
        names = [event.name for event in recorder.events]
        assert "link_outage" in names

    run(scenario())


def test_flapping_link_heals_through_half_open_probes():
    """Open circuit → half-open probe → restored, repeatedly, while
    the paced survivor keeps the transfer honest."""

    async def scenario():
        program = figure1_program()
        clean, _ = await clean_reference(program)
        plan = FaultPlan(seed=37, cut_after_frames=(2, 2, 2))
        data, fetcher, recorder = await striped_chaos(
            program,
            [None, plan],
            # A narrow window on a paced survivor keeps ready work
            # queued, so the half-open probe has a unit to prove
            # itself with.
            bandwidths=[3_000, None],
            seed=37,
            failure_threshold=1,
            window=2,
            timeout=60.0,
        )
        assert data == clean
        assert fetcher.stats.link_outages >= 1
        assert fetcher.stats.link_reconnects >= 1
        names = [event.name for event in recorder.events]
        assert "link_outage" in names
        assert "link_restored" in names
        restored = next(
            event
            for event in recorder.events
            if event.name == "link_restored"
        )
        assert restored.args["link"] == "1"

    run(scenario())


def test_one_slow_link_is_stalled_out_by_the_watchdog():
    """A frozen link delivers nothing; the watchdog declares the stall
    and its in-flight units requeue onto the healthy link."""

    async def scenario():
        program = figure1_program()
        clean, _ = await clean_reference(program)
        plan = FaultPlan(
            seed=41, stall_before_frame=0, stall_seconds=30.0
        )
        data, fetcher, recorder = await striped_chaos(
            program,
            [None, plan],
            seed=41,
            stall_timeout=0.2,
            failure_threshold=1,
            timeout=20.0,
        )
        assert data == clean
        assert fetcher.stats.link_outages >= 1
        outage = next(
            event
            for event in recorder.events
            if event.name == "link_outage"
        )
        assert outage.args["link"] == "1"
        assert outage.args["reason"].startswith("stalled:")
        assert outage.args["requeued"] >= 1

    run(scenario())


def test_all_links_dead_degrades_to_strict_and_completes():
    """The ladder's last rung: every link exhausted, the one-shot
    strict fetch still delivers the whole program."""

    async def scenario():
        program = figure1_program()
        _, methods = await clean_reference(program)
        # Each link: ack, then cut; one reconnect cut at the
        # handshake; the *third* connection (the strict fallback) is
        # clean because the plan has run dry.
        plan = lambda seed: FaultPlan(  # noqa: E731
            seed=seed, cut_after_frames=(1, 0)
        )
        data, fetcher, recorder = await striped_chaos(
            program,
            [plan(43), plan(47)],
            seed=43,
            max_reconnects=1,
            failure_threshold=1,
        )
        assert fetcher.stats.degraded == 1
        for method_id in methods:
            assert fetcher.is_method_available(method_id)
        assert data
        names = [event.name for event in recorder.events]
        assert "degraded_to_strict" in names

    run(scenario())


def test_exhausted_ladder_surfaces_resilience_exhausted():
    """Every rung fails — every link, every strict endpoint — and the
    session reports it instead of hanging."""

    async def scenario():
        program = figure1_program()
        plan = lambda seed: FaultPlan(  # noqa: E731
            seed=seed, cut_after_frames=(1,) + (0,) * 20
        )
        servers = [
            ClassFileServer(program, fault_plan=plan(seed))
            for seed in (53, 59)
        ]
        endpoints = [await server.start() for server in servers]
        fetcher = StripedResilientFetcher(
            endpoints,
            max_reconnects=1,
            failure_threshold=1,
            backoff_base=0.005,
            backoff_jitter=0.0,
        )
        await fetcher.connect()
        with pytest.raises(ResilienceExhaustedError):
            await asyncio.wait_for(
                fetcher.wait_until_complete(), timeout=30
            )
        await fetcher.aclose()
        for server in servers:
            await server.aclose()

    run(scenario())


def test_chaos_runs_leave_link_state_metrics_behind():
    """The per-link gauges land in the registry for dashboards."""

    async def scenario():
        program = figure1_program()
        clean, _ = await clean_reference(program)
        plan = FaultPlan(seed=61, cut_after_frames=(2,))
        data, fetcher, _ = await striped_chaos(
            program, [None, plan], seed=61
        )
        assert data == clean
        # Both links finished somewhere sane: not mid-probe.
        for link in fetcher._links:
            assert link.state in (
                LinkState.HEALTHY,
                LinkState.DEGRADED,
                LinkState.HALF_OPEN,
                LinkState.OPEN,
            )
        assert fetcher.stats.link_units(0) >= 1

    run(scenario())
