"""Fleet-scale serving: shared-link pacing, admission, teardown.

The pacing tests measure wall-clock on purpose — the whole point of
the shared-bucket fix is that aggregate egress respects the configured
link rate no matter how many clients connect — so they use generous
ratio bounds, never exact durations.
"""

import asyncio
import time

import pytest

from repro import figure1_program
from repro.errors import ServerBusyError
from repro.netserve import (
    ClassFileServer,
    NonStrictFetcher,
    ResilientFetcher,
)


def run(coroutine):
    return asyncio.run(coroutine)


async def fetch_once(host, port, **kwargs):
    fetcher = NonStrictFetcher(host, port, **kwargs)
    await fetcher.connect()
    await fetcher.wait_until_complete()
    await fetcher.aclose()
    return fetcher


async def timed_fetches(server, clients):
    """Start ``clients`` concurrent sessions; returns elapsed seconds."""
    host, port = server.address
    started = time.monotonic()
    await asyncio.gather(
        *(fetch_once(host, port) for _ in range(clients))
    )
    return time.monotonic() - started


# -- shared-link pacing (the bandwidth-multiplication bugfix) ----------


def test_two_paced_clients_share_one_link():
    """Two concurrent clients take ~2x one client's wall-clock.

    Under the old per-connection-bucket bug each client got its own
    ``bandwidth`` allowance, so N clients finished in ~1x single-client
    time while the aggregate egress ran at N times the configured
    rate.  With the shared server-level bucket the aggregate rate is
    fixed, so doubling the clients must roughly double the wall-clock.
    """

    async def scenario():
        server = ClassFileServer(
            figure1_program(), bandwidth=4000, burst=64
        )
        await server.start()
        try:
            solo = await timed_fetches(server, 1)
            duo = await timed_fetches(server, 2)
        finally:
            await server.aclose()
        return solo, duo

    solo, duo = run(scenario())
    assert duo >= 1.5 * solo, (
        f"two clients finished in {duo:.3f}s vs {solo:.3f}s solo: "
        f"per-connection pacing is multiplying bandwidth again"
    )


def test_aggregate_egress_respects_configured_rate():
    """Aggregate bytes/second stays within 10% of the configured link
    rate regardless of client count."""

    async def scenario():
        server = ClassFileServer(
            figure1_program(), bandwidth=4000, burst=64
        )
        await server.start()
        try:
            elapsed = await timed_fetches(server, 6)
        finally:
            await server.aclose()
        return server.stats.bytes_sent / elapsed

    rate = run(scenario())
    assert 3600 <= rate <= 4400, (
        f"aggregate egress ran at {rate:.0f} B/s against a 4000 B/s "
        f"link"
    )


def test_per_connection_cap_stacks_on_shared_link():
    """An unpaced link with a per-connection cap still paces."""

    async def scenario():
        server = ClassFileServer(
            figure1_program(),
            per_connection_bandwidth=4000,
            burst=64,
        )
        await server.start()
        try:
            elapsed = await timed_fetches(server, 1)
        finally:
            await server.aclose()
        return elapsed

    # 941 wire bytes at 4000 B/s with a 64-byte burst: >= ~0.2s.
    assert run(scenario()) >= 0.1


# -- admission control -------------------------------------------------


def test_connection_past_limit_gets_clean_busy_error():
    async def scenario():
        # Slow pacing keeps the first connection occupying the slot.
        server = ClassFileServer(
            figure1_program(),
            bandwidth=4000,
            burst=64,
            max_connections=1,
        )
        host, port = await server.start()
        first = asyncio.create_task(fetch_once(host, port))
        await asyncio.sleep(0.05)  # first client is mid-stream
        rejected = NonStrictFetcher(host, port)
        with pytest.raises(ServerBusyError):
            await rejected.connect()
        await rejected.aclose()
        await first
        # The slot is free again: a later connection is admitted.
        await fetch_once(host, port)
        await server.aclose()
        return server

    server = run(scenario())
    assert server.stats.rejected_connections == 1
    # Rejections never create connection stats entries.
    assert len(server.stats.connections) == 2


def test_resilient_fetcher_retries_busy_until_admitted():
    async def scenario():
        server = ClassFileServer(
            figure1_program(),
            bandwidth=4000,
            burst=64,
            max_connections=1,
        )
        host, port = await server.start()
        first = asyncio.create_task(fetch_once(host, port))
        await asyncio.sleep(0.05)
        patient = ResilientFetcher(
            host,
            port,
            backoff_base=0.1,
            backoff_jitter=0.0,
            max_reconnects=8,
        )
        await patient.connect()
        await patient.wait_until_complete()
        await patient.aclose()
        await first
        await server.aclose()
        return server, patient

    server, patient = run(scenario())
    assert patient.stats.busy_retries >= 1
    assert server.stats.rejected_connections >= 1


def test_max_connections_validation():
    from repro.errors import ProtocolError

    with pytest.raises(ProtocolError):
        ClassFileServer(figure1_program(), max_connections=0)


# -- teardown hygiene --------------------------------------------------


def test_no_tasks_survive_session_and_close():
    """Every server/client task is awaited out before the loop ends."""

    async def scenario():
        server = ClassFileServer(figure1_program())
        host, port = await server.start()
        await asyncio.gather(
            *(fetch_once(host, port) for _ in range(3))
        )
        await server.aclose()
        await asyncio.sleep(0)  # let close callbacks run
        return [
            task
            for task in asyncio.all_tasks()
            if task is not asyncio.current_task() and not task.done()
        ]

    assert run(scenario()) == []


def test_active_connection_gauge_returns_to_zero():
    async def scenario():
        server = ClassFileServer(figure1_program())
        host, port = await server.start()
        await asyncio.gather(
            *(fetch_once(host, port) for _ in range(3))
        )
        await asyncio.sleep(0.05)  # handlers drain their finally blocks
        await server.aclose()
        return server

    server = run(scenario())
    assert server.stats.active_connections == 0
    assert len(server.stats.connections) == 3


def test_demand_loop_failure_is_surfaced_not_swallowed():
    """A real demand-loop exception is counted, never silently lost."""

    async def scenario():
        # Paced, so the send loop yields and the demand task actually
        # starts (an unpaced localhost send can finish without ever
        # reaching the event loop).
        server = ClassFileServer(
            figure1_program(), bandwidth=20000, burst=64
        )

        async def broken_demand_loop(
            reader, pending, sequence, conn, **kwargs
        ):
            raise RuntimeError("demand loop blew up")

        server._demand_loop = broken_demand_loop
        host, port = await server.start()
        loop = asyncio.get_running_loop()
        unhandled = []
        loop.set_exception_handler(
            lambda _loop, ctx: unhandled.append(ctx)
        )
        await fetch_once(host, port)
        await asyncio.sleep(0.05)  # handler finishes its finally/raise
        await server.aclose()
        return server

    server = run(scenario())
    assert server.stats.demand_loop_errors == 1


def test_client_aclose_waits_for_transport():
    async def scenario():
        server = ClassFileServer(figure1_program())
        host, port = await server.start()
        fetcher = NonStrictFetcher(host, port)
        await fetcher.connect()
        await fetcher.wait_until_complete()
        await fetcher.aclose()
        closed = fetcher._writer.is_closing()
        await server.aclose()
        return closed

    assert run(scenario())
