"""The serve/fetch CLI subcommands, driven like a shell user would."""

import threading
import time

import pytest

from repro import figure1_program, record_run, save_program, save_trace
from repro.tools import main


@pytest.fixture()
def stored(tmp_path):
    program = figure1_program()
    directory = save_program(program, tmp_path / "prog")
    _, recorder = record_run(program)
    trace = save_trace(recorder.trace, tmp_path / "trace.json")
    return str(directory), str(trace)


def _serve_once(directory, port_file, results):
    results.append(
        main(
            [
                "serve",
                directory,
                "--once",
                "--port-file",
                port_file,
                "--bandwidth",
                "50000",
            ]
        )
    )


def _wait_for_port(port_file, thread, timeout=30.0):
    """Poll until the server publishes its port.

    Fails fast if the server thread died without writing the file
    (otherwise a startup crash burns the whole timeout), and keeps the
    poll interval small so the test never sleeps longer than it must.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with open(port_file) as handle:
                text = handle.read().strip()
            if text:
                return int(text)
        except FileNotFoundError:
            pass
        if not thread.is_alive():
            raise AssertionError(
                "server thread exited before writing its port file"
            )
        time.sleep(0.005)
    raise AssertionError("server never wrote its port file")


def test_serve_and_fetch_round_trip(stored, tmp_path, capsys):
    directory, trace = stored
    port_file = str(tmp_path / "port")
    results = []
    thread = threading.Thread(
        target=_serve_once, args=(directory, port_file, results)
    )
    thread.start()
    try:
        port = _wait_for_port(port_file, thread)
        code = main(
            [
                "fetch",
                "127.0.0.1",
                str(port),
                trace,
                "--cpi",
                "50",
            ]
        )
    finally:
        thread.join(timeout=20)
    assert code == 0
    assert not thread.is_alive()
    assert results == [0]
    out = capsys.readouterr().out
    assert "invocation latency:" in out
    assert "units received:" in out
    assert "A.main" in out


def test_fetch_without_trace_prints_stats(stored, tmp_path, capsys):
    directory, _ = stored
    port_file = str(tmp_path / "port")
    results = []
    thread = threading.Thread(
        target=_serve_once, args=(directory, port_file, results)
    )
    thread.start()
    try:
        port = _wait_for_port(port_file, thread)
        code = main(
            ["fetch", "127.0.0.1", str(port), "--policy", "strict"]
        )
    finally:
        thread.join(timeout=20)
    assert code == 0
    out = capsys.readouterr().out
    assert "policy:            strict" in out
    assert "bytes on wire:" in out


def test_loadtest_runs_sweep_and_writes_bench(stored, tmp_path, capsys):
    import json

    directory, _ = stored
    out = tmp_path / "BENCH_serve.json"
    code = main(
        [
            "loadtest",
            directory,
            "--clients",
            "1,8",
            "--bandwidth",
            "none,20000",
            "--out",
            str(out),
        ]
    )
    assert code == 0
    data = json.loads(out.read_text())
    assert len(data["cells"]) == 4
    assert data["overall_cache_hit_rate"] > 0.5
    printed = capsys.readouterr().out
    assert "c8-bw20000-non_strict-static" in printed
    assert "overall cache hit rate" in printed


def test_loadtest_requires_exactly_one_source(capsys):
    assert main(["loadtest"]) == 2
    assert "program directory or --workload" in capsys.readouterr().err


def test_loadtest_rejects_malformed_lists(stored, capsys):
    directory, _ = stored
    assert main(["loadtest", directory, "--clients", "two"]) == 2
    assert (
        main(["loadtest", directory, "--bandwidth", "fast"]) == 2
    )


def test_loadtest_striped_cell_with_link_faults(stored, tmp_path, capsys):
    import json

    directory, _ = stored
    out = tmp_path / "BENCH_serve.json"
    code = main(
        [
            "loadtest",
            directory,
            "--clients",
            "2",
            "--links",
            "none,30000",
            "--striped",
            "--link-faults",
            '[null, {"seed": 5, "cut_after_frames": [2, 2]}]',
            "--out",
            str(out),
        ]
    )
    assert code == 0
    data = json.loads(out.read_text())
    cell = data["cells"][0]
    assert cell["faulted"] is True
    assert cell["completed"] == 2
    assert cell["latency_ms"]["p99"] > 0
    printed = capsys.readouterr().out
    assert "striped2[unpaced+30000]" in printed


def test_loadtest_striped_needs_links(stored, capsys):
    directory, _ = stored
    assert main(["loadtest", directory, "--striped"]) == 2
    assert "--links" in capsys.readouterr().err


def test_fetch_links_stripes_across_endpoints(stored, tmp_path, capsys):
    directory, _ = stored
    results_a, results_b = [], []
    port_a = str(tmp_path / "port_a")
    port_b = str(tmp_path / "port_b")
    thread_a = threading.Thread(
        target=_serve_once, args=(directory, port_a, results_a)
    )
    thread_b = threading.Thread(
        target=_serve_once, args=(directory, port_b, results_b)
    )
    thread_a.start()
    thread_b.start()
    try:
        first = _wait_for_port(port_a, thread_a)
        second = _wait_for_port(port_b, thread_b)
        code = main(
            [
                "fetch",
                "127.0.0.1",
                str(first),
                "--links",
                f"127.0.0.1:{second}",
                "--hedge-delay",
                "0.05",
            ]
        )
    finally:
        thread_a.join(timeout=20)
        thread_b.join(timeout=20)
    assert code == 0
    out = capsys.readouterr().out
    assert "units received:" in out
