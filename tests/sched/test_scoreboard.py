"""Scoreboard unit tests: states, hazards, retirement, escalation."""

import math

import pytest

from repro.errors import TransferError
from repro.program import MethodId
from repro.sched import IssueItem, ItemState, Scoreboard
from repro.transfer import (
    TransferUnit,
    UnitKind,
    links_from_bandwidths,
)


def _global(name, size=100):
    return TransferUnit(
        kind=UnitKind.GLOBAL_DATA, class_name=name, size=size
    )


def _method(name, method, size=50):
    return TransferUnit(
        kind=UnitKind.METHOD,
        class_name=name,
        size=size,
        method=MethodId(name, method),
    )


def _board():
    board = Scoreboard()
    g = _global("A")
    m = _method("A", "run")
    board.add_item(IssueItem(label="g", units=(g,), seq=0))
    board.add_item(IssueItem(label="m", units=(m,), seq=1))
    board.add_unit_dep(m, g)
    return board, g, m


def test_item_needs_units():
    with pytest.raises(TransferError):
        IssueItem(label="empty", units=(), seq=0)


def test_duplicate_label_and_unit_rejected():
    board, g, m = _board()
    with pytest.raises(TransferError):
        board.add_item(IssueItem(label="g", units=(_global("B"),), seq=2))
    with pytest.raises(TransferError):
        board.add_item(IssueItem(label="again", units=(g,), seq=3))


def test_lifecycle_and_unissued_bytes():
    board, g, m = _board()
    assert board.unissued_bytes() == 150.0
    assert board.outstanding
    ready = board.ready_items(lambda item: 0.0)
    assert [item.label for item in ready] == ["g", "m"]
    board.mark_issued("g", channel=0, time=1.0)
    assert board.items["g"].state is ItemState.ISSUED
    assert board.unissued_bytes() == 50.0
    with pytest.raises(TransferError):
        board.mark_issued("g", channel=1, time=2.0)


def test_watermark_gates_readiness():
    board = Scoreboard()
    unit = _global("A")
    board.add_item(
        IssueItem(
            label="late",
            units=(unit,),
            seq=0,
            watermark_bytes=500.0,
            watermark_classes=("other",),
        )
    )
    assert board.ready_items(lambda item: 100.0) == []
    assert board.items["late"].state is ItemState.WAITING
    ready = board.ready_items(lambda item: 500.0)
    assert [item.label for item in ready] == ["late"]


def test_retire_cascade_waits_for_dependencies():
    board, g, m = _board()
    board.mark_issued("g", 0, 0.0)
    board.mark_issued("m", 1, 0.0)
    # Method lands first: it must NOT retire before its global data.
    assert board.mark_landed(m, 10.0) == []
    retired = board.mark_landed(g, 25.0)
    assert retired == [(g, 25.0), (m, 25.0)]
    assert board.retire_times[m] == 25.0
    assert not board.outstanding


def test_retire_in_order_is_immediate():
    board, g, m = _board()
    board.mark_issued("g", 0, 0.0)
    board.mark_issued("m", 1, 0.0)
    assert board.mark_landed(g, 5.0) == [(g, 5.0)]
    assert board.mark_landed(m, 9.0) == [(m, 9.0)]


def test_double_landing_rejected():
    board, g, m = _board()
    board.mark_issued("g", 0, 0.0)
    board.mark_landed(g, 5.0)
    with pytest.raises(TransferError):
        board.mark_landed(g, 6.0)


def test_escalation_overrides_watermark_and_priority():
    board = Scoreboard()
    board.add_item(
        IssueItem(
            label="urgent",
            units=(_global("A"),),
            seq=5,
            deadline=9000.0,
            watermark_bytes=1e9,
            watermark_classes=("x",),
        )
    )
    board.add_item(
        IssueItem(
            label="early", units=(_global("B"),), seq=0, deadline=1.0
        )
    )
    assert board.escalate("urgent") is True
    assert board.escalate("urgent") is False  # already escalated
    ready = board.ready_items(lambda item: 0.0)
    # Escalation beats every deadline.
    assert [item.label for item in ready] == ["urgent", "early"]


def test_requeue_returns_item_to_ready():
    board, g, m = _board()
    board.mark_issued("m", 1, 3.0)
    replacement = _method("A", "run", size=50)
    board.requeue("m", (replacement,))
    item = board.items["m"]
    assert item.state is ItemState.READY
    assert item.channel is None and item.issue_time is None
    with pytest.raises(TransferError):
        board.requeue("m", (replacement,))  # not issued any more
    board.mark_issued("m", 0, 4.0)
    with pytest.raises(TransferError):
        board.requeue("m", ())  # nothing left to send


def test_label_lookup():
    board, g, m = _board()
    assert board.label_of(g) == "g"
    assert board.item_for_unit(m).label == "m"
    with pytest.raises(TransferError):
        board.label_of(_global("Z"))


def test_priority_key_ordering():
    normal = IssueItem(label="a", units=(_global("A"),), seq=2)
    dated = IssueItem(
        label="b", units=(_global("B"),), seq=9, deadline=100.0
    )
    hot = IssueItem(
        label="c", units=(_global("C"),), seq=99, escalated=True
    )
    ordered = sorted([normal, dated, hot], key=IssueItem.priority_key)
    assert [item.label for item in ordered] == ["c", "b", "a"]
    assert normal.deadline == math.inf


def test_links_from_bandwidths_validation():
    links = links_from_bandwidths((57_600, 28_800))
    assert [link.name for link in links] == [
        "link0@57600bps",
        "link1@28800bps",
    ]
    assert links[0].cycles_per_byte < links[1].cycles_per_byte
    with pytest.raises(TransferError):
        links_from_bandwidths(())
    with pytest.raises(TransferError):
        links_from_bandwidths((57_600, 0))
