"""StripedController: 1-link fidelity, striping wins, chaos, proofs.

The headline property: on a single link the ``"parallel"`` and
``"interleaved"`` policies are *byte-for-byte* equivalent to the
original controllers — identical first-invocation latency for every
method, identical totals, identical stall counts — across every paper
workload and both static orderings.
"""

import math

import pytest

from repro.analyze import StallVerdict, analyze_transfer_plan
from repro.core import run_nonstrict
from repro.errors import TransferError
from repro.harness import BENCHMARK_NAMES, bundle
from repro.sched import (
    LinkOutage,
    StripedController,
    run_striped,
    striped_sequence,
)
from repro.transfer import (
    MODEM_LINK,
    T1_LINK,
    build_program_plans,
    links_from_bandwidths,
)
from repro.transfer.units import TransferPolicy, UnitKind


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_one_link_fidelity_is_exact(name):
    item = bundle(name)
    workload = item.workload
    for order_label in ("SCG", "Train"):
        order = item.order(order_label)
        for policy in ("parallel", "interleaved"):
            reference = run_nonstrict(
                workload.program,
                workload.test_trace,
                order,
                T1_LINK,
                workload.cpi,
                method=policy,
            )
            striped = run_striped(
                workload.program,
                workload.test_trace,
                order,
                (T1_LINK,),
                workload.cpi,
                policy=policy,
            )
            key = f"{name}/{order_label}/{policy}"
            assert striped.total_cycles == reference.total_cycles, key
            assert striped.stall_count == reference.stall_count, key
            assert (
                striped.bytes_terminated == reference.bytes_terminated
            ), key
            # Exact float equality, method by method.
            assert (
                striped.latencies.entries == reference.latencies.entries
            ), key


@pytest.mark.parametrize("policy", ("deadline", "round_robin", "weighted"))
def test_striping_two_links_beats_one(policy):
    item = bundle("BIT")
    workload = item.workload
    single = run_striped(
        workload.program,
        workload.test_trace,
        item.scg,
        (MODEM_LINK,),
        workload.cpi,
        policy=policy,
    )
    double = run_striped(
        workload.program,
        workload.test_trace,
        item.scg,
        (MODEM_LINK, MODEM_LINK),
        workload.cpi,
        policy=policy,
    )
    assert double.total_cycles < single.total_cycles
    assert len(double.latencies) == len(single.latencies)


def test_heterogeneous_links_beat_their_fastest_member():
    item = bundle("Hanoi")
    workload = item.workload
    links = links_from_bandwidths((57_600, 28_800))
    fast_only = run_striped(
        workload.program,
        workload.test_trace,
        item.scg,
        (links[0],),
        workload.cpi,
    )
    both = run_striped(
        workload.program,
        workload.test_trace,
        item.scg,
        links,
        workload.cpi,
    )
    assert both.total_cycles < fast_only.total_cycles


def test_link_outage_converges_byte_identical():
    item = bundle("Hanoi")
    workload = item.workload
    links = (MODEM_LINK, MODEM_LINK)

    def controllers(outages):
        return StripedController(
            target, item.scg, links, workload.cpi, outages=outages
        )

    from repro.core import Simulator
    from repro.reorder import restructure

    target = restructure(workload.program, item.scg)
    baseline_ctrl = controllers(())
    baseline = Simulator(
        target,
        workload.test_trace,
        baseline_ctrl,
        links[0],
        workload.cpi,
    ).run()
    outage_at = baseline.total_cycles / 4.0
    chaos_ctrl = controllers((LinkOutage(outage_at, link_index=1),))
    chaos = Simulator(
        target,
        workload.test_trace,
        chaos_ctrl,
        links[0],
        workload.cpi,
    ).run()
    # The fetch converges: the exact same unit set arrives in full.
    assert baseline_ctrl._engine is not None
    assert chaos_ctrl._engine is not None
    assert set(chaos_ctrl._engine.arrival_times) == set(
        baseline_ctrl._engine.arrival_times
    )
    assert chaos.latencies.methods() == baseline.latencies.methods()
    # Retransmission costs cycles, never correctness.
    assert chaos.total_cycles >= baseline.total_cycles
    assert not chaos_ctrl._engine.channels[1].alive


def test_validation_errors():
    item = bundle("Hanoi")
    workload = item.workload
    with pytest.raises(TransferError, match="unknown striping policy"):
        StripedController(
            workload.program, item.scg, (T1_LINK,), workload.cpi,
            policy="psychic",
        )
    with pytest.raises(TransferError, match="at least one link"):
        StripedController(
            workload.program, item.scg, (), workload.cpi
        )
    with pytest.raises(TransferError, match="not supported"):
        StripedController(
            workload.program,
            item.scg,
            (T1_LINK,),
            workload.cpi,
            policy="parallel",
            outages=(LinkOutage(1.0, 0),),
        )


def test_striped_sequence_deadlines():
    item = bundle("Hanoi")
    workload = item.workload
    plans = build_program_plans(
        workload.program, TransferPolicy.NON_STRICT
    )
    entries = striped_sequence(plans, item.scg, workload.cpi)
    assert [entry.seq for entry in entries] == list(range(len(entries)))
    by_class = {}
    for entry in entries:
        if entry.unit.kind == UnitKind.METHOD:
            method = entry.unit.method
            if method in item.scg:
                expected = (
                    item.scg.entry_for(method).instructions_before
                    * workload.cpi
                )
                assert entry.deadline == expected
            else:
                assert math.isinf(entry.deadline)
            lead = by_class.get(entry.unit.class_name)
            if lead is not None:
                # Class global unit deadline = earliest method need.
                assert lead.deadline <= entry.deadline
        elif entry.unit.kind == UnitKind.GLOBAL_DATA:
            by_class[entry.unit.class_name] = entry
    with pytest.raises(TransferError):
        striped_sequence(plans, item.scg, 0.0)


def test_escalation_toggle_controls_demand_correction():
    item = bundle("BIT")
    workload = item.workload
    links = (MODEM_LINK, MODEM_LINK)
    corrected = run_striped(
        workload.program,
        workload.test_trace,
        item.test,
        links,
        workload.cpi,
        escalate=True,
    )
    uncorrected = run_striped(
        workload.program,
        workload.test_trace,
        item.test,
        links,
        workload.cpi,
        escalate=False,
    )
    # Both complete; escalation may only help.
    assert corrected.total_cycles <= uncorrected.total_cycles


def test_striped_analyzer_verdicts_hold_in_simulation():
    item = bundle("BIT")
    workload = item.workload
    links = links_from_bandwidths((57_600, 28_800))
    report = analyze_transfer_plan(
        workload.program,
        item.scg,
        links[0],
        workload.cpi,
        methodology="striped",
        trace=workload.test_trace,
        links=links,
    )
    result = run_striped(
        workload.program,
        workload.test_trace,
        item.scg,
        links,
        workload.cpi,
        policy="deadline",
        escalate=False,  # the analyzer models escalation-free runs
    )
    stalled = {stall.method for stall in result.stalls}
    proven_quiet = {
        method
        for method, verdict in report.verdicts.items()
        if verdict.verdict is StallVerdict.PROVEN_NO_STALL
    }
    proven_stall = {
        method
        for method, verdict in report.verdicts.items()
        if verdict.verdict is StallVerdict.PROVEN_STALL
    }
    assert proven_quiet, "striped analyzer proved nothing"
    assert not (proven_quiet & stalled)
    assert proven_stall <= stalled
