"""IssueEngine unit tests: arbitration, outages, events, metrics."""

import pytest

from repro.errors import TransferError
from repro.observe import MetricsRegistry, TraceRecorder
from repro.program import MethodId
from repro.sched import (
    IssueEngine,
    IssueItem,
    LinkOutage,
    Scoreboard,
)
from repro.transfer import (
    TransferUnit,
    UnitKind,
    link_from_bandwidth,
    links_from_bandwidths,
)

SLOW = link_from_bandwidth("slow", 10_000)
FAST = link_from_bandwidth("fast", 1_000_000)


def _global(name, size=1000):
    return TransferUnit(
        kind=UnitKind.GLOBAL_DATA, class_name=name, size=size
    )


def _method(name, method, size=1000):
    return TransferUnit(
        kind=UnitKind.METHOD,
        class_name=name,
        size=size,
        method=MethodId(name, method),
    )


def _board(*units):
    board = Scoreboard()
    for seq, unit in enumerate(units):
        board.add_item(
            IssueItem(label=f"u{seq}", units=(unit,), seq=seq)
        )
    return board


def test_engine_validates_configuration():
    board = _board(_global("A"))
    with pytest.raises(TransferError):
        IssueEngine((), board)
    with pytest.raises(TransferError):
        IssueEngine((SLOW,), board, grain="byte")
    with pytest.raises(TransferError):
        IssueEngine((SLOW,), board, link_choice="random")
    with pytest.raises(TransferError):
        IssueEngine(
            (SLOW,), board, outages=(LinkOutage(1.0, link_index=5),)
        )
    with pytest.raises(TransferError):
        IssueEngine(
            (SLOW,),
            board,
            grain="stream",
            outages=(LinkOutage(1.0, link_index=0),),
        )
    with pytest.raises(TransferError):
        LinkOutage(-1.0, 0)
    with pytest.raises(TransferError):
        LinkOutage(1.0, -2)


def test_two_links_land_units_concurrently():
    a, b = _global("A"), _global("B")
    board = _board(a, b)
    engine = IssueEngine((SLOW, SLOW), board, grain="unit")
    engine.dispatch()
    engine.run_until_unit(a)
    # Both units went out simultaneously on separate links, so both
    # land at the single-unit transfer time, not 2x.
    assert engine.arrival_time(a) == engine.arrival_time(b)
    assert engine.arrival_time(a) == pytest.approx(
        SLOW.transfer_cycles(a.size)
    )


def test_retire_gated_by_cross_link_dependency():
    g = _global("A", size=10_000)  # slow to land
    m = _method("A", "run", size=10)  # lands almost immediately
    board = Scoreboard()
    board.add_item(IssueItem(label="g", units=(g,), seq=0))
    board.add_item(IssueItem(label="m", units=(m,), seq=1))
    board.add_unit_dep(m, g)
    engine = IssueEngine((SLOW, SLOW), board, grain="unit")
    engine.dispatch()
    arrival = engine.run_until_unit(m)
    # The method landed out of order but retired with its global data.
    assert arrival == engine.arrival_time(g)
    assert board.land_times[m] < board.land_times[g]


def test_link_choice_policies_pick_different_links():
    def build(choice):
        a, b = _global("A", 5000), _global("B", 100)
        board = _board(a, b)
        engine = IssueEngine(
            (SLOW, FAST), board, grain="unit", link_choice=choice
        )
        engine.dispatch()
        return {board.items[l].label: board.items[l].channel
                for l in ("u0", "u1")}

    # Both links idle: earliest_finish sends the first grain to the
    # fast link; round_robin starts at link 0 (the slow one).
    assert build("earliest_finish") == {"u0": 1, "u1": 0}
    assert build("round_robin") == {"u0": 0, "u1": 1}
    assert build("least_loaded") == {"u0": 0, "u1": 1}


def test_idle_engine_with_unreachable_unit_raises():
    unit = _global("A")
    board = Scoreboard()
    board.add_item(
        IssueItem(
            label="never",
            units=(unit,),
            seq=0,
            watermark_bytes=1e12,
            watermark_classes=("ghost",),
        )
    )
    engine = IssueEngine((SLOW,), board, grain="unit")
    with pytest.raises(TransferError, match="never arrived"):
        engine.run_until_unit(unit)


def test_outage_requeues_and_completes():
    units = [_global(f"C{i}", size=20_000) for i in range(6)]
    board = _board(*units)
    recorder = TraceRecorder(clock="cycles")
    metrics = MetricsRegistry()
    outage_at = SLOW.transfer_cycles(5_000)  # mid-first-unit
    engine = IssueEngine(
        (SLOW, SLOW),
        board,
        grain="unit",
        outages=(LinkOutage(outage_at, link_index=1),),
        recorder=recorder,
        metrics=metrics,
    )
    engine.dispatch()
    for unit in units:
        engine.run_until_unit(unit)
    assert set(engine.arrival_times) == set(units)
    events = recorder.named("stripe_rebalance")
    assert any(e.args.get("reason") == "link_outage" for e in events)
    assert metrics.counter_total("sched_link_outages_total") == 1.0
    # The survivor carried everything that had not landed.
    landed_links = {
        board.items[board.label_of(unit)].channel for unit in units
    }
    assert landed_links <= {0, 1}


def test_all_links_down_raises():
    units = [_global("A", 50_000), _global("B", 50_000)]
    board = _board(*units)
    engine = IssueEngine(
        (SLOW, SLOW),
        board,
        grain="unit",
        outages=(
            LinkOutage(10.0, link_index=0),
            LinkOutage(20.0, link_index=1),
        ),
    )
    engine.dispatch()
    with pytest.raises(TransferError, match="all links are down"):
        for unit in units:
            engine.run_until_unit(unit)


def test_events_and_metrics_emitted():
    a, b = _global("A"), _global("B")
    board = _board(a, b)
    recorder = TraceRecorder(clock="cycles")
    metrics = MetricsRegistry()
    links = links_from_bandwidths((57_600, 28_800))
    engine = IssueEngine(
        links, board, grain="unit", recorder=recorder, metrics=metrics
    )
    engine.dispatch()
    engine.run_until_unit(a)
    engine.run_until_unit(b)
    issued = recorder.named("unit_issued")
    busy = recorder.named("link_busy")
    assert len(issued) == 2
    assert len(busy) == 2
    assert {e.args["link"] for e in issued} == {
        "0:link0@57600bps",
        "1:link1@28800bps",
    }
    assert all(e.dur > 0 for e in busy)
    assert metrics.counter_total("sched_units_issued_total") == 2.0
    assert metrics.counter_total("sched_bytes_issued_total") == float(
        a.size + b.size
    )
    assert metrics.counter_total("sched_link_busy_cycles") > 0.0


def test_run_until_rejects_time_travel():
    board = _board(_global("A"))
    engine = IssueEngine((SLOW,), board)
    engine.dispatch()
    engine.run_until(1000.0)
    with pytest.raises(TransferError, match="backwards"):
        engine.run_until(10.0)
