"""The hand-built example programs."""

from repro.linker import verify_class
from repro.program import MethodId
from repro.vm import VirtualMachine
from repro.workloads import (
    countdown_program,
    fibonacci_program,
    figure1_program,
    mutual_recursion_program,
)


def test_all_examples_verify():
    for factory in (
        figure1_program,
        countdown_program,
        fibonacci_program,
        mutual_recursion_program,
    ):
        for classfile in factory().classes:
            verify_class(classfile)


def test_figure1_matches_paper_structure():
    program = figure1_program()
    assert program.class_names == ["A", "B"]
    assert [m.name for m in program.class_named("A").methods] == [
        "main",
        "Foo_A",
        "Bar_A",
    ]
    assert [m.name for m in program.class_named("B").methods] == [
        "Foo_B",
        "Bar_B",
    ]
    assert program.entry_point == MethodId("A", "main")


def test_countdown_terminates():
    result = VirtualMachine(countdown_program(25)).run()
    assert result.instructions_executed > 25


def test_fibonacci_parameterized():
    assert (
        VirtualMachine(fibonacci_program(15)).run().global_value(
            "Fib", "result"
        )
        == 610
    )
