"""Internal invariants of the synthetic workload generator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.spec import benchmark_spec
from repro.workloads.synthetic import (
    _build_call_tree,
    _call_capacity,
    _choose_used,
    _distribute,
    _method_sizes,
)


@given(
    total=st.integers(0, 100_000),
    weights=st.lists(
        st.floats(0.01, 100.0), min_size=1, max_size=50
    ),
)
def test_distribute_conserves_total(total, weights):
    shares = _distribute(total, weights)
    assert sum(shares) == total
    assert len(shares) == len(weights)
    assert all(share >= 0 for share in shares)


def test_distribute_proportionality():
    shares = _distribute(100, [1.0, 3.0])
    assert shares == [25, 75]


def dfs_order(children):
    order = []
    stack = [0]
    while stack:
        node = stack.pop()
        order.append(node)
        for child in reversed(children[node]):
            stack.append(child)
    return order


@settings(max_examples=20, deadline=None)
@given(
    count=st.integers(2, 300),
    seed=st.integers(0, 2**31),
)
def test_call_tree_dfs_is_index_order(count, seed):
    """The defining property: the tree's DFS (children in creation
    order) unfolds as 0, 1, 2, ... — matching the true first-use order."""
    rng = random.Random(seed)
    sizes = [max(5, int(rng.lognormvariate(2.3, 0.8))) for _ in range(count)]
    loops = [rng.random() < 0.7 for _ in range(count)]
    children = _build_call_tree(rng, count, sizes, loops)
    assert dfs_order(children) == list(range(count))


@settings(max_examples=20, deadline=None)
@given(
    count=st.integers(2, 300),
    seed=st.integers(0, 2**31),
)
def test_call_tree_respects_capacity(count, seed):
    rng = random.Random(seed)
    sizes = [max(5, int(rng.lognormvariate(2.3, 0.8))) for _ in range(count)]
    loops = [rng.random() < 0.7 for _ in range(count)]
    children = _build_call_tree(rng, count, sizes, loops)
    for index in range(count):
        assert len(children[index]) <= _call_capacity(
            sizes, loops, index
        )
    # Every non-entry method has exactly one parent.
    seen = [child for lst in children for child in lst]
    assert sorted(seen) == list(range(1, count))


def test_call_capacity_matches_emit_budget():
    sizes = [21, 8, 5]
    loops = [True, True, False]
    # Looped 21-instr body: 21 - (2 + 9) = 10 -> 3 calls.
    assert _call_capacity(sizes, loops, 0) == 3
    # 8 instrs, loop flag set but below the 20 threshold: (8-2)//3 = 2.
    assert _call_capacity(sizes, loops, 1) == 2
    # Minimal body: one call.
    assert _call_capacity(sizes, loops, 2) == 1


def test_method_sizes_hit_totals():
    rng = random.Random(7)
    for name in ("Jess", "TestDes"):
        spec = benchmark_spec(name)
        sizes = _method_sizes(rng, spec)
        assert len(sizes) == spec.total_methods
        assert sum(sizes) == spec.static_instructions
        assert min(sizes) >= 5


def test_choose_used_hits_instruction_target():
    rng = random.Random(11)
    spec = benchmark_spec("BIT")
    sizes = _method_sizes(rng, spec)
    used = _choose_used(rng, spec, sizes)
    fraction = (
        100.0 * sum(sizes[i] for i in used) / sum(sizes)
    )
    assert fraction == pytest.approx(
        spec.percent_static_executed, abs=3
    )
    assert 0 in used
    # At least one method stays cold.
    assert len(used) < spec.total_methods


def test_choose_used_is_front_loaded():
    rng = random.Random(13)
    spec = benchmark_spec("Jess")  # 47% executed: a real split
    sizes = _method_sizes(rng, spec)
    used = _choose_used(rng, spec, sizes)
    count = spec.total_methods
    first_half = sum(1 for i in used if i < count // 2)
    second_half = len(used) - first_half
    assert first_half > 2 * second_half
