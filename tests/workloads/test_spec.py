"""Benchmark specification integrity."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.spec import (
    PAPER_BENCHMARKS,
    BenchmarkSpec,
    benchmark_spec,
)


def test_six_benchmarks():
    assert len(PAPER_BENCHMARKS) == 6
    assert [spec.name for spec in PAPER_BENCHMARKS] == [
        "BIT",
        "Hanoi",
        "JavaCup",
        "Jess",
        "JHLZip",
        "TestDes",
    ]


def test_lookup_by_name():
    assert benchmark_spec("Jess").total_files == 97
    with pytest.raises(WorkloadError):
        benchmark_spec("NotABenchmark")


def test_table2_columns_transcribed():
    bit = benchmark_spec("BIT")
    assert bit.total_methods == 643
    assert bit.dynamic_instructions_test == 7_763_000
    assert bit.cpi == 147
    des = benchmark_spec("TestDes")
    assert des.instructions_per_method == pytest.approx(174.5, abs=1)


def test_table9_percentages_sum_to_about_100():
    for spec in PAPER_BENCHMARKS:
        total = (
            spec.percent_globals_needed_first
            + spec.percent_globals_in_methods
            + spec.percent_globals_unused
        )
        assert 95 <= total <= 105


def test_wire_scale_reflects_table3():
    # Table 3's transfer cycles imply more wire bytes than Table 9's
    # byte columns for every benchmark (the paper's own discrepancy).
    for spec in PAPER_BENCHMARKS:
        assert 1.0 <= spec.wire_scale <= 2.6


def test_train_smaller_than_test():
    for spec in PAPER_BENCHMARKS:
        assert (
            spec.dynamic_instructions_train
            <= spec.dynamic_instructions_test
        )


def test_invalid_spec_rejected():
    with pytest.raises(WorkloadError):
        BenchmarkSpec(
            name="Bad",
            description="",
            kind="application",
            total_files=0,
            size_kb=1,
            dynamic_instructions_test=1,
            dynamic_instructions_train=1,
            static_instructions=1,
            percent_static_executed=50,
            total_methods=1,
            cpi=1,
            local_data_kb=1,
            global_data_kb=1,
            percent_globals_needed_first=30,
            percent_globals_in_methods=60,
            percent_globals_unused=10,
        )
    with pytest.raises(WorkloadError):
        BenchmarkSpec(
            name="Bad",
            description="",
            kind="application",
            total_files=1,
            size_kb=1,
            dynamic_instructions_test=1,
            dynamic_instructions_train=1,
            static_instructions=1,
            percent_static_executed=50,
            total_methods=1,
            cpi=1,
            local_data_kb=1,
            global_data_kb=1,
            percent_globals_needed_first=10,
            percent_globals_in_methods=10,
            percent_globals_unused=10,
        )
