"""Synthetic workload calibration and structural validity."""

import pytest

from repro.classfile import class_layout, deserialize, serialize
from repro.datapart import partition_program
from repro.linker import verify_class
from repro.reorder import estimate_first_use
from repro.workloads.spec import PAPER_BENCHMARKS
from repro.workloads.synthetic import generate_workload

ALL_NAMES = [spec.name for spec in PAPER_BENCHMARKS]
SMALL = ["Hanoi", "JHLZip", "TestDes"]  # fast enough for per-test use


@pytest.fixture(scope="module", params=ALL_NAMES)
def workload(request):
    return generate_workload(request.param)


def test_file_and_method_counts_match_spec(workload):
    spec = workload.spec
    assert len(workload.program.classes) == spec.total_files
    assert workload.program.method_count == spec.total_methods


def test_static_instructions_match_spec(workload):
    spec = workload.spec
    static = sum(
        len(method.instructions)
        for _, method in workload.program.methods()
    )
    assert static == pytest.approx(spec.static_instructions, rel=0.02)


def test_dynamic_instructions_match_spec_exactly(workload):
    spec = workload.spec
    assert (
        workload.test_trace.total_instructions
        == spec.dynamic_instructions_test
    )
    assert (
        workload.train_trace.total_instructions
        == spec.dynamic_instructions_train
    )


def test_percent_executed_matches_spec(workload):
    spec = workload.spec
    program = workload.program
    static = sum(
        len(method.instructions) for _, method in program.methods()
    )
    used = workload.test_trace.methods_used()
    used_static = sum(
        len(program.method(method).instructions) for method in used
    )
    assert 100.0 * used_static / static == pytest.approx(
        spec.percent_static_executed, abs=3.0
    )


def test_global_split_matches_table9(workload):
    spec = workload.spec
    partitions = partition_program(workload.program)
    first = sum(p.first_bytes for p in partitions.values())
    methods = sum(p.method_bytes for p in partitions.values())
    unused = sum(p.unused_bytes for p in partitions.values())
    total = first + methods + unused
    assert 100.0 * first / total == pytest.approx(
        spec.percent_globals_needed_first, abs=6.0
    )
    assert 100.0 * methods / total == pytest.approx(
        spec.percent_globals_in_methods, abs=8.0
    )
    assert 100.0 * unused / total == pytest.approx(
        spec.percent_globals_unused, abs=6.0
    )


def test_wire_bytes_match_table3(workload):
    spec = workload.spec
    total = sum(
        class_layout(classfile).strict_size
        for classfile in workload.program.classes
    )
    implied = spec.transfer_mcycles_t1 * 1e6 / 3815.0
    assert total == pytest.approx(implied, rel=0.12)


def test_generation_is_deterministic():
    first = generate_workload.__wrapped__("Hanoi", None)
    second = generate_workload.__wrapped__("Hanoi", None)
    assert serialize(first.program.classes[0]) == serialize(
        second.program.classes[0]
    )
    assert first.test_trace.segments == second.test_trace.segments


def test_different_seed_differs():
    default = generate_workload.__wrapped__("Hanoi", None)
    reseeded = generate_workload.__wrapped__("Hanoi", 12345)
    assert serialize(default.program.classes[0]) != serialize(
        reseeded.program.classes[0]
    )


@pytest.mark.parametrize("name", SMALL)
def test_generated_classes_verify_and_roundtrip(name):
    workload = generate_workload(name)
    for classfile in workload.program.classes:
        verify_class(classfile)
        image = serialize(classfile)
        recovered = deserialize(image)
        assert serialize(recovered) == image


@pytest.mark.parametrize("name", SMALL)
def test_entry_point_is_first_used(name):
    workload = generate_workload(name)
    entry = workload.program.resolve_entry()
    assert workload.test_trace.segments[0].method == entry
    assert workload.train_trace.segments[0].method == entry


@pytest.mark.parametrize("name", SMALL)
def test_trace_methods_exist_in_program(name):
    workload = generate_workload(name)
    for trace in (workload.test_trace, workload.train_trace):
        for method in trace.methods_used():
            assert workload.program.has_method(method)


@pytest.mark.parametrize("name", SMALL)
def test_static_estimator_handles_generated_program(name):
    workload = generate_workload(name)
    order = estimate_first_use(workload.program)
    order.validate_against(workload.program)
    assert order.order[0] == workload.program.resolve_entry()


def test_first_uses_cluster_at_startup(workload):
    """The startup-burst model: last first use lands within a small
    fraction of total execution (spec.first_use_span plus slack)."""
    trace = workload.test_trace
    seen = set()
    executed = 0
    last_first_use = 0
    for segment in trace.segments:
        if segment.method not in seen:
            seen.add(segment.method)
            last_first_use = executed
        executed += segment.instructions
    fraction = last_first_use / trace.total_instructions
    assert fraction <= workload.spec.first_use_span + 0.08


def test_train_mostly_subset_of_test(workload):
    train_used = workload.train_trace.methods_used()
    test_used = workload.test_trace.methods_used()
    overlap = len(train_used & test_used) / len(train_used)
    assert overlap > 0.9
