"""The Program model: lookups, entry points, layout permutations."""

import pytest

from repro.bytecode import assemble
from repro.classfile import ClassFileBuilder
from repro.errors import ClassFileError
from repro.program import MethodId, Program
from repro.workloads import figure1_program


def one_class(name="C", methods=("main",)):
    builder = ClassFileBuilder(name)
    for method in methods:
        builder.add_method(method, "()V", assemble("return"))
    return builder.build()


def test_entry_point_defaults_to_first_class_main():
    program = Program(classes=[one_class()])
    assert program.entry_point == MethodId("C", "main")


def test_no_main_means_no_default_entry():
    program = Program(classes=[one_class(methods=("other",))])
    assert program.entry_point is None
    with pytest.raises(ClassFileError):
        program.resolve_entry()


def test_explicit_entry_validated():
    program = Program(
        classes=[one_class()],
        entry_point=MethodId("C", "missing"),
    )
    with pytest.raises(ClassFileError):
        program.resolve_entry()


def test_duplicate_class_names_rejected():
    with pytest.raises(ClassFileError):
        Program(classes=[one_class("X"), one_class("X")])


def test_lookups():
    program = figure1_program()
    assert program.has_class("A")
    assert not program.has_class("Z")
    assert program.has_method(MethodId("B", "Bar_B"))
    assert not program.has_method(MethodId("B", "nope"))
    assert not program.has_method(MethodId("Z", "nope"))
    assert program.method(MethodId("A", "main")).name == "main"
    with pytest.raises(ClassFileError):
        program.class_named("Z")


def test_method_ids_iterate_in_file_order():
    program = figure1_program()
    ids = list(program.method_ids())
    assert ids[0] == MethodId("A", "main")
    assert len(ids) == program.method_count == 5
    assert [m for m, _ in program.methods()] == ids


def test_with_class_order():
    program = figure1_program()
    flipped = program.with_class_order(["B", "A"])
    assert flipped.class_names == ["B", "A"]
    assert flipped.entry_point == program.entry_point
    with pytest.raises(ClassFileError):
        program.with_class_order(["A"])
    with pytest.raises(ClassFileError):
        program.with_class_order(["A", "A"])


def test_restructured_partial_orders():
    program = figure1_program()
    changed = program.restructured({"B": ["Bar_B", "Foo_B"]})
    assert [m.name for m in changed.class_named("B").methods] == [
        "Bar_B",
        "Foo_B",
    ]
    # Class A untouched.
    assert [m.name for m in changed.class_named("A").methods] == [
        m.name for m in program.class_named("A").methods
    ]
