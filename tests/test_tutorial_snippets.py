"""docs/TUTORIAL.md, executed: every snippet must keep working."""

import pytest

from repro import (
    MODEM_LINK,
    compile_source,
    estimate_first_use,
    order_from_profile,
    record_run,
    restructure,
    run_nonstrict,
    save_program,
    save_trace,
    strict_baseline,
)
from repro.linker import verify_class
from repro.program import MethodId
from repro.tools import main as inspect_main
from repro.vm import VirtualMachine

TUTORIAL_SOURCE = """
class App {
    global total = 0;

    func main() {
        var i = 0;
        while (i < 40) {
            App.total = App.total + Math.square(i);
            i = i + 1;
        }
        print(App.total);
        Report.emit(App.total);
    }
}
class Math {
    func square(x) { return x * x; }
    func cube(x) { return x * square(x); }   // never called
}
class Report {
    func emit(v) { print(v); }
}
"""


@pytest.fixture(scope="module")
def pipeline():
    program = compile_source(TUTORIAL_SOURCE)
    for classfile in program.classes:
        verify_class(classfile)
    result, recorder = record_run(program)
    return program, result, recorder


def test_step3_output(pipeline):
    _, result, _ = pipeline
    expected = sum(i * i for i in range(40))
    assert result.output == [expected, expected]


def test_step4_orders_agree_and_cube_is_last(pipeline):
    program, _, recorder = pipeline
    scg = estimate_first_use(program)
    profiled = order_from_profile(program, recorder.profile)
    assert scg.order == profiled.order
    assert scg.order[-1] == MethodId("Math", "cube")
    assert scg.order[0] == MethodId("App", "main")


def test_step5_restructure_preserves_semantics(pipeline):
    program, result, _ = pipeline
    laid_out = restructure(program, estimate_first_use(program))
    assert VirtualMachine(laid_out).run().output == result.output


def test_step6_simulation_cuts_off_cube(pipeline):
    program, _, recorder = pipeline
    order = estimate_first_use(program)
    base = strict_baseline(program, recorder.trace, MODEM_LINK, 80)
    sim = run_nonstrict(
        program, recorder.trace, order, MODEM_LINK, 80,
        method="interleaved",
    )
    assert sim.bytes_terminated > 0  # cube never transfers
    assert 0 < sim.normalized_to(base.total_cycles) < 110


def test_step7_persist_and_inspect(pipeline, tmp_path, capsys):
    program, _, recorder = pipeline
    laid_out = restructure(program, estimate_first_use(program))
    directory = save_program(laid_out, tmp_path / "app")
    trace = save_trace(recorder.trace, tmp_path / "app.trace.json")
    assert inspect_main(["layout", str(directory)]) == 0
    assert inspect_main(["disasm", str(directory), "App", "main"]) == 0
    assert inspect_main(["order", str(directory)]) == 0
    assert (
        inspect_main(
            [
                "simulate",
                str(directory),
                str(trace),
                "--link",
                "modem",
                "--cpi",
                "80",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "normalized:" in out
