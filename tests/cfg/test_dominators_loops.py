"""Dominators, back edges, natural loops, and heuristic inputs."""

from repro.bytecode import assemble
from repro.cfg import (
    analyze_loops,
    build_cfg,
    dominates,
    immediate_dominators,
)

SIMPLE_LOOP = """
    iconst 10
    store 0
loop:
    load 0
    ifle done
    load 0
    iconst 1
    sub
    store 0
    goto loop
done:
    return
"""

NESTED_LOOPS = """
    iconst 3
    store 0
outer:
    load 0
    ifle done
    iconst 2
    store 1
inner:
    load 1
    ifle outer_step
    load 1
    iconst 1
    sub
    store 1
    goto inner
outer_step:
    load 0
    iconst 1
    sub
    store 0
    goto outer
done:
    return
"""

BRANCHY = """
    load 0
    ifeq no_loop_path
loop:
    load 1
    ifle out
    load 1
    iconst 1
    sub
    store 1
    goto loop
out:
    return
no_loop_path:
    iconst 5
    store 1
    return
"""


def test_dominators_of_diamond():
    cfg = build_cfg(
        assemble(
            """
            load 0
            ifeq right
            iconst 1
            goto join
            right: iconst 2
            join: return
            """
        )
    )
    idom = immediate_dominators(cfg)
    assert idom[0] is None
    assert idom[1] == 0
    assert idom[2] == 0
    assert idom[3] == 0
    assert dominates(idom, 0, 3)
    assert not dominates(idom, 1, 3)
    assert dominates(idom, 3, 3)


def test_simple_loop_detected():
    cfg = build_cfg(assemble(SIMPLE_LOOP))
    analysis = analyze_loops(cfg)
    assert len(analysis.loops) == 1
    loop = analysis.loops[0]
    assert loop.header == 1
    assert 2 in loop.body
    assert analysis.loop_depth[2] == 1
    assert analysis.loop_depth[0] == 0


def test_nested_loops_depth():
    cfg = build_cfg(assemble(NESTED_LOOPS))
    analysis = analyze_loops(cfg)
    assert len(analysis.loops) == 2
    max_depth = max(analysis.loop_depth.values())
    assert max_depth == 2


def test_back_edges_identified():
    cfg = build_cfg(assemble(SIMPLE_LOOP))
    analysis = analyze_loops(cfg)
    assert len(analysis.back_edges) == 1
    (tail, header) = next(iter(analysis.back_edges))
    assert header == 1
    assert analysis.is_back_edge(tail, header)
    assert not analysis.is_back_edge(header, tail)


def test_loop_exit_edge_classification():
    cfg = build_cfg(assemble(SIMPLE_LOOP))
    analysis = analyze_loops(cfg)
    exit_edges = [
        edge for edge in cfg.edges if analysis.is_loop_exit_edge(edge)
    ]
    assert len(exit_edges) == 1
    assert exit_edges[0].target == 3  # the 'done' block


def test_forward_loop_count_prefers_loop_path():
    cfg = build_cfg(assemble(BRANCHY))
    analysis = analyze_loops(cfg)
    successors = cfg.successors(0)
    loop_path = [s for s in successors if analysis.forward_loop_count.get(s, 0) > 0]
    no_loop_path = [
        s for s in successors if analysis.forward_loop_count.get(s, 0) == 0
    ]
    assert loop_path and no_loop_path
    # Entry block sees the loop ahead.
    assert analysis.forward_loop_count[0] >= 1


def test_forward_instruction_count_monotone():
    cfg = build_cfg(assemble(SIMPLE_LOOP))
    analysis = analyze_loops(cfg)
    # Entry's heaviest forward path includes at least its own size.
    entry_count = analysis.forward_instruction_count[0]
    assert entry_count >= len(cfg.block(0))


def test_straight_line_has_no_loops():
    cfg = build_cfg(assemble("iconst 1\npop\nreturn"))
    analysis = analyze_loops(cfg)
    assert analysis.loops == []
    assert analysis.back_edges == set()
    assert analysis.forward_loop_count[0] == 0
