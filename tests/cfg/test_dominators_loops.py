"""Dominators, back edges, natural loops, and heuristic inputs."""

from repro.bytecode import assemble
from repro.cfg import (
    analyze_loops,
    build_cfg,
    dominates,
    immediate_dominators,
)

SIMPLE_LOOP = """
    iconst 10
    store 0
loop:
    load 0
    ifle done
    load 0
    iconst 1
    sub
    store 0
    goto loop
done:
    return
"""

NESTED_LOOPS = """
    iconst 3
    store 0
outer:
    load 0
    ifle done
    iconst 2
    store 1
inner:
    load 1
    ifle outer_step
    load 1
    iconst 1
    sub
    store 1
    goto inner
outer_step:
    load 0
    iconst 1
    sub
    store 0
    goto outer
done:
    return
"""

BRANCHY = """
    load 0
    ifeq no_loop_path
loop:
    load 1
    ifle out
    load 1
    iconst 1
    sub
    store 1
    goto loop
out:
    return
no_loop_path:
    iconst 5
    store 1
    return
"""


def test_dominators_of_diamond():
    cfg = build_cfg(
        assemble(
            """
            load 0
            ifeq right
            iconst 1
            goto join
            right: iconst 2
            join: return
            """
        )
    )
    idom = immediate_dominators(cfg)
    assert idom[0] is None
    assert idom[1] == 0
    assert idom[2] == 0
    assert idom[3] == 0
    assert dominates(idom, 0, 3)
    assert not dominates(idom, 1, 3)
    assert dominates(idom, 3, 3)


def test_simple_loop_detected():
    cfg = build_cfg(assemble(SIMPLE_LOOP))
    analysis = analyze_loops(cfg)
    assert len(analysis.loops) == 1
    loop = analysis.loops[0]
    assert loop.header == 1
    assert 2 in loop.body
    assert analysis.loop_depth[2] == 1
    assert analysis.loop_depth[0] == 0


def test_nested_loops_depth():
    cfg = build_cfg(assemble(NESTED_LOOPS))
    analysis = analyze_loops(cfg)
    assert len(analysis.loops) == 2
    max_depth = max(analysis.loop_depth.values())
    assert max_depth == 2


def test_back_edges_identified():
    cfg = build_cfg(assemble(SIMPLE_LOOP))
    analysis = analyze_loops(cfg)
    assert len(analysis.back_edges) == 1
    (tail, header) = next(iter(analysis.back_edges))
    assert header == 1
    assert analysis.is_back_edge(tail, header)
    assert not analysis.is_back_edge(header, tail)


def test_loop_exit_edge_classification():
    cfg = build_cfg(assemble(SIMPLE_LOOP))
    analysis = analyze_loops(cfg)
    exit_edges = [
        edge for edge in cfg.edges if analysis.is_loop_exit_edge(edge)
    ]
    assert len(exit_edges) == 1
    assert exit_edges[0].target == 3  # the 'done' block


def test_forward_loop_count_prefers_loop_path():
    cfg = build_cfg(assemble(BRANCHY))
    analysis = analyze_loops(cfg)
    successors = cfg.successors(0)
    loop_path = [s for s in successors if analysis.forward_loop_count.get(s, 0) > 0]
    no_loop_path = [
        s for s in successors if analysis.forward_loop_count.get(s, 0) == 0
    ]
    assert loop_path and no_loop_path
    # Entry block sees the loop ahead.
    assert analysis.forward_loop_count[0] >= 1


def test_forward_instruction_count_monotone():
    cfg = build_cfg(assemble(SIMPLE_LOOP))
    analysis = analyze_loops(cfg)
    # Entry's heaviest forward path includes at least its own size.
    entry_count = analysis.forward_instruction_count[0]
    assert entry_count >= len(cfg.block(0))


def test_straight_line_has_no_loops():
    cfg = build_cfg(assemble("iconst 1\npop\nreturn"))
    analysis = analyze_loops(cfg)
    assert analysis.loops == []
    assert analysis.back_edges == set()
    assert analysis.forward_loop_count[0] == 0


SELF_LOOP = """
    iconst 3
    store 0
loop:
    load 0
    ifle loop
    return
"""

# Entry branches into the middle of a two-block cycle, so neither
# cycle block dominates the other: no back edge exists and the cycle
# survives into the "forward" graph (a classic irreducible region).
IRREDUCIBLE = """
    load 0
    ifeq second
first:
    load 1
    ifle exit
    goto second
second:
    load 2
    ifle exit
    goto first
exit:
    return
"""

UNREACHABLE_CYCLE = """
    goto end
dead:
    load 0
    ifle dead
    goto end
end:
    return
"""


def test_self_loop_is_a_natural_loop():
    cfg = build_cfg(assemble(SELF_LOOP))
    analysis = analyze_loops(cfg)
    assert len(analysis.loops) == 1
    loop = analysis.loops[0]
    assert loop.header == 1
    assert loop.body == frozenset({1})
    assert loop.back_edges == ((1, 1),)
    assert analysis.loop_depth[1] == 1
    assert analysis.forward_loop_count[0] == 1
    exit_edges = [
        edge for edge in cfg.edges if analysis.is_loop_exit_edge(edge)
    ]
    assert [(e.source, e.target) for e in exit_edges] == [(1, 2)]


def test_irreducible_region_forward_counts_are_exact():
    cfg = build_cfg(assemble(IRREDUCIBLE))
    analysis = analyze_loops(cfg)
    # Dominance finds no back edge in an irreducible region...
    assert analysis.back_edges == set()
    assert analysis.loops == []
    # ...yet the forward instruction counts must still account for the
    # whole cycle from every member (the old DFS-postorder sweep
    # silently dropped the part of the cycle visited "too early").
    cycle = {1, 2, 3, 4}
    cycle_size = sum(len(cfg.block(b)) for b in cycle)
    exit_size = len(cfg.block(5))
    for block_id in cycle:
        assert (
            analysis.forward_instruction_count[block_id]
            == cycle_size + exit_size
        )
    assert analysis.forward_instruction_count[0] == len(
        cfg.block(0)
    ) + cycle_size + exit_size


def test_irreducible_region_sees_downstream_loops():
    # The irreducible cycle must propagate loop-header reachability
    # through itself: append a natural self-loop after the exit.
    cfg = build_cfg(
        assemble(
            """
                load 0
                ifeq second
            first:
                load 1
                ifle exit
                goto second
            second:
                load 2
                ifle exit
                goto first
            exit:
                iconst 2
                store 3
            spin:
                load 3
                ifle spin
                return
            """
        )
    )
    analysis = analyze_loops(cfg)
    headers = analysis.loop_headers
    assert len(headers) == 1
    # Every block of the irreducible cycle (and the entry) sees the
    # downstream natural loop, regardless of DFS visitation order.
    for block_id in (0, 1, 2, 3, 4):
        assert analysis.forward_loop_count[block_id] == 1


def test_unreachable_cycle_does_not_break_analysis():
    cfg = build_cfg(assemble(UNREACHABLE_CYCLE))
    analysis = analyze_loops(cfg)
    # Unreachable blocks have no dominators, hence no back edges.
    assert analysis.loops == []
    # The sweep still terminates and covers every block.
    assert set(analysis.forward_instruction_count) == {
        block.block_id for block in cfg.blocks
    }
    assert analysis.loop_depth[1] == 0


def test_unreachable_blocks_absent_from_dominators():
    cfg = build_cfg(assemble(UNREACHABLE_CYCLE))
    idom = immediate_dominators(cfg)
    assert set(idom) == {0, 3}
    assert idom[0] is None
    assert idom[3] == 0
    assert not dominates(idom, 0, 1)  # unreachable: nothing dominates it


def test_entry_self_loop():
    cfg = build_cfg(assemble("entry:\n    load 0\n    ifle entry\n    return"))
    analysis = analyze_loops(cfg)
    assert len(analysis.loops) == 1
    assert analysis.loops[0].header == 0
    assert analysis.loops[0].body == frozenset({0})
    idom = immediate_dominators(cfg)
    assert idom[0] is None
