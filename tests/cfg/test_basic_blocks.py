"""Basic block partitioning."""

import pytest

from repro.bytecode import assemble
from repro.cfg import partition_blocks
from repro.errors import CFGError


def test_straight_line_is_one_block():
    blocks, offset_map = partition_blocks(
        assemble("iconst 1\nstore 0\nreturn")
    )
    assert len(blocks) == 1
    assert blocks[0].start_offset == 0
    assert len(blocks[0]) == 3
    assert blocks[0].terminates
    assert offset_map == {0: 0}


def test_branch_splits_blocks():
    code = assemble(
        """
        load 0
        ifeq done
        iconst 1
        store 0
        done:
        return
        """
    )
    blocks, offset_map = partition_blocks(code)
    assert len(blocks) == 3
    # Block 0: load+ifeq; block 1: iconst+store; block 2: return.
    assert [len(block) for block in blocks] == [2, 2, 1]
    assert blocks[2].terminates
    assert offset_map[blocks[1].start_offset] == 1


def test_backward_branch_target_is_leader():
    code = assemble(
        """
        iconst 3
        store 0
        loop:
        load 0
        iconst 1
        sub
        store 0
        load 0
        ifgt loop
        return
        """
    )
    blocks, _ = partition_blocks(code)
    assert len(blocks) == 3
    assert blocks[1].start_offset == 7  # iconst(5)+store(2)


def test_call_does_not_split_block_but_is_recorded():
    code = assemble("iconst 1\ncall 5\npop\nreturn")
    blocks, _ = partition_blocks(code)
    assert len(blocks) == 1
    assert len(blocks[0].call_sites) == 1
    site = blocks[0].call_sites[0]
    assert site.pool_index == 5
    assert site.instruction_index == 1


def test_block_size_bytes():
    blocks, _ = partition_blocks(assemble("iconst 1\nreturn"))
    assert blocks[0].size_bytes == 6
    assert blocks[0].end_offset == 6


def test_instruction_after_return_starts_block():
    blocks, _ = partition_blocks(assemble("return\nnop\nreturn"))
    assert len(blocks) == 2


def test_empty_code_rejected():
    with pytest.raises(CFGError):
        partition_blocks([])


def test_branch_to_middle_of_instruction_rejected():
    # iconst is 5 bytes; offset 2 is inside it.
    with pytest.raises(CFGError):
        partition_blocks(assemble("goto 2\niconst 1\nreturn"))
