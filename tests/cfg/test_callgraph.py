"""Program-level call graph construction."""

import pytest

from repro.bytecode import CodeBuilder, Instruction, Opcode
from repro.cfg import build_call_graph
from repro.classfile import ClassFileBuilder
from repro.errors import CFGError
from repro.program import MethodId, Program
from repro.workloads import figure1_program, mutual_recursion_program


def test_figure1_call_edges():
    graph = build_call_graph(figure1_program())
    assert graph.callees(MethodId("A", "main")) == [MethodId("B", "Bar_B")]
    assert graph.callees(MethodId("B", "Bar_B")) == [MethodId("A", "Bar_A")]
    assert graph.callees(MethodId("A", "Bar_A")) == [MethodId("A", "Foo_A")]
    assert graph.callees(MethodId("A", "Foo_A")) == [MethodId("B", "Foo_B")]
    assert graph.callees(MethodId("B", "Foo_B")) == []


def test_reachable_from_entry_is_first_use_like():
    program = figure1_program()
    graph = build_call_graph(program)
    order = graph.reachable_from(MethodId("A", "main"))
    assert order == [
        MethodId("A", "main"),
        MethodId("B", "Bar_B"),
        MethodId("A", "Bar_A"),
        MethodId("A", "Foo_A"),
        MethodId("B", "Foo_B"),
    ]


def test_every_method_has_a_cfg():
    program = figure1_program()
    graph = build_call_graph(program)
    assert set(graph.methods) == set(program.method_ids())


def test_calls_to():
    graph = build_call_graph(figure1_program())
    callers = [
        edge.caller for edge in graph.calls_to(MethodId("A", "Bar_A"))
    ]
    assert callers == [MethodId("B", "Bar_B")]


def test_mutual_recursion_cycle():
    graph = build_call_graph(mutual_recursion_program())
    assert graph.callees(MethodId("Even", "is_even")) == [
        MethodId("Odd", "is_odd")
    ]
    assert graph.callees(MethodId("Odd", "is_odd")) == [
        MethodId("Even", "is_even")
    ]
    order = graph.reachable_from(MethodId("Even", "main"))
    assert len(order) == 3


def test_external_call_marked():
    builder = ClassFileBuilder("Solo")
    code = CodeBuilder()
    code.emit(
        Opcode.CALL, builder.method_ref("java/System", "exit", "(I)V")
    )
    code.emit(Opcode.RETURN)
    builder.add_method("main", "()V", code.build())
    program = Program(classes=[builder.build()])
    graph = build_call_graph(program)
    main = MethodId("Solo", "main")
    assert graph.callees(main) == []
    assert graph.external_callees(main) == [
        MethodId("java/System", "exit")
    ]
    assert not graph.calls_from(main)[0].internal


def test_callees_deduplicated_in_order():
    builder = ClassFileBuilder("C")
    helper_ref = builder.method_ref("C", "helper", "()V")
    other_ref = builder.method_ref("C", "other", "()V")
    code = CodeBuilder()
    code.emit(Opcode.CALL, helper_ref)
    code.emit(Opcode.CALL, other_ref)
    code.emit(Opcode.CALL, helper_ref)
    code.emit(Opcode.RETURN)
    builder.add_method("main", "()V", code.build())
    builder.add_method("helper", "()V", [Instruction(Opcode.RETURN)])
    builder.add_method("other", "()V", [Instruction(Opcode.RETURN)])
    program = Program(classes=[builder.build()])
    graph = build_call_graph(program)
    assert graph.callees(MethodId("C", "main")) == [
        MethodId("C", "helper"),
        MethodId("C", "other"),
    ]
    assert len(graph.calls_from(MethodId("C", "main"))) == 3


def test_duplicate_call_sites_keep_distinct_edges():
    """Dedup applies to ``callees`` only: every call *site* keeps its
    own edge with its own instruction index (the interprocedural
    analysis keys per-site frequencies off them)."""
    builder = ClassFileBuilder("C")
    helper_ref = builder.method_ref("C", "helper", "()V")
    code = CodeBuilder()
    code.emit(Opcode.CALL, helper_ref)
    code.emit(Opcode.ICONST, 1)
    code.emit(Opcode.POP)
    code.emit(Opcode.CALL, helper_ref)
    code.emit(Opcode.RETURN)
    builder.add_method("main", "()V", code.build())
    builder.add_method("helper", "()V", [Instruction(Opcode.RETURN)])
    program = Program(classes=[builder.build()])
    graph = build_call_graph(program)
    main = MethodId("C", "main")
    assert graph.callees(main) == [MethodId("C", "helper")]
    edges = graph.calls_from(main)
    assert [edge.instruction_index for edge in edges] == [0, 3]
    assert all(edge.callee == MethodId("C", "helper") for edge in edges)
    # Both sites land in the method's code at a CALL instruction.
    method = program.method(main)
    for edge in edges:
        assert method.instructions[edge.instruction_index].opcode is (
            Opcode.CALL
        )


def test_reachable_from_unknown_method_raises():
    graph = build_call_graph(figure1_program())
    with pytest.raises(CFGError):
        graph.reachable_from(MethodId("A", "missing"))


def test_to_networkx_export():
    graph = build_call_graph(figure1_program())
    nx_graph = graph.to_networkx()
    assert nx_graph.number_of_nodes() == 5
    assert nx_graph.number_of_edges() == len(graph.edges)
