"""CFG edges, orders, and validation."""

import pytest

from repro.bytecode import assemble
from repro.cfg import EdgeKind, build_cfg
from repro.errors import CFGError

DIAMOND = """
    load 0
    ifeq right
    iconst 1
    goto join
right:
    iconst 2
join:
    store 1
    return
"""


def test_diamond_structure():
    cfg = build_cfg(assemble(DIAMOND))
    assert len(cfg) == 4
    assert sorted(cfg.successors(0)) == [1, 2]
    assert cfg.successors(1) == [3]
    assert cfg.successors(2) == [3]
    assert cfg.successors(3) == []
    assert sorted(cfg.predecessors(3)) == [1, 2]


def test_edge_kinds():
    cfg = build_cfg(assemble(DIAMOND))
    kinds = {
        (edge.source, edge.target): edge.kind
        for edge in cfg.successor_edges(0)
    }
    assert kinds[(0, 1)] == EdgeKind.FALLTHROUGH
    assert kinds[(0, 2)] == EdgeKind.TAKEN


def test_reverse_postorder_starts_at_entry_ends_at_exit():
    cfg = build_cfg(assemble(DIAMOND))
    order = cfg.reverse_postorder()
    assert order[0] == 0
    assert order[-1] == 3
    assert set(order) == {0, 1, 2, 3}


def test_loop_has_back_edge():
    cfg = build_cfg(
        assemble(
            """
            loop:
                load 0
                ifgt loop
                return
            """
        )
    )
    assert 0 in cfg.successors(0)


def test_unreachable_code_not_in_rpo():
    cfg = build_cfg(assemble("return\nnop\nreturn"))
    assert cfg.reverse_postorder() == [0]
    assert len(cfg) == 2


def test_instruction_count():
    cfg = build_cfg(assemble(DIAMOND))
    assert cfg.instruction_count == 7


def test_fall_off_end_rejected():
    with pytest.raises(CFGError):
        build_cfg(assemble("iconst 1\nstore 0"))


def test_conditional_fall_off_end_rejected():
    with pytest.raises(CFGError):
        build_cfg(assemble("start:\nload 0\nifeq start"))


def test_block_lookup_bounds():
    cfg = build_cfg(assemble("return"))
    with pytest.raises(CFGError):
        cfg.block(5)
