"""ClassFile structure, builder, and method reordering."""

import pytest

from repro.bytecode import Instruction, Opcode
from repro.classfile import ClassFileBuilder
from repro.errors import ClassFileError


def build_two_method_class():
    builder = ClassFileBuilder("app/A")
    builder.add_field("counter", initial_value=0)
    builder.add_method(
        "main",
        "()V",
        [Instruction(Opcode.RETURN)],
    )
    builder.add_method(
        "helper",
        "(I)I",
        [Instruction(Opcode.LOAD, (0,)), Instruction(Opcode.IRETURN)],
    )
    return builder.build()


def test_builder_produces_named_class():
    classfile = build_two_method_class()
    assert classfile.name == "app/A"
    assert [method.name for method in classfile.methods] == [
        "main",
        "helper",
    ]


def test_builder_interns_names_in_pool():
    classfile = build_two_method_class()
    pool = classfile.constant_pool
    assert pool.find_utf8("app/A") is not None
    assert pool.find_utf8("main") is not None
    assert pool.find_utf8("counter") is not None
    assert pool.find_utf8("Code") is not None


def test_builder_rejects_duplicate_method():
    builder = ClassFileBuilder("A")
    builder.add_method("m")
    with pytest.raises(ClassFileError):
        builder.add_method("m")


def test_method_lookup():
    classfile = build_two_method_class()
    assert classfile.method("helper").descriptor == "(I)I"
    assert classfile.has_method("main")
    assert not classfile.has_method("absent")
    assert classfile.method_index("helper") == 1
    with pytest.raises(ClassFileError):
        classfile.method("absent")
    with pytest.raises(ClassFileError):
        classfile.method_index("absent")


def test_field_lookup():
    classfile = build_two_method_class()
    assert classfile.field_named("counter").descriptor == "I"
    with pytest.raises(ClassFileError):
        classfile.field_named("absent")


def test_reordered_permutes_methods():
    classfile = build_two_method_class()
    reordered = classfile.reordered(["helper", "main"])
    assert [method.name for method in reordered.methods] == [
        "helper",
        "main",
    ]
    # The original is untouched; global data is shared.
    assert [method.name for method in classfile.methods] == [
        "main",
        "helper",
    ]
    assert reordered.constant_pool is classfile.constant_pool


def test_reordered_requires_permutation():
    classfile = build_two_method_class()
    with pytest.raises(ClassFileError):
        classfile.reordered(["main"])
    with pytest.raises(ClassFileError):
        classfile.reordered(["main", "main"])
    with pytest.raises(ClassFileError):
        classfile.reordered(["main", "other"])


def test_builder_cross_class_refs():
    builder = ClassFileBuilder("A")
    method_ref = builder.method_ref("B", "bar", "()V")
    field_ref = builder.field_ref("B", "data")
    pool = builder.constant_pool
    assert pool.member_ref(method_ref) == ("B", "bar", "()V")
    assert pool.member_ref(field_ref) == ("B", "data", "I")


def test_builder_interfaces_and_attributes():
    builder = ClassFileBuilder("A")
    builder.add_interface("Runnable")
    builder.add_attribute("SourceFile", b"A.mini")
    classfile = builder.build()
    assert classfile.interfaces == ("Runnable",)
    assert classfile.attributes[0].name == "SourceFile"
