"""Failure injection: corrupt wire images must fail cleanly.

Every malformed input raises :class:`~repro.errors.ClassFileError` (or
a subclass) — never a bare ValueError/UnicodeDecodeError/struct.error —
so callers can hold the single-exception-type contract at the API
boundary.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classfile import deserialize, serialize
from repro.errors import ClassFileError
from repro.workloads import figure1_program


def baseline_image():
    return serialize(figure1_program().classes[0])


@settings(max_examples=200, deadline=None)
@given(
    flips=st.lists(
        st.tuples(st.integers(0, 10_000), st.integers(0, 255)),
        min_size=1,
        max_size=8,
    )
)
def test_bitflips_fail_cleanly_or_roundtrip(flips):
    image = bytearray(baseline_image())
    for position, value in flips:
        image[position % len(image)] = value
    try:
        recovered = deserialize(bytes(image))
    except ClassFileError:
        return  # clean failure
    # If the corruption happened to produce a valid image, it must
    # behave like one: re-serializable and structurally consistent.
    assert recovered.name
    serialize(recovered)


@settings(max_examples=100, deadline=None)
@given(junk=st.binary(min_size=0, max_size=300))
def test_random_bytes_always_rejected(junk):
    with pytest.raises(ClassFileError):
        deserialize(junk)


@settings(max_examples=100, deadline=None)
@given(cut=st.integers(1, 400))
def test_truncations_always_rejected(cut):
    image = baseline_image()
    with pytest.raises(ClassFileError):
        deserialize(image[: max(0, len(image) - cut)])
