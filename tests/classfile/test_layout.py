"""Layout accounting must agree with the serializer byte-for-byte."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bytecode import Instruction, Opcode
from repro.classfile import (
    METHOD_DELIMITER_SIZE,
    ClassFileBuilder,
    class_layout,
    global_data_breakdown,
    serialize,
)
from repro.errors import ClassFileError


def build_class(method_count=3, local_data=b"", field_count=2):
    builder = ClassFileBuilder("app/L")
    for index in range(field_count):
        builder.add_field(f"field{index}")
    for index in range(method_count):
        builder.add_method(
            f"m{index}",
            "()V",
            [
                Instruction(Opcode.ICONST, (index,)),
                Instruction(Opcode.POP),
                Instruction(Opcode.RETURN),
            ],
            local_data=local_data,
        )
    return builder.build()


def test_layout_total_matches_serialized_length():
    classfile = build_class()
    layout = class_layout(classfile)
    assert layout.strict_size == len(serialize(classfile))


def test_nonstrict_size_adds_one_delimiter_per_method():
    classfile = build_class(method_count=4)
    layout = class_layout(classfile)
    assert (
        layout.nonstrict_size
        == layout.strict_size + 4 * METHOD_DELIMITER_SIZE
    )


def test_local_plus_structural_overhead_equals_total():
    classfile = build_class(local_data=b"\xaa" * 20)
    layout = class_layout(classfile)
    assert layout.local_bytes + layout.global_bytes == layout.strict_size
    # Local data payload must be inside the local byte count.
    assert layout.local_bytes >= 20 * 3


def test_method_size_lookup():
    classfile = build_class()
    layout = class_layout(classfile)
    assert layout.method_size("m1") == classfile.method("m1").size
    with pytest.raises(ClassFileError):
        layout.method_size("missing")


def test_method_sizes_in_file_order():
    classfile = build_class()
    reordered = classfile.reordered(["m2", "m0", "m1"])
    layout = class_layout(reordered)
    assert [name for name, _ in layout.method_sizes] == ["m2", "m0", "m1"]


def test_reordering_does_not_change_sizes():
    classfile = build_class()
    before = class_layout(classfile)
    after = class_layout(classfile.reordered(["m2", "m0", "m1"]))
    assert before.strict_size == after.strict_size
    assert before.global_size == after.global_size


def test_global_breakdown_percentages_sum():
    classfile = build_class()
    breakdown = global_data_breakdown(classfile)
    of_global = breakdown.percent_of_global()
    assert sum(of_global.values()) == pytest.approx(100.0)
    of_pool = breakdown.percent_of_pool()
    # Tag percentages cover the entry bytes; the 2-byte count header is
    # the only part not attributed to a tag.
    assert sum(of_pool.values()) == pytest.approx(
        100.0 * (breakdown.constant_pool - 2) / breakdown.constant_pool
    )


def test_utf8_dominates_pool_like_the_paper():
    # Paper Table 8: Utf8 strings are the largest pool component for
    # real programs.  Our builder-produced classes (all names interned)
    # show the same shape.
    classfile = build_class(method_count=8, field_count=6)
    breakdown = global_data_breakdown(classfile)
    of_pool = breakdown.percent_of_pool()
    assert of_pool["Utf8"] == max(of_pool.values())


@settings(max_examples=25, deadline=None)
@given(
    method_count=st.integers(1, 6),
    field_count=st.integers(0, 5),
    local_size=st.integers(0, 64),
)
def test_layout_serializer_agreement_property(
    method_count, field_count, local_size
):
    classfile = build_class(
        method_count=method_count,
        field_count=field_count,
        local_data=b"\x00" * local_size,
    )
    layout = class_layout(classfile)
    assert layout.strict_size == len(serialize(classfile))
    assert layout.global_size + layout.local_bytes <= layout.strict_size
