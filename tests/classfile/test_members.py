"""Fields, methods, attributes, and descriptor parsing."""

import pytest

from repro.bytecode import Instruction, Opcode
from repro.classfile import (
    Attribute,
    FieldInfo,
    MethodInfo,
    parse_descriptor,
)
from repro.errors import ClassFileError


def test_parse_descriptor_simple():
    descriptor = parse_descriptor("(II)I")
    assert descriptor.parameters == ("I", "I")
    assert descriptor.return_type == "I"
    assert descriptor.arity == 2
    assert descriptor.returns_value
    assert str(descriptor) == "(II)I"


def test_parse_descriptor_void_and_empty():
    descriptor = parse_descriptor("()V")
    assert descriptor.arity == 0
    assert not descriptor.returns_value


def test_parse_descriptor_array_parameter():
    assert parse_descriptor("(AI)A").parameters == ("A", "I")


@pytest.mark.parametrize(
    "bad", ["", "I", "()", "(X)V", "(I)X", "(I)", "(I)VV", "I)V"]
)
def test_parse_descriptor_rejects_malformed(bad):
    with pytest.raises(ClassFileError):
        parse_descriptor(bad)


def test_attribute_size():
    assert Attribute("Name", b"12345").size == 11
    assert Attribute("Name").size == 6


def test_field_size():
    plain = FieldInfo("counter")
    assert plain.size == 8
    with_attr = FieldInfo("c", attributes=(Attribute("A", b"xy"),))
    assert with_attr.size == 8 + 8


def test_method_size_accounting():
    method = MethodInfo(
        name="run",
        descriptor="()V",
        instructions=[
            Instruction(Opcode.ICONST, (1,)),  # 5
            Instruction(Opcode.RETURN),  # 1
        ],
    )
    assert method.code_bytes == 6
    assert method.code_attribute_size == 6 + 8 + 6
    assert method.local_data_attribute_size == 0
    assert method.size == 8 + 20
    assert method.local_bytes == 6


def test_method_local_data_contributes():
    method = MethodInfo(name="m", local_data=b"\x00" * 10)
    assert method.local_data_attribute_size == 16
    assert method.local_bytes == 10
    assert method.size == 8 + (6 + 8 + 0) + 16


def test_method_invalid_descriptor_rejected_eagerly():
    with pytest.raises(ClassFileError):
        MethodInfo(name="bad", descriptor="nope")


def test_replace_instructions_copies():
    method = MethodInfo(name="m", instructions=[Instruction(Opcode.NOP)])
    replaced = method.replace_instructions(
        [Instruction(Opcode.RETURN)]
    )
    assert replaced.instructions == [Instruction(Opcode.RETURN)]
    assert method.instructions == [Instruction(Opcode.NOP)]
    assert replaced.name == "m"
