"""Constant pool interning, resolution, and size accounting."""

import pytest

from repro.classfile import (
    ConstantPool,
    ConstantTag,
    IntegerEntry,
    MethodRefEntry,
    Utf8Entry,
)
from repro.errors import ConstantPoolError


def test_indices_start_at_one():
    pool = ConstantPool()
    assert pool.add_utf8("hello") == 1
    assert pool.get(1) == Utf8Entry("hello")


def test_interning_returns_same_index():
    pool = ConstantPool()
    first = pool.add_utf8("dup")
    second = pool.add_utf8("dup")
    assert first == second
    assert len(pool) == 1


def test_distinct_values_get_distinct_indices():
    pool = ConstantPool()
    assert pool.add_integer(1) != pool.add_integer(2)


def test_index_zero_is_invalid():
    pool = ConstantPool()
    pool.add_utf8("x")
    with pytest.raises(ConstantPoolError):
        pool.get(0)
    with pytest.raises(ConstantPoolError):
        pool.get(2)


def test_get_typed_checks_entry_type():
    pool = ConstantPool()
    index = pool.add_integer(7)
    with pytest.raises(ConstantPoolError):
        pool.get_typed(index, Utf8Entry)


def test_method_ref_resolution():
    pool = ConstantPool()
    index = pool.add_method_ref("pkg/Main", "run", "(I)V")
    assert pool.member_ref(index) == ("pkg/Main", "run", "(I)V")


def test_method_ref_shares_subentries():
    pool = ConstantPool()
    pool.add_method_ref("A", "f", "()V")
    before = len(pool)
    pool.add_field_ref("A", "f", "()V")
    # Class, Utf8 and NameAndType entries are all shared.
    assert len(pool) == before + 1


def test_string_constant_value():
    pool = ConstantPool()
    index = pool.add_string("greeting")
    assert pool.constant_value(index) == "greeting"


def test_numeric_constant_values():
    pool = ConstantPool()
    assert pool.constant_value(pool.add_integer(-3)) == -3
    assert pool.constant_value(pool.add_long(2**40)) == 2**40
    assert pool.constant_value(pool.add_double(1.5)) == 1.5


def test_non_loadable_constant_rejected():
    pool = ConstantPool()
    index = pool.add_class("A")
    with pytest.raises(ConstantPoolError):
        pool.constant_value(index)


def test_integer_range_validation():
    with pytest.raises(ConstantPoolError):
        IntegerEntry(2**31)


def test_entry_sizes():
    assert Utf8Entry("abc").size == 1 + 2 + 3
    assert IntegerEntry(0).size == 5
    assert MethodRefEntry(1, 2).size == 5


def test_pool_size_is_count_plus_entries():
    pool = ConstantPool()
    pool.add_utf8("ab")  # 5 bytes
    pool.add_integer(1)  # 5 bytes
    assert pool.size == 2 + 5 + 5


def test_size_by_tag():
    pool = ConstantPool()
    pool.add_utf8("abcd")  # 7 bytes of UTF8
    pool.add_string("abcd")  # +3 bytes STRING (utf8 shared)
    breakdown = pool.size_by_tag()
    assert breakdown[ConstantTag.UTF8] == 7
    assert breakdown[ConstantTag.STRING] == 3
    assert sum(breakdown.values()) + 2 == pool.size


def test_class_name_resolution():
    pool = ConstantPool()
    index = pool.add_class("pkg/Thing")
    assert pool.class_name(index) == "pkg/Thing"


def test_member_ref_requires_member_entry():
    pool = ConstantPool()
    index = pool.add_utf8("zzz")
    with pytest.raises(ConstantPoolError):
        pool.member_ref(index)


def test_find_utf8():
    pool = ConstantPool()
    index = pool.add_utf8("needle")
    assert pool.find_utf8("needle") == index
    assert pool.find_utf8("missing") is None
