"""Wire-format round-trips and byte-exactness, with property coverage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bytecode import Instruction, Opcode
from repro.classfile import (
    ClassFileBuilder,
    deserialize,
    serialize,
)
from repro.errors import ClassFileError

_NAMES = st.text(
    alphabet=st.sampled_from("abcdefgXYZ_/$09"), min_size=1, max_size=12
)


def sample_class():
    builder = ClassFileBuilder("app/Sample")
    builder.add_interface("app/Iface")
    builder.add_field("count", initial_value=3)
    builder.add_field("flag")
    builder.add_string_constant("hello world")
    builder.add_method(
        "main",
        "()V",
        [
            Instruction(Opcode.ICONST, (2,)),
            Instruction(Opcode.STORE, (0,)),
            Instruction(Opcode.RETURN),
        ],
    )
    builder.add_method(
        "work",
        "(II)I",
        [
            Instruction(Opcode.LOAD, (0,)),
            Instruction(Opcode.LOAD, (1,)),
            Instruction(Opcode.ADD),
            Instruction(Opcode.IRETURN),
        ],
        local_data=b"\x01\x02\x03\x04",
    )
    builder.add_attribute("SourceFile", b"Sample.mini")
    return builder.build()


def test_roundtrip_preserves_structure():
    original = sample_class()
    recovered = deserialize(serialize(original))
    assert recovered.name == original.name
    assert recovered.interfaces == original.interfaces
    assert [f.name for f in recovered.fields] == ["count", "flag"]
    assert [m.name for m in recovered.methods] == ["main", "work"]
    assert (
        recovered.method("work").instructions
        == original.method("work").instructions
    )
    assert recovered.method("work").local_data == b"\x01\x02\x03\x04"
    assert recovered.attributes == original.attributes


def test_roundtrip_is_byte_stable():
    original = sample_class()
    image = serialize(original)
    assert serialize(deserialize(image)) == image


def test_serialize_twice_is_stable():
    original = sample_class()
    assert serialize(original) == serialize(original)


def test_method_order_is_preserved_on_the_wire():
    original = sample_class()
    reordered = original.reordered(["work", "main"])
    recovered = deserialize(serialize(reordered))
    assert [m.name for m in recovered.methods] == ["work", "main"]


def test_bad_magic_rejected():
    image = bytearray(serialize(sample_class()))
    image[0] ^= 0xFF
    with pytest.raises(ClassFileError):
        deserialize(bytes(image))


def test_bad_version_rejected():
    image = bytearray(serialize(sample_class()))
    image[6] = 0x7F
    with pytest.raises(ClassFileError):
        deserialize(bytes(image))


def test_truncated_image_rejected():
    image = serialize(sample_class())
    with pytest.raises(ClassFileError):
        deserialize(image[:-1])


def test_trailing_bytes_rejected():
    image = serialize(sample_class())
    with pytest.raises(ClassFileError):
        deserialize(image + b"\x00")


@settings(max_examples=30, deadline=None)
@given(
    class_name=_NAMES,
    field_names=st.lists(_NAMES, max_size=4, unique=True),
    method_names=st.lists(_NAMES, min_size=1, max_size=5, unique=True),
    local_data=st.binary(max_size=32),
    constant=st.integers(-(2**31), 2**31 - 1),
)
def test_roundtrip_property(
    class_name, field_names, method_names, local_data, constant
):
    builder = ClassFileBuilder(class_name)
    for name in field_names:
        builder.add_field(name)
    builder.constant_pool.add_integer(constant)
    for index, name in enumerate(method_names):
        builder.add_method(
            name,
            "(I)I" if index % 2 else "()V",
            [
                Instruction(Opcode.ICONST, (index,)),
                Instruction(Opcode.POP),
                Instruction(
                    Opcode.IRETURN if index % 2 else Opcode.RETURN
                ),
            ],
            local_data=local_data if index == 0 else b"",
        )
    original = builder.build()
    image = serialize(original)
    recovered = deserialize(image)
    assert recovered.name == original.name
    assert [m.name for m in recovered.methods] == method_names
    assert serialize(recovered) == image
