#!/usr/bin/env python3
"""Explore one of the paper's six benchmarks in depth.

Generates the calibrated synthetic equivalent of a paper benchmark,
shows its statistics against the published numbers, and walks one
configuration through the co-simulator with full detail (stalls,
demand fetches, terminated bytes).

Run:  python examples/paper_benchmarks.py [BIT|Hanoi|JavaCup|Jess|JHLZip|TestDes]
"""

import sys

from repro import MODEM_LINK, T1_LINK, strict_baseline
from repro.classfile import class_layout
from repro.core import Simulator
from repro.harness import bundle
from repro.reorder import restructure
from repro.transfer import InterleavedController, ParallelController


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "Jess"
    item = bundle(name)
    workload = item.workload
    spec = workload.spec
    program = workload.program

    print(f"=== {spec.name}: {spec.description} ===")
    total_kb = (
        sum(
            class_layout(classfile).strict_size
            for classfile in program.classes
        )
        / 1024
    )
    print(
        f"classes: {len(program.classes)} (paper {spec.total_files}); "
        f"methods: {program.method_count} (paper {spec.total_methods}); "
        f"wire size: {total_kb:.0f} KB"
    )
    print(
        f"dynamic instructions: "
        f"{workload.test_trace.total_instructions:,} test / "
        f"{workload.train_trace.total_instructions:,} train; "
        f"CPI {spec.cpi}"
    )
    used = workload.test_trace.methods_used()
    print(
        f"methods used by the test input: {len(used)} of "
        f"{program.method_count}"
    )

    for link in (T1_LINK, MODEM_LINK):
        base = strict_baseline(
            program, workload.test_trace, link, workload.cpi
        )
        print(f"\n--- {link.name}: strict = {base.total_cycles/1e6:,.0f}"
              f" Mcycles ({base.percent_transfer:.1f}% transfer) ---")
        for label, order in (
            ("SCG  ", item.scg),
            ("Train", item.train),
            ("Test ", item.test),
        ):
            target = restructure(program, order)
            interleaved = Simulator(
                target,
                workload.test_trace,
                InterleavedController(target, order),
                link,
                workload.cpi,
            ).run()
            parallel_controller = ParallelController(
                target, order, link, workload.cpi, max_streams=4
            )
            parallel = Simulator(
                target,
                workload.test_trace,
                parallel_controller,
                link,
                workload.cpi,
            ).run()
            print(
                f"  {label} interleaved: "
                f"{interleaved.normalized_to(base.total_cycles):5.1f}% "
                f"({interleaved.stall_count:4} stalls, "
                f"{interleaved.bytes_terminated/1024:6.1f} KB cut off) | "
                f"parallel(4): "
                f"{parallel.normalized_to(base.total_cycles):5.1f}% "
                f"({len(parallel_controller.demand_fetches)} demand "
                "fetches)"
            )


if __name__ == "__main__":
    main()
