#!/usr/bin/env python3
"""The paper's two outlooks, realized: JIT overlap and compression.

Section 2.1 frames compression as a complementary latency-avoidance
technique; §8 closes by proposing to overlap JIT compilation with
transfer.  This example runs both extensions on a paper benchmark and
stacks them against the plain configurations.

Run:  python examples/jit_and_compression.py [benchmark] [--modem]
"""

import sys

from repro import strict_baseline
from repro.core import (
    JitModel,
    Simulator,
    simulate_jit_overlap,
    strict_jit_total,
)
from repro.harness import bundle
from repro.reorder import restructure
from repro.transfer import (
    MODEM_LINK,
    T1_LINK,
    CompressedInterleavedController,
    InterleavedController,
)

JIT = JitModel(compile_cycles_per_byte=600.0, compiled_cpi=60.0)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "Jess"
    link = MODEM_LINK if "--modem" in sys.argv else T1_LINK
    item = bundle(name)
    workload = item.workload
    program = workload.program
    trace = workload.test_trace
    target = restructure(program, item.test)

    base = strict_baseline(program, trace, link, workload.cpi)
    print(f"=== {name} over {link.name} ===")
    print(
        f"strict (interpreted):        "
        f"{base.total_cycles/1e6:10,.0f} Mcycles  (100.0%)"
    )

    plain = Simulator(
        target, trace, InterleavedController(target, item.test),
        link, workload.cpi,
    ).run()
    print(
        f"non-strict interleaved:      "
        f"{plain.total_cycles/1e6:10,.0f} Mcycles  "
        f"({plain.normalized_to(base.total_cycles):5.1f}%)"
    )

    compressed = Simulator(
        target, trace,
        CompressedInterleavedController(target, item.test),
        link, workload.cpi,
    ).run()
    print(
        f"  + zlib-compressed units:   "
        f"{compressed.total_cycles/1e6:10,.0f} Mcycles  "
        f"({compressed.normalized_to(base.total_cycles):5.1f}%)"
    )

    strict_jit = strict_jit_total(program, trace, link, JIT)
    print(
        f"strict JIT (xfer+compile+run):"
        f"{strict_jit/1e6:9,.0f} Mcycles  (100.0% of JIT base)"
    )
    overlapped = simulate_jit_overlap(
        program, trace, item.test, link, JIT
    )
    print(
        f"non-strict JIT overlap:      "
        f"{overlapped.total_cycles/1e6:10,.0f} Mcycles  "
        f"({100 * overlapped.total_cycles / strict_jit:5.1f}% of JIT "
        f"base; {100 * overlapped.overlap_fraction:.0f}% of "
        "compilation hidden in stalls)"
    )


if __name__ == "__main__":
    main()
