#!/usr/bin/env python3
"""A Towers-of-Hanoi applet written in Mini, streamed over a modem.

Mirrors the paper's Hanoi benchmark end to end: author the applet in
the Mini source language, compile it to class files, verify them, run
and profile on the VM, then compare strict vs non-strict download over
a 28.8K modem.

Run:  python examples/mini_applet.py
"""

from repro import (
    MODEM_LINK,
    compile_source,
    estimate_first_use,
    profile_first_use,
    record_run,
    restructure,
    run_nonstrict,
    strict_baseline,
)
from repro.linker import verify_class

CPI = 200.0

HANOI_SOURCE = """
// A Towers-of-Hanoi solver with a tiny 'display' subsystem, so the
// applet has more than one class and a realistic first-use order.
class Applet {
    global moves = 0;

    func main() {
        var rings = 7;
        Display.banner();
        solve(rings, 0, 2, 1);
        Display.report(Applet.moves);
        Stats.record(Applet.moves);
    }

    func solve(n, source, target, spare) {
        if (n <= 0) { return; }
        solve(n - 1, source, spare, target);
        Applet.moves = Applet.moves + 1;
        solve(n - 1, spare, target, source);
    }
}

class Display {
    global banners = 0;

    func banner() {
        Display.banners = Display.banners + 1;
        print("towers of hanoi");
    }

    func report(moves) {
        print(moves);
    }

    // Never called for this input: a cold feature.
    func debug_dump(level) {
        var i = 0;
        while (i < level) {
            print(i);
            i = i + 1;
        }
    }
}

class Stats {
    global total = 0;

    func record(moves) {
        Stats.total = Stats.total + moves;
    }
}
"""


def main() -> None:
    program = compile_source(HANOI_SOURCE)
    for classfile in program.classes:
        verify_class(classfile)
    print(
        "Compiled and verified:",
        ", ".join(
            f"{c.name}({len(c.methods)} methods)"
            for c in program.classes
        ),
    )

    result, recorder = record_run(program)
    print(f"\nApplet output: {result.output}")
    print(f"Moves for 7 rings: {result.global_value('Applet', 'moves')}")
    print(f"Dynamic instructions: {result.instructions_executed}")

    static_order = estimate_first_use(program)
    profile_order = profile_first_use(program)
    print(
        "\nStatic first-use prediction:",
        " -> ".join(str(m) for m in static_order.order),
    )
    print(
        "Profiled first-use order:   ",
        " -> ".join(str(m) for m in profile_order.order),
    )

    base = strict_baseline(program, recorder.trace, MODEM_LINK, CPI)
    print(
        f"\nStrict download+run over the modem: "
        f"{base.total_cycles/1e6:.1f} Mcycles "
        f"({base.percent_transfer:.0f}% is transfer)"
    )
    for label, order in (
        ("static estimate", static_order),
        ("profile", profile_order),
    ):
        sim = run_nonstrict(
            program, recorder.trace, order, MODEM_LINK, CPI,
            method="interleaved",
        )
        print(
            f"non-strict ({label:15}): "
            f"{sim.total_cycles/1e6:.1f} Mcycles = "
            f"{sim.normalized_to(base.total_cycles):.1f}% of strict, "
            f"{sim.bytes_terminated:.0f} bytes never transferred"
        )

    restructured = restructure(program, profile_order)
    print("\nRestructured class layouts:")
    for classfile in restructured.classes:
        methods = ", ".join(m.name for m in classfile.methods)
        print(f"  {classfile.name}: {methods}")


if __name__ == "__main__":
    main()
