#!/usr/bin/env python3
"""Quickstart: non-strict execution on the paper's running example.

Builds the two-class program of the paper's Figures 1-5, profiles it on
the VM, restructures it into first-use order, and co-simulates strict
vs non-strict transfer over the paper's two links.

Run:  python examples/quickstart.py
"""

from repro import (
    MODEM_LINK,
    T1_LINK,
    TransferPolicy,
    estimate_first_use,
    figure1_program,
    invocation_latency_cycles,
    record_run,
    restructure,
    run_nonstrict,
    strict_baseline,
)

CPI = 50.0  # cycles per bytecode instruction for this toy program


def main() -> None:
    program = figure1_program()
    print("Program:", ", ".join(program.class_names))
    for classfile in program.classes:
        methods = ", ".join(m.name for m in classfile.methods)
        print(f"  class {classfile.name}: {methods}")

    # 1. Execute and profile (the paper's BIT instrumentation step).
    result, recorder = record_run(program)
    print(f"\nExecuted {result.instructions_executed} instructions.")
    print(
        "First-use order:",
        " -> ".join(str(m) for m in recorder.profile.order),
    )

    # 2. Predict the first-use order statically and restructure.
    order = estimate_first_use(program)
    restructured = restructure(program, order)
    print("\nRestructured layout (paper Figure 3):")
    for classfile in restructured.classes:
        methods = ", ".join(m.name for m in classfile.methods)
        print(f"  class {classfile.name}: {methods}")

    # 3. Strict vs non-strict, both links.
    for link in (T1_LINK, MODEM_LINK):
        base = strict_baseline(program, recorder.trace, link, CPI)
        sim = run_nonstrict(
            program, recorder.trace, order, link, CPI,
            method="interleaved",
        )
        strict_latency = invocation_latency_cycles(
            restructured, link, TransferPolicy.STRICT
        )
        nonstrict_latency = invocation_latency_cycles(
            restructured, link, TransferPolicy.NON_STRICT
        )
        print(f"\n--- {link.name} link ---")
        print(f"strict total:        {base.total_cycles/1e6:10.2f} Mcycles")
        print(f"non-strict total:    {sim.total_cycles/1e6:10.2f} Mcycles")
        print(
            f"normalized time:     {sim.normalized_to(base.total_cycles):10.1f}%"
        )
        print(
            "invocation latency:  "
            f"{strict_latency/1e6:.2f} -> {nonstrict_latency/1e6:.2f} "
            f"Mcycles "
            f"({100 * (1 - nonstrict_latency / strict_latency):.0f}% faster)"
        )
        print(f"stalls: {sim.stall_count}")

    print(
        "\nNote: this toy program executes every byte it transfers and "
        "does almost no computation, so the *total* barely changes — "
        "the win here is invocation latency.  The paper-scale "
        "benchmarks (see examples/paper_benchmarks.py) show the "
        "25-40% total-time reductions."
    )


if __name__ == "__main__":
    main()
