"""Real network transfer vs. the cycle-exact simulator, side by side.

Starts a :class:`repro.netserve.ClassFileServer` in-process with a
paced link, fetches the paper's two-class workload non-strictly over a
real localhost socket, and prints the *measured* per-method invocation
latencies next to what the simulator's accounting predicts for the
same bandwidth.

Run with:  PYTHONPATH=src python examples/netserve_demo.py
"""

import asyncio

from repro import (
    figure1_program,
    invocation_latency_cycles,
    record_run,
)
from repro.netserve import (
    ClassFileServer,
    NonStrictFetcher,
    run_networked,
)
from repro.reorder import estimate_first_use, restructure
from repro.transfer import TransferPolicy, link_from_bandwidth

#: Paced link: 4 KB/s, slow enough that transfer dominates and the
#: non-strict overlap is visible to the naked eye.
BANDWIDTH_BYTES_PER_SEC = 4000


async def main() -> None:
    program = figure1_program()
    _, recorder = record_run(program)

    server = ClassFileServer(
        program, bandwidth=BANDWIDTH_BYTES_PER_SEC, burst=64
    )
    host, port = await server.start()
    print(f"server on {host}:{port}, paced to "
          f"{BANDWIDTH_BYTES_PER_SEC} B/s\n")

    fetcher = NonStrictFetcher(host, port, policy="non_strict")
    await fetcher.connect()
    result = await run_networked(fetcher, recorder.trace, cpi=50)
    await fetcher.wait_until_complete()
    await fetcher.aclose()
    await server.aclose()

    # The simulator's prediction for the same link: a NetworkLink whose
    # cycles/byte match the paced bandwidth at the paper's 500 MHz CPU.
    link = link_from_bandwidth(
        "demo", bits_per_second=BANDWIDTH_BYTES_PER_SEC * 8
    )
    restructured = restructure(program, estimate_first_use(program))
    simulated = {
        policy: invocation_latency_cycles(restructured, link, policy)
        / 500e6
        for policy in (
            TransferPolicy.STRICT,
            TransferPolicy.NON_STRICT,
        )
    }

    print("measured per-method first-invocation latency:")
    for entry in result.latencies.entries:
        marker = "  (demand-fetched)" if entry.demand_fetched else ""
        print(f"  {str(entry.method):12} {entry.latency * 1e3:8.1f} ms"
              f"{marker}")

    print("\nentry-method invocation latency, measured vs simulated:")
    print(f"  measured (non-strict fetch): "
          f"{result.invocation_latency * 1e3:8.1f} ms")
    print(f"  simulated non-strict:        "
          f"{simulated[TransferPolicy.NON_STRICT] * 1e3:8.1f} ms")
    print(f"  simulated strict:            "
          f"{simulated[TransferPolicy.STRICT] * 1e3:8.1f} ms")
    print(f"\nstalls: {result.stall_count}, "
          f"stall time {result.stall_seconds * 1e3:.1f} ms, "
          f"demand fetches: {result.demand_fetches}, "
          f"wire bytes: {result.bytes_received}")
    print("(measured and simulated differ by the per-unit frame "
          "overhead and by demand fetches reordering the stream.)")


if __name__ == "__main__":
    asyncio.run(main())
