#!/usr/bin/env python3
"""Define a custom workload spec and evaluate non-strict execution on it.

Shows how to use the library beyond the paper's six benchmarks: write a
:class:`~repro.BenchmarkSpec` for your own mobile program profile,
generate a calibrated workload, and sweep link speeds to find where
non-strict execution pays off.

Run:  python examples/custom_workload.py
"""

from repro import (
    BenchmarkSpec,
    estimate_first_use,
    link_from_bandwidth,
    run_nonstrict,
    strict_baseline,
)
from repro.workloads.synthetic import paper_workload

# A hypothetical 2026-style mobile module: lots of classes, moderate
# code, half of it never touched by a typical session.
SPEC = BenchmarkSpec(
    name="ChatPlugin",
    description="hypothetical chat client plugin",
    kind="application",
    total_files=24,
    size_kb=180,
    dynamic_instructions_test=1_500_000,
    dynamic_instructions_train=400_000,
    static_instructions=12_000,
    percent_static_executed=55,
    total_methods=520,
    cpi=300,
    local_data_kb=70.0,
    global_data_kb=110.0,
    percent_globals_needed_first=20,
    percent_globals_in_methods=70,
    percent_globals_unused=10,
    percent_bytes_needed=55,
    first_use_span=0.06,
)

#: Link sweep: 2026-flavoured bandwidths, same cycles-per-byte model.
LINKS = [
    link_from_bandwidth("2G", 100_000),
    link_from_bandwidth("3G", 2_000_000),
    link_from_bandwidth("4G", 20_000_000),
    link_from_bandwidth("fiber", 500_000_000),
]


def main() -> None:
    workload = paper_workload(SPEC)
    program = workload.program
    order = estimate_first_use(program)
    print(
        f"{SPEC.name}: {len(program.classes)} classes, "
        f"{program.method_count} methods"
    )
    print(
        f"{'link':8} {'strict (s)':>12} {'non-strict (s)':>15} "
        f"{'normalized':>11} {'% transfer':>11}"
    )
    for link in LINKS:
        base = strict_baseline(
            program, workload.test_trace, link, workload.cpi
        )
        sim = run_nonstrict(
            program,
            workload.test_trace,
            order,
            link,
            workload.cpi,
            method="interleaved",
        )
        cpu_hz = 500e6
        print(
            f"{link.name:8} {base.total_cycles/cpu_hz:12.2f} "
            f"{sim.total_cycles/cpu_hz:15.2f} "
            f"{sim.normalized_to(base.total_cycles):10.1f}% "
            f"{base.percent_transfer:10.1f}%"
        )
    print(
        "\nNon-strict execution matters exactly where transfer "
        "dominates: slow links show large wins, fast links are "
        "execution-bound and the layout no longer matters."
    )


if __name__ == "__main__":
    main()
