"""E9: regenerate Table 9 (local/global split; global by first use)."""

from repro.harness import BENCHMARK_NAMES, table9_data_breakdown
from repro.workloads.spec import benchmark_spec


def test_table9_data_breakdown(benchmark, show):
    table = benchmark.pedantic(
        table9_data_breakdown, rounds=1, iterations=1
    )
    show(table)
    for name in BENCHMARK_NAMES:
        spec = benchmark_spec(name)
        assert abs(
            table.cell(name, "% Needed First")
            - spec.percent_globals_needed_first
        ) <= 6
        assert abs(
            table.cell(name, "% Unused") - spec.percent_globals_unused
        ) <= 6
