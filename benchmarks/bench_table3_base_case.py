"""E3: regenerate Table 3 (base case: CPI, transfer/exec cycles)."""

from repro.harness import table3_base_case


def test_table3_base_case(benchmark, show):
    table = benchmark.pedantic(table3_base_case, rounds=1, iterations=1)
    show(table)
    # Paper: transfer is ~51% of strict time on T1 and ~89% on the
    # modem, averaged over the suite.
    assert 40 <= table.cell("AVG", "T1 % Transfer") <= 62
    assert 85 <= table.cell("AVG", "Modem % Transfer") <= 100
    # Per-program CPI comes straight from the paper.
    assert table.cell("Hanoi", "CPI") == 3830
