"""CI perf-regression gate for the simulation engines.

Re-runs the ``bench_sim`` sweep and compares it against the committed
``BENCH_sim.json`` baseline:

* **Cycle drift** — every row (integer cycle counts, stall counts,
  first-invocation latencies) must match the baseline exactly.  The
  batched engine is deterministic, so *any* difference means simulated
  behaviour changed and the gate fails.
* **Speedup regression** — wall-clock seconds do not transfer between
  machines, so the gate compares the reference/batched speedup
  *ratio*: if the current ratio falls more than ``--tolerance``
  (default 15%) below the committed one, the batched engine got
  relatively slower and the gate fails.

A markdown delta table is appended to ``--summary`` (defaulting to
``$GITHUB_STEP_SUMMARY`` when set, else stdout).

Re-baselining (after a deliberate behaviour or performance change)::

    python benchmarks/perf_gate.py --update-baseline
    git add BENCH_sim.json   # commit the new baseline

Gate self-test (prove a slowdown is caught)::

    REPRO_PERF_HANDICAP=0.2 python benchmarks/perf_gate.py  # must fail
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_sim import BENCH_PATH, sim_sweep  # noqa: E402

_ROW_KEY = ("workload", "link", "ordering", "config")

_CYCLE_FIELDS = (
    "total_cycles",
    "stalls",
    "entry_latency_cycles",
    "mean_first_invocation_cycles",
    "normalized_percent",
)


def _row_key(row: Dict[str, object]) -> Tuple[object, ...]:
    return tuple(row[field] for field in _ROW_KEY)


def _index(rows: List[Dict[str, object]]):
    return {_row_key(row): row for row in rows}


def compare(
    baseline: Dict[str, object],
    current: Dict[str, object],
    tolerance: float,
) -> Tuple[List[str], List[List[str]]]:
    """Return (failures, markdown delta rows)."""
    failures: List[str] = []
    deltas: List[List[str]] = []

    base_rows = _index(baseline["rows"])
    current_rows = _index(current["rows"])
    for key in sorted(base_rows.keys() | current_rows.keys(), key=repr):
        base_row = base_rows.get(key)
        current_row = current_rows.get(key)
        label = "/".join(str(part) for part in key)
        if base_row is None or current_row is None:
            failures.append(
                f"grid point {label} "
                + ("appeared" if base_row is None else "disappeared")
            )
            continue
        for field in _CYCLE_FIELDS:
            if base_row[field] != current_row[field]:
                failures.append(
                    f"{label}: {field} {base_row[field]} -> "
                    f"{current_row[field]}"
                )
                deltas.append(
                    [
                        label,
                        field,
                        str(base_row[field]),
                        str(current_row[field]),
                    ]
                )

    base_speedup = float(baseline["speedup"])
    current_speedup = float(current["speedup"])
    floor = base_speedup / (1.0 + tolerance)
    deltas.append(
        [
            "figure6_summary",
            "speedup (ref wall / batched wall)",
            f"{base_speedup:.2f}x",
            f"{current_speedup:.2f}x (floor {floor:.2f}x)",
        ]
    )
    if current_speedup < floor:
        failures.append(
            f"speedup regression: {current_speedup:.2f}x is more than "
            f"{tolerance:.0%} below the {base_speedup:.2f}x baseline"
        )
    return failures, deltas


def render_summary(
    failures: List[str],
    deltas: List[List[str]],
    current: Dict[str, object],
) -> str:
    engines = current["engines"]
    lines = [
        "## Simulation perf gate",
        "",
        "| Metric | Baseline | Current |",
        "| --- | --- | --- |",
    ]
    for label, field, base_value, current_value in deltas:
        lines.append(
            f"| {label} — {field} | {base_value} | {current_value} |"
        )
    lines += [
        "",
        f"Reference wall: "
        f"{engines['reference']['figure6_wall_s']}s — "
        f"batched wall: {engines['batched']['figure6_wall_s']}s",
        "",
    ]
    if failures:
        lines.append(f"**FAIL** — {len(failures)} problem(s):")
        lines += [f"- {failure}" for failure in failures]
        lines += [
            "",
            "If this change is intentional, re-baseline with "
            "`python benchmarks/perf_gate.py --update-baseline` "
            "and commit `BENCH_sim.json`.",
        ]
    else:
        lines.append(
            "**PASS** — cycle counts byte-identical, speedup within "
            "tolerance."
        )
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        type=Path,
        default=BENCH_PATH,
        help="committed baseline JSON (default: BENCH_sim.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed relative speedup drop (default 0.15 = 15%%)",
    )
    parser.add_argument(
        "--summary",
        type=Path,
        default=None,
        help="markdown summary target "
        "(default: $GITHUB_STEP_SUMMARY or stdout)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from this run and exit 0",
    )
    options = parser.parse_args(argv)

    current = sim_sweep()

    if options.update_baseline:
        options.baseline.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n"
        )
        print(
            f"baseline updated: {options.baseline} "
            f"(speedup {current['speedup']}x)"
        )
        return 0

    if not options.baseline.exists():
        print(
            f"no baseline at {options.baseline}; create one with "
            "--update-baseline",
            file=sys.stderr,
        )
        return 2

    baseline = json.loads(options.baseline.read_text())
    failures, deltas = compare(baseline, current, options.tolerance)
    summary = render_summary(failures, deltas, current)

    summary_path = options.summary
    if summary_path is None and os.environ.get("GITHUB_STEP_SUMMARY"):
        summary_path = Path(os.environ["GITHUB_STEP_SUMMARY"])
    if summary_path is not None:
        with summary_path.open("a") as handle:
            handle.write(summary)
    print(summary)

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
