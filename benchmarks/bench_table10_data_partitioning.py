"""E10: regenerate Table 10 (global data partitioning)."""

from repro.harness import table10_data_partitioning, table7_interleaved


def test_table10_data_partitioning(benchmark, show):
    table = benchmark.pedantic(
        table10_data_partitioning, rounds=1, iterations=1
    )
    show(table)
    # Partitioning improves interleaved transfer versus Table 7.
    plain = table7_interleaved()
    assert table.cell("AVG", "Intl modem Test") <= (
        plain.cell("AVG", "modem Test") + 0.5
    )
    assert table.cell("AVG", "Intl T1 Test") <= (
        plain.cell("AVG", "T1 Test") + 0.5
    )
