"""Multi-link striping sweep: 1/2/4 heterogeneous links × orderings.

The paper's transfer methodologies assume one link; :mod:`repro.sched`
stripes transfer units out of order across several.  This sweep runs
every paper workload under both static orderings (SCG and Train) over
four link configurations — two single links (28.8k and 57.6k modems)
and two heterogeneous stripes (2-link 57.6k+28.8k, 4-link
57.6k+2×28.8k+14.4k) — under deadline arbitration, and persists the
whole run table to ``BENCH_sched.json`` so the striping trajectory is
tracked across PRs like the other ``BENCH_*`` files.

The headline claim checked here: striping across 2+ links improves
first-invocation latency and total time over the *best* single-link
configuration of the sweep.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core import strict_baseline
from repro.harness import BENCHMARK_NAMES, bundle
from repro.harness.results import ResultTable
from repro.sched import run_striped
from repro.transfer import links_from_bandwidths

#: label -> heterogeneous link set (bits/second per link).
LINK_CONFIGS = (
    ("1x28.8k", (28_800,)),
    ("1x57.6k", (57_600,)),
    ("2-link 57.6+28.8", (57_600, 28_800)),
    ("4-link 57.6+2x28.8+14.4", (57_600, 28_800, 28_800, 14_400)),
)

ORDERS = ("SCG", "Train")

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sched.json"


def _mean_latency(result) -> float:
    entries = result.latencies.entries
    return sum(entry.latency for entry in entries) / len(entries)


def sched_sweep():
    """Run the sweep; return (table, json_payload)."""
    table = ResultTable(
        key="sched_striping",
        title=(
            "Multi-link striping (normalized time %, deadline policy)"
        ),
        columns=["Program", "Order"]
        + [label for label, _ in LINK_CONFIGS],
    )
    rows = []
    for name in BENCHMARK_NAMES:
        item = bundle(name)
        workload = item.workload
        for order_label in ORDERS:
            order = item.order(order_label)
            cells = []
            for config_label, bandwidths in LINK_CONFIGS:
                links = links_from_bandwidths(bandwidths)
                base = strict_baseline(
                    workload.program,
                    workload.test_trace,
                    links[0],
                    workload.cpi,
                )
                result = run_striped(
                    workload.program,
                    workload.test_trace,
                    order,
                    links,
                    workload.cpi,
                    policy="deadline",
                )
                normalized = result.normalized_to(base.total_cycles)
                cells.append(normalized)
                rows.append(
                    {
                        "workload": name,
                        "order": order_label,
                        "config": config_label,
                        "links": [link.name for link in links],
                        "policy": "deadline",
                        # Cycle counts are rounded to integers at the
                        # serialization boundary: the simulator's float
                        # cycle values (e.g. 276527777.77777773) would
                        # make baseline diffs depend on float printing,
                        # and sub-cycle precision is meaningless.
                        "total_cycles": round(result.total_cycles),
                        "normalized_percent": round(normalized, 2),
                        "stalls": result.stall_count,
                        "entry_latency_cycles": round(
                            result.latencies.entries[0].latency
                        ),
                        "mean_first_invocation_cycles": round(
                            _mean_latency(result)
                        ),
                    }
                )
            table.add_row(name, order_label, *cells)
    payload = {"schema": "repro.sched.bench/1", "rows": rows}
    return table, payload


def _best(rows, workload, order, multi):
    def is_multi(row):
        return len(row["links"]) > 1

    candidates = [
        row
        for row in rows
        if row["workload"] == workload
        and row["order"] == order
        and is_multi(row) == multi
    ]
    return min(
        candidates, key=lambda row: row["total_cycles"]
    ), min(
        candidates,
        key=lambda row: row["mean_first_invocation_cycles"],
    )


def test_striping_beats_best_single_link(benchmark, show):
    table, payload = benchmark.pedantic(
        sched_sweep, rounds=1, iterations=1
    )
    show(table)
    BENCH_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    rows = payload["rows"]
    latency_wins = 0
    for name in BENCHMARK_NAMES:
        for order_label in ORDERS:
            single_total, single_latency = _best(
                rows, name, order_label, multi=False
            )
            multi_total, multi_latency = _best(
                rows, name, order_label, multi=True
            )
            # Striping must never lose on total time: the 2-link
            # stripe strictly out-bandwidths the best single link.
            assert (
                multi_total["total_cycles"]
                < single_total["total_cycles"]
            ), f"{name}/{order_label}: striping lost on total cycles"
            if (
                multi_latency["mean_first_invocation_cycles"]
                < 0.95
                * single_latency["mean_first_invocation_cycles"]
            ):
                latency_wins += 1
    # The acceptance bar: a measurable (>5%) mean first-invocation
    # latency improvement for at least one workload/order pair.
    assert latency_wins >= 1, (
        "no workload improved mean first-invocation latency by >5% "
        "when striping across 2+ links"
    )
