"""Extension: the cost of incremental verification.

The paper excludes verification overhead from its results ("the results
presented do not account for the overhead from a more complicated
verification process").  This bench quantifies it with the linker's
cost model: charge cycles per verified byte and per resolved reference,
and compare against each benchmark's strict execution time.
"""

from repro.core import strict_baseline
from repro.harness import BENCHMARK_NAMES, bundle
from repro.harness.results import ResultTable
from repro.linker import IncrementalLinker, LinkCostModel
from repro.transfer import T1_LINK


def verification_cost_table() -> ResultTable:
    table = ResultTable(
        key="extension_verification_cost",
        title=(
            "Extension: incremental linking cost (default software-"
            "verifier model) vs strict T1 execution time"
        ),
        columns=[
            "Program",
            "Verify Mcycles",
            "Resolve Mcycles",
            "% of strict T1 total",
        ],
    )
    for name in BENCHMARK_NAMES:
        item = bundle(name)
        workload = item.workload
        linker = IncrementalLinker(
            workload.program, LinkCostModel.default_overhead()
        )
        report = linker.link_all_strict()
        base = strict_baseline(
            workload.program,
            workload.test_trace,
            T1_LINK,
            workload.cpi,
        )
        table.add_row(
            name,
            report.verification_cycles / 1e6,
            report.resolution_cycles / 1e6,
            100.0 * report.total_cycles / base.total_cycles,
        )
    table.add_average_row()
    return table


def test_verification_overhead_is_small(benchmark, show):
    table = benchmark.pedantic(
        verification_cost_table, rounds=1, iterations=1
    )
    show(table)
    # Even a generous software-verifier model costs well under 1% of
    # the strict execution time — supporting the paper's decision to
    # report results without it.
    assert table.cell("AVG", "% of strict T1 total") < 1.0
