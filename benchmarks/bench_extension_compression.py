"""Extension: wire compression composed with non-strict execution.

The paper (§2.1) positions compression as latency *avoidance*,
complementary to non-strict execution's latency *tolerance*, and
predicts the two compose.  This bench measures it: real zlib ratios on
each class's serialized image, applied per transfer unit, under
interleaved transfer on the modem.
"""

from repro.core import Simulator, strict_baseline
from repro.harness import BENCHMARK_NAMES, bundle
from repro.harness.results import ResultTable
from repro.reorder import restructure
from repro.transfer import (
    MODEM_LINK,
    CompressedInterleavedController,
    InterleavedController,
    program_compression_ratios,
)


def compression_table() -> ResultTable:
    table = ResultTable(
        key="extension_compression",
        title=(
            "Extension: zlib compression x non-strict transfer "
            "(normalized time, interleaved, modem, Test ordering)"
        ),
        columns=[
            "Program",
            "Non-strict",
            "Non-strict + zlib",
            "Avg ratio",
        ],
    )
    for name in BENCHMARK_NAMES:
        item = bundle(name)
        workload = item.workload
        target = restructure(workload.program, item.test)
        base = strict_baseline(
            workload.program, workload.test_trace, MODEM_LINK, workload.cpi
        )
        plain = Simulator(
            target,
            workload.test_trace,
            InterleavedController(target, item.test),
            MODEM_LINK,
            workload.cpi,
        ).run()
        ratios = program_compression_ratios(target)
        compressed = Simulator(
            target,
            workload.test_trace,
            CompressedInterleavedController(
                target, item.test, ratios=ratios
            ),
            MODEM_LINK,
            workload.cpi,
        ).run()
        table.add_row(
            name,
            plain.normalized_to(base.total_cycles),
            compressed.normalized_to(base.total_cycles),
            sum(ratios.values()) / len(ratios),
        )
    table.add_average_row()
    return table


def test_compression_composes_with_nonstrict(benchmark, show):
    table = benchmark.pedantic(
        compression_table, rounds=1, iterations=1
    )
    show(table)
    for row in table.rows:
        plain, compressed, ratio = row[1], row[2], row[3]
        assert compressed < plain  # the techniques compose
        assert 0 < ratio < 1
