"""Micro-benchmarks of the substrates (throughput, not paper tables)."""

from repro.bytecode import assemble, decode, encode
from repro.classfile import deserialize, serialize
from repro.reorder import estimate_first_use
from repro.transfer import NetworkLink, StreamEngine, TransferUnit, UnitKind
from repro.vm import VirtualMachine
from repro.workloads import fibonacci_program
from repro.workloads.synthetic import generate_workload


def test_vm_dispatch_rate(benchmark):
    program = fibonacci_program(16)

    def run():
        return VirtualMachine(program).run().instructions_executed

    instructions = benchmark(run)
    assert instructions > 10_000


def test_serializer_roundtrip_throughput(benchmark):
    classfile = generate_workload("JHLZip").program.classes[0]
    image = serialize(classfile)

    def roundtrip():
        return serialize(deserialize(image))

    assert benchmark(roundtrip) == image


def test_bytecode_codec_throughput(benchmark):
    instructions = assemble(
        "\n".join(["iconst 7", "pop"] * 500 + ["return"])
    )

    def codec():
        return decode(encode(instructions))

    assert benchmark(codec) == instructions


def test_static_estimator_runtime(benchmark):
    program = generate_workload("JHLZip").program

    def estimate():
        return len(estimate_first_use(program))

    assert benchmark(estimate) == program.method_count


def test_stream_engine_event_rate(benchmark):
    link = NetworkLink("bench", 1.0)
    units = [
        TransferUnit(
            kind=UnitKind.GLOBAL_DATA, class_name=f"c{i}", size=10
        )
        for i in range(2000)
    ]

    def run():
        engine = StreamEngine(link)
        engine.request_stream("s", units)
        engine.run_until(1e9)
        return len(engine.arrival_times)

    assert benchmark(run) == 2000
