"""E5: regenerate Table 5 (parallel file transfer, T1)."""

from repro.harness import table5_parallel_t1


def test_table5_parallel_t1(benchmark, show):
    table = benchmark.pedantic(
        table5_parallel_t1, rounds=1, iterations=1
    )
    show(table)
    # Ordering quality: Test <= Train <= SCG on average (limit four).
    assert table.cell("AVG", "Test Four") <= (
        table.cell("AVG", "Train Four") + 0.5
    )
    assert table.cell("AVG", "Train Four") <= (
        table.cell("AVG", "SCG Four") + 0.5
    )
    # Everything improves on strict execution.
    assert table.cell("AVG", "Test Four") < 95
