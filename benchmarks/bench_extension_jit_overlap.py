"""Extension: overlapping JIT compilation with transfer (paper §8).

"If compilation can take place as the class files are being
transferred, then the latency of transfer and compilation can overlap."
This bench quantifies the outlook on the six benchmarks: strict JIT
(transfer, then compile everything, then run) versus non-strict JIT
(compile inside transfer stalls, compile-on-first-call for the rest).
"""

from repro.core import JitModel, simulate_jit_overlap, strict_jit_total
from repro.harness import BENCHMARK_NAMES, bundle
from repro.harness.results import ResultTable
from repro.transfer import T1_LINK

#: A JIT that costs ~600 cycles per compiled byte and executes bytecode
#: at a uniform 60 cycles each (well under most interpreter CPIs).
JIT = JitModel(compile_cycles_per_byte=600.0, compiled_cpi=60.0)


def jit_table() -> ResultTable:
    table = ResultTable(
        key="extension_jit",
        title=(
            "Extension: JIT compilation overlapped with transfer "
            "(T1 link, Test ordering; % of strict JIT)"
        ),
        columns=[
            "Program",
            "Strict JIT Mcycles",
            "Overlapped Mcycles",
            "Normalized %",
            "Compile hidden %",
        ],
    )
    for name in BENCHMARK_NAMES:
        item = bundle(name)
        workload = item.workload
        strict = strict_jit_total(
            workload.program, workload.test_trace, T1_LINK, JIT
        )
        result = simulate_jit_overlap(
            workload.program, workload.test_trace, item.test, T1_LINK, JIT
        )
        table.add_row(
            name,
            strict / 1e6,
            result.total_cycles / 1e6,
            100.0 * result.total_cycles / strict,
            100.0 * result.overlap_fraction,
        )
    table.add_average_row()
    return table


def test_jit_overlap_pays_off(benchmark, show):
    table = benchmark.pedantic(jit_table, rounds=1, iterations=1)
    show(table)
    assert table.cell("AVG", "Normalized %") < 90
    # Transfer stalls hide the bulk of compilation on a T1 link.
    assert table.cell("AVG", "Compile hidden %") > 60
