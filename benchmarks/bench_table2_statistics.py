"""E2: regenerate Table 2 (benchmark statistics)."""

from repro.harness import BENCHMARK_NAMES, table2_statistics


def test_table2_statistics(benchmark, show):
    table = benchmark.pedantic(
        table2_statistics, rounds=1, iterations=1
    )
    show(table)
    assert table.column("Program") == list(BENCHMARK_NAMES)
    # Headline statistics transcribed from the paper hold exactly.
    assert table.cell("Jess", "Total Files") == 97
    assert table.cell("BIT", "Total Methods") == 643
    assert table.cell("TestDes", "Instrs/Method") > 100
