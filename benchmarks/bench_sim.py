"""Engine A/B: batched event-core vs reference per-segment stepping.

Times :func:`repro.harness.figure6_summary` — the heaviest experiment
in the suite (4 configurations × 2 links × 3 orderings × 6 workloads)
— under both simulation engines, and sweeps the same grid with the
batched engine to fingerprint every simulated cycle count.  The
payload is persisted to ``BENCH_sim.json``:

* ``rows`` — one entry per grid point with integer-rounded cycle
  counts and first-invocation latencies.  These are **deterministic**
  (the batched engine replicates the reference float arithmetic
  bit-for-bit); any diff against the committed file means simulated
  behaviour changed.
* ``engines`` / ``speedup`` — wall-clock seconds per engine and their
  ratio.  Walls are machine-dependent; the CI gate
  (``benchmarks/perf_gate.py``) therefore compares the *ratio* against
  the committed baseline, not raw seconds.

The committed file is the perf-gate baseline: regenerate it only
deliberately (``python benchmarks/perf_gate.py --update-baseline``)
and commit the diff.  The pytest entry point below never rewrites it
unless ``REPRO_REBASELINE=1`` is set.

``REPRO_PERF_HANDICAP=<fraction>`` inflates the measured batched wall
by that fraction (busy-wait inside the timed region).  It exists so CI
can prove the gate actually fails on a synthetic slowdown (e.g.
``0.2`` ≈ 20% regression) without hunting for a real one.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core import run_nonstrict, strict_baseline
from repro.harness import BENCHMARK_NAMES, bundle, figure6_summary
from repro.harness import experiments as _experiments
from repro.harness.results import ResultTable
from repro.transfer import MODEM_LINK, T1_LINK

#: The Figure 6 configuration grid (label, method, max_streams, dp).
CONFIGS: Tuple[Tuple[str, str, Optional[int], bool], ...] = (
    ("Parallel File Transfer", "parallel", 4, False),
    ("PFC Data Partitioned", "parallel", 4, True),
    ("Interleaved File Transfer", "interleaved", None, False),
    ("IFC Data Partitioned", "interleaved", None, True),
)

LINKS = (("T1", T1_LINK), ("modem", MODEM_LINK))

ORDERINGS = ("SCG", "Train", "Test")

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim.json"


def _clear_experiment_caches() -> None:
    """Drop memoized simulation results, keep the workload bundles.

    ``bundle`` is engine-independent (workload generation + orders);
    keeping it warm means both timed runs measure *simulation*, not
    program synthesis.
    """
    _experiments._normalized.cache_clear()
    _experiments._baseline.cache_clear()


def _handicap_fraction() -> float:
    raw = os.environ.get("REPRO_PERF_HANDICAP", "").strip()
    return float(raw) if raw else 0.0


def timed_figure6(engine: str, repeats: int = 1) -> float:
    """Best-of-``repeats`` wall seconds for ``figure6_summary``.

    Taking the minimum over repeats is the standard defence against
    scheduler noise; single-shot walls vary enough (±10% on a loaded
    CI machine) to trip a 15% gate spuriously.
    """
    walls = []
    previous = os.environ.get("REPRO_SIM_ENGINE")
    for _ in range(repeats):
        _clear_experiment_caches()
        os.environ["REPRO_SIM_ENGINE"] = engine
        try:
            start = time.perf_counter()
            figure6_summary()
            wall = time.perf_counter() - start
            if engine == "batched":
                handicap = _handicap_fraction()
                if handicap > 0.0:
                    deadline = time.perf_counter() + wall * handicap
                    while time.perf_counter() < deadline:
                        pass
                    wall = wall * (1.0 + handicap)
        finally:
            if previous is None:
                os.environ.pop("REPRO_SIM_ENGINE", None)
            else:
                os.environ["REPRO_SIM_ENGINE"] = previous
            _clear_experiment_caches()
        walls.append(wall)
    return min(walls)


def _mean_latency(result) -> float:
    entries = result.latencies.entries
    return sum(entry.latency for entry in entries) / len(entries)


def sim_rows() -> List[Dict[str, object]]:
    """Cycle fingerprint of the full grid (batched engine).

    Integer-rounded at the serialization boundary like the other
    ``BENCH_*`` files: sub-cycle float digits are meaningless and
    would make baseline diffs depend on float printing.
    """
    rows: List[Dict[str, object]] = []
    for name in BENCHMARK_NAMES:
        item = bundle(name)
        workload = item.workload
        for link_name, link in LINKS:
            base = strict_baseline(
                workload.program,
                workload.test_trace,
                link,
                workload.cpi,
            )
            for ordering in ORDERINGS:
                order = item.order(ordering)
                for label, method, max_streams, partitioned in CONFIGS:
                    result = run_nonstrict(
                        workload.program,
                        workload.test_trace,
                        order,
                        link,
                        workload.cpi,
                        method=method,
                        max_streams=max_streams,
                        data_partitioning=partitioned,
                        engine="batched",
                    )
                    rows.append(
                        {
                            "workload": name,
                            "link": link_name,
                            "ordering": ordering,
                            "config": label,
                            "total_cycles": round(result.total_cycles),
                            "stalls": result.stall_count,
                            "entry_latency_cycles": round(
                                result.latencies.entries[0].latency
                            ),
                            "mean_first_invocation_cycles": round(
                                _mean_latency(result)
                            ),
                            "normalized_percent": round(
                                result.normalized_to(
                                    base.total_cycles
                                ),
                                2,
                            ),
                        }
                    )
    return rows


def sim_sweep() -> Dict[str, object]:
    """Full payload: cycle fingerprint plus engine wall times."""
    rows = sim_rows()  # also warms every bundle before timing
    batched_warmup = timed_figure6("batched")
    reference_wall = timed_figure6("reference", repeats=2)
    batched_wall = timed_figure6("batched", repeats=3)
    return {
        "schema": "repro.sim.bench/1",
        "engines": {
            "reference": {
                "figure6_wall_s": round(reference_wall, 3),
            },
            "batched": {
                "figure6_wall_s": round(batched_wall, 3),
                "figure6_warmup_wall_s": round(batched_warmup, 3),
            },
        },
        "speedup": round(reference_wall / batched_wall, 2),
        "rows": rows,
    }


def summary_table(payload: Dict[str, object]) -> ResultTable:
    engines = payload["engines"]
    table = ResultTable(
        key="sim_engines",
        title="Simulation engine A/B (figure6_summary wall)",
        columns=["Engine", "Wall (s)", "Speedup"],
    )
    table.add_row(
        "reference",
        engines["reference"]["figure6_wall_s"],
        1.0,
    )
    table.add_row(
        "batched",
        engines["batched"]["figure6_wall_s"],
        payload["speedup"],
    )
    return table


def test_batched_engine_speedup(benchmark, show):
    payload = benchmark.pedantic(sim_sweep, rounds=1, iterations=1)
    show(summary_table(payload))
    if BENCH_PATH.exists():
        baseline = json.loads(BENCH_PATH.read_text())
        assert payload["rows"] == baseline["rows"], (
            "simulated cycle counts drifted from the committed "
            "BENCH_sim.json baseline — engine behaviour changed"
        )
    # Conservative in-test floor; the committed baseline records the
    # real ratio (>=10x) and perf_gate.py polices regressions from it.
    assert payload["speedup"] >= 5.0, (
        f"batched engine only {payload['speedup']}x faster than the "
        "reference on figure6_summary"
    )
    if os.environ.get("REPRO_REBASELINE") == "1":
        BENCH_PATH.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
