"""E8: regenerate Table 8 (global data / constant pool breakdown)."""

from repro.harness import table8_global_data


def test_table8_global_data(benchmark, show):
    table = benchmark.pedantic(
        table8_global_data, rounds=1, iterations=1
    )
    show(table)
    # Paper: the constant pool dominates global data (avg 93.6%), and
    # Utf8 strings dominate the pool; TestDes is the integer outlier.
    assert table.cell("AVG", "CPool") > 80
    assert table.cell("AVG", "Utf8") > 40
    assert table.cell("TestDes", "Ints") > 30
