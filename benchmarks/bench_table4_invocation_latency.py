"""E4: regenerate Table 4 (invocation latency)."""

from repro.harness import BENCHMARK_NAMES, table4_invocation_latency


def test_table4_invocation_latency(benchmark, show):
    table = benchmark.pedantic(
        table4_invocation_latency, rounds=1, iterations=1
    )
    show(table)
    # Paper: non-strict cuts invocation latency 31-56% on average;
    # data partitioning cuts it further still.
    assert 25 <= table.cell("AVG", "T1 NS %dec") <= 75
    assert table.cell("AVG", "T1 DP %dec") > table.cell(
        "AVG", "T1 NS %dec"
    )
    for name in BENCHMARK_NAMES:
        assert table.cell(name, "T1 NonStrict") <= table.cell(
            name, "T1 Strict"
        )
