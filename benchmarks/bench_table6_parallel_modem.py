"""E6: regenerate Table 6 (parallel file transfer, modem)."""

from repro.harness import table6_parallel_modem


def test_table6_parallel_modem(benchmark, show):
    table = benchmark.pedantic(
        table6_parallel_modem, rounds=1, iterations=1
    )
    show(table)
    assert table.cell("AVG", "Test Four") <= (
        table.cell("AVG", "Train Four") + 0.5
    )
    # Modem gains are larger than T1 gains (compare with Table 5 runs).
    assert table.cell("AVG", "Test Four") < 80
