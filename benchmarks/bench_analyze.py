"""EA: static analysis cost across the paper's benchmark suite.

Runs the full lint pipeline (dataflow verification + transfer-plan
proofs) over every bundled workload and reports per-program cost, so
analysis overhead can be read next to the simulation benchmarks.
"""

from repro.analyze import Severity, run_lint
from repro.harness import ResultTable
from repro.workloads.spec import PAPER_BENCHMARKS
from repro.workloads.synthetic import paper_workload


def analyze_costs() -> ResultTable:
    table = ResultTable(
        key="analyze",
        title="Static analysis cost (lint over paper workloads)",
        columns=["Program", "Methods", "Findings", "Errors", "ms"],
    )
    for spec in PAPER_BENCHMARKS:
        workload = paper_workload(spec)
        report = run_lint(
            workload.program,
            trace=workload.test_trace,
            cpi=workload.cpi,
        )
        table.add_row(
            spec.name,
            report.methods_analyzed,
            len(report.findings),
            report.by_severity().get(Severity.ERROR, 0),
            report.runtime_seconds * 1000.0,
        )
    table.notes.append(
        "trace model (test input); see EXPERIMENTS.md for the "
        "predicted-vs-simulated stall recipe"
    )
    return table


def test_analyze_costs(benchmark, show):
    table = benchmark.pedantic(analyze_costs, rounds=1, iterations=1)
    show(table)
    assert table.column("Program") == [
        spec.name for spec in PAPER_BENCHMARKS
    ]
    # Bundled workloads are well-formed: the verifier finds no errors.
    assert all(errors == 0 for errors in table.column("Errors"))
    assert all(methods > 0 for methods in table.column("Methods"))
