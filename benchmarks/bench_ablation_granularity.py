"""Ablation: method-level vs basic-block-level non-strictness.

Paper §4: "checking for a delimiter at the conclusion of each basic
block incurs additional overhead with little added benefit."  We model
block-level delimiters as one delimiter per basic block: since execution
still requires whole methods, finer granularity is pure wire overhead.
"""

from repro.core import Simulator, strict_baseline
from repro.harness import bundle
from repro.harness.results import ResultTable
from repro.reorder import restructure
from repro.transfer import MODEM_LINK, InterleavedController


def granularity_table() -> ResultTable:
    table = ResultTable(
        key="ablation_granularity",
        title=(
            "Ablation: delimiter granularity (normalized time, "
            "interleaved, modem, Test ordering)"
        ),
        columns=["Program", "Method-level", "Block-level", "Overhead KB"],
    )
    for name in ("Hanoi", "JHLZip", "TestDes"):
        item = bundle(name)
        workload = item.workload
        target = restructure(workload.program, item.test)
        base = strict_baseline(
            workload.program, workload.test_trace, MODEM_LINK, workload.cpi
        )
        results = {}
        overhead = {}
        for label, block_level in (
            ("Method-level", False),
            ("Block-level", True),
        ):
            controller = InterleavedController(
                target, item.test, block_delimiters=block_level
            )
            overhead[label] = sum(
                unit.size for unit in controller.sequence
            )
            result = Simulator(
                target,
                workload.test_trace,
                controller,
                MODEM_LINK,
                workload.cpi,
            ).run()
            results[label] = result.normalized_to(base.total_cycles)
        table.add_row(
            name,
            results["Method-level"],
            results["Block-level"],
            (overhead["Block-level"] - overhead["Method-level"]) / 1024,
        )
    return table


def test_block_delimiters_are_pure_overhead(benchmark, show):
    table = benchmark.pedantic(granularity_table, rounds=1, iterations=1)
    show(table)
    for row in table.rows:
        method_level, block_level, overhead_kb = row[1], row[2], row[3]
        assert block_level >= method_level  # never better
        assert overhead_kb > 0  # and strictly more bytes on the wire
