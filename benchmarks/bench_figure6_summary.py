"""F6: regenerate Figure 6 (summary bars of normalized time)."""

from repro.harness import figure6_summary


def test_figure6_summary(benchmark, show):
    table = benchmark.pedantic(figure6_summary, rounds=1, iterations=1)
    show(table)
    interleaved_dp = table.row_for("IFC Data Partitioned")
    parallel = table.row_for("Parallel File Transfer")
    # The best configuration at least matches plain parallel transfer
    # everywhere (the paper's gap favours it more strongly; in our
    # model parallel's demand-fetch correction closes most of it).
    for index in range(1, len(table.columns)):
        assert interleaved_dp[index] <= parallel[index] + 2.0
    # Headline: a 25-40% average reduction in execution time.
    best = min(
        interleaved_dp[index] for index in range(1, len(table.columns))
    )
    assert best < 72
