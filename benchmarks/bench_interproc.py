"""Weighted (optimized-layout) order vs SCG/Train across the suite.

The interprocedural pass (:mod:`repro.analyze.interproc`) feeds the
third first-use strategy, ``weighted`` (:mod:`repro.reorder.weighted`):
a measured spine from the training profile, affinity-anchor placement
of unprofiled methods, an economic insertion gate, and a
balanced-partitioning dead tail.  This sweep runs all three orders
over every paper workload through both transfer methodologies and the
2-link striped scheduler, and persists the run table to
``BENCH_analyze.json`` so the layout trajectory is tracked across PRs
like the other ``BENCH_*`` files.

The headline claim checked here: on the interleaved methodology over
T1 — the configuration where a mispredicted method stalls execution
until its stream position arrives — ``weighted`` strictly reduces
mean first-invocation latency below the *better* of SCG and Train on
at least 3 of the 6 workloads.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core import run_nonstrict
from repro.harness import BENCHMARK_NAMES, bundle
from repro.harness.results import ResultTable
from repro.sched import run_striped
from repro.transfer import T1_LINK, links_from_bandwidths

ORDERS = ("SCG", "Train", "weighted")
METHODS = ("interleaved", "parallel")
STRIPE_BANDWIDTHS = (57_600, 28_800)
WINS_REQUIRED = 3

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_analyze.json"


def _mean_latency(result) -> float:
    entries = result.latencies.entries
    return sum(entry.latency for entry in entries) / len(entries)


def interproc_sweep():
    """Run the sweep; return (table, json_payload)."""
    table = ResultTable(
        key="interproc_orders",
        title=(
            "First-use orders: mean first-invocation latency "
            "(Mcycles, interleaved, T1)"
        ),
        columns=["Program", *ORDERS, "weighted wins"],
    )
    rows = []
    for name in BENCHMARK_NAMES:
        item = bundle(name)
        workload = item.workload
        interleaved_means = {}
        for order_label in ORDERS:
            order = item.order(order_label)
            for method in METHODS:
                result = run_nonstrict(
                    workload.program,
                    workload.test_trace,
                    order,
                    T1_LINK,
                    workload.cpi,
                    method=method,
                )
                mean = _mean_latency(result)
                if method == "interleaved":
                    interleaved_means[order_label] = mean
                rows.append(
                    {
                        "workload": name,
                        "order": order_label,
                        "method": method,
                        "link": "T1",
                        # Rounded at the serialization boundary so
                        # baseline diffs never depend on float printing.
                        "total_cycles": round(result.total_cycles),
                        "stalls": len(result.stalls),
                        "mean_first_invocation_cycles": round(mean),
                    }
                )
            links = links_from_bandwidths(STRIPE_BANDWIDTHS)
            striped = run_striped(
                workload.program,
                workload.test_trace,
                order,
                links,
                workload.cpi,
                policy="deadline",
            )
            rows.append(
                {
                    "workload": name,
                    "order": order_label,
                    "method": "striped",
                    "link": "+".join(link.name for link in links),
                    "total_cycles": round(striped.total_cycles),
                    "stalls": striped.stall_count,
                    "mean_first_invocation_cycles": round(
                        _mean_latency(striped)
                    ),
                }
            )
        best_baseline = min(
            interleaved_means["SCG"], interleaved_means["Train"]
        )
        win = interleaved_means["weighted"] < best_baseline
        table.add_row(
            name,
            interleaved_means["SCG"] / 1e6,
            interleaved_means["Train"] / 1e6,
            interleaved_means["weighted"] / 1e6,
            "yes" if win else "no",
        )
    payload = {"schema": "repro.analyze.interproc.bench/1", "rows": rows}
    return table, payload


def _interleaved_wins(rows) -> int:
    wins = 0
    for name in BENCHMARK_NAMES:
        means = {
            row["order"]: row["mean_first_invocation_cycles"]
            for row in rows
            if row["workload"] == name and row["method"] == "interleaved"
        }
        if means["weighted"] < min(means["SCG"], means["Train"]):
            wins += 1
    return wins


def test_weighted_order_beats_best_baseline(benchmark, show):
    table, payload = benchmark.pedantic(
        interproc_sweep, rounds=1, iterations=1
    )
    show(table)
    BENCH_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    wins = _interleaved_wins(payload["rows"])
    # The acceptance bar: the optimized layout strictly beats the
    # better of SCG/Train on mean first-invocation latency for at
    # least half the suite (the remainder are already execution-bound
    # or have no unprofiled methods to place better).
    assert wins >= WINS_REQUIRED, (
        f"weighted order won on {wins} workloads, "
        f"needs >= {WINS_REQUIRED}"
    )
