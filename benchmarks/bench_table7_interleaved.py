"""E7: regenerate Table 7 (interleaved file transfer)."""

from repro.harness import table7_interleaved


def test_table7_interleaved(benchmark, show):
    table = benchmark.pedantic(
        table7_interleaved, rounds=1, iterations=1
    )
    show(table)
    assert table.cell("AVG", "T1 Test") <= (
        table.cell("AVG", "T1 SCG") + 0.5
    )
    assert table.cell("AVG", "modem Test") < table.cell("AVG", "T1 Test")
