"""Robustness: conclusions hold across workload generator seeds.

The six synthetic benchmarks are calibrated to published aggregates but
their fine structure (call tree, data placement, traces) is random.
This bench regenerates one benchmark with several seeds and checks the
headline quantity — normalized time under interleaved Test-ordered
transfer over the modem — is stable.
"""

from repro.core import run_nonstrict, strict_baseline
from repro.harness.results import ResultTable
from repro.reorder import estimate_first_use, order_from_profile
from repro.transfer import MODEM_LINK
from repro.vm import synthesize_profile
from repro.workloads.synthetic import generate_workload

SEEDS = (None, 101, 202, 303)


def sensitivity_table() -> ResultTable:
    table = ResultTable(
        key="sensitivity_seeds",
        title=(
            "Robustness: Jess across generator seeds (normalized "
            "time, interleaved, modem)"
        ),
        columns=["Seed", "SCG", "Test", "% transfer (strict)"],
    )
    for seed in SEEDS:
        workload = generate_workload.__wrapped__("Jess", seed)
        base = strict_baseline(
            workload.program,
            workload.test_trace,
            MODEM_LINK,
            workload.cpi,
        )
        scg = estimate_first_use(workload.program)
        test = order_from_profile(
            workload.program,
            synthesize_profile(workload.program, workload.test_trace),
            static_order=scg,
        )
        cells = []
        for order in (scg, test):
            result = run_nonstrict(
                workload.program,
                workload.test_trace,
                order,
                MODEM_LINK,
                workload.cpi,
                method="interleaved",
            )
            cells.append(result.normalized_to(base.total_cycles))
        table.add_row(
            "default" if seed is None else seed,
            *cells,
            base.percent_transfer,
        )
    return table


def test_conclusions_are_seed_stable(benchmark, show):
    table = benchmark.pedantic(
        sensitivity_table, rounds=1, iterations=1
    )
    show(table)
    test_column = table.column("Test")
    scg_column = table.column("SCG")
    # Every seed shows a large reduction, within a modest spread.
    assert all(45 <= value <= 75 for value in test_column)
    assert max(test_column) - min(test_column) < 12
    # Ordering quality holds for every seed.
    for scg, test in zip(scg_column, test_column):
        assert test <= scg + 0.5
