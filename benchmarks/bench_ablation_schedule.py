"""Ablation: the greedy byte-triggered transfer schedule (§5.1).

Compares the paper's dependency-triggered class starts against an
eager policy that requests every class up front, with no
concurrency limit — the regime where scheduling matters: eager starts
dilute the bandwidth across every class at once, while the schedule
keeps classes predicted to be needed late (or never) off the wire
until transfer progress warrants them.
"""

from repro.core import Simulator, strict_baseline
from repro.harness import BENCHMARK_NAMES, bundle
from repro.harness.results import ResultTable
from repro.reorder import restructure
from repro.transfer import MODEM_LINK, ParallelController


def schedule_table() -> ResultTable:
    table = ResultTable(
        key="ablation_schedule",
        title=(
            "Ablation: greedy transfer schedule vs eager starts "
            "(normalized time, parallel, unlimited streams, modem, "
            "SCG ordering)"
        ),
        columns=["Program", "Greedy schedule", "Eager starts"],
    )
    for name in BENCHMARK_NAMES:
        item = bundle(name)
        workload = item.workload
        target = restructure(workload.program, item.scg)
        base = strict_baseline(
            workload.program, workload.test_trace, MODEM_LINK, workload.cpi
        )
        cells = []
        for eager in (False, True):
            controller = ParallelController(
                target,
                item.scg,
                MODEM_LINK,
                workload.cpi,
                max_streams=None,
                eager_start=eager,
            )
            result = Simulator(
                target,
                workload.test_trace,
                controller,
                MODEM_LINK,
                workload.cpi,
            ).run()
            cells.append(result.normalized_to(base.total_cycles))
        table.add_row(name, *cells)
    table.add_average_row()
    return table


def test_schedule_beats_eager_starts(benchmark, show):
    table = benchmark.pedantic(schedule_table, rounds=1, iterations=1)
    show(table)
    assert table.cell("AVG", "Greedy schedule") < table.cell(
        "AVG", "Eager starts"
    )
