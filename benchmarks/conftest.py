"""Shared helpers for the benchmark harness.

Every module regenerates one of the paper's tables or figures (or an
ablation) and prints the rows the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def show():
    """Print a ResultTable outside pytest's capture."""

    def _show(table):
        import sys

        sys.stderr.write("\n" + table.render() + "\n")
        return table

    return _show
