"""Ablation: the static estimator's loop-priority heuristics (§4.1).

Compares the full modified-DFS estimator against a plain DFS (no
loop-priority path selection, no loop-exit deferral) by the quality of
the resulting interleaved transfer.
"""

from repro.core import run_nonstrict, strict_baseline
from repro.harness import BENCHMARK_NAMES, bundle
from repro.harness.results import ResultTable
from repro.reorder import estimate_first_use
from repro.transfer import MODEM_LINK


def heuristics_table() -> ResultTable:
    table = ResultTable(
        key="ablation_heuristics",
        title=(
            "Ablation: static estimator heuristics (normalized time, "
            "interleaved, modem)"
        ),
        columns=["Program", "Modified DFS (paper)", "Plain DFS"],
    )
    for name in BENCHMARK_NAMES:
        item = bundle(name)
        workload = item.workload
        base = strict_baseline(
            workload.program, workload.test_trace, MODEM_LINK, workload.cpi
        )
        plain = estimate_first_use(
            workload.program, loop_priority=False
        )
        cells = []
        for order in (item.scg, plain):
            result = run_nonstrict(
                workload.program,
                workload.test_trace,
                order,
                MODEM_LINK,
                workload.cpi,
                method="interleaved",
            )
            cells.append(result.normalized_to(base.total_cycles))
        table.add_row(name, *cells)
    table.add_average_row()
    return table


def test_heuristics_do_not_hurt_on_average(benchmark, show):
    table = benchmark.pedantic(heuristics_table, rounds=1, iterations=1)
    show(table)
    modified = table.cell("AVG", "Modified DFS (paper)")
    plain = table.cell("AVG", "Plain DFS")
    # The heuristics should at worst match plain DFS on average.
    assert modified <= plain + 1.0
