"""Ablation: first-use reordering itself.

The paper's results always combine non-strict execution *with*
restructuring.  This ablation separates them: non-strict interleaved
transfer with the class files left in textual order (methods sequenced
as written) versus restructured into the static first-use order — i.e.
what §4's reordering is actually worth on top of bare non-strictness.
"""

from repro.core import run_nonstrict, strict_baseline
from repro.harness import BENCHMARK_NAMES, bundle
from repro.harness.results import ResultTable
from repro.reorder import textual_first_use
from repro.transfer import MODEM_LINK


def reordering_table() -> ResultTable:
    table = ResultTable(
        key="ablation_reordering",
        title=(
            "Ablation: first-use reordering (normalized time, "
            "interleaved, modem)"
        ),
        columns=[
            "Program",
            "Textual order",
            "Static first-use (SCG)",
            "Profile (Test)",
        ],
    )
    for name in BENCHMARK_NAMES:
        item = bundle(name)
        workload = item.workload
        base = strict_baseline(
            workload.program, workload.test_trace, MODEM_LINK, workload.cpi
        )
        textual = textual_first_use(workload.program)
        cells = []
        for order, restructure in (
            (textual, False),
            (item.scg, True),
            (item.test, True),
        ):
            result = run_nonstrict(
                workload.program,
                workload.test_trace,
                order,
                MODEM_LINK,
                workload.cpi,
                method="interleaved",
                restructure=restructure,
            )
            cells.append(result.normalized_to(base.total_cycles))
        table.add_row(name, *cells)
    table.add_average_row()
    return table


def test_reordering_earns_its_keep(benchmark, show):
    table = benchmark.pedantic(reordering_table, rounds=1, iterations=1)
    show(table)
    textual = table.cell("AVG", "Textual order")
    scg = table.cell("AVG", "Static first-use (SCG)")
    test = table.cell("AVG", "Profile (Test)")
    # Restructuring improves on the textual layout, and the profile
    # ordering improves again.
    assert scg <= textual + 0.5
    assert test <= scg + 0.5
