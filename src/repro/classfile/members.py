"""Fields, attributes, methods, and descriptors.

Terminology follows the paper: a class file holds *global data* (constant
pool, field table, interfaces, class-level attributes) and per-method
*local data plus code*.  A method together with its local data is the
non-strict *transfer unit* (paper §5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..bytecode import Instruction, code_size
from ..errors import ClassFileError

__all__ = [
    "AccessFlags",
    "Attribute",
    "FieldInfo",
    "MethodInfo",
    "MethodDescriptor",
    "parse_descriptor",
    "CODE_ATTRIBUTE",
    "LOCAL_DATA_ATTRIBUTE",
]

#: Reserved attribute names (stored as Utf8 constants in the pool).
CODE_ATTRIBUTE = "Code"
LOCAL_DATA_ATTRIBUTE = "LocalData"


class AccessFlags:
    """Access flag bits (the subset this model uses)."""

    PUBLIC = 0x0001
    PRIVATE = 0x0002
    STATIC = 0x0008
    FINAL = 0x0010
    NATIVE = 0x0100
    ABSTRACT = 0x0400


@dataclass(frozen=True)
class Attribute:
    """A generic attribute: a named opaque byte payload.

    Serialized as ``u2 name_index, u4 length, bytes`` — 6 bytes of
    header plus the payload, matching the JVM attribute_info layout.
    """

    name: str
    data: bytes = b""

    @property
    def size(self) -> int:
        return 6 + len(self.data)


@dataclass(frozen=True)
class FieldInfo:
    """A class-level (static/global) field.

    Serialized as ``u2 access_flags, u2 name_index, u2 descriptor_index,
    u2 attribute_count`` plus attributes.
    """

    name: str
    descriptor: str = "I"
    access_flags: int = AccessFlags.PUBLIC | AccessFlags.STATIC
    attributes: Tuple[Attribute, ...] = ()

    @property
    def size(self) -> int:
        return 8 + sum(attribute.size for attribute in self.attributes)


@dataclass(frozen=True)
class MethodDescriptor:
    """Parsed method descriptor: parameter types and return type.

    Types are single characters: ``I`` (int), ``A`` (array reference),
    ``V`` (void, return only).
    """

    parameters: Tuple[str, ...]
    return_type: str

    @property
    def arity(self) -> int:
        return len(self.parameters)

    @property
    def returns_value(self) -> bool:
        return self.return_type != "V"

    def __str__(self) -> str:
        return f"({''.join(self.parameters)}){self.return_type}"


_VALID_PARAMETER_TYPES = frozenset("IA")
_VALID_RETURN_TYPES = frozenset("IAV")


def parse_descriptor(descriptor: str) -> MethodDescriptor:
    """Parse ``(II)I``-style descriptors.

    Raises:
        ClassFileError: On malformed descriptors.
    """
    if not descriptor.startswith("("):
        raise ClassFileError(f"bad descriptor {descriptor!r}")
    closing = descriptor.find(")")
    if closing < 0:
        raise ClassFileError(f"bad descriptor {descriptor!r}")
    parameters = tuple(descriptor[1:closing])
    return_part = descriptor[closing + 1 :]
    if len(return_part) != 1 or return_part not in _VALID_RETURN_TYPES:
        raise ClassFileError(f"bad return type in {descriptor!r}")
    for parameter in parameters:
        if parameter not in _VALID_PARAMETER_TYPES:
            raise ClassFileError(
                f"bad parameter type {parameter!r} in {descriptor!r}"
            )
    return MethodDescriptor(parameters, return_part)


@dataclass
class MethodInfo:
    """A method: code, stack/locals limits, and optional local data.

    Serialized as ``u2 access_flags, u2 name_index, u2 descriptor_index,
    u2 attribute_count`` plus a Code attribute
    (``u2 max_stack, u2 max_locals, u4 code_length, code``), an optional
    LocalData attribute (opaque payload modelling method-local data), and
    any extra attributes.
    """

    name: str
    descriptor: str = "()V"
    instructions: List[Instruction] = field(default_factory=list)
    max_stack: int = 16
    max_locals: int = 8
    local_data: bytes = b""
    access_flags: int = AccessFlags.PUBLIC | AccessFlags.STATIC
    attributes: Tuple[Attribute, ...] = ()

    def __post_init__(self) -> None:
        # Validates eagerly so malformed methods fail at build time.
        self.parsed_descriptor  # noqa: B018 - executed for the check

    @property
    def parsed_descriptor(self) -> MethodDescriptor:
        return parse_descriptor(self.descriptor)

    @property
    def code_bytes(self) -> int:
        """Encoded size of the instruction stream."""
        return code_size(self.instructions)

    @property
    def code_attribute_size(self) -> int:
        """Size of the Code attribute: 6-byte header + stack/locals/len."""
        return 6 + 2 + 2 + 4 + self.code_bytes

    @property
    def local_data_attribute_size(self) -> int:
        """Size of the LocalData attribute, 0 when there is no payload."""
        if not self.local_data:
            return 0
        return 6 + len(self.local_data)

    @property
    def size(self) -> int:
        """Total serialized size of this method_info structure.

        This is the paper's per-method transfer unit size, *excluding*
        the non-strict method delimiter (see
        :mod:`repro.classfile.layout`).
        """
        return (
            8
            + self.code_attribute_size
            + self.local_data_attribute_size
            + sum(attribute.size for attribute in self.attributes)
        )

    @property
    def local_bytes(self) -> int:
        """Paper Table 9 'local data': code plus method-local payload."""
        return self.code_bytes + len(self.local_data)

    def replace_instructions(
        self, instructions: List[Instruction]
    ) -> "MethodInfo":
        """A copy of this method with different code."""
        return MethodInfo(
            name=self.name,
            descriptor=self.descriptor,
            instructions=list(instructions),
            max_stack=self.max_stack,
            max_locals=self.max_locals,
            local_data=self.local_data,
            access_flags=self.access_flags,
            attributes=self.attributes,
        )
