"""Byte-layout accounting: the sizes the transfer experiments consume.

The paper's non-strict model splits each class file into *global data*
(everything needed to begin execution of any method: header, constant
pool, interfaces, fields, class attributes, and the method-table count)
and one *transfer unit per method* (the method's local data and code,
followed by a method delimiter, §3).

This module computes those sizes from the canonical
:class:`~repro.classfile.classfile.ClassFile` structure.  They are
consistent with :func:`repro.classfile.serializer.serialize`:
``global_size + sum(method sizes) == len(serialize(cf))`` (delimiters are
wire-transfer overhead added on top of the canonical image).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import ClassFileError
from .classfile import ClassFile
from .constant_pool import ConstantTag

__all__ = [
    "METHOD_DELIMITER_SIZE",
    "ClassLayout",
    "class_layout",
    "GlobalDataBreakdown",
    "global_data_breakdown",
]

#: Size in bytes of the non-strict method delimiter (paper §3: a marker
#: after each procedure and its data signalling the unit has arrived).
METHOD_DELIMITER_SIZE = 4

#: Fixed class file framing: magic (4) + version (4).
_HEADER_SIZE = 8


@dataclass(frozen=True)
class ClassLayout:
    """Byte layout of one class file.

    Attributes:
        class_name: Name of the class.
        global_size: Bytes of global data (must precede any method in a
            non-strict transfer).
        method_sizes: ``(method name, unit size)`` in file order; unit
            size *excludes* the delimiter.
        local_data_sizes: Per-method local-data-only bytes (code plus
            LocalData payload), for Table 9 accounting.
    """

    class_name: str
    global_size: int
    method_sizes: Tuple[Tuple[str, int], ...]
    local_data_sizes: Tuple[Tuple[str, int], ...]

    @property
    def strict_size(self) -> int:
        """Size of the canonical (strict) wire image."""
        return self.global_size + sum(
            size for _, size in self.method_sizes
        )

    @property
    def nonstrict_size(self) -> int:
        """Wire size under non-strict transfer (adds delimiters)."""
        return self.strict_size + METHOD_DELIMITER_SIZE * len(
            self.method_sizes
        )

    @property
    def local_bytes(self) -> int:
        """Total method bytes (Table 9 'Local Data').

        Everything that transfers *with a method*: its code, its
        LocalData payload, and its method_info framing — i.e. the sum
        of the method unit sizes.
        """
        return sum(size for _, size in self.method_sizes)

    @property
    def code_and_payload_bytes(self) -> int:
        """Method bytes excluding framing: code plus LocalData payload."""
        return sum(size for _, size in self.local_data_sizes)

    @property
    def global_bytes(self) -> int:
        """Total global data bytes (Table 9 'Global Data').

        Everything that is not method-local: the constant pool, field
        table, interfaces, class attributes, and file framing — exactly
        :attr:`global_size`.
        """
        return self.global_size

    def method_size(self, name: str) -> int:
        for method_name, size in self.method_sizes:
            if method_name == name:
                return size
        raise ClassFileError(
            f"no method {name!r} in layout of {self.class_name!r}"
        )


def _method_table_overhead(classfile: ClassFile) -> int:
    """Global-data framing bytes of the file outside the method units."""
    return (
        _HEADER_SIZE
        + classfile.constant_pool.size
        + 2  # access flags
        + 2  # this_class index
        + 2  # interface count
        + 2 * len(classfile.interfaces)
        + 2  # field count
        + sum(field_info.size for field_info in classfile.fields)
        + 2  # method count
        + 2  # class attribute count
        + sum(attribute.size for attribute in classfile.attributes)
    )


def class_layout(classfile: ClassFile) -> ClassLayout:
    """Compute the :class:`ClassLayout` of a class file.

    Note:
        Call *after* the class file is complete.  Serialization interns
        any missing names into the constant pool; to guarantee that the
        layout and the wire image agree, this function performs the same
        interning pass first.
    """
    # Reuse the serializer's interning so pool sizes match the image.
    from .serializer import serialize  # local import to avoid a cycle

    serialize(classfile)
    method_sizes = tuple(
        (method.name, method.size) for method in classfile.methods
    )
    local_sizes = tuple(
        (method.name, method.local_bytes) for method in classfile.methods
    )
    return ClassLayout(
        class_name=classfile.name,
        global_size=_method_table_overhead(classfile),
        method_sizes=method_sizes,
        local_data_sizes=local_sizes,
    )


@dataclass(frozen=True)
class GlobalDataBreakdown:
    """Table 8 raw material: bytes per global-data component.

    Attributes:
        constant_pool: Bytes of the constant pool (count + entries).
        fields: Bytes of the field table.
        attributes: Bytes of class-level attributes.
        interfaces: Bytes of the interface table.
        pool_by_tag: Constant-pool bytes per entry tag.
    """

    constant_pool: int
    fields: int
    attributes: int
    interfaces: int
    pool_by_tag: Dict[ConstantTag, int]

    @property
    def total(self) -> int:
        """All accounted global data (excluding fixed framing)."""
        return (
            self.constant_pool
            + self.fields
            + self.attributes
            + self.interfaces
        )

    def percent_of_global(self) -> Dict[str, float]:
        """Component percentages of total global data (Table 8 left)."""
        total = self.total or 1
        return {
            "CPool": 100.0 * self.constant_pool / total,
            "Field": 100.0 * self.fields / total,
            "Attrib": 100.0 * self.attributes / total,
            "Intfc": 100.0 * self.interfaces / total,
        }

    def percent_of_pool(self) -> Dict[str, float]:
        """Entry-tag percentages of the constant pool (Table 8 right)."""
        pool_total = self.constant_pool or 1
        labels = {
            ConstantTag.UTF8: "Utf8",
            ConstantTag.INTEGER: "Ints",
            ConstantTag.FLOAT: "Float",
            ConstantTag.LONG: "Long",
            ConstantTag.DOUBLE: "Double",
            ConstantTag.STRING: "String",
            ConstantTag.CLASS: "Class",
            ConstantTag.FIELD_REF: "FRef",
            ConstantTag.METHOD_REF: "MRef",
            ConstantTag.NAME_AND_TYPE: "NandT",
            ConstantTag.INTERFACE_METHOD_REF: "IMRef",
        }
        return {
            label: 100.0 * self.pool_by_tag.get(tag, 0) / pool_total
            for tag, label in labels.items()
        }


def global_data_breakdown(classfile: ClassFile) -> GlobalDataBreakdown:
    """Decompose a class file's global data for Table 8."""
    from .serializer import serialize  # ensure pool is complete

    serialize(classfile)
    return GlobalDataBreakdown(
        constant_pool=classfile.constant_pool.size,
        fields=sum(field_info.size for field_info in classfile.fields),
        attributes=sum(
            attribute.size for attribute in classfile.attributes
        ),
        interfaces=2 * len(classfile.interfaces),
        pool_by_tag=classfile.constant_pool.size_by_tag(),
    )
