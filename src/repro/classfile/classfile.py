"""The class file structure and a builder for constructing it.

A :class:`ClassFile` is the unit of strict transfer; its methods (in file
order) are the units of non-strict transfer.  Restructuring (paper §4)
permutes ``methods``; partitioning (paper §7.3) rearranges how the global
data is *transferred* but never changes this canonical structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..bytecode import Instruction
from ..errors import ClassFileError
from .constant_pool import ConstantPool
from .members import Attribute, FieldInfo, MethodInfo

__all__ = ["ClassFile", "ClassFileBuilder", "MAGIC", "VERSION"]

#: Magic number of the serialized format ("cafe babe" homage).
MAGIC = 0xCAFEBEBE
#: (minor, major) version of the serialized format.
VERSION = (0, 1)


@dataclass
class ClassFile:
    """One mobile-program class: global data plus an ordered method list.

    Attributes:
        name: Fully qualified class name.
        constant_pool: Shared pool of constants (global data).
        access_flags: Class-level access flags.
        interfaces: Names of implemented interfaces.
        fields: Global (static) fields.
        methods: Methods in *file order* — the transfer order.
        attributes: Class-level attributes (source file name, etc.).
    """

    name: str
    constant_pool: ConstantPool = field(default_factory=ConstantPool)
    access_flags: int = 0x0001
    interfaces: Tuple[str, ...] = ()
    fields: Tuple[FieldInfo, ...] = ()
    methods: List[MethodInfo] = field(default_factory=list)
    attributes: Tuple[Attribute, ...] = ()

    def method(self, name: str) -> MethodInfo:
        """Look up a method by name.

        Raises:
            ClassFileError: If no such method exists.
        """
        for method in self.methods:
            if method.name == name:
                return method
        raise ClassFileError(f"no method {name!r} in class {self.name!r}")

    def has_method(self, name: str) -> bool:
        return any(method.name == name for method in self.methods)

    def method_index(self, name: str) -> int:
        """File-order position of a method."""
        for index, method in enumerate(self.methods):
            if method.name == name:
                return index
        raise ClassFileError(f"no method {name!r} in class {self.name!r}")

    def field_named(self, name: str) -> FieldInfo:
        for field_info in self.fields:
            if field_info.name == name:
                return field_info
        raise ClassFileError(f"no field {name!r} in class {self.name!r}")

    def reordered(self, method_order: Sequence[str]) -> "ClassFile":
        """A copy with methods permuted into ``method_order``.

        Args:
            method_order: Every method name exactly once.

        Raises:
            ClassFileError: If the order is not a permutation of the
                method names.
        """
        names = [method.name for method in self.methods]
        if sorted(names) != sorted(method_order):
            raise ClassFileError(
                f"method order {list(method_order)!r} is not a "
                f"permutation of {names!r} for class {self.name!r}"
            )
        by_name = {method.name: method for method in self.methods}
        return ClassFile(
            name=self.name,
            constant_pool=self.constant_pool,
            access_flags=self.access_flags,
            interfaces=self.interfaces,
            fields=self.fields,
            methods=[by_name[name] for name in method_order],
            attributes=self.attributes,
        )


class ClassFileBuilder:
    """Convenient construction of class files.

    Wires names through the constant pool the way a compiler would: the
    class name, every method name/descriptor, and every field
    name/descriptor are interned as Utf8 entries, and self-references
    (Class, FieldRef for own fields, MethodRef for own methods) are
    created so the pool composition resembles ``javac`` output.
    """

    def __init__(self, name: str) -> None:
        self._classfile = ClassFile(name=name)
        pool = self._classfile.constant_pool
        pool.add_class(name)

    @property
    def constant_pool(self) -> ConstantPool:
        return self._classfile.constant_pool

    def add_interface(self, name: str) -> "ClassFileBuilder":
        pool = self.constant_pool
        pool.add_class(name)
        self._classfile.interfaces += (name,)
        return self

    def add_field(
        self,
        name: str,
        descriptor: str = "I",
        initial_value: Optional[int] = None,
    ) -> "ClassFileBuilder":
        """Add a global field (and its FieldRef pool entry)."""
        pool = self.constant_pool
        pool.add_field_ref(self._classfile.name, name, descriptor)
        attributes: Tuple[Attribute, ...] = ()
        if initial_value is not None:
            index = pool.add_integer(initial_value)
            attributes = (
                Attribute("ConstantValue", index.to_bytes(2, "big")),
            )
        self._classfile.fields += (
            FieldInfo(name=name, descriptor=descriptor, attributes=attributes),
        )
        return self

    def add_method(
        self,
        name: str,
        descriptor: str = "()V",
        instructions: Optional[Iterable[Instruction]] = None,
        max_stack: int = 16,
        max_locals: int = 8,
        local_data: bytes = b"",
    ) -> "ClassFileBuilder":
        """Add a method (and its MethodRef pool entry)."""
        if self._classfile.has_method(name):
            raise ClassFileError(
                f"duplicate method {name!r} in class "
                f"{self._classfile.name!r}"
            )
        pool = self.constant_pool
        pool.add_method_ref(self._classfile.name, name, descriptor)
        pool.add_utf8("Code")
        if local_data:
            pool.add_utf8("LocalData")
        self._classfile.methods.append(
            MethodInfo(
                name=name,
                descriptor=descriptor,
                instructions=list(instructions or []),
                max_stack=max_stack,
                max_locals=max_locals,
                local_data=local_data,
            )
        )
        return self

    def add_string_constant(self, value: str) -> int:
        """Intern a string constant, returning its LDC-able index."""
        return self.constant_pool.add_string(value)

    def add_attribute(self, name: str, data: bytes) -> "ClassFileBuilder":
        self.constant_pool.add_utf8(name)
        self._classfile.attributes += (Attribute(name, data),)
        return self

    def method_ref(self, class_name: str, name: str, descriptor: str) -> int:
        """Intern a MethodRef (possibly to another class) for CALL."""
        return self.constant_pool.add_method_ref(
            class_name, name, descriptor
        )

    def field_ref(self, class_name: str, name: str, descriptor: str = "I") -> int:
        """Intern a FieldRef for GETSTATIC/PUTSTATIC."""
        return self.constant_pool.add_field_ref(class_name, name, descriptor)

    def build(self) -> ClassFile:
        """Finish and return the class file."""
        return self._classfile
