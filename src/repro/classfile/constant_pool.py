"""The constant pool: the bulk of a class file's global data.

The layout mirrors the JVM class file constant pool (Lindholm & Yellin,
*The Java Virtual Machine Specification*), which the paper's Table 8
decomposes: Utf8 strings, Integers, Floats, Longs, Doubles, Strings,
Classes, FieldRefs, MethodRefs, InterfaceMethodRefs, and NameAndType
entries.  Entry sizes here equal their serialized sizes, so the Table 8
reproduction reports real byte fractions.

Indices are 1-based; index 0 is reserved (as in the JVM).  Unlike the JVM
we do not make Long/Double entries occupy two slots — slot accounting is
irrelevant to the experiments, byte size is what matters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import ClassVar, Dict, Iterator, List, Optional, Tuple, Union

from ..errors import ConstantPoolError

__all__ = [
    "ConstantTag",
    "ConstantEntry",
    "Utf8Entry",
    "IntegerEntry",
    "FloatEntry",
    "LongEntry",
    "DoubleEntry",
    "StringEntry",
    "ClassEntry",
    "FieldRefEntry",
    "MethodRefEntry",
    "InterfaceMethodRefEntry",
    "NameAndTypeEntry",
    "ConstantPool",
]


class ConstantTag(enum.IntEnum):
    """Constant pool entry tags (JVM values)."""

    UTF8 = 1
    INTEGER = 3
    FLOAT = 4
    LONG = 5
    DOUBLE = 6
    CLASS = 7
    STRING = 8
    FIELD_REF = 9
    METHOD_REF = 10
    INTERFACE_METHOD_REF = 11
    NAME_AND_TYPE = 12


@dataclass(frozen=True)
class ConstantEntry:
    """Base class for constant pool entries."""

    #: Serialized tag byte; set by each concrete subclass.
    tag: ClassVar[ConstantTag]

    @property
    def size(self) -> int:
        """Serialized size in bytes, including the tag byte."""
        raise NotImplementedError


@dataclass(frozen=True)
class Utf8Entry(ConstantEntry):
    value: str = ""
    tag: ClassVar[ConstantTag] = ConstantTag.UTF8

    @property
    def encoded(self) -> bytes:
        return self.value.encode("utf-8")

    @property
    def size(self) -> int:
        return 1 + 2 + len(self.encoded)


@dataclass(frozen=True)
class IntegerEntry(ConstantEntry):
    value: int = 0
    tag: ClassVar[ConstantTag] = ConstantTag.INTEGER

    def __post_init__(self) -> None:
        if not -(2**31) <= self.value <= 2**31 - 1:
            raise ConstantPoolError(f"integer out of range: {self.value}")

    @property
    def size(self) -> int:
        return 1 + 4


@dataclass(frozen=True)
class FloatEntry(ConstantEntry):
    value: float = 0.0
    tag: ClassVar[ConstantTag] = ConstantTag.FLOAT

    @property
    def size(self) -> int:
        return 1 + 4


@dataclass(frozen=True)
class LongEntry(ConstantEntry):
    value: int = 0
    tag: ClassVar[ConstantTag] = ConstantTag.LONG

    def __post_init__(self) -> None:
        if not -(2**63) <= self.value <= 2**63 - 1:
            raise ConstantPoolError(f"long out of range: {self.value}")

    @property
    def size(self) -> int:
        return 1 + 8


@dataclass(frozen=True)
class DoubleEntry(ConstantEntry):
    value: float = 0.0
    tag: ClassVar[ConstantTag] = ConstantTag.DOUBLE

    @property
    def size(self) -> int:
        return 1 + 8


@dataclass(frozen=True)
class StringEntry(ConstantEntry):
    """A string constant; ``utf8_index`` points at its Utf8 payload."""

    utf8_index: int = 0
    tag: ClassVar[ConstantTag] = ConstantTag.STRING

    @property
    def size(self) -> int:
        return 1 + 2


@dataclass(frozen=True)
class ClassEntry(ConstantEntry):
    """A class reference; ``name_index`` points at a Utf8 class name."""

    name_index: int = 0
    tag: ClassVar[ConstantTag] = ConstantTag.CLASS

    @property
    def size(self) -> int:
        return 1 + 2


@dataclass(frozen=True)
class _MemberRefEntry(ConstantEntry):
    class_index: int = 0
    name_and_type_index: int = 0

    @property
    def size(self) -> int:
        return 1 + 2 + 2


@dataclass(frozen=True)
class FieldRefEntry(_MemberRefEntry):
    tag: ClassVar[ConstantTag] = ConstantTag.FIELD_REF


@dataclass(frozen=True)
class MethodRefEntry(_MemberRefEntry):
    tag: ClassVar[ConstantTag] = ConstantTag.METHOD_REF


@dataclass(frozen=True)
class InterfaceMethodRefEntry(_MemberRefEntry):
    tag: ClassVar[ConstantTag] = ConstantTag.INTERFACE_METHOD_REF


@dataclass(frozen=True)
class NameAndTypeEntry(ConstantEntry):
    name_index: int = 0
    descriptor_index: int = 0
    tag: ClassVar[ConstantTag] = ConstantTag.NAME_AND_TYPE

    @property
    def size(self) -> int:
        return 1 + 2 + 2


_ENTRY_CLASSES = {
    ConstantTag.UTF8: Utf8Entry,
    ConstantTag.INTEGER: IntegerEntry,
    ConstantTag.FLOAT: FloatEntry,
    ConstantTag.LONG: LongEntry,
    ConstantTag.DOUBLE: DoubleEntry,
    ConstantTag.CLASS: ClassEntry,
    ConstantTag.STRING: StringEntry,
    ConstantTag.FIELD_REF: FieldRefEntry,
    ConstantTag.METHOD_REF: MethodRefEntry,
    ConstantTag.INTERFACE_METHOD_REF: InterfaceMethodRefEntry,
    ConstantTag.NAME_AND_TYPE: NameAndTypeEntry,
}


class ConstantPool:
    """An interning, 1-indexed pool of :class:`ConstantEntry` objects.

    ``add_*`` helpers intern their argument: adding the same logical
    constant twice returns the original index, exactly as ``javac``
    behaves, which keeps the global-data size model honest.
    """

    def __init__(self) -> None:
        self._entries: List[ConstantEntry] = []
        self._index: Dict[ConstantEntry, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ConstantEntry]:
        return iter(self._entries)

    def entries(self) -> List[Tuple[int, ConstantEntry]]:
        """All (index, entry) pairs in index order."""
        return list(enumerate(self._entries, start=1))

    def add(self, entry: ConstantEntry) -> int:
        """Intern ``entry`` and return its 1-based index."""
        existing = self._index.get(entry)
        if existing is not None:
            return existing
        self._entries.append(entry)
        index = len(self._entries)
        self._index[entry] = index
        return index

    def get(self, index: int) -> ConstantEntry:
        """Fetch the entry at a 1-based index.

        Raises:
            ConstantPoolError: If the index is out of range.
        """
        if not 1 <= index <= len(self._entries):
            raise ConstantPoolError(
                f"constant pool index {index} out of range "
                f"[1, {len(self._entries)}]"
            )
        return self._entries[index - 1]

    def get_typed(self, index: int, entry_type: type) -> ConstantEntry:
        entry = self.get(index)
        if not isinstance(entry, entry_type):
            raise ConstantPoolError(
                f"constant pool index {index} holds "
                f"{type(entry).__name__}, expected {entry_type.__name__}"
            )
        return entry

    # -- convenience constructors -------------------------------------

    def add_utf8(self, value: str) -> int:
        return self.add(Utf8Entry(value))

    def add_integer(self, value: int) -> int:
        return self.add(IntegerEntry(value))

    def add_float(self, value: float) -> int:
        return self.add(FloatEntry(value))

    def add_long(self, value: int) -> int:
        return self.add(LongEntry(value))

    def add_double(self, value: float) -> int:
        return self.add(DoubleEntry(value))

    def add_string(self, value: str) -> int:
        return self.add(StringEntry(self.add_utf8(value)))

    def add_class(self, name: str) -> int:
        return self.add(ClassEntry(self.add_utf8(name)))

    def add_name_and_type(self, name: str, descriptor: str) -> int:
        return self.add(
            NameAndTypeEntry(self.add_utf8(name), self.add_utf8(descriptor))
        )

    def add_field_ref(
        self, class_name: str, name: str, descriptor: str
    ) -> int:
        return self.add(
            FieldRefEntry(
                self.add_class(class_name),
                self.add_name_and_type(name, descriptor),
            )
        )

    def add_method_ref(
        self, class_name: str, name: str, descriptor: str
    ) -> int:
        return self.add(
            MethodRefEntry(
                self.add_class(class_name),
                self.add_name_and_type(name, descriptor),
            )
        )

    def add_interface_method_ref(
        self, class_name: str, name: str, descriptor: str
    ) -> int:
        return self.add(
            InterfaceMethodRefEntry(
                self.add_class(class_name),
                self.add_name_and_type(name, descriptor),
            )
        )

    # -- resolution helpers --------------------------------------------

    def utf8(self, index: int) -> str:
        return self.get_typed(index, Utf8Entry).value

    def class_name(self, index: int) -> str:
        entry = self.get_typed(index, ClassEntry)
        return self.utf8(entry.name_index)

    def member_ref(self, index: int) -> Tuple[str, str, str]:
        """Resolve a Field/Method/InterfaceMethodRef.

        Returns:
            ``(class_name, member_name, descriptor)``.
        """
        entry = self.get(index)
        if not isinstance(entry, _MemberRefEntry):
            raise ConstantPoolError(
                f"constant pool index {index} holds "
                f"{type(entry).__name__}, expected a member reference"
            )
        name_and_type = self.get_typed(
            entry.name_and_type_index, NameAndTypeEntry
        )
        return (
            self.class_name(entry.class_index),
            self.utf8(name_and_type.name_index),
            self.utf8(name_and_type.descriptor_index),
        )

    def constant_value(self, index: int) -> Union[int, float, str]:
        """Value of a loadable constant (``LDC`` operand)."""
        entry = self.get(index)
        if isinstance(
            entry, (IntegerEntry, FloatEntry, LongEntry, DoubleEntry)
        ):
            return entry.value
        if isinstance(entry, StringEntry):
            return self.utf8(entry.utf8_index)
        raise ConstantPoolError(
            f"constant pool index {index} ({type(entry).__name__}) "
            "is not a loadable constant"
        )

    # -- size accounting ------------------------------------------------

    @property
    def size(self) -> int:
        """Serialized size: 2-byte count plus every entry."""
        return 2 + sum(entry.size for entry in self._entries)

    def size_by_tag(self) -> Dict[ConstantTag, int]:
        """Bytes per entry tag — the raw material of Table 8."""
        breakdown: Dict[ConstantTag, int] = {
            tag: 0 for tag in ConstantTag
        }
        for entry in self._entries:
            breakdown[entry.tag] += entry.size
        return breakdown

    def find_utf8(self, value: str) -> Optional[int]:
        """Index of an existing Utf8 entry, or None."""
        return self._index.get(Utf8Entry(value))
