"""Java-like class file model: constant pool, members, wire format.

The class file is the paper's unit of strict transfer; its byte layout
(global data vs. per-method units, computed by
:mod:`repro.classfile.layout`) is the raw material of every experiment.
"""

from .classfile import MAGIC, VERSION, ClassFile, ClassFileBuilder
from .constant_pool import (
    ClassEntry,
    ConstantEntry,
    ConstantPool,
    ConstantTag,
    DoubleEntry,
    FieldRefEntry,
    FloatEntry,
    IntegerEntry,
    InterfaceMethodRefEntry,
    LongEntry,
    MethodRefEntry,
    NameAndTypeEntry,
    StringEntry,
    Utf8Entry,
)
from .layout import (
    METHOD_DELIMITER_SIZE,
    ClassLayout,
    GlobalDataBreakdown,
    class_layout,
    global_data_breakdown,
)
from .members import (
    CODE_ATTRIBUTE,
    LOCAL_DATA_ATTRIBUTE,
    AccessFlags,
    Attribute,
    FieldInfo,
    MethodDescriptor,
    MethodInfo,
    parse_descriptor,
)
from .serializer import deserialize, serialize

__all__ = [
    "MAGIC",
    "VERSION",
    "ClassFile",
    "ClassFileBuilder",
    "ClassEntry",
    "ConstantEntry",
    "ConstantPool",
    "ConstantTag",
    "DoubleEntry",
    "FieldRefEntry",
    "FloatEntry",
    "IntegerEntry",
    "InterfaceMethodRefEntry",
    "LongEntry",
    "MethodRefEntry",
    "NameAndTypeEntry",
    "StringEntry",
    "Utf8Entry",
    "METHOD_DELIMITER_SIZE",
    "ClassLayout",
    "GlobalDataBreakdown",
    "class_layout",
    "global_data_breakdown",
    "CODE_ATTRIBUTE",
    "LOCAL_DATA_ATTRIBUTE",
    "AccessFlags",
    "Attribute",
    "FieldInfo",
    "MethodDescriptor",
    "MethodInfo",
    "parse_descriptor",
    "deserialize",
    "serialize",
]
