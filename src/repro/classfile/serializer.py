"""Binary serialization of class files.

The wire image is what the transfer experiments measure, so the
serializer is byte-exact: ``len(serialize(cf))`` equals the sizes
reported by :mod:`repro.classfile.layout`, and
``deserialize(serialize(cf))`` round-trips every field the model keeps.
"""

from __future__ import annotations

import struct
from typing import List

from ..bytecode import decode as decode_code
from ..bytecode import encode as encode_code
from ..errors import BytecodeError, ClassFileError, ConstantPoolError
from .classfile import MAGIC, VERSION, ClassFile
from .constant_pool import (
    ClassEntry,
    ConstantPool,
    ConstantTag,
    DoubleEntry,
    FieldRefEntry,
    FloatEntry,
    IntegerEntry,
    InterfaceMethodRefEntry,
    LongEntry,
    MethodRefEntry,
    NameAndTypeEntry,
    StringEntry,
    Utf8Entry,
)
from .members import (
    CODE_ATTRIBUTE,
    LOCAL_DATA_ATTRIBUTE,
    Attribute,
    FieldInfo,
    MethodInfo,
)

__all__ = ["serialize", "deserialize"]

_U1 = struct.Struct(">B")
_U2 = struct.Struct(">H")
_U4 = struct.Struct(">I")
_I4 = struct.Struct(">i")
_I8 = struct.Struct(">q")
_F4 = struct.Struct(">f")
_F8 = struct.Struct(">d")


class _Writer:
    def __init__(self) -> None:
        self._parts = bytearray()

    def u1(self, value: int) -> None:
        self._parts += _U1.pack(value)

    def u2(self, value: int) -> None:
        self._parts += _U2.pack(value)

    def u4(self, value: int) -> None:
        self._parts += _U4.pack(value)

    def raw(self, data: bytes) -> None:
        self._parts += data

    def getvalue(self) -> bytes:
        return bytes(self._parts)


class _Reader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    def _take(self, packer: struct.Struct):
        end = self._offset + packer.size
        if end > len(self._data):
            raise ClassFileError(
                f"truncated class file at offset {self._offset}"
            )
        value = packer.unpack_from(self._data, self._offset)[0]
        self._offset = end
        return value

    def u1(self) -> int:
        return self._take(_U1)

    def u2(self) -> int:
        return self._take(_U2)

    def u4(self) -> int:
        return self._take(_U4)

    def i4(self) -> int:
        return self._take(_I4)

    def i8(self) -> int:
        return self._take(_I8)

    def f4(self) -> float:
        return self._take(_F4)

    def f8(self) -> float:
        return self._take(_F8)

    def raw(self, count: int) -> bytes:
        end = self._offset + count
        if end > len(self._data):
            raise ClassFileError(
                f"truncated class file at offset {self._offset}"
            )
        data = self._data[self._offset : end]
        self._offset = end
        return data

    @property
    def exhausted(self) -> bool:
        return self._offset == len(self._data)


def _write_pool(writer: _Writer, pool: ConstantPool) -> None:
    writer.u2(len(pool) + 1)
    for entry in pool:
        writer.u1(int(entry.tag))
        if isinstance(entry, Utf8Entry):
            encoded = entry.encoded
            writer.u2(len(encoded))
            writer.raw(encoded)
        elif isinstance(entry, IntegerEntry):
            writer.raw(_I4.pack(entry.value))
        elif isinstance(entry, FloatEntry):
            writer.raw(_F4.pack(entry.value))
        elif isinstance(entry, LongEntry):
            writer.raw(_I8.pack(entry.value))
        elif isinstance(entry, DoubleEntry):
            writer.raw(_F8.pack(entry.value))
        elif isinstance(entry, ClassEntry):
            writer.u2(entry.name_index)
        elif isinstance(entry, StringEntry):
            writer.u2(entry.utf8_index)
        elif isinstance(
            entry, (FieldRefEntry, MethodRefEntry, InterfaceMethodRefEntry)
        ):
            writer.u2(entry.class_index)
            writer.u2(entry.name_and_type_index)
        elif isinstance(entry, NameAndTypeEntry):
            writer.u2(entry.name_index)
            writer.u2(entry.descriptor_index)
        else:  # pragma: no cover - the tag table is closed
            raise ConstantPoolError(f"cannot serialize {entry!r}")


def _read_pool(reader: _Reader) -> ConstantPool:
    count = reader.u2()
    pool = ConstantPool()
    for _ in range(count - 1):
        tag_byte = reader.u1()
        try:
            tag = ConstantTag(tag_byte)
        except ValueError as exc:
            raise ClassFileError(
                f"unknown constant pool tag {tag_byte}"
            ) from exc
        if tag is ConstantTag.UTF8:
            length = reader.u2()
            try:
                value = reader.raw(length).decode("utf-8")
            except UnicodeDecodeError as exc:
                raise ClassFileError(
                    "malformed UTF-8 in constant pool"
                ) from exc
            pool.add(Utf8Entry(value))
        elif tag is ConstantTag.INTEGER:
            pool.add(IntegerEntry(reader.i4()))
        elif tag is ConstantTag.FLOAT:
            pool.add(FloatEntry(reader.f4()))
        elif tag is ConstantTag.LONG:
            pool.add(LongEntry(reader.i8()))
        elif tag is ConstantTag.DOUBLE:
            pool.add(DoubleEntry(reader.f8()))
        elif tag is ConstantTag.CLASS:
            pool.add(ClassEntry(reader.u2()))
        elif tag is ConstantTag.STRING:
            pool.add(StringEntry(reader.u2()))
        elif tag is ConstantTag.FIELD_REF:
            pool.add(FieldRefEntry(reader.u2(), reader.u2()))
        elif tag is ConstantTag.METHOD_REF:
            pool.add(MethodRefEntry(reader.u2(), reader.u2()))
        elif tag is ConstantTag.INTERFACE_METHOD_REF:
            pool.add(InterfaceMethodRefEntry(reader.u2(), reader.u2()))
        elif tag is ConstantTag.NAME_AND_TYPE:
            pool.add(NameAndTypeEntry(reader.u2(), reader.u2()))
        else:  # pragma: no cover - ConstantTag() already raised
            raise ConstantPoolError(f"unknown tag {tag}")
    return pool


def _utf8_index(pool: ConstantPool, value: str) -> int:
    index = pool.find_utf8(value)
    if index is None:
        # The builder interns all names; hand-built class files may not
        # have done so.  Interning here keeps serialization total.
        index = pool.add_utf8(value)
    return index


def _class_index(pool: ConstantPool, name: str) -> int:
    return pool.add(ClassEntry(_utf8_index(pool, name)))


def _write_attribute(
    writer: _Writer, pool: ConstantPool, attribute: Attribute
) -> None:
    writer.u2(_utf8_index(pool, attribute.name))
    writer.u4(len(attribute.data))
    writer.raw(attribute.data)


def _read_attribute(reader: _Reader, pool: ConstantPool) -> Attribute:
    name = pool.utf8(reader.u2())
    length = reader.u4()
    return Attribute(name, reader.raw(length))


def _write_field(
    writer: _Writer, pool: ConstantPool, field_info: FieldInfo
) -> None:
    writer.u2(field_info.access_flags)
    writer.u2(_utf8_index(pool, field_info.name))
    writer.u2(_utf8_index(pool, field_info.descriptor))
    writer.u2(len(field_info.attributes))
    for attribute in field_info.attributes:
        _write_attribute(writer, pool, attribute)


def _read_field(reader: _Reader, pool: ConstantPool) -> FieldInfo:
    access_flags = reader.u2()
    name = pool.utf8(reader.u2())
    descriptor = pool.utf8(reader.u2())
    count = reader.u2()
    attributes = tuple(_read_attribute(reader, pool) for _ in range(count))
    return FieldInfo(
        name=name,
        descriptor=descriptor,
        access_flags=access_flags,
        attributes=attributes,
    )


def _write_method(
    writer: _Writer, pool: ConstantPool, method: MethodInfo
) -> None:
    writer.u2(method.access_flags)
    writer.u2(_utf8_index(pool, method.name))
    writer.u2(_utf8_index(pool, method.descriptor))
    count = 1 + (1 if method.local_data else 0) + len(method.attributes)
    writer.u2(count)
    # Code attribute.
    code = encode_code(method.instructions)
    writer.u2(_utf8_index(pool, CODE_ATTRIBUTE))
    writer.u4(2 + 2 + 4 + len(code))
    writer.u2(method.max_stack)
    writer.u2(method.max_locals)
    writer.u4(len(code))
    writer.raw(code)
    # LocalData attribute.
    if method.local_data:
        writer.u2(_utf8_index(pool, LOCAL_DATA_ATTRIBUTE))
        writer.u4(len(method.local_data))
        writer.raw(method.local_data)
    for attribute in method.attributes:
        _write_attribute(writer, pool, attribute)


def _read_method(reader: _Reader, pool: ConstantPool) -> MethodInfo:
    access_flags = reader.u2()
    name = pool.utf8(reader.u2())
    descriptor = pool.utf8(reader.u2())
    count = reader.u2()
    instructions = None
    max_stack = max_locals = 0
    local_data = b""
    extras: List[Attribute] = []
    for _ in range(count):
        attr_name = pool.utf8(reader.u2())
        length = reader.u4()
        if attr_name == CODE_ATTRIBUTE:
            max_stack = reader.u2()
            max_locals = reader.u2()
            code_length = reader.u4()
            if code_length + 8 != length:
                raise ClassFileError(
                    f"inconsistent Code attribute in {name!r}"
                )
            try:
                instructions = decode_code(reader.raw(code_length))
            except BytecodeError as exc:
                raise ClassFileError(
                    f"malformed bytecode in method {name!r}: {exc}"
                ) from exc
        elif attr_name == LOCAL_DATA_ATTRIBUTE:
            local_data = reader.raw(length)
        else:
            extras.append(Attribute(attr_name, reader.raw(length)))
    if instructions is None:
        raise ClassFileError(f"method {name!r} has no Code attribute")
    return MethodInfo(
        name=name,
        descriptor=descriptor,
        instructions=instructions,
        max_stack=max_stack,
        max_locals=max_locals,
        local_data=local_data,
        access_flags=access_flags,
        attributes=tuple(extras),
    )


def serialize(classfile: ClassFile) -> bytes:
    """Serialize a class file to its binary wire image."""
    pool = classfile.constant_pool
    # Intern every name up front so the pool is complete before its
    # count is written.
    this_class = _class_index(pool, classfile.name)
    interface_indexes = [
        _class_index(pool, name) for name in classfile.interfaces
    ]
    for field_info in classfile.fields:
        _utf8_index(pool, field_info.name)
        _utf8_index(pool, field_info.descriptor)
        for attribute in field_info.attributes:
            _utf8_index(pool, attribute.name)
    for method in classfile.methods:
        _utf8_index(pool, method.name)
        _utf8_index(pool, method.descriptor)
        _utf8_index(pool, CODE_ATTRIBUTE)
        if method.local_data:
            _utf8_index(pool, LOCAL_DATA_ATTRIBUTE)
        for attribute in method.attributes:
            _utf8_index(pool, attribute.name)
    for attribute in classfile.attributes:
        _utf8_index(pool, attribute.name)

    writer = _Writer()
    writer.u4(MAGIC)
    writer.u2(VERSION[0])
    writer.u2(VERSION[1])
    _write_pool(writer, pool)
    writer.u2(classfile.access_flags)
    writer.u2(this_class)
    writer.u2(len(interface_indexes))
    for index in interface_indexes:
        writer.u2(index)
    writer.u2(len(classfile.fields))
    for field_info in classfile.fields:
        _write_field(writer, pool, field_info)
    writer.u2(len(classfile.methods))
    for method in classfile.methods:
        _write_method(writer, pool, method)
    writer.u2(len(classfile.attributes))
    for attribute in classfile.attributes:
        _write_attribute(writer, pool, attribute)
    return writer.getvalue()


def deserialize(data: bytes) -> ClassFile:
    """Parse a binary wire image back into a :class:`ClassFile`.

    Raises:
        ClassFileError: On bad magic, unsupported version, truncation,
            or trailing bytes.
    """
    reader = _Reader(data)
    magic = reader.u4()
    if magic != MAGIC:
        raise ClassFileError(f"bad magic 0x{magic:08x}")
    # Everything below raises ClassFileError (or its ConstantPoolError
    # subclass) on malformed input; bytecode decode errors are wrapped
    # so corrupt images never leak foreign exception types.
    version = (reader.u2(), reader.u2())
    if version != VERSION:
        raise ClassFileError(f"unsupported version {version}")
    pool = _read_pool(reader)
    access_flags = reader.u2()
    name = pool.class_name(reader.u2())
    interfaces = tuple(
        pool.class_name(reader.u2()) for _ in range(reader.u2())
    )
    fields = tuple(_read_field(reader, pool) for _ in range(reader.u2()))
    methods = [_read_method(reader, pool) for _ in range(reader.u2())]
    attributes = tuple(
        _read_attribute(reader, pool) for _ in range(reader.u2())
    )
    if not reader.exhausted:
        raise ClassFileError("trailing bytes after class file")
    return ClassFile(
        name=name,
        constant_pool=pool,
        access_flags=access_flags,
        interfaces=interfaces,
        fields=fields,
        methods=methods,
        attributes=attributes,
    )
