"""Closure-threaded bytecode dispatch (the VM's ``dispatch="threaded"``).

The reference interpreter decodes every dynamic instruction through an
opcode if-chain plus dict lookups (:meth:`VirtualMachine._execute`).
This module *precompiles* each method's bytecode once into a list of
bound handler closures — one per instruction, with operands, constant
pool values, static field keys, call targets, and branch target
*indices* resolved at compile time — so the inner loop is a single
indirect call per instruction:

    handlers[frame.pc](vm, frame)

Semantics contract: threaded execution is **observably identical** to
the reference dispatch — same :class:`ExecutionResult`, same error
types, messages, and timing (a bad branch target or constant-pool
index still raises only when the instruction actually executes: any
instruction whose compile-time resolution fails gets a *deferred*
handler that re-enters the reference ``_execute`` at runtime).  The
instruction counter advances before each handler runs, so ``SYS TIME``
reads the same values.

Instrumented runs (``TraceRecorder`` etc.) need per-instruction
callbacks, which this loop deliberately has no seam for; the VM keeps
them on the reference dispatch (``dispatch="auto"``).

Compiled handler tables are cached on the :class:`Program` object, so
repeated VM runs over one program (profile estimation, workload
generation, sweeps) compile each method once.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    NoReturn,
    Tuple,
)

from ..bytecode import Instruction, Opcode, SysCall, offsets_of
from ..classfile import parse_descriptor
from ..errors import StackUnderflowError, VMError
from ..program import MethodId, Program
from .frame import MAX_LOCAL_SLOTS
from .interpreter import (
    _ARITHMETIC,
    _BINARY_BRANCHES,
    _UNARY_BRANCHES,
    _int32,
)

if TYPE_CHECKING:  # pragma: no cover
    from .frame import Frame
    from .interpreter import VirtualMachine

__all__ = ["dispatch_threaded", "compiled_method_count"]

#: A compiled instruction.  Returns truthy when the top frame may have
#: changed (call/return/halt), telling the inner loop to re-fetch it.
Handler = Callable[["VirtualMachine", "Frame"], Any]


def _underflow(frame: "Frame") -> NoReturn:
    raise StackUnderflowError(
        f"{frame.method_id}: operand stack underflow at pc={frame.pc}"
    )


def _deferred(instruction: Instruction, offset: int) -> Handler:
    """Fallback: run one instruction through the reference dispatch.

    Used when compile-time resolution fails (bad constant-pool index,
    branch to a non-boundary offset, unknown SYS code...) so the error
    — or, for exotic-but-valid cases, the behaviour — surfaces exactly
    when and how the reference interpreter would surface it.
    """

    def handler(vm: "VirtualMachine", frame: "Frame") -> bool:
        vm._execute(frame, instruction, offset)
        return True  # conservative: _execute may push/pop frames

    return handler


def _compile_instruction(
    program: Program,
    pool: Any,
    method_id: MethodId,
    instruction: Instruction,
    offset: int,
    next_index: int,
    offset_to_index: Dict[int, int],
) -> Handler:
    """Build the bound handler closure for one instruction.

    Raises on failed resolution — the caller converts that into a
    :func:`_deferred` handler.
    """
    opcode = instruction.opcode

    if opcode == Opcode.NOP:

        def nop(vm: "VirtualMachine", frame: "Frame") -> None:
            frame.pc = next_index

        return nop

    if opcode == Opcode.ICONST:
        constant = instruction.operand

        def iconst(vm: "VirtualMachine", frame: "Frame") -> None:
            frame.pc = next_index
            frame.stack.append(constant)

        return iconst

    if opcode == Opcode.LDC:
        value = pool.constant_value(instruction.operand)

        def ldc(vm: "VirtualMachine", frame: "Frame") -> None:
            frame.pc = next_index
            frame.stack.append(value)

        return ldc

    if opcode == Opcode.LOAD:
        slot = instruction.operand

        def load(vm: "VirtualMachine", frame: "Frame") -> None:
            frame.pc = next_index
            frame_locals = frame.locals
            if slot >= len(frame_locals):
                raise VMError(
                    f"{frame.method_id}: load from unallocated "
                    f"local {slot}"
                )
            frame.stack.append(frame_locals[slot])

        return load

    if opcode == Opcode.STORE:
        slot = instruction.operand

        def store(vm: "VirtualMachine", frame: "Frame") -> None:
            frame.pc = next_index
            stack = frame.stack
            if not stack:
                _underflow(frame)
            value = stack.pop()
            if slot >= MAX_LOCAL_SLOTS:
                raise VMError(
                    f"{frame.method_id}: store to local {slot} "
                    "beyond limit"
                )
            frame_locals = frame.locals
            if slot >= len(frame_locals):
                frame_locals.extend(
                    [0] * (slot + 1 - len(frame_locals))
                )
            frame_locals[slot] = value

        return store

    if opcode in (Opcode.GETSTATIC, Opcode.PUTSTATIC):
        class_name, field_name, _ = pool.member_ref(
            instruction.operand
        )
        key: Tuple[str, str] = (class_name, field_name)
        if opcode == Opcode.GETSTATIC:

            def getstatic(
                vm: "VirtualMachine", frame: "Frame"
            ) -> None:
                frame.pc = next_index
                frame.stack.append(vm.globals.get(key, 0))

            return getstatic

        def putstatic(vm: "VirtualMachine", frame: "Frame") -> None:
            frame.pc = next_index
            stack = frame.stack
            if not stack:
                _underflow(frame)
            vm.globals[key] = stack.pop()

        return putstatic

    if opcode in _ARITHMETIC:
        operation = _ARITHMETIC[opcode]

        def binary_op(vm: "VirtualMachine", frame: "Frame") -> None:
            frame.pc = next_index
            stack = frame.stack
            if not stack:
                _underflow(frame)
            right = stack.pop()
            if not stack:
                _underflow(frame)
            left = stack.pop()
            stack.append(operation(left, right))

        return binary_op

    if opcode == Opcode.NEG:

        def neg(vm: "VirtualMachine", frame: "Frame") -> None:
            frame.pc = next_index
            stack = frame.stack
            if not stack:
                _underflow(frame)
            stack.append(_int32(-stack.pop()))

        return neg

    if opcode == Opcode.DUP:

        def dup(vm: "VirtualMachine", frame: "Frame") -> None:
            frame.pc = next_index
            stack = frame.stack
            if not stack:
                _underflow(frame)
            value = stack.pop()
            stack.append(value)
            stack.append(value)

        return dup

    if opcode == Opcode.POP:

        def pop_op(vm: "VirtualMachine", frame: "Frame") -> None:
            frame.pc = next_index
            stack = frame.stack
            if not stack:
                _underflow(frame)
            stack.pop()

        return pop_op

    if opcode == Opcode.SWAP:

        def swap(vm: "VirtualMachine", frame: "Frame") -> None:
            frame.pc = next_index
            stack = frame.stack
            if not stack:
                _underflow(frame)
            first = stack.pop()
            if not stack:
                _underflow(frame)
            second = stack.pop()
            stack.append(first)
            stack.append(second)

        return swap

    if (
        opcode in _UNARY_BRANCHES
        or opcode in _BINARY_BRANCHES
        or opcode == Opcode.GOTO
    ):
        target_offset = instruction.branch_target(offset)
        target_index = offset_to_index.get(target_offset)
        if opcode == Opcode.GOTO:
            if target_index is None:
                # Invalid target: raise only when executed, exactly
                # like frame.jump_to_offset would.
                def goto_bad(
                    vm: "VirtualMachine", frame: "Frame"
                ) -> None:
                    frame.pc = next_index
                    frame.jump_to_offset(target_offset)

                return goto_bad
            resolved_goto = target_index

            def goto(vm: "VirtualMachine", frame: "Frame") -> None:
                frame.pc = resolved_goto

            return goto

        if opcode in _UNARY_BRANCHES:
            unary_test = _UNARY_BRANCHES[opcode]

            def unary_branch(
                vm: "VirtualMachine", frame: "Frame"
            ) -> None:
                frame.pc = next_index
                stack = frame.stack
                if not stack:
                    _underflow(frame)
                if unary_test(stack.pop()):
                    if target_index is None:
                        frame.jump_to_offset(target_offset)
                    else:
                        frame.pc = target_index

            return unary_branch

        binary_test = _BINARY_BRANCHES[opcode]

        def binary_branch(
            vm: "VirtualMachine", frame: "Frame"
        ) -> None:
            frame.pc = next_index
            stack = frame.stack
            if not stack:
                _underflow(frame)
            right = stack.pop()
            if not stack:
                _underflow(frame)
            left = stack.pop()
            if binary_test(left, right):
                if target_index is None:
                    frame.jump_to_offset(target_offset)
                else:
                    frame.pc = target_index

        return binary_branch

    if opcode == Opcode.CALL:
        class_name, method_name, descriptor = pool.member_ref(
            instruction.operand
        )
        callee = MethodId(class_name, method_name)
        parsed = parse_descriptor(descriptor)
        arity = parsed.arity
        if program.has_method(callee):

            def call_internal(
                vm: "VirtualMachine", frame: "Frame"
            ) -> bool:
                frame.pc = next_index
                stack = frame.stack
                args: List[Any] = []
                for _ in range(arity):
                    if not stack:
                        _underflow(frame)
                    args.append(stack.pop())
                args.reverse()
                vm._push_frame(callee, args)
                return True

            return call_internal

        returns_value = parsed.returns_value

        def call_external(
            vm: "VirtualMachine", frame: "Frame"
        ) -> None:
            frame.pc = next_index
            stack = frame.stack
            for _ in range(arity):
                if not stack:
                    _underflow(frame)
                stack.pop()
            for instrument in vm.instruments:
                instrument.on_external_call(frame.method_id, callee)
            if returns_value:
                stack.append(0)

        return call_external

    if opcode == Opcode.RETURN:

        def return_void(vm: "VirtualMachine", frame: "Frame") -> bool:
            frame.pc = next_index
            vm._pop_frame(None)
            return True

        return return_void

    if opcode == Opcode.IRETURN:

        def return_value(
            vm: "VirtualMachine", frame: "Frame"
        ) -> bool:
            frame.pc = next_index
            stack = frame.stack
            if not stack:
                _underflow(frame)
            vm._pop_frame(stack.pop())
            return True

        return return_value

    if opcode == Opcode.NEWARRAY:

        def newarray(vm: "VirtualMachine", frame: "Frame") -> None:
            frame.pc = next_index
            stack = frame.stack
            if not stack:
                _underflow(frame)
            size = stack.pop()
            if not 0 <= size <= 10_000_000:
                raise VMError(f"bad array size {size}")
            stack.append([0] * size)

        return newarray

    if opcode == Opcode.ALOAD:

        def aload(vm: "VirtualMachine", frame: "Frame") -> None:
            frame.pc = next_index
            stack = frame.stack
            if not stack:
                _underflow(frame)
            index = stack.pop()
            if not stack:
                _underflow(frame)
            array = stack.pop()
            vm._check_array(array, index)
            stack.append(array[index])

        return aload

    if opcode == Opcode.ASTORE:

        def astore(vm: "VirtualMachine", frame: "Frame") -> None:
            frame.pc = next_index
            stack = frame.stack
            if not stack:
                _underflow(frame)
            value = stack.pop()
            if not stack:
                _underflow(frame)
            index = stack.pop()
            if not stack:
                _underflow(frame)
            array = stack.pop()
            vm._check_array(array, index)
            array[index] = value

        return astore

    if opcode == Opcode.ARRAYLEN:

        def arraylen(vm: "VirtualMachine", frame: "Frame") -> None:
            frame.pc = next_index
            stack = frame.stack
            if not stack:
                _underflow(frame)
            array = stack.pop()
            if not isinstance(array, list):
                raise VMError("arraylen on non-array")
            stack.append(len(array))

        return arraylen

    if opcode == Opcode.SYS:
        code = instruction.operand
        if code == SysCall.PRINT:

            def sys_print(
                vm: "VirtualMachine", frame: "Frame"
            ) -> None:
                frame.pc = next_index
                stack = frame.stack
                if not stack:
                    _underflow(frame)
                vm.output.append(stack.pop())

            return sys_print
        if code == SysCall.TIME:

            def sys_time(
                vm: "VirtualMachine", frame: "Frame"
            ) -> None:
                frame.pc = next_index
                frame.stack.append(vm._instructions_executed)

            return sys_time
        if code == SysCall.RAND:

            def sys_rand(
                vm: "VirtualMachine", frame: "Frame"
            ) -> None:
                frame.pc = next_index
                frame.stack.append(vm._rng.randrange(0, 2**31))

            return sys_rand
        if code == SysCall.HALT:

            def sys_halt(
                vm: "VirtualMachine", frame: "Frame"
            ) -> bool:
                frame.pc = next_index
                vm._halted = True
                return True

            return sys_halt
        if code == SysCall.BLACKHOLE:

            def sys_blackhole(
                vm: "VirtualMachine", frame: "Frame"
            ) -> None:
                frame.pc = next_index
                stack = frame.stack
                if not stack:
                    _underflow(frame)
                stack.pop()

            return sys_blackhole

        def sys_unknown(vm: "VirtualMachine", frame: "Frame") -> None:
            frame.pc = next_index
            raise VMError(f"unknown SYS code {code}")

        return sys_unknown

    def unimplemented(vm: "VirtualMachine", frame: "Frame") -> None:
        frame.pc = next_index
        raise VMError(f"unimplemented opcode {opcode!r}")

    return unimplemented


def _compile_method(
    program: Program, method_id: MethodId
) -> List[Handler]:
    """Compile one method into its handler table (plus sentinel)."""
    method = program.method(method_id)
    instructions = method.instructions
    offsets = offsets_of(instructions)
    offset_to_index = {
        byte_offset: index
        for index, byte_offset in enumerate(offsets)
    }
    pool = program.class_named(method_id.class_name).constant_pool
    handlers: List[Handler] = []
    for index, instruction in enumerate(instructions):
        try:
            handler = _compile_instruction(
                program,
                pool,
                method_id,
                instruction,
                offsets[index],
                index + 1,
                offset_to_index,
            )
        except Exception:
            handler = _deferred(instruction, offsets[index])
        handlers.append(handler)
    return handlers


def _code_cache(program: Program) -> Dict[MethodId, List[Handler]]:
    cache: Dict[MethodId, List[Handler]]
    cache = program.__dict__.setdefault("_threaded_code", {})
    return cache


def compiled_method_count(program: Program) -> int:
    """How many of a program's methods have compiled handler tables."""
    return len(_code_cache(program))


def dispatch_threaded(vm: "VirtualMachine") -> None:
    """The threaded dispatch loop (replaces ``_dispatch_loop``).

    Check order per instruction matches the reference loop exactly:
    fell-off-the-end first (before the count), then the counter
    increment, then the instruction limit, then execution.  The counter
    is written through to the VM before each handler so ``SYS TIME``
    and error paths observe the same values as the reference.
    """
    frames = vm._frames
    program = vm.program
    max_instructions = vm.max_instructions
    cache = _code_cache(program)
    while frames and not vm._halted:
        frame = frames[-1]
        handlers = cache.get(frame.method_id)
        if handlers is None:
            handlers = _compile_method(program, frame.method_id)
            cache[frame.method_id] = handlers
        end = len(handlers)
        executed = vm._instructions_executed
        while True:
            pc = frame.pc
            if pc >= end:
                raise VMError(
                    f"{frame.method_id}: fell off the end of the code"
                )
            executed += 1
            vm._instructions_executed = executed
            if executed > max_instructions:
                raise VMError(
                    f"instruction limit {max_instructions} exceeded"
                )
            if handlers[pc](vm, frame):
                executed = vm._instructions_executed
                break
