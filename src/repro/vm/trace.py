"""Execution traces and first-use profiles.

A :class:`TraceRecorder` instrument captures, in one VM run:

* the **execution trace** — maximal per-method instruction runs between
  control transfers, which the co-simulator replays against a transfer
  timeline;
* the **first-use profile** (paper §4.2) — the order in which methods
  are first invoked, and for each first use the *unique bytes* executed
  before it (the quantity the parallel transfer scheduler accumulates);
* per-method dynamic statistics (invocations, instructions, unique
  code bytes touched).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..bytecode import Instruction
from ..program import MethodId, Program
from .frame import Frame
from .instrument import Instrument

__all__ = [
    "TraceSegment",
    "ExecutionTrace",
    "MethodProfile",
    "FirstUseEvent",
    "FirstUseProfile",
    "TraceRecorder",
    "synthesize_profile",
    "merge_profiles",
]


@dataclass(frozen=True)
class TraceSegment:
    """A run of ``instructions`` dynamic instructions inside one method."""

    method: MethodId
    instructions: int


@dataclass
class ExecutionTrace:
    """Replayable execution history: ordered per-method segments."""

    segments: List[TraceSegment] = field(default_factory=list)

    @property
    def total_instructions(self) -> int:
        return sum(segment.instructions for segment in self.segments)

    def first_use_order(self) -> List[MethodId]:
        seen: Set[MethodId] = set()
        order: List[MethodId] = []
        for segment in self.segments:
            if segment.method not in seen:
                seen.add(segment.method)
                order.append(segment.method)
        return order

    def methods_used(self) -> Set[MethodId]:
        return {segment.method for segment in self.segments}

    def __len__(self) -> int:
        return len(self.segments)


@dataclass
class MethodProfile:
    """Dynamic statistics for one method."""

    invocations: int = 0
    dynamic_instructions: int = 0
    unique_bytes: int = 0


@dataclass(frozen=True)
class FirstUseEvent:
    """One method's first invocation.

    Attributes:
        method: The method first used.
        index: Position in the first-use order (0 = entry).
        dynamic_instructions_before: Instructions executed up to (not
            including) this first use.
        unique_bytes_before: Bytes of *distinct* instructions executed
            before this first use — the paper's "unique bytes" that the
            profile-guided transfer schedule accumulates (§5.1).
    """

    method: MethodId
    index: int
    dynamic_instructions_before: int
    unique_bytes_before: int


@dataclass
class FirstUseProfile:
    """A complete first-use profile from one (or more) training runs."""

    events: List[FirstUseEvent] = field(default_factory=list)
    method_stats: Dict[MethodId, MethodProfile] = field(
        default_factory=dict
    )
    total_instructions: int = 0

    @property
    def order(self) -> List[MethodId]:
        return [event.method for event in self.events]

    def event_for(self, method_id: MethodId) -> Optional[FirstUseEvent]:
        for event in self.events:
            if event.method == method_id:
                return event
        return None

    def was_executed(self, method_id: MethodId) -> bool:
        return method_id in self.method_stats


class TraceRecorder(Instrument):
    """Records the trace and first-use profile of a VM run.

    Attach to a VM, run it, then read :attr:`trace` and
    :attr:`profile`.
    """

    def __init__(self) -> None:
        self.trace = ExecutionTrace()
        self.profile = FirstUseProfile()
        self._segment_method: Optional[MethodId] = None
        self._segment_count = 0
        self._method_stack: List[MethodId] = []
        self._seen_sites: Set[Tuple[MethodId, int]] = set()
        self._unique_bytes = 0
        self._instructions = 0

    # -- segment management ----------------------------------------------

    def _flush_segment(self) -> None:
        if self._segment_method is not None and self._segment_count > 0:
            self.trace.segments.append(
                TraceSegment(self._segment_method, self._segment_count)
            )
        self._segment_count = 0

    def _start_segment(self, method_id: Optional[MethodId]) -> None:
        self._segment_method = method_id
        self._segment_count = 0

    # -- hooks ------------------------------------------------------------

    def on_method_entry(self, method_id: MethodId, frame: Frame) -> None:
        self._flush_segment()
        stats = self.profile.method_stats.setdefault(
            method_id, MethodProfile()
        )
        if stats.invocations == 0:
            self.profile.events.append(
                FirstUseEvent(
                    method=method_id,
                    index=len(self.profile.events),
                    dynamic_instructions_before=self._instructions,
                    unique_bytes_before=self._unique_bytes,
                )
            )
        stats.invocations += 1
        self._method_stack.append(method_id)
        self._start_segment(method_id)

    def on_method_exit(self, method_id: MethodId) -> None:
        self._flush_segment()
        if self._method_stack:
            self._method_stack.pop()
        caller = self._method_stack[-1] if self._method_stack else None
        self._start_segment(caller)

    def on_instruction(
        self, method_id: MethodId, instruction: Instruction, offset: int
    ) -> None:
        self._instructions += 1
        self._segment_count += 1
        stats = self.profile.method_stats[method_id]
        stats.dynamic_instructions += 1
        site = (method_id, offset)
        if site not in self._seen_sites:
            self._seen_sites.add(site)
            stats.unique_bytes += instruction.size
            self._unique_bytes += instruction.size

    def on_halt(self) -> None:
        self._flush_segment()
        self.profile.total_instructions = self._instructions


def synthesize_profile(program: Program, trace: ExecutionTrace) -> FirstUseProfile:
    """Build a :class:`FirstUseProfile` by replaying a trace.

    Used when a trace was produced by something other than the VM (the
    synthetic workload generator): first-use order and
    instructions-before come directly from the segments; unique bytes
    are approximated by each method's static code size, saturated by
    the instructions it actually executed (a method that ran at least
    its own length is assumed fully covered — the common case the
    paper's own accounting reflects).
    """
    profile = FirstUseProfile()
    instructions = 0
    unique_bytes = 0
    code_bytes: Dict[MethodId, int] = {}
    static_instructions: Dict[MethodId, int] = {}
    for segment in trace.segments:
        method = segment.method
        if method not in code_bytes:
            info = program.method(method)
            code_bytes[method] = info.code_bytes
            static_instructions[method] = max(1, len(info.instructions))
        stats = profile.method_stats.get(method)
        if stats is None:
            profile.events.append(
                FirstUseEvent(
                    method=method,
                    index=len(profile.events),
                    dynamic_instructions_before=instructions,
                    unique_bytes_before=unique_bytes,
                )
            )
            stats = MethodProfile()
            profile.method_stats[method] = stats
            stats.invocations = 1
        previously_covered = min(
            1.0,
            stats.dynamic_instructions / static_instructions[method],
        )
        stats.dynamic_instructions += segment.instructions
        now_covered = min(
            1.0,
            stats.dynamic_instructions / static_instructions[method],
        )
        gained = int(
            (now_covered - previously_covered) * code_bytes[method]
        )
        stats.unique_bytes += gained
        unique_bytes += gained
        instructions += segment.instructions
    profile.total_instructions = instructions
    return profile


def merge_profiles(profiles: List[FirstUseProfile]) -> FirstUseProfile:
    """Combine profiles from several training inputs (paper §4.2).

    "Since a program's execution path may be input dependent, we
    attempt to choose adequate sets of inputs" — merging realizes that:
    a method's merged first-use position is its average *fractional*
    position across the runs that executed it (methods seen by more
    inputs and seen earlier sort first), and its statistics accumulate.
    The merged events' instruction/byte counters are per-method means,
    re-monotonized so downstream consumers can rely on ordering.
    """
    if not profiles:
        raise ValueError("merge_profiles needs at least one profile")
    if len(profiles) == 1:
        return profiles[0]

    positions: Dict[MethodId, List[float]] = {}
    instructions_before: Dict[MethodId, List[int]] = {}
    bytes_before: Dict[MethodId, List[int]] = {}
    for profile in profiles:
        span = max(1, len(profile.events))
        for event in profile.events:
            positions.setdefault(event.method, []).append(
                event.index / span
            )
            instructions_before.setdefault(event.method, []).append(
                event.dynamic_instructions_before
            )
            bytes_before.setdefault(event.method, []).append(
                event.unique_bytes_before
            )

    def sort_key(method: MethodId):
        samples = positions[method]
        coverage = len(samples) / len(profiles)
        mean_position = sum(samples) / len(samples)
        # Methods most inputs executed come first; ties by position.
        return (-coverage, mean_position)

    merged = FirstUseProfile()
    running_instructions = 0
    running_bytes = 0
    for index, method in enumerate(sorted(positions, key=sort_key)):
        mean_instructions = int(
            sum(instructions_before[method])
            / len(instructions_before[method])
        )
        mean_bytes = int(
            sum(bytes_before[method]) / len(bytes_before[method])
        )
        running_instructions = max(
            running_instructions, mean_instructions
        )
        running_bytes = max(running_bytes, mean_bytes)
        merged.events.append(
            FirstUseEvent(
                method=method,
                index=index,
                dynamic_instructions_before=running_instructions,
                unique_bytes_before=running_bytes,
            )
        )
    for profile in profiles:
        for method, stats in profile.method_stats.items():
            merged_stats = merged.method_stats.setdefault(
                method, MethodProfile()
            )
            merged_stats.invocations += stats.invocations
            merged_stats.dynamic_instructions += (
                stats.dynamic_instructions
            )
            merged_stats.unique_bytes = max(
                merged_stats.unique_bytes, stats.unique_bytes
            )
        merged.total_instructions += profile.total_instructions
    return merged
