"""BIT-style bytecode instrumentation interface.

The paper's toolchain is built on BIT (Lee & Zorn, USITS '97), which
lets a tool observe bytecode instructions, basic blocks, and procedures
as they execute.  :class:`Instrument` reproduces that interface for the
repro VM: subclass it, override the hooks you need, and pass instances
to :class:`repro.vm.interpreter.VirtualMachine`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from ..bytecode import Instruction
from ..program import MethodId, Program

if TYPE_CHECKING:  # pragma: no cover
    from .frame import Frame

__all__ = [
    "Instrument",
    "InstructionCounter",
    "CallCounter",
    "BasicBlockCounter",
]


class Instrument:
    """Base class: every hook is a no-op.

    Hooks:
        * :meth:`on_start` — before the entry method is invoked.
        * :meth:`on_method_entry` — a frame was pushed.
        * :meth:`on_method_exit` — a frame returned.
        * :meth:`on_instruction` — before each instruction executes.
        * :meth:`on_external_call` — a CALL left the program (modelled
          as an uninstrumented native method).
        * :meth:`on_halt` — execution finished (normally or via HALT).
    """

    def on_start(self, program: Program) -> None:
        """Called once before execution begins."""

    def on_method_entry(
        self, method_id: MethodId, frame: "Frame"
    ) -> None:
        """Called when a method activation is pushed."""

    def on_method_exit(self, method_id: MethodId) -> None:
        """Called when a method activation returns."""

    def on_instruction(
        self, method_id: MethodId, instruction: Instruction, offset: int
    ) -> None:
        """Called before each instruction, with its byte offset."""

    def on_external_call(
        self, method_id: MethodId, callee: MethodId
    ) -> None:
        """Called when a CALL resolves outside the program."""

    def on_halt(self) -> None:
        """Called once when execution stops."""


class InstructionCounter(Instrument):
    """Counts executed instructions, total and per method."""

    def __init__(self) -> None:
        self.total = 0
        self.per_method: Dict[MethodId, int] = {}

    def on_instruction(
        self, method_id: MethodId, instruction: Instruction, offset: int
    ) -> None:
        self.total += 1
        self.per_method[method_id] = (
            self.per_method.get(method_id, 0) + 1
        )


class CallCounter(Instrument):
    """Counts method invocations, including the entry invocation."""

    def __init__(self) -> None:
        self.invocations: Dict[MethodId, int] = {}
        self.external_calls: Dict[MethodId, int] = {}

    def on_method_entry(
        self, method_id: MethodId, frame: "Frame"
    ) -> None:
        self.invocations[method_id] = (
            self.invocations.get(method_id, 0) + 1
        )

    def on_external_call(
        self, method_id: MethodId, callee: MethodId
    ) -> None:
        self.external_calls[callee] = (
            self.external_calls.get(callee, 0) + 1
        )


class BasicBlockCounter(Instrument):
    """Counts basic-block entries, BIT's signature instrumentation.

    Block boundaries are derived lazily per method (the leader offsets
    of :func:`repro.cfg.basic_blocks.partition_blocks`); an instruction
    executing at a leader offset counts as entering that block.
    """

    def __init__(self) -> None:
        self.block_entries: Dict[MethodId, Dict[int, int]] = {}
        self._leaders: Dict[MethodId, Dict[int, int]] = {}
        self._program: Program = None

    def on_start(self, program: Program) -> None:
        self._program = program

    def _leaders_of(self, method_id: MethodId) -> Dict[int, int]:
        leaders = self._leaders.get(method_id)
        if leaders is None:
            from ..cfg import partition_blocks

            method = self._program.method(method_id)
            _, offset_to_block = partition_blocks(method.instructions)
            leaders = offset_to_block
            self._leaders[method_id] = leaders
        return leaders

    def on_instruction(
        self, method_id: MethodId, instruction: Instruction, offset: int
    ) -> None:
        block_id = self._leaders_of(method_id).get(offset)
        if block_id is not None:
            per_method = self.block_entries.setdefault(method_id, {})
            per_method[block_id] = per_method.get(block_id, 0) + 1

    def total_block_entries(self) -> int:
        return sum(
            count
            for blocks in self.block_entries.values()
            for count in blocks.values()
        )
