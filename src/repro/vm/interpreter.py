"""The bytecode interpreter.

Semantics are Java-flavoured: 32-bit wrapping integer arithmetic,
truncating division, explicit operand stack, static methods only.
External calls (CALL targets not defined in the program) model
uninstrumented native methods: they consume their arguments and produce
a zero result, and instrumentation is notified.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..bytecode import Instruction, Opcode, SysCall
from ..classfile import parse_descriptor
from ..errors import VMError
from ..program import MethodId, Program
from .frame import Frame
from .instrument import Instrument

__all__ = ["VirtualMachine", "ExecutionResult"]

_INT_MASK = 0xFFFFFFFF

#: Dispatch strategies.  "reference" is the classic decode-each-time
#: loop below; "threaded" precompiles methods into handler closures
#: (:mod:`repro.vm.threaded`); "auto" picks threaded exactly when no
#: instruments are attached (instruments need per-instruction
#: callbacks, which only the reference loop provides).
_DISPATCHES = ("auto", "reference", "threaded")


def _int32(value: int) -> int:
    """Wrap to signed 32-bit, Java-style."""
    value &= _INT_MASK
    return value - 0x100000000 if value >= 0x80000000 else value


def _truncated_div(a: int, b: int) -> int:
    if b == 0:
        raise VMError("integer division by zero")
    quotient = abs(a) // abs(b)
    return quotient if (a >= 0) == (b >= 0) else -quotient


def _truncated_mod(a: int, b: int) -> int:
    return a - _truncated_div(a, b) * b


class ExecutionResult:
    """Outcome of a VM run.

    Attributes:
        instructions_executed: Total dynamic instruction count.
        output: Values emitted by ``SYS PRINT``.
        globals: Final static field values, keyed by (class, field).
        halted: True when ``SYS HALT`` stopped execution early.
    """

    def __init__(
        self,
        instructions_executed: int,
        output: List[Any],
        globals_map: Dict[Tuple[str, str], Any],
        halted: bool,
    ) -> None:
        self.instructions_executed = instructions_executed
        self.output = list(output)
        self.globals = dict(globals_map)
        self.halted = halted

    def global_value(self, class_name: str, field_name: str) -> Any:
        return self.globals.get((class_name, field_name), 0)


class VirtualMachine:
    """Executes a :class:`~repro.program.Program`.

    Args:
        program: The program to run.
        instruments: BIT-style observers (see :mod:`repro.vm.instrument`).
        max_instructions: Safety limit; exceeding it raises VMError.
        rng_seed: Seed for the ``SYS RAND`` intrinsic.
        dispatch: ``"auto"`` (default — threaded when uninstrumented),
            ``"reference"``, or ``"threaded"``.  Both strategies are
            observably identical; forcing ``"threaded"`` with
            instruments attached is an error.
    """

    def __init__(
        self,
        program: Program,
        instruments: Sequence[Instrument] = (),
        max_instructions: int = 50_000_000,
        rng_seed: int = 0x5EED,
        dispatch: str = "auto",
    ) -> None:
        if dispatch not in _DISPATCHES:
            raise VMError(
                f"unknown dispatch {dispatch!r}; "
                f"pick from {_DISPATCHES}"
            )
        if dispatch == "threaded" and instruments:
            raise VMError(
                "threaded dispatch cannot drive per-instruction "
                "instruments; use dispatch='reference' or 'auto'"
            )
        self.program = program
        self.instruments = list(instruments)
        self.dispatch = dispatch
        self.max_instructions = max_instructions
        self.globals: Dict[Tuple[str, str], Any] = {}
        self.output: List[Any] = []
        self._rng = random.Random(rng_seed)
        self._frames: List[Frame] = []
        self._instructions_executed = 0
        self._halted = False
        self._initialize_globals()

    def _initialize_globals(self) -> None:
        """Run 'class variable initializers in textual order' (§3.1):
        every declared field starts at its ConstantValue or zero."""
        for classfile in self.program.classes:
            pool = classfile.constant_pool
            for field_info in classfile.fields:
                value: Any = 0
                for attribute in field_info.attributes:
                    if attribute.name == "ConstantValue":
                        index = int.from_bytes(attribute.data, "big")
                        value = pool.constant_value(index)
                self.globals[(classfile.name, field_info.name)] = value

    # -- public API -------------------------------------------------------

    def run(
        self, entry: Optional[MethodId] = None, args: Sequence[int] = ()
    ) -> ExecutionResult:
        """Execute from ``entry`` (default: the program entry point)."""
        entry_id = entry or self.program.resolve_entry()
        if not self.program.has_method(entry_id):
            raise VMError(f"entry method {entry_id} not found")
        for instrument in self.instruments:
            instrument.on_start(self.program)
        self._push_frame(entry_id, list(args))
        if self.dispatch == "threaded" or (
            self.dispatch == "auto" and not self.instruments
        ):
            from .threaded import dispatch_threaded

            dispatch_threaded(self)
        else:
            self._dispatch_loop()
        for instrument in self.instruments:
            instrument.on_halt()
        return ExecutionResult(
            instructions_executed=self._instructions_executed,
            output=self.output,
            globals_map=self.globals,
            halted=self._halted,
        )

    @property
    def instructions_executed(self) -> int:
        return self._instructions_executed

    # -- frame management ---------------------------------------------------

    def _push_frame(self, method_id: MethodId, args: List[Any]) -> None:
        method = self.program.method(method_id)
        descriptor = method.parsed_descriptor
        if len(args) != descriptor.arity:
            raise VMError(
                f"{method_id} expects {descriptor.arity} args, "
                f"got {len(args)}"
            )
        frame = Frame(method_id=method_id, method=method, locals=args)
        self._frames.append(frame)
        if len(self._frames) > 4096:
            raise VMError("call stack overflow (depth > 4096)")
        for instrument in self.instruments:
            instrument.on_method_entry(method_id, frame)

    def _pop_frame(self, return_value: Optional[Any]) -> None:
        frame = self._frames.pop()
        for instrument in self.instruments:
            instrument.on_method_exit(frame.method_id)
        if self._frames:
            if return_value is not None:
                self._frames[-1].push(return_value)
        elif return_value is not None:
            self.output.append(return_value)

    # -- dispatch -------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while self._frames and not self._halted:
            frame = self._frames[-1]
            if frame.pc >= len(frame.instructions):
                raise VMError(
                    f"{frame.method_id}: fell off the end of the code"
                )
            instruction = frame.instructions[frame.pc]
            offset = frame.current_offset
            self._instructions_executed += 1
            if self._instructions_executed > self.max_instructions:
                raise VMError(
                    f"instruction limit {self.max_instructions} exceeded"
                )
            for instrument in self.instruments:
                instrument.on_instruction(
                    frame.method_id, instruction, offset
                )
            self._execute(frame, instruction, offset)

    def _execute(
        self, frame: Frame, instruction: Instruction, offset: int
    ) -> None:
        opcode = instruction.opcode
        frame.pc += 1

        if opcode == Opcode.NOP:
            return
        if opcode == Opcode.ICONST:
            frame.push(instruction.operand)
            return
        if opcode == Opcode.LDC:
            pool = self.program.class_named(
                frame.method_id.class_name
            ).constant_pool
            frame.push(pool.constant_value(instruction.operand))
            return
        if opcode == Opcode.LOAD:
            frame.push(frame.load(instruction.operand))
            return
        if opcode == Opcode.STORE:
            frame.store(instruction.operand, frame.pop())
            return
        if opcode == Opcode.GETSTATIC:
            frame.push(self.globals.get(self._field_key(frame, instruction), 0))
            return
        if opcode == Opcode.PUTSTATIC:
            self.globals[self._field_key(frame, instruction)] = frame.pop()
            return

        if opcode in _ARITHMETIC:
            right = frame.pop()
            left = frame.pop()
            frame.push(_ARITHMETIC[opcode](left, right))
            return
        if opcode == Opcode.NEG:
            frame.push(_int32(-frame.pop()))
            return

        if opcode == Opcode.DUP:
            value = frame.pop()
            frame.push(value)
            frame.push(value)
            return
        if opcode == Opcode.POP:
            frame.pop()
            return
        if opcode == Opcode.SWAP:
            first = frame.pop()
            second = frame.pop()
            frame.push(first)
            frame.push(second)
            return

        if opcode in _UNARY_BRANCHES:
            if _UNARY_BRANCHES[opcode](frame.pop()):
                frame.jump_to_offset(instruction.branch_target(offset))
            return
        if opcode in _BINARY_BRANCHES:
            right = frame.pop()
            left = frame.pop()
            if _BINARY_BRANCHES[opcode](left, right):
                frame.jump_to_offset(instruction.branch_target(offset))
            return
        if opcode == Opcode.GOTO:
            frame.jump_to_offset(instruction.branch_target(offset))
            return

        if opcode == Opcode.CALL:
            self._call(frame, instruction)
            return
        if opcode == Opcode.RETURN:
            self._pop_frame(None)
            return
        if opcode == Opcode.IRETURN:
            self._pop_frame(frame.pop())
            return

        if opcode == Opcode.NEWARRAY:
            size = frame.pop()
            if not 0 <= size <= 10_000_000:
                raise VMError(f"bad array size {size}")
            frame.push([0] * size)
            return
        if opcode == Opcode.ALOAD:
            index = frame.pop()
            array = frame.pop()
            self._check_array(array, index)
            frame.push(array[index])
            return
        if opcode == Opcode.ASTORE:
            value = frame.pop()
            index = frame.pop()
            array = frame.pop()
            self._check_array(array, index)
            array[index] = value
            return
        if opcode == Opcode.ARRAYLEN:
            array = frame.pop()
            if not isinstance(array, list):
                raise VMError("arraylen on non-array")
            frame.push(len(array))
            return

        if opcode == Opcode.SYS:
            self._sys(frame, instruction.operand)
            return

        raise VMError(f"unimplemented opcode {opcode!r}")  # pragma: no cover

    # -- helpers ---------------------------------------------------------

    def _field_key(
        self, frame: Frame, instruction: Instruction
    ) -> Tuple[str, str]:
        pool = self.program.class_named(
            frame.method_id.class_name
        ).constant_pool
        class_name, field_name, _ = pool.member_ref(instruction.operand)
        return (class_name, field_name)

    def _call(self, frame: Frame, instruction: Instruction) -> None:
        pool = self.program.class_named(
            frame.method_id.class_name
        ).constant_pool
        class_name, method_name, descriptor = pool.member_ref(
            instruction.operand
        )
        callee = MethodId(class_name, method_name)
        parsed = parse_descriptor(descriptor)
        args = [frame.pop() for _ in range(parsed.arity)]
        args.reverse()
        if self.program.has_method(callee):
            self._push_frame(callee, args)
        else:
            for instrument in self.instruments:
                instrument.on_external_call(frame.method_id, callee)
            if parsed.returns_value:
                frame.push(0)

    @staticmethod
    def _check_array(array: Any, index: Any) -> None:
        if not isinstance(array, list):
            raise VMError("array operation on non-array")
        if not isinstance(index, int) or not 0 <= index < len(array):
            raise VMError(
                f"array index {index} out of bounds [0, {len(array)})"
            )

    def _sys(self, frame: Frame, code: int) -> None:
        if code == SysCall.PRINT:
            self.output.append(frame.pop())
        elif code == SysCall.TIME:
            frame.push(self._instructions_executed)
        elif code == SysCall.RAND:
            frame.push(self._rng.randrange(0, 2**31))
        elif code == SysCall.HALT:
            self._halted = True
        elif code == SysCall.BLACKHOLE:
            frame.pop()
        else:
            raise VMError(f"unknown SYS code {code}")


_ARITHMETIC = {
    Opcode.ADD: lambda a, b: _int32(a + b),
    Opcode.SUB: lambda a, b: _int32(a - b),
    Opcode.MUL: lambda a, b: _int32(a * b),
    Opcode.DIV: _truncated_div,
    Opcode.MOD: _truncated_mod,
    Opcode.AND: lambda a, b: _int32(a & b),
    Opcode.OR: lambda a, b: _int32(a | b),
    Opcode.XOR: lambda a, b: _int32(a ^ b),
    Opcode.SHL: lambda a, b: _int32(a << (b & 31)),
    Opcode.SHR: lambda a, b: _int32(a >> (b & 31)),
}

_UNARY_BRANCHES = {
    Opcode.IFEQ: lambda v: v == 0,
    Opcode.IFNE: lambda v: v != 0,
    Opcode.IFLT: lambda v: v < 0,
    Opcode.IFGE: lambda v: v >= 0,
    Opcode.IFGT: lambda v: v > 0,
    Opcode.IFLE: lambda v: v <= 0,
}

_BINARY_BRANCHES = {
    Opcode.IF_ICMPEQ: lambda a, b: a == b,
    Opcode.IF_ICMPNE: lambda a, b: a != b,
    Opcode.IF_ICMPLT: lambda a, b: a < b,
    Opcode.IF_ICMPGE: lambda a, b: a >= b,
    Opcode.IF_ICMPGT: lambda a, b: a > b,
    Opcode.IF_ICMPLE: lambda a, b: a <= b,
}
