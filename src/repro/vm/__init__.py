"""Virtual machine: interpreter, frames, instrumentation, tracing."""

from .frame import Frame
from .instrument import (
    BasicBlockCounter,
    CallCounter,
    Instrument,
    InstructionCounter,
)
from .interpreter import ExecutionResult, VirtualMachine
from .trace import (
    ExecutionTrace,
    FirstUseEvent,
    FirstUseProfile,
    MethodProfile,
    TraceRecorder,
    TraceSegment,
    merge_profiles,
    synthesize_profile,
)

__all__ = [
    "Frame",
    "BasicBlockCounter",
    "CallCounter",
    "Instrument",
    "InstructionCounter",
    "ExecutionResult",
    "VirtualMachine",
    "ExecutionTrace",
    "FirstUseEvent",
    "FirstUseProfile",
    "MethodProfile",
    "TraceRecorder",
    "TraceSegment",
    "synthesize_profile",
    "merge_profiles",
]


def record_run(program, entry=None, args=(), max_instructions=50_000_000):
    """Run ``program`` with a :class:`TraceRecorder` attached.

    Returns:
        ``(result, recorder)`` — the VM result plus the populated
        recorder (``recorder.trace`` and ``recorder.profile``).
    """
    recorder = TraceRecorder()
    machine = VirtualMachine(
        program,
        instruments=[recorder],
        max_instructions=max_instructions,
    )
    result = machine.run(entry=entry, args=args)
    return result, recorder
