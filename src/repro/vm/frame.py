"""Activation frames for the interpreter."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from ..bytecode import Instruction, offsets_of
from ..classfile import MethodInfo
from ..errors import StackUnderflowError, VMError
from ..program import MethodId

__all__ = ["Frame"]

#: Hard cap on local variable slots, mirroring the u1 LOAD/STORE operand.
MAX_LOCAL_SLOTS = 256


@dataclass
class Frame:
    """One method activation: locals, operand stack, program counter.

    Attributes:
        method_id: Which method is executing.
        method: Its definition.
        pc: Index (not byte offset) of the next instruction.
    """

    method_id: MethodId
    method: MethodInfo
    pc: int = 0
    locals: List[Any] = field(default_factory=list)
    stack: List[Any] = field(default_factory=list)

    def __post_init__(self) -> None:
        # The offset tables depend only on the instruction list, so
        # they are computed once per method and shared by every
        # activation (frames never mutate them).  Keyed on the list's
        # identity: a method whose instructions are replaced gets a
        # fresh layout.
        method = self.method
        instructions: List[Instruction] = method.instructions
        cached = getattr(method, "_frame_layout", None)
        if cached is not None and cached[0] is instructions:
            self.instructions = instructions
            self.offsets: List[int] = cached[1]
            self.offset_to_index: Dict[int, int] = cached[2]
        else:
            self.instructions = instructions
            offsets = offsets_of(instructions)
            self.offsets = offsets
            self.offset_to_index = {
                offset: index for index, offset in enumerate(offsets)
            }
            method._frame_layout = (  # type: ignore[attr-defined]
                instructions,
                offsets,
                self.offset_to_index,
            )
        needed = max(self.method.max_locals, len(self.locals))
        if needed > MAX_LOCAL_SLOTS:
            raise VMError(
                f"{self.method_id}: {needed} locals exceed the limit "
                f"of {MAX_LOCAL_SLOTS}"
            )
        self.locals.extend([0] * (needed - len(self.locals)))

    def push(self, value: Any) -> None:
        self.stack.append(value)

    def pop(self) -> Any:
        if not self.stack:
            raise StackUnderflowError(
                f"{self.method_id}: operand stack underflow at pc={self.pc}"
            )
        return self.stack.pop()

    def load(self, slot: int) -> Any:
        if slot >= len(self.locals):
            raise VMError(
                f"{self.method_id}: load from unallocated local {slot}"
            )
        return self.locals[slot]

    def store(self, slot: int, value: Any) -> None:
        if slot >= MAX_LOCAL_SLOTS:
            raise VMError(
                f"{self.method_id}: store to local {slot} beyond limit"
            )
        if slot >= len(self.locals):
            self.locals.extend([0] * (slot + 1 - len(self.locals)))
        self.locals[slot] = value

    def jump_to_offset(self, byte_offset: int) -> None:
        """Set the pc to the instruction at ``byte_offset``.

        Raises:
            VMError: If the offset is not an instruction boundary.
        """
        index = self.offset_to_index.get(byte_offset)
        if index is None:
            raise VMError(
                f"{self.method_id}: branch to non-boundary offset "
                f"{byte_offset}"
            )
        self.pc = index

    @property
    def current_offset(self) -> int:
        """Byte offset of the instruction at the current pc."""
        return self.offsets[self.pc]
