"""High-level API: configure and run one non-strict experiment.

This is the façade most users want::

    from repro import (
        figure1_program, record_run, estimate_first_use, T1_LINK,
    )
    from repro.core import run_nonstrict, run_strict, strict_baseline

    program = figure1_program()
    _, recorder = record_run(program)
    order = estimate_first_use(program)
    result = run_nonstrict(
        program, recorder.trace, order, T1_LINK, cpi=30,
        method="interleaved",
    )
    base = strict_baseline(program, recorder.trace, T1_LINK, cpi=30)
    print(result.normalized_to(base.total_cycles))
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import SimulationError
from ..program import Program
from ..reorder import FirstUseOrder
from ..reorder import restructure as apply_restructure
from ..transfer import (
    InterleavedController,
    NetworkLink,
    ParallelController,
    StrictSequentialController,
)
from ..vm import ExecutionTrace
from .simulation import SimulationResult, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from ..observe import TraceRecorder

__all__ = ["run_nonstrict", "run_strict"]

_METHODS = ("parallel", "interleaved")


def run_nonstrict(
    program: Program,
    trace: ExecutionTrace,
    order: FirstUseOrder,
    link: NetworkLink,
    cpi: float,
    method: str = "interleaved",
    max_streams: Optional[int] = None,
    data_partitioning: bool = False,
    restructure: bool = True,
    recorder: Optional["TraceRecorder"] = None,
) -> SimulationResult:
    """Simulate non-strict execution of one configuration.

    Args:
        program: The program (original layout; restructured internally
            unless ``restructure=False``).
        trace: Execution trace to replay (from any layout — method
            identity is layout-invariant).
        order: First-use order guiding restructuring and scheduling.
        link: Network link model.
        cpi: Average cycles per bytecode instruction.
        method: ``"parallel"`` or ``"interleaved"``.
        max_streams: Parallel-only concurrent stream limit
            (None = unlimited).
        data_partitioning: Split global data into GMDs (§7.3).
        restructure: Reorder methods/classes into first-use order
            first (the paper always does; disable only for ablation).
        recorder: Optional :class:`repro.observe.TraceRecorder`
            collecting the run's event stream on the cycle clock.

    Returns:
        The :class:`~repro.core.simulation.SimulationResult`.
    """
    if method not in _METHODS:
        raise SimulationError(
            f"unknown transfer method {method!r}; pick from {_METHODS}"
        )
    target = (
        apply_restructure(program, order) if restructure else program
    )
    if method == "parallel":
        controller = ParallelController(
            target,
            order,
            link,
            cpi,
            max_streams=max_streams,
            data_partitioning=data_partitioning,
        )
    else:
        controller = InterleavedController(
            target, order, data_partitioning=data_partitioning
        )
    simulator = Simulator(
        target, trace, controller, link, cpi, recorder=recorder
    )
    return simulator.run()


def run_strict(
    program: Program,
    trace: ExecutionTrace,
    link: NetworkLink,
    cpi: float,
    recorder: Optional["TraceRecorder"] = None,
) -> SimulationResult:
    """Simulate the strict base case (sequential whole-file transfer).

    Note that the paper's headline "strict" *total* (Table 3) is the
    arithmetic sum of full transfer and execution; use
    :func:`repro.core.metrics.strict_baseline` for that.  This
    simulation shows what sequential strict transfer with on-demand
    execution actually does — useful for ablations.
    """
    controller = StrictSequentialController(program)
    simulator = Simulator(
        program, trace, controller, link, cpi, recorder=recorder
    )
    return simulator.run()
