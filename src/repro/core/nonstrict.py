"""High-level API: configure and run one non-strict experiment.

This is the façade most users want::

    from repro import (
        figure1_program, record_run, estimate_first_use, T1_LINK,
    )
    from repro.core import run_nonstrict, run_strict, strict_baseline

    program = figure1_program()
    _, recorder = record_run(program)
    order = estimate_first_use(program)
    result = run_nonstrict(
        program, recorder.trace, order, T1_LINK, cpi=30,
        method="interleaved",
    )
    base = strict_baseline(program, recorder.trace, T1_LINK, cpi=30)
    print(result.normalized_to(base.total_cycles))
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from ..errors import SimulationError
from ..program import Program
from ..reorder import FirstUseOrder
from ..reorder import restructure as apply_restructure
from ..transfer import (
    InterleavedController,
    NetworkLink,
    ParallelController,
    StrictSequentialController,
    TransferController,
)
from ..vm import ExecutionTrace
from .simulation import SimulationResult, Simulator, resolve_engine

if TYPE_CHECKING:  # pragma: no cover
    from ..observe import TraceRecorder

__all__ = ["run_nonstrict", "run_strict"]

_METHODS = ("parallel", "interleaved")

_ConfigKey = Tuple[str, Optional[int], bool, bool]
_ConfigEntry = Tuple[
    FirstUseOrder, _ConfigKey, Program, TransferController
]


def _build_controller(
    target: Program,
    order: FirstUseOrder,
    link: NetworkLink,
    cpi: float,
    method: str,
    max_streams: Optional[int],
    data_partitioning: bool,
) -> TransferController:
    if method == "parallel":
        return ParallelController(
            target,
            order,
            link,
            cpi,
            max_streams=max_streams,
            data_partitioning=data_partitioning,
        )
    return InterleavedController(
        target, order, data_partitioning=data_partitioning
    )


def _cached_config(
    program: Program,
    order: FirstUseOrder,
    link: NetworkLink,
    cpi: float,
    method: str,
    max_streams: Optional[int],
    data_partitioning: bool,
    restructure: bool,
) -> Tuple[Program, TransferController]:
    """Reuse (restructured program, controller) pairs across runs.

    Only the batched engine takes this path: its specialized cores keep
    all per-run state locally, so a controller is reusable, and the
    schedule builder ignores the link, so one cached pair serves every
    link × CPI sweep point.  Keyed on order *identity* (orders are
    built once per workload and reused) plus the config tuple; the
    cache lives on the program object so it dies with the program.
    """
    cache: List[_ConfigEntry] = program.__dict__.setdefault(
        "_batched_config_cache", []
    )
    key: _ConfigKey = (
        method, max_streams, data_partitioning, restructure
    )
    for cached_order, cached_key, target, controller in cache:
        if cached_order is order and cached_key == key:
            return target, controller
    target = (
        apply_restructure(program, order) if restructure else program
    )
    controller = _build_controller(
        target, order, link, cpi, method, max_streams, data_partitioning
    )
    cache.append((order, key, target, controller))
    return target, controller


def run_nonstrict(
    program: Program,
    trace: ExecutionTrace,
    order: FirstUseOrder,
    link: NetworkLink,
    cpi: float,
    method: str = "interleaved",
    max_streams: Optional[int] = None,
    data_partitioning: bool = False,
    restructure: bool = True,
    recorder: Optional["TraceRecorder"] = None,
    engine: Optional[str] = None,
) -> SimulationResult:
    """Simulate non-strict execution of one configuration.

    Args:
        program: The program (original layout; restructured internally
            unless ``restructure=False``).
        trace: Execution trace to replay (from any layout — method
            identity is layout-invariant).
        order: First-use order guiding restructuring and scheduling.
        link: Network link model.
        cpi: Average cycles per bytecode instruction.
        method: ``"parallel"`` or ``"interleaved"``.
        max_streams: Parallel-only concurrent stream limit
            (None = unlimited).
        data_partitioning: Split global data into GMDs (§7.3).
        restructure: Reorder methods/classes into first-use order
            first (the paper always does; disable only for ablation).
        recorder: Optional :class:`repro.observe.TraceRecorder`
            collecting the run's event stream on the cycle clock.
        engine: ``"reference"`` or ``"batched"`` (cycle-exact fast
            path; see :mod:`repro.core.fastsim`); ``None`` defers to
            ``REPRO_SIM_ENGINE``.

    Returns:
        The :class:`~repro.core.simulation.SimulationResult`.
    """
    if method not in _METHODS:
        raise SimulationError(
            f"unknown transfer method {method!r}; pick from {_METHODS}"
        )
    resolved_engine = resolve_engine(engine)
    if resolved_engine == "batched" and recorder is None:
        target, controller = _cached_config(
            program,
            order,
            link,
            cpi,
            method,
            max_streams,
            data_partitioning,
            restructure,
        )
    else:
        target = (
            apply_restructure(program, order) if restructure else program
        )
        controller = _build_controller(
            target,
            order,
            link,
            cpi,
            method,
            max_streams,
            data_partitioning,
        )
    simulator = Simulator(
        target,
        trace,
        controller,
        link,
        cpi,
        recorder=recorder,
        engine=resolved_engine,
    )
    return simulator.run()


def run_strict(
    program: Program,
    trace: ExecutionTrace,
    link: NetworkLink,
    cpi: float,
    recorder: Optional["TraceRecorder"] = None,
    engine: Optional[str] = None,
) -> SimulationResult:
    """Simulate the strict base case (sequential whole-file transfer).

    Note that the paper's headline "strict" *total* (Table 3) is the
    arithmetic sum of full transfer and execution; use
    :func:`repro.core.metrics.strict_baseline` for that.  This
    simulation shows what sequential strict transfer with on-demand
    execution actually does — useful for ablations.
    """
    controller = StrictSequentialController(program)
    simulator = Simulator(
        program,
        trace,
        controller,
        link,
        cpi,
        recorder=recorder,
        engine=engine,
    )
    return simulator.run()
