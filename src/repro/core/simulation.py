"""The execution/transfer co-simulator.

Replays an execution trace against a transfer timeline, cycle-exactly:

* executing ``n`` bytecode instructions costs ``n × CPI`` cycles (the
  paper's §6.1 model: per-program average CPI on a 500 MHz Alpha);
* a trace segment may begin only once the transfer unit its method
  requires has arrived — otherwise execution *stalls* and the
  controller gets a chance to demand-fetch (§5.1 misprediction
  correction);
* while execution proceeds, transfer continues in the background
  (that is the whole point of non-strict execution);
* when the trace ends, any remaining transfer is terminated, exactly
  as the paper does ("if an application completes execution before all
  the methods have transferred, we terminate the remaining transfer").

The same machinery simulates the strict base case by pairing the
strict controller (whole-file units) with a strict-semantics trace.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Set

from ..errors import SimulationError
from ..program import MethodId, Program
from ..transfer import TransferController, NetworkLink
from ..vm import ExecutionTrace
from .metrics import InvocationLatencyReport

if TYPE_CHECKING:  # pragma: no cover
    from ..observe import TraceRecorder

__all__ = ["StallEvent", "SimulationResult", "Simulator", "resolve_engine"]

_ENGINES = ("reference", "batched")


def resolve_engine(engine: Optional[str]) -> str:
    """Resolve an ``engine=`` argument to a concrete engine name.

    ``None`` falls back to the ``REPRO_SIM_ENGINE`` environment
    variable, then to ``"reference"``.  The batched engine is
    cycle-exact (see :mod:`repro.core.fastsim`), so either choice
    produces identical results — only wall-clock differs.
    """
    resolved = engine or os.environ.get("REPRO_SIM_ENGINE") or "reference"
    if resolved not in _ENGINES:
        raise SimulationError(
            f"unknown simulation engine {resolved!r}; pick from {_ENGINES}"
        )
    return resolved


def _cycle_latency_report() -> InvocationLatencyReport:
    return InvocationLatencyReport(unit="cycles")


@dataclass(frozen=True)
class StallEvent:
    """Execution waited for transfer.

    Attributes:
        method: Method whose unit had not arrived.
        start: Cycle at which execution stopped.
        duration: Stall length in cycles.
    """

    method: MethodId
    start: float
    duration: float


@dataclass
class SimulationResult:
    """Outcome of one co-simulation.

    Attributes:
        total_cycles: Invocation-to-completion cycles (transfer
            remaining at completion is terminated, not waited for).
        execution_cycles: Pure compute cycles (instructions × CPI).
        stall_cycles: Cycles execution spent waiting on transfer.
        invocation_latency: Cycles until the first instruction ran.
        bytes_delivered: Bytes that arrived before completion.
        bytes_terminated: Bytes whose transfer was cut off at the end.
        stalls: Every stall, in order.
        controller_name: Which transfer methodology ran.
        latencies: Per-method first-invocation latencies (unit
            ``"cycles"``) — the simulated twin of the measured report
            :func:`repro.netserve.run_networked` produces.
    """

    total_cycles: float
    execution_cycles: float
    stall_cycles: float
    invocation_latency: float
    bytes_delivered: float
    bytes_terminated: float
    stalls: List[StallEvent] = field(default_factory=list)
    controller_name: str = ""
    latencies: InvocationLatencyReport = field(
        default_factory=_cycle_latency_report
    )

    @property
    def stall_count(self) -> int:
        return len(self.stalls)

    def normalized_to(self, baseline_cycles: float) -> float:
        """Percent of a baseline: the paper's normalized execution time."""
        if baseline_cycles <= 0:
            raise SimulationError(
                f"non-positive baseline: {baseline_cycles}"
            )
        return 100.0 * self.total_cycles / baseline_cycles


class Simulator:
    """Co-simulates one configuration.

    Args:
        program: The (possibly restructured) program being transferred.
        trace: The execution trace to replay (method ids must exist in
            ``program``).
        controller: Transfer methodology.
        link: Network link model.
        cpi: Average cycles per bytecode instruction.
        recorder: Optional :class:`repro.observe.TraceRecorder` (clock
            ``"cycles"``); when given, the run emits ``unit_arrived``,
            ``method_first_invoke``, ``stall_begin``/``stall_end``, and
            the controller's ``schedule_decision``/``demand_fetch``
            events on the simulated clock.
        engine: ``"reference"`` (the readable per-segment loop below)
            or ``"batched"`` (the event-batched hot path in
            :mod:`repro.core.fastsim` — cycle-exact, ~10× faster).
            ``None`` defers to ``REPRO_SIM_ENGINE``, default
            ``"reference"``.  Recorded runs always use the reference
            loop so the event stream (and the recorder's zero-cost
            disabled path) is untouched.
    """

    def __init__(
        self,
        program: Program,
        trace: ExecutionTrace,
        controller: TransferController,
        link: NetworkLink,
        cpi: float,
        recorder: Optional["TraceRecorder"] = None,
        engine: Optional[str] = None,
    ) -> None:
        if cpi <= 0:
            raise SimulationError(f"CPI must be positive, got {cpi}")
        self.program = program
        self.trace = trace
        self.controller = controller
        self.link = link
        self.cpi = float(cpi)
        self.recorder = recorder
        self.engine = resolve_engine(engine)

    def run(self) -> SimulationResult:
        """Run the co-simulation to completion."""
        if self.engine == "batched" and self.recorder is None:
            from .fastsim import run_batched

            return run_batched(self)
        engine = self.controller.build_engine(self.link)
        controller = self.controller
        recorder = self.recorder
        if recorder is not None and controller.recorder is None:
            controller.recorder = recorder
        controller.setup(engine)

        wakeup = controller.next_wakeup
        on_advance = controller.on_advance

        time = 0.0
        stall_cycles = 0.0
        stalls: List[StallEvent] = []
        latencies = _cycle_latency_report()
        invoked: Set[MethodId] = set()
        invocation_latency: Optional[float] = None

        for segment in self.trace.segments:
            unit = controller.required_unit(segment.method)
            if not engine.arrived(unit):
                controller.on_stall(engine, segment.method)
                if recorder is not None:
                    recorder.stall_begin(time, method=str(segment.method))
                arrival = engine.run_until_unit(
                    unit, wakeup=wakeup, on_advance=on_advance
                )
                arrival = max(arrival, time)
                stalls.append(
                    StallEvent(
                        method=segment.method,
                        start=time,
                        duration=arrival - time,
                    )
                )
                stall_cycles += arrival - time
                if recorder is not None:
                    recorder.stall_end(
                        arrival,
                        method=str(segment.method),
                        duration=arrival - time,
                    )
                time = arrival
            if segment.method not in invoked:
                invoked.add(segment.method)
                demand_fetched = segment.method in getattr(
                    controller, "demand_fetches", ()
                )
                latencies.record(
                    segment.method, time, demand_fetched=demand_fetched
                )
                if recorder is not None:
                    recorder.method_first_invoke(
                        time,
                        method=str(segment.method),
                        latency=time,
                        demand_fetched=demand_fetched,
                    )
            if invocation_latency is None:
                invocation_latency = time
            time += segment.instructions * self.cpi
            engine.run_until(time, wakeup=wakeup, on_advance=on_advance)

        if invocation_latency is None:
            invocation_latency = 0.0
        if recorder is not None:
            for unit, arrival in sorted(
                engine.arrival_times.items(), key=lambda item: item[1]
            ):
                recorder.unit_arrived(
                    arrival,
                    class_name=unit.class_name,
                    kind=unit.kind.value,
                    size=unit.size,
                    method=(
                        unit.method.method_name if unit.method else None
                    ),
                )
        execution_cycles = self.trace.total_instructions * self.cpi
        return SimulationResult(
            total_cycles=time,
            execution_cycles=execution_cycles,
            stall_cycles=stall_cycles,
            invocation_latency=invocation_latency,
            bytes_delivered=engine.total_delivered,
            bytes_terminated=engine.remaining_bytes,
            stalls=stalls,
            controller_name=controller.name,
            latencies=latencies,
        )
