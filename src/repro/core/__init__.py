"""Core: the non-strict execution co-simulator and its metrics."""

from .jit import JitModel, JitResult, simulate_jit_overlap, strict_jit_total
from .metrics import (
    InvocationLatencyReport,
    MethodInvocationLatency,
    StrictBaseline,
    invocation_latency_cycles,
    program_wire_bytes,
    strict_baseline,
)
from .nonstrict import run_nonstrict, run_strict
from .simulation import (
    SimulationResult,
    Simulator,
    StallEvent,
    resolve_engine,
)

__all__ = [
    "JitModel",
    "JitResult",
    "simulate_jit_overlap",
    "strict_jit_total",
    "InvocationLatencyReport",
    "MethodInvocationLatency",
    "StrictBaseline",
    "invocation_latency_cycles",
    "program_wire_bytes",
    "strict_baseline",
    "run_nonstrict",
    "run_strict",
    "SimulationResult",
    "Simulator",
    "StallEvent",
    "resolve_engine",
]
