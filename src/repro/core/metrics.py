"""Baseline metrics: strict totals and invocation latencies.

Reproduces the paper's accounting conventions exactly:

* **Strict total** (Table 3): total transfer cycles plus total
  execution cycles — strict execution gets no overlap credit, so the
  base is the arithmetic sum.
* **Invocation latency** (Table 4): strict = the first class file's
  full transfer time; non-strict = the transfer time of the entry
  class's global data plus its first procedure; with data partitioning
  the global data shrinks to the needed-first chunk plus the entry
  method's GMD.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..classfile import class_layout
from ..errors import SimulationError
from ..program import MethodId, Program
from ..transfer import (
    NetworkLink,
    TransferPolicy,
    build_class_plan,
)
from ..vm import ExecutionTrace

__all__ = [
    "StrictBaseline",
    "strict_baseline",
    "invocation_latency_cycles",
    "MethodInvocationLatency",
    "InvocationLatencyReport",
]


@dataclass(frozen=True)
class StrictBaseline:
    """The paper's Table 3 row for one program/link pair.

    Attributes:
        execution_cycles: Instructions × CPI.
        transfer_cycles: Full program transfer at link bandwidth.
        total_cycles: Their sum (the normalization denominator).
    """

    execution_cycles: float
    transfer_cycles: float
    total_cycles: float

    @property
    def percent_transfer(self) -> float:
        """Percent of strict execution time due to transfer."""
        return 100.0 * self.transfer_cycles / self.total_cycles


def program_wire_bytes(program: Program) -> int:
    """Strict wire size of the whole program."""
    return sum(
        class_layout(classfile).strict_size
        for classfile in program.classes
    )


def strict_baseline(
    program: Program,
    trace: ExecutionTrace,
    link: NetworkLink,
    cpi: float,
) -> StrictBaseline:
    """Compute the strict base case (Table 3's accounting)."""
    if cpi <= 0:
        raise SimulationError(f"CPI must be positive, got {cpi}")
    execution = trace.total_instructions * float(cpi)
    transfer = link.transfer_cycles(program_wire_bytes(program))
    return StrictBaseline(
        execution_cycles=execution,
        transfer_cycles=transfer,
        total_cycles=execution + transfer,
    )


@dataclass(frozen=True)
class MethodInvocationLatency:
    """Latency of one method's *first* invocation.

    Attributes:
        method: The method.
        latency: Time from session start until the method could begin
            executing, in the report's unit.
        demand_fetched: True when a first-use misprediction forced a
            demand fetch before this method could run.
    """

    method: MethodId
    latency: float
    demand_fetched: bool = False


@dataclass
class InvocationLatencyReport:
    """Per-method first-invocation latencies for one run.

    Both the cycle-exact simulator and the real network bridge populate
    this structure; ``unit`` says which clock was used (``"cycles"`` or
    ``"seconds"``), so the two can be printed side by side.
    """

    unit: str = "cycles"
    entries: List[MethodInvocationLatency] = field(default_factory=list)

    def record(
        self,
        method: MethodId,
        latency: float,
        demand_fetched: bool = False,
    ) -> None:
        if any(entry.method == method for entry in self.entries):
            raise SimulationError(
                f"duplicate first-invocation latency for {method}"
            )
        self.entries.append(
            MethodInvocationLatency(
                method=method,
                latency=latency,
                demand_fetched=demand_fetched,
            )
        )

    def latency_for(self, method: MethodId) -> float:
        for entry in self.entries:
            if entry.method == method:
                return entry.latency
        raise SimulationError(f"no latency recorded for {method}")

    def methods(self) -> List[MethodId]:
        return [entry.method for entry in self.entries]

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, method: MethodId) -> bool:
        return any(entry.method == method for entry in self.entries)


def invocation_latency_cycles(
    program: Program,
    link: NetworkLink,
    policy: TransferPolicy = TransferPolicy.STRICT,
    entry: Optional[MethodId] = None,
) -> float:
    """Cycles from invocation until the entry method may execute.

    Matches Table 4's three columns: pass
    :data:`~repro.transfer.TransferPolicy.STRICT`,
    ``NON_STRICT``, or ``DATA_PARTITIONED``.  The entry class is
    assumed to get the full bandwidth (nothing else is useful before
    execution begins).

    Note:
        For the non-strict policies, the program should already be
        restructured so the entry method leads its class file;
        otherwise the latency honestly includes the earlier methods'
        units, exactly as a real mis-laid-out class file would.
    """
    entry_id = entry or program.resolve_entry()
    entry_class = program.class_named(entry_id.class_name)
    plan = build_class_plan(entry_class, policy)
    if policy == TransferPolicy.STRICT:
        needed = plan.total_bytes
    else:
        needed = plan.prefix_bytes_through(entry_id.method_name)
    return link.transfer_cycles(needed)
