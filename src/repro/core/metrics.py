"""Baseline metrics: strict totals and invocation latencies.

Reproduces the paper's accounting conventions exactly:

* **Strict total** (Table 3): total transfer cycles plus total
  execution cycles — strict execution gets no overlap credit, so the
  base is the arithmetic sum.
* **Invocation latency** (Table 4): strict = the first class file's
  full transfer time; non-strict = the transfer time of the entry
  class's global data plus its first procedure; with data partitioning
  the global data shrinks to the needed-first chunk plus the entry
  method's GMD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..classfile import class_layout
from ..errors import SimulationError
from ..program import MethodId, Program
from ..transfer import (
    NetworkLink,
    TransferPolicy,
    build_class_plan,
)
from ..vm import ExecutionTrace

__all__ = [
    "StrictBaseline",
    "strict_baseline",
    "invocation_latency_cycles",
]


@dataclass(frozen=True)
class StrictBaseline:
    """The paper's Table 3 row for one program/link pair.

    Attributes:
        execution_cycles: Instructions × CPI.
        transfer_cycles: Full program transfer at link bandwidth.
        total_cycles: Their sum (the normalization denominator).
    """

    execution_cycles: float
    transfer_cycles: float
    total_cycles: float

    @property
    def percent_transfer(self) -> float:
        """Percent of strict execution time due to transfer."""
        return 100.0 * self.transfer_cycles / self.total_cycles


def program_wire_bytes(program: Program) -> int:
    """Strict wire size of the whole program."""
    return sum(
        class_layout(classfile).strict_size
        for classfile in program.classes
    )


def strict_baseline(
    program: Program,
    trace: ExecutionTrace,
    link: NetworkLink,
    cpi: float,
) -> StrictBaseline:
    """Compute the strict base case (Table 3's accounting)."""
    if cpi <= 0:
        raise SimulationError(f"CPI must be positive, got {cpi}")
    execution = trace.total_instructions * float(cpi)
    transfer = link.transfer_cycles(program_wire_bytes(program))
    return StrictBaseline(
        execution_cycles=execution,
        transfer_cycles=transfer,
        total_cycles=execution + transfer,
    )


def invocation_latency_cycles(
    program: Program,
    link: NetworkLink,
    policy: TransferPolicy = TransferPolicy.STRICT,
    entry: Optional[MethodId] = None,
) -> float:
    """Cycles from invocation until the entry method may execute.

    Matches Table 4's three columns: pass
    :data:`~repro.transfer.TransferPolicy.STRICT`,
    ``NON_STRICT``, or ``DATA_PARTITIONED``.  The entry class is
    assumed to get the full bandwidth (nothing else is useful before
    execution begins).

    Note:
        For the non-strict policies, the program should already be
        restructured so the entry method leads its class file;
        otherwise the latency honestly includes the earlier methods'
        units, exactly as a real mis-laid-out class file would.
    """
    entry_id = entry or program.resolve_entry()
    entry_class = program.class_named(entry_id.class_name)
    plan = build_class_plan(entry_class, policy)
    if policy == TransferPolicy.STRICT:
        needed = plan.total_bytes
    else:
        needed = plan.prefix_bytes_through(entry_id.method_name)
    return link.transfer_cycles(needed)
