"""Overlapping JIT compilation with transfer (paper §8's outlook).

The paper closes: "If compilation can take place as the class files are
being transferred, then the latency of transfer and compilation can
overlap."  This extension realizes that idea on top of the co-simulator:

* a :class:`JitModel` charges CPU cycles per code byte compiled and
  rewards compiled methods with a faster CPI;
* under **strict JIT**, the whole program transfers, then everything
  compiles, then execution runs at the compiled CPI — no overlap at all;
* under **non-strict JIT**, the CPU compiles methods *while execution is
  stalled waiting for transfer* (the otherwise-idle cycles the paper
  wants to exploit); a method whose compilation has not finished when it
  is first invoked pays the remaining compile cycles up front.

The simulation is exact and event-driven like
:class:`repro.core.simulation.Simulator`: between trace segments the
transfer engine advances, and stall intervals are consumed first by
pending compilations (in arrival order), then by idle waiting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import SimulationError
from ..program import MethodId, Program
from ..reorder import FirstUseOrder
from ..reorder import restructure as apply_restructure
from ..transfer import (
    InterleavedController,
    NetworkLink,
    StreamEngine,
    UnitKind,
)
from ..vm import ExecutionTrace

__all__ = ["JitModel", "JitResult", "simulate_jit_overlap", "strict_jit_total"]


@dataclass(frozen=True)
class JitModel:
    """Cost/benefit model of a Just-In-Time compiler.

    Attributes:
        compile_cycles_per_byte: CPU cycles to compile one code byte.
        compiled_cpi: Cycles per bytecode once a method is compiled
            (must beat the interpreter's CPI for JIT to pay off).
    """

    compile_cycles_per_byte: float
    compiled_cpi: float

    def compile_cycles(self, code_bytes: int) -> float:
        return self.compile_cycles_per_byte * code_bytes


@dataclass
class JitResult:
    """Outcome of a JIT co-simulation.

    Attributes:
        total_cycles: Invocation-to-completion cycles.
        execution_cycles: Compiled-speed execution cycles.
        compile_cycles: Total compilation cycles spent.
        overlapped_compile_cycles: Compilation done inside transfer
            stalls (the cycles the paper's overlap recovers).
        stall_cycles: Residual idle waiting on transfer.
    """

    total_cycles: float
    execution_cycles: float
    compile_cycles: float
    overlapped_compile_cycles: float
    stall_cycles: float

    @property
    def overlap_fraction(self) -> float:
        """Share of compilation hidden inside transfer stalls."""
        if self.compile_cycles == 0:
            return 0.0
        return self.overlapped_compile_cycles / self.compile_cycles


def strict_jit_total(
    program: Program,
    trace: ExecutionTrace,
    link: NetworkLink,
    jit: JitModel,
) -> float:
    """The strict JIT base case: transfer, then compile, then run."""
    from .metrics import program_wire_bytes

    transfer = link.transfer_cycles(program_wire_bytes(program))
    compile_cycles = sum(
        jit.compile_cycles(method.code_bytes)
        for _, method in program.methods()
    )
    execution = trace.total_instructions * jit.compiled_cpi
    return transfer + compile_cycles + execution


def simulate_jit_overlap(
    program: Program,
    trace: ExecutionTrace,
    order: FirstUseOrder,
    link: NetworkLink,
    jit: JitModel,
    data_partitioning: bool = False,
) -> JitResult:
    """Non-strict transfer with compilation folded into the stalls.

    Methods compile in arrival order whenever execution is blocked on
    transfer; a method invoked before its compilation finished pays the
    remainder before executing (modelling compile-on-first-call).
    """
    target = apply_restructure(program, order)
    controller = InterleavedController(
        target, order, data_partitioning=data_partitioning
    )
    engine = StreamEngine(link)
    controller.setup(engine)

    code_bytes: Dict[MethodId, int] = {
        method_id: method.code_bytes
        for method_id, method in target.methods()
    }
    remaining_compile: Dict[MethodId, float] = {
        method_id: jit.compile_cycles(size)
        for method_id, size in code_bytes.items()
    }
    compile_queue: List[MethodId] = []
    enqueued: set = set()
    time = 0.0
    compile_spent = 0.0
    overlapped = 0.0
    stall_cycles = 0.0

    def refresh_queue() -> None:
        """Pull newly arrived methods into the compile queue."""
        for unit in list(engine.arrival_times):
            if (
                unit.kind == UnitKind.METHOD
                and unit.method not in enqueued
            ):
                enqueued.add(unit.method)
                compile_queue.append(unit.method)

    def compile_during(budget: float) -> float:
        """Spend up to ``budget`` idle cycles compiling; return used."""
        nonlocal compile_spent
        used = 0.0
        while budget > 1e-9 and compile_queue:
            method_id = compile_queue[0]
            need = remaining_compile[method_id]
            if need <= 1e-9:
                compile_queue.pop(0)
                continue
            step = min(need, budget)
            remaining_compile[method_id] = need - step
            budget -= step
            used += step
            compile_spent += step
            if remaining_compile[method_id] <= 1e-9:
                compile_queue.pop(0)
        return used

    for segment in trace.segments:
        unit = controller.required_unit(segment.method)
        if not engine.arrived(unit):
            arrival = engine.run_until_unit(unit)
            arrival = max(arrival, time)
            idle = arrival - time
            refresh_queue()
            used = compile_during(idle)
            overlapped += used
            stall_cycles += idle - used
            time = arrival
        refresh_queue()
        # Compile-on-first-call for anything the stall didn't cover.
        pending = remaining_compile.get(segment.method, 0.0)
        if pending > 1e-9:
            remaining_compile[segment.method] = 0.0
            compile_spent += pending
            time += pending
            if segment.method in compile_queue:
                compile_queue.remove(segment.method)
        time += segment.instructions * jit.compiled_cpi
        engine.run_until(time)

    execution_cycles = trace.total_instructions * jit.compiled_cpi
    if time + 1e-6 < execution_cycles:
        raise SimulationError("JIT simulation lost time")  # pragma: no cover
    return JitResult(
        total_cycles=time,
        execution_cycles=execution_cycles,
        compile_cycles=compile_spent,
        overlapped_compile_cycles=overlapped,
        stall_cycles=stall_cycles,
    )
