"""Event-batched co-simulation core: the ``engine="batched"`` hot path.

The reference :class:`~repro.core.simulation.Simulator` walks the trace
segment by segment through layered abstractions — controller callbacks,
generator-expression byte sums, per-event attribute lookups.  That is
the right shape for exposition but pays Python overhead on every one of
the millions of micro-steps a parameter sweep takes.

This module rebuilds the same co-simulation as a *run-to-next-event*
loop over preallocated arrays:

* the trace is **precompiled** once into flat arrays (per-segment
  execution cost in cycles, first-use markers with their resolved
  transfer units) — numpy-accelerated when available, with a
  pure-Python ``array``/list fallback behind one feature flag
  (``REPRO_FASTSIM_NUMPY=0`` forces the fallback);
* the paper's two single-link methodologies get **specialized cores**
  (single-stream for interleaved/strict, processor-sharing for
  parallel) that inline the :class:`~repro.transfer.streams.StreamEngine`
  event loop into local-variable arithmetic;
* any other controller (the multi-link :mod:`repro.sched` engines, for
  example) runs through a **generic batched loop** that keeps the
  controller/engine objects but hoists the per-segment bookkeeping.

Fidelity contract: the batched cores perform *bit-for-bit the same
float operations in the same order* as the reference engine, so
``total_cycles``, every stall, and every per-method first-invocation
latency are exactly equal — property-tested in
``tests/core/test_fastsim.py`` across all six workloads, both
methodologies, and both orderings.  Schedule-release checks are the one
place the batched parallel core does *less* work: releases are byte-
monotone, so a class whose byte trigger is provably unreachable since
the last check is skipped until enough bytes flow (the skipped checks
are exactly the ones the reference evaluates to False).

Tracing: the zero-cost-disabled path is preserved by construction —
when a :class:`~repro.observe.TraceRecorder` is attached the simulator
falls back to the reference loop (which emits the event stream), so
``engine="batched"`` changes nothing about recorded runs.
"""

from __future__ import annotations

import os
from array import array
from collections import deque
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import TransferError
from ..program import MethodId
from ..transfer.base import TransferController
from ..transfer.interleaved import InterleavedController
from ..transfer.parallel import ParallelController
from ..transfer.strict import StrictSequentialController
from ..transfer.units import TransferUnit
from .metrics import InvocationLatencyReport, MethodInvocationLatency
from .simulation import SimulationResult, StallEvent

if TYPE_CHECKING:  # pragma: no cover
    from ..transfer.schedule import ScheduledStart
    from ..vm import ExecutionTrace
    from .simulation import Simulator

__all__ = ["ENGINES", "numpy_enabled", "compile_trace", "run_batched"]

#: The engine identifiers the ``engine=`` switches accept.
ENGINES = ("reference", "batched")

#: Matches ``repro.transfer.streams._EPSILON``.
_EPSILON = 1e-6

#: Slack (bytes) subtracted from deferred release-trigger gaps so float
#: noise in the recomputed dependency sums can never postpone a check
#: past the boundary where the reference engine would admit the stream.
_RELEASE_SLACK = 1e-3


def numpy_enabled() -> bool:
    """Whether the numpy acceleration path is active.

    Controlled by the ``REPRO_FASTSIM_NUMPY`` feature flag: ``0`` /
    ``off`` / ``false`` / ``no`` force the pure-Python fallback;
    anything else (including unset) uses numpy when importable.
    """
    flag = os.environ.get("REPRO_FASTSIM_NUMPY", "auto").strip().lower()
    if flag in ("0", "off", "false", "no"):
        return False
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy is in the test deps
        return False
    return True


class CompiledTrace:
    """Preallocated per-segment arrays for one (trace, controller) pair.

    Attributes:
        costs: Per-segment execution cost in cycles
            (``instructions × CPI``, the exact float the reference
            computes per segment).
        first_use: Aligned with ``costs``; ``None`` for repeat
            segments, ``(method, required_unit)`` on each method's
            first segment — the only segments that can stall.
        total_cost_basis: ``trace.total_instructions`` (int, exact).
    """

    __slots__ = ("costs", "first_use", "total_cost_basis")

    def __init__(
        self,
        costs: Sequence[float],
        first_use: List[Optional[Tuple[MethodId, TransferUnit]]],
        total_cost_basis: int,
    ) -> None:
        self.costs = costs
        self.first_use = first_use
        self.total_cost_basis = total_cost_basis


def compile_trace(
    trace: "ExecutionTrace",
    controller: TransferController,
    cpi: float,
) -> CompiledTrace:
    """Flatten a trace into the batched cores' preallocated arrays.

    The cost array is built vectorized when numpy is enabled
    (``int64 → float64`` conversion is exact for every realistic
    instruction count, and the elementwise multiply is the same IEEE
    operation the reference performs per segment), else through a
    pure-Python ``array('d')`` fallback with identical values.
    """
    segments = trace.segments
    count = len(segments)
    cpi = float(cpi)
    costs: Sequence[float]
    if numpy_enabled():
        import numpy

        instruction_counts = numpy.fromiter(
            (segment.instructions for segment in segments),
            dtype=numpy.int64,
            count=count,
        )
        # .tolist() yields plain Python floats: scalar indexing in the
        # hot loop is faster on a list than on an ndarray.
        costs = (instruction_counts * cpi).tolist()
    else:
        costs = array(
            "d", (segment.instructions * cpi for segment in segments)
        ).tolist()
    first_use: List[Optional[Tuple[MethodId, TransferUnit]]] = (
        [None] * count
    )
    seen = set()
    required_unit = controller.required_unit
    for index, segment in enumerate(segments):
        method = segment.method
        if method not in seen:
            seen.add(method)
            first_use[index] = (method, required_unit(method))
    return CompiledTrace(costs, first_use, trace.total_instructions)


def _compiled_for(simulator: "Simulator") -> CompiledTrace:
    """Per-controller compile cache (identity-keyed, strong refs).

    A controller is typically driven repeatedly against the same trace
    (benchmark rounds, sweeps over links); the compiled arrays are pure
    functions of ``(trace, controller plans, cpi)`` so they are reused.
    """
    controller = simulator.controller
    cache: List[Tuple[object, float, CompiledTrace]]
    cache = controller.__dict__.setdefault("_fastsim_compiled", [])
    for trace_ref, cpi_ref, compiled in cache:
        if trace_ref is simulator.trace and cpi_ref == simulator.cpi:
            return compiled
    compiled = compile_trace(
        simulator.trace, controller, simulator.cpi
    )
    cache.append((simulator.trace, simulator.cpi, compiled))
    return compiled


def run_batched(simulator: "Simulator") -> SimulationResult:
    """Run one co-simulation on the batched engine.

    Dispatches to the specialized single-stream or processor-sharing
    core when the controller is one of the paper's single-link
    methodologies, and to the generic batched loop otherwise.
    """
    compiled = _compiled_for(simulator)
    controller = simulator.controller
    kind = type(controller)
    if kind is InterleavedController or kind is StrictSequentialController:
        return _run_single_stream(simulator, compiled)
    if kind is ParallelController:
        return _run_parallel(simulator, compiled)
    return _run_generic(simulator, compiled)


def _report(
    entries: List[MethodInvocationLatency],
) -> InvocationLatencyReport:
    report = InvocationLatencyReport(unit="cycles")
    report.entries = entries
    return report


# ---------------------------------------------------------------------------
# Single-stream core: interleaved and strict-sequential transfer
# ---------------------------------------------------------------------------


def _single_stream_units(
    controller: TransferController,
) -> Tuple[TransferUnit, ...]:
    """The one stream's unit sequence, exactly as ``setup`` requests it."""
    if isinstance(controller, InterleavedController):
        units = tuple(controller.sequence)
        if not units:
            raise TransferError("stream 'interleaved' has no units")
        return units
    assert isinstance(controller, StrictSequentialController)
    sequence: List[TransferUnit] = []
    for class_name in controller.program.class_names:
        sequence.extend(controller.plans[class_name].units)
    if not sequence:
        raise TransferError("program has no classes to transfer")
    return tuple(sequence)


def _run_single_stream(
    simulator: "Simulator", compiled: CompiledTrace
) -> SimulationResult:
    """One stream, full bandwidth: interleaved/strict methodologies.

    Inlines the reference engine's bounded-step loop for the
    ``len(active) == 1`` case.  Units complete strictly in sequence
    order, so ``arrived(unit)`` reduces to an index comparison.
    """
    controller = simulator.controller
    link = simulator.link
    cycles_per_byte = link.cycles_per_byte
    bytes_per_cycle = link.bytes_per_cycle

    units = _single_stream_units(controller)
    unit_count = len(units)
    sizes = [float(unit.size) for unit in units]
    int_sizes = [unit.size for unit in units]
    unit_index: Dict[TransferUnit, int] = {
        unit: position for position, unit in enumerate(units)
    }
    arrivals = array("d", bytes(8 * unit_count))

    time = 0.0  # execution clock
    engine_time = 0.0
    remaining = sizes[0]  # Stream.__post_init__: float(units[0].size)
    done = 0  # units completed so far (completion order == sequence)
    total_delivered = 0.0
    stall_cycles = 0.0
    stalls: List[StallEvent] = []
    entries: List[MethodInvocationLatency] = []

    costs = compiled.costs
    first_use = compiled.first_use
    for index in range(len(costs)):
        pair = first_use[index]
        if pair is not None:
            method, unit = pair
            position = unit_index.get(unit)
            if position is None or position >= done:
                # Stall: single-stream controllers have a no-op
                # on_stall (the unit is already en route), so this is
                # run_until_unit — full completion steps to arrival.
                while position is None or position >= done:
                    if done >= unit_count:
                        raise TransferError(
                            "engine idle but unit never arrived: "
                            f"{unit}"
                        )
                    step_to = engine_time + remaining * cycles_per_byte
                    if step_to <= engine_time:
                        total_delivered += remaining
                        remaining = 0.0
                    else:
                        delivered = (
                            step_to - engine_time
                        ) * bytes_per_cycle
                        remaining -= delivered
                        total_delivered += delivered
                        engine_time = step_to
                    while done < unit_count and remaining <= _EPSILON:
                        arrivals[done] = engine_time
                        done += 1
                        if done < unit_count:
                            remaining += sizes[done]
                        else:
                            remaining = 0.0
                arrival = arrivals[position]
                if arrival < time:
                    arrival = time
                stalls.append(
                    StallEvent(
                        method=method,
                        start=time,
                        duration=arrival - time,
                    )
                )
                stall_cycles += arrival - time
                time = arrival
            entries.append(
                MethodInvocationLatency(
                    method=method, latency=time, demand_fetched=False
                )
            )
        time = time + costs[index]
        # engine.run_until(time): bounded steps to the target.
        while engine_time < time:
            step_to = time
            if done < unit_count:
                boundary = engine_time + remaining * cycles_per_byte
                if boundary < step_to:
                    step_to = boundary
                if step_to <= engine_time:
                    # Float resolution swallowed the step: snap the
                    # nearest completion to done (reference `_step`).
                    total_delivered += remaining
                    remaining = 0.0
                else:
                    delta = step_to - engine_time
                    if delta > 0:
                        delivered = delta * bytes_per_cycle
                        remaining -= delivered
                        total_delivered += delivered
                    if step_to > engine_time:
                        engine_time = step_to
                while done < unit_count and remaining <= _EPSILON:
                    arrivals[done] = engine_time
                    done += 1
                    if done < unit_count:
                        remaining += sizes[done]
                    else:
                        remaining = 0.0
            else:
                if step_to > engine_time:
                    engine_time = step_to

    if done < unit_count:
        later = 0
        for position in range(done + 1, unit_count):
            later += int_sizes[position]
        bytes_terminated: float = remaining + later
    else:
        bytes_terminated = 0

    return SimulationResult(
        total_cycles=time,
        execution_cycles=compiled.total_cost_basis * simulator.cpi,
        stall_cycles=stall_cycles,
        invocation_latency=entries[0].latency if entries else 0.0,
        bytes_delivered=total_delivered,
        bytes_terminated=bytes_terminated,
        stalls=stalls,
        controller_name=controller.name,
        latencies=_report(entries),
    )


# ---------------------------------------------------------------------------
# Processor-sharing core: parallel file transfer
# ---------------------------------------------------------------------------


class _FastStream:
    """Flat mirror of :class:`repro.transfer.streams.Stream`."""

    __slots__ = (
        "name",
        "units",
        "sizes",
        "int_sizes",
        "count",
        "index",
        "remaining",
        "started",
    )

    def __init__(
        self, name: str, units: Tuple[TransferUnit, ...]
    ) -> None:
        self.name = name
        self.units = units
        self.sizes = [float(unit.size) for unit in units]
        self.int_sizes = [unit.size for unit in units]
        self.count = len(units)
        self.index = 0
        self.remaining = self.sizes[0]
        self.started = False

    def remaining_bytes(self) -> float:
        if self.index >= self.count:
            return 0.0
        later = 0
        for position in range(self.index + 1, self.count):
            later += self.int_sizes[position]
        return self.remaining + later


def _run_parallel(
    simulator: "Simulator", compiled: CompiledTrace
) -> SimulationResult:
    """Scheduled multi-stream transfer with demand-fetch correction.

    Replicates :class:`~repro.transfer.ParallelController` +
    :class:`~repro.transfer.streams.StreamEngine` with the controller's
    per-run state (pending starts, streams, demand fetches) rebuilt
    locally, so a cached controller can drive any number of runs.
    """
    controller = simulator.controller
    assert isinstance(controller, ParallelController)
    link = simulator.link
    cycles_per_byte = link.cycles_per_byte
    bytes_per_cycle = link.bytes_per_cycle
    max_streams = controller.max_streams
    eager_start = controller.eager_start
    plans = controller.plans

    active: List[_FastStream] = []
    waiting: deque[_FastStream] = deque()
    streams: Dict[str, _FastStream] = {}
    arrivals: Dict[TransferUnit, float] = {}
    delivered_per_stream: Dict[str, float] = {}
    pending: List["ScheduledStart"] = (
        controller.schedule.in_start_order()
    )
    demand_fetches: List[MethodId] = []

    engine_time = 0.0
    total_delivered = 0.0
    # Total-delivered level below which no pending release trigger can
    # possibly fire (set by each full scan; -inf forces a scan).
    scan_floor = float("-inf")

    def request(class_name: str, front: bool) -> None:
        nonlocal pending
        if class_name in streams:
            return
        pending = [
            start
            for start in pending
            if start.class_name != class_name
        ]
        units = plans[class_name].units
        if not units:
            raise TransferError(
                f"stream {class_name!r} has no units"
            )
        stream = _FastStream(class_name, units)
        streams[class_name] = stream
        if max_streams is None or len(active) < max_streams:
            stream.started = True
            active.append(stream)
        elif front:
            waiting.appendleft(stream)
        else:
            waiting.append(stream)

    def release_due() -> None:
        """The controller's ``_release_due``, byte-monotone deferred.

        Evaluates exactly the reference's trigger condition, but only
        when total delivered bytes have crossed ``scan_floor`` — the
        level below which *no* pending trigger can have fired since the
        last full scan (a trigger's dependency byte sum grows no faster
        than the total, and the floor keeps a slack margin well above
        accumulated float rounding).  Every skipped scan is one the
        reference evaluates all-False.
        """
        nonlocal scan_floor
        if total_delivered < scan_floor:
            return
        due: List["ScheduledStart"] = []
        min_need: Optional[float] = None
        get_delivered = delivered_per_stream.get
        for start in pending:
            if eager_start:
                due.append(start)
                continue
            delivered = 0.0
            for dependency in start.dependency_classes:
                delivered += get_delivered(dependency, 0.0)
            if start.start_after_bytes <= delivered + 1e-9:
                due.append(start)
            else:
                need = start.start_after_bytes - delivered - 1e-9
                if min_need is None or need < min_need:
                    min_need = need
        if min_need is None:
            # Nothing deferred: pending will be empty once the due
            # classes are requested below.
            scan_floor = float("inf")
        else:
            scan_floor = total_delivered + min_need - _RELEASE_SLACK
        for start in due:
            request(start.class_name, False)

    def step(step_to: float) -> None:
        """One bounded engine step: deliver, complete, release."""
        nonlocal engine_time, total_delivered
        stream_count = len(active)
        if step_to <= engine_time and stream_count:
            floor = active[0].remaining
            for stream in active:
                if stream.remaining < floor:
                    floor = stream.remaining
            for stream in active:
                if stream.remaining <= floor:
                    total_delivered += stream.remaining
                    delivered_per_stream[stream.name] = (
                        delivered_per_stream.get(stream.name, 0.0)
                        + stream.remaining
                    )
                    stream.remaining = 0.0
        else:
            delta = step_to - engine_time
            if delta > 0 and stream_count:
                share = delta * bytes_per_cycle / stream_count
                for stream in active:
                    stream.remaining -= share
                    total_delivered += share
                    delivered_per_stream[stream.name] = (
                        delivered_per_stream.get(stream.name, 0.0)
                        + share
                    )
            if step_to > engine_time:
                engine_time = step_to
        finished: List[_FastStream] = []
        for stream in active:
            while (
                stream.index < stream.count
                and stream.remaining <= _EPSILON
            ):
                arrivals[stream.units[stream.index]] = engine_time
                stream.index += 1
                if stream.index < stream.count:
                    stream.remaining += stream.sizes[stream.index]
                else:
                    stream.remaining = 0.0
                    finished.append(stream)
        for stream in finished:
            active.remove(stream)
        if finished:
            while waiting and (
                max_streams is None or len(active) < max_streams
            ):
                stream = waiting.popleft()
                stream.started = True
                active.append(stream)
        release_due()

    def next_boundary(limit: float) -> float:
        stream_count = len(active)
        if not stream_count:
            return limit
        floor = active[0].remaining
        for stream in active:
            if stream.remaining < floor:
                floor = stream.remaining
        boundary = engine_time + (
            floor * cycles_per_byte * stream_count
        )
        return boundary if boundary < limit else limit

    # controller.setup(engine): release whatever is due at byte zero.
    release_due()

    time = 0.0
    stall_cycles = 0.0
    stalls: List[StallEvent] = []
    entries: List[MethodInvocationLatency] = []

    costs = compiled.costs
    first_use = compiled.first_use
    for index in range(len(costs)):
        pair = first_use[index]
        if pair is not None:
            method, unit = pair
            if unit not in arrivals:
                # on_stall: demand-fetch correction.
                class_name = method.class_name
                stream = streams.get(class_name)
                if stream is None:
                    demand_fetches.append(method)
                    request(class_name, True)
                elif (
                    not stream.started
                    and stream.index < stream.count
                ):
                    demand_fetches.append(method)
                    if stream in waiting:
                        waiting.remove(stream)
                        waiting.appendleft(stream)
                # run_until_unit: completion-to-completion steps.
                while unit not in arrivals:
                    if not active:
                        raise TransferError(
                            "engine idle but unit never arrived: "
                            f"{unit}"
                        )
                    floor = active[0].remaining
                    for candidate in active:
                        if candidate.remaining < floor:
                            floor = candidate.remaining
                    step(
                        engine_time
                        + floor * cycles_per_byte * len(active)
                    )
                arrival = arrivals[unit]
                if arrival < time:
                    arrival = time
                stalls.append(
                    StallEvent(
                        method=method,
                        start=time,
                        duration=arrival - time,
                    )
                )
                stall_cycles += arrival - time
                time = arrival
            entries.append(
                MethodInvocationLatency(
                    method=method,
                    latency=time,
                    demand_fetched=method in demand_fetches,
                )
            )
        time = time + costs[index]
        while engine_time < time:
            step(next_boundary(time))

    pending_bytes = 0
    for stream in active:
        pending_bytes = pending_bytes + stream.remaining_bytes()
    queued_bytes = 0
    for stream in waiting:
        queued_bytes = queued_bytes + stream.remaining_bytes()

    return SimulationResult(
        total_cycles=time,
        execution_cycles=compiled.total_cost_basis * simulator.cpi,
        stall_cycles=stall_cycles,
        invocation_latency=entries[0].latency if entries else 0.0,
        bytes_delivered=total_delivered,
        bytes_terminated=pending_bytes + queued_bytes,
        stalls=stalls,
        controller_name=controller.name,
        latencies=_report(entries),
    )


# ---------------------------------------------------------------------------
# Generic batched loop: any controller/engine pair (striped, custom)
# ---------------------------------------------------------------------------


def _run_generic(
    simulator: "Simulator", compiled: CompiledTrace
) -> SimulationResult:
    """Batched outer loop over an unmodified controller + engine.

    Used for controllers without a specialized core (multi-link
    striping, subclasses).  The engine still advances through exactly
    the same ``run_until`` boundaries as the reference — only the
    per-segment bookkeeping (required-unit resolution, first-use
    detection, O(n) latency recording) is precompiled away.
    """
    controller = simulator.controller
    engine = controller.build_engine(simulator.link)
    controller.setup(engine)
    wakeup = controller.next_wakeup
    on_advance = controller.on_advance
    run_until = engine.run_until
    arrived = engine.arrived

    time = 0.0
    stall_cycles = 0.0
    stalls: List[StallEvent] = []
    entries: List[MethodInvocationLatency] = []

    costs = compiled.costs
    first_use = compiled.first_use
    for index in range(len(costs)):
        pair = first_use[index]
        if pair is not None:
            method, unit = pair
            if not arrived(unit):
                controller.on_stall(engine, method)
                arrival = engine.run_until_unit(
                    unit, wakeup=wakeup, on_advance=on_advance
                )
                if arrival < time:
                    arrival = time
                stalls.append(
                    StallEvent(
                        method=method,
                        start=time,
                        duration=arrival - time,
                    )
                )
                stall_cycles += arrival - time
                time = arrival
            entries.append(
                MethodInvocationLatency(
                    method=method,
                    latency=time,
                    demand_fetched=method
                    in getattr(controller, "demand_fetches", ()),
                )
            )
        time = time + costs[index]
        run_until(time, wakeup=wakeup, on_advance=on_advance)

    return SimulationResult(
        total_cycles=time,
        execution_cycles=compiled.total_cost_basis * simulator.cpi,
        stall_cycles=stall_cycles,
        invocation_latency=entries[0].latency if entries else 0.0,
        bytes_delivered=engine.total_delivered,
        bytes_terminated=engine.remaining_bytes,
        stalls=stalls,
        controller_name=controller.name,
        latencies=_report(entries),
    )
