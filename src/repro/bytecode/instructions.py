"""Instruction objects: a decoded view of one bytecode instruction."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

from ..errors import BytecodeError
from .opcodes import OPCODE_TABLE, Opcode, OperandKind

__all__ = ["Instruction", "SysCall", "instruction_size", "code_size"]


class SysCall:
    """Codes for the ``SYS`` intrinsic instruction.

    ``SYS`` models calls into the runtime system whose implementation is
    not visible to the instrumentation tool — the paper notes that e.g.
    window-system calls inflate per-program CPI because their cycles are
    attributed to a single bytecode.
    """

    PRINT = 0  # pop one value, append to VM output
    TIME = 1  # push the VM's virtual instruction counter
    RAND = 2  # push next value of the VM's seeded PRNG
    HALT = 3  # stop the program immediately
    BLACKHOLE = 4  # pop one value, discard (opaque sink)

    ALL = (PRINT, TIME, RAND, HALT, BLACKHOLE)

    #: (pops, pushes) per code, used by the verifier's stack model.
    STACK_EFFECT = {
        PRINT: (1, 0),
        TIME: (0, 1),
        RAND: (0, 1),
        HALT: (0, 0),
        BLACKHOLE: (1, 0),
    }


_OPERAND_RANGES = {
    OperandKind.U1: (0, 0xFF),
    OperandKind.U2: (0, 0xFFFF),
    OperandKind.S2: (-0x8000, 0x7FFF),
    OperandKind.I4: (-0x80000000, 0x7FFFFFFF),
}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction: an opcode plus its operand values.

    Instances are immutable and validated on construction, so any
    ``Instruction`` that exists can be encoded.
    """

    opcode: Opcode
    operands: Tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        info = OPCODE_TABLE.get(self.opcode)
        if info is None:
            raise BytecodeError(f"unknown opcode: {self.opcode!r}")
        if len(self.operands) != len(info.operands):
            raise BytecodeError(
                f"{info.mnemonic} expects {len(info.operands)} operand(s), "
                f"got {len(self.operands)}"
            )
        for value, kind in zip(self.operands, info.operands):
            low, high = _OPERAND_RANGES[kind]
            if not low <= value <= high:
                raise BytecodeError(
                    f"{info.mnemonic} operand {value} out of range for "
                    f"{kind.value} [{low}, {high}]"
                )

    @property
    def info(self):
        """Static :class:`~repro.bytecode.opcodes.OpcodeInfo` metadata."""
        return OPCODE_TABLE[self.opcode]

    @property
    def size(self) -> int:
        """Encoded size in bytes."""
        return self.info.size

    @property
    def mnemonic(self) -> str:
        return self.info.mnemonic

    @property
    def operand(self) -> int:
        """The sole operand, for single-operand instructions."""
        if len(self.operands) != 1:
            raise BytecodeError(
                f"{self.mnemonic} has {len(self.operands)} operands"
            )
        return self.operands[0]

    def branch_target(self, offset: int) -> int:
        """Absolute byte offset of the branch target.

        Args:
            offset: Byte offset of this instruction within its method.
        """
        if not self.info.is_branch:
            raise BytecodeError(f"{self.mnemonic} is not a branch")
        return offset + self.operand

    def __str__(self) -> str:
        if not self.operands:
            return self.mnemonic
        rendered = ", ".join(str(value) for value in self.operands)
        return f"{self.mnemonic} {rendered}"


def instruction_size(opcode: Opcode) -> int:
    """Encoded size in bytes of any instruction with ``opcode``."""
    return OPCODE_TABLE[opcode].size


def code_size(instructions: Iterable[Instruction]) -> int:
    """Total encoded size in bytes of an instruction sequence."""
    return sum(instruction.size for instruction in instructions)


def offsets_of(instructions: List[Instruction]) -> List[int]:
    """Byte offset of each instruction in a method's code array."""
    offsets = []
    position = 0
    for instruction in instructions:
        offsets.append(position)
        position += instruction.size
    return offsets
