"""The repro stack-machine bytecode ISA.

Public surface: opcodes and their metadata, immutable
:class:`~repro.bytecode.instructions.Instruction` objects, binary
encode/decode, a textual assembler with labels, a programmatic
:class:`~repro.bytecode.assembler.CodeBuilder`, and a disassembler.
"""

from .assembler import CodeBuilder, Label, assemble
from .disassembler import disassemble
from .encoding import decode, decode_one, encode
from .instructions import (
    Instruction,
    SysCall,
    code_size,
    instruction_size,
    offsets_of,
)
from .opcodes import (
    COMPARE_BRANCHES,
    CONDITIONAL_BRANCHES,
    MNEMONICS,
    OPCODE_TABLE,
    Opcode,
    OpcodeInfo,
    OperandKind,
    operand_size,
)

__all__ = [
    "CodeBuilder",
    "Label",
    "assemble",
    "disassemble",
    "decode",
    "decode_one",
    "encode",
    "Instruction",
    "SysCall",
    "code_size",
    "instruction_size",
    "offsets_of",
    "COMPARE_BRANCHES",
    "CONDITIONAL_BRANCHES",
    "MNEMONICS",
    "OPCODE_TABLE",
    "Opcode",
    "OpcodeInfo",
    "OperandKind",
    "operand_size",
]
