"""Binary encoding and decoding of instruction streams.

The encoding is byte-exact: ``decode(encode(instructions))`` round-trips,
and the encoded length of each instruction equals ``Instruction.size``.
This matters because every transfer experiment in the paper is a function
of byte counts.
"""

from __future__ import annotations

import struct
from typing import List, Sequence

from ..errors import BytecodeError
from .instructions import Instruction
from .opcodes import OPCODE_TABLE, Opcode, OperandKind

__all__ = ["encode", "decode", "decode_one"]

_PACKERS = {
    OperandKind.U1: struct.Struct(">B"),
    OperandKind.U2: struct.Struct(">H"),
    OperandKind.S2: struct.Struct(">h"),
    OperandKind.I4: struct.Struct(">i"),
}

_VALID_OPCODES = {int(opcode) for opcode in Opcode}


def encode(instructions: Sequence[Instruction]) -> bytes:
    """Encode an instruction sequence to its binary form."""
    parts = bytearray()
    for instruction in instructions:
        parts.append(int(instruction.opcode))
        for value, kind in zip(
            instruction.operands, instruction.info.operands
        ):
            parts += _PACKERS[kind].pack(value)
    return bytes(parts)


def decode_one(code: bytes, offset: int) -> Instruction:
    """Decode the single instruction starting at ``offset``.

    Raises:
        BytecodeError: On an unknown opcode byte or a truncated stream.
    """
    if offset >= len(code):
        raise BytecodeError(f"offset {offset} beyond code end {len(code)}")
    opcode_byte = code[offset]
    if opcode_byte not in _VALID_OPCODES:
        raise BytecodeError(
            f"unknown opcode byte 0x{opcode_byte:02x} at offset {offset}"
        )
    opcode = Opcode(opcode_byte)
    info = OPCODE_TABLE[opcode]
    cursor = offset + 1
    operands = []
    for kind in info.operands:
        packer = _PACKERS[kind]
        end = cursor + packer.size
        if end > len(code):
            raise BytecodeError(
                f"truncated {info.mnemonic} operand at offset {cursor}"
            )
        operands.append(packer.unpack_from(code, cursor)[0])
        cursor = end
    return Instruction(opcode, tuple(operands))


def decode(code: bytes) -> List[Instruction]:
    """Decode a full code array into a list of instructions.

    The stream must end exactly on an instruction boundary.
    """
    instructions = []
    offset = 0
    while offset < len(code):
        instruction = decode_one(code, offset)
        instructions.append(instruction)
        offset += instruction.size
    return instructions
