"""Opcode definitions for the repro stack-machine ISA.

The instruction set is deliberately JVM-flavoured: a small operand stack
machine with local variable slots, a per-class constant pool addressed by
16-bit indices, relative 16-bit branch offsets, and call/return through
``MethodRef`` constant pool entries.  Only the properties the paper's
experiments depend on are modelled: instruction *sizes* (for byte layout
and transfer), *control flow* (for CFG construction and the static
first-use estimator), and *dynamic counts* (for the CPI execution model).

Operand kinds
-------------
``u1``
    Unsigned 8-bit immediate (local variable slot, intrinsic code).
``u2``
    Unsigned 16-bit constant pool index.
``s2``
    Signed 16-bit branch offset, relative to the *start* of the branch
    instruction (as in the JVM).
``i4``
    Signed 32-bit integer immediate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "Opcode",
    "OperandKind",
    "OpcodeInfo",
    "OPCODE_TABLE",
    "MNEMONICS",
    "CONDITIONAL_BRANCHES",
    "COMPARE_BRANCHES",
    "operand_size",
]


class OperandKind(enum.Enum):
    """Kind (and therefore encoded width) of one instruction operand."""

    U1 = "u1"
    U2 = "u2"
    S2 = "s2"
    I4 = "i4"


_WIDTHS = {
    OperandKind.U1: 1,
    OperandKind.U2: 2,
    OperandKind.S2: 2,
    OperandKind.I4: 4,
}


def operand_size(kind: OperandKind) -> int:
    """Return the encoded width in bytes of an operand of ``kind``."""
    return _WIDTHS[kind]


class Opcode(enum.IntEnum):
    """All opcodes of the ISA.  Values are the encoded opcode bytes."""

    NOP = 0x00
    ICONST = 0x01
    LDC = 0x02
    LOAD = 0x03
    STORE = 0x04
    GETSTATIC = 0x05
    PUTSTATIC = 0x06

    ADD = 0x10
    SUB = 0x11
    MUL = 0x12
    DIV = 0x13
    MOD = 0x14
    NEG = 0x15
    AND = 0x16
    OR = 0x17
    XOR = 0x18
    SHL = 0x19
    SHR = 0x1A

    DUP = 0x20
    POP = 0x21
    SWAP = 0x22

    IFEQ = 0x30
    IFNE = 0x31
    IFLT = 0x32
    IFGE = 0x33
    IFGT = 0x34
    IFLE = 0x35
    IF_ICMPEQ = 0x36
    IF_ICMPNE = 0x37
    IF_ICMPLT = 0x38
    IF_ICMPGE = 0x39
    IF_ICMPGT = 0x3A
    IF_ICMPLE = 0x3B
    GOTO = 0x3C

    CALL = 0x40
    RETURN = 0x41
    IRETURN = 0x42

    NEWARRAY = 0x50
    ALOAD = 0x51
    ASTORE = 0x52
    ARRAYLEN = 0x53

    SYS = 0x60


@dataclass(frozen=True)
class OpcodeInfo:
    """Static metadata describing one opcode.

    Attributes:
        mnemonic: Lower-case assembler mnemonic.
        operands: Operand kinds, in encoding order.
        pops: Operands popped from the stack (``-1`` = data dependent,
            e.g. ``CALL`` pops the callee's arity).
        pushes: Values pushed onto the stack (``-1`` = data dependent).
        is_branch: True for all control transfers with an ``s2`` target.
        is_conditional: True for branches that may fall through.
        is_call: True for ``CALL``.
        is_return: True for ``RETURN``/``IRETURN``.
    """

    mnemonic: str
    operands: Tuple[OperandKind, ...] = ()
    pops: int = 0
    pushes: int = 0
    is_branch: bool = False
    is_conditional: bool = False
    is_call: bool = False
    is_return: bool = False

    @property
    def size(self) -> int:
        """Encoded size in bytes: one opcode byte plus the operands."""
        return 1 + sum(operand_size(kind) for kind in self.operands)


def _cond(mnemonic: str, pops: int) -> OpcodeInfo:
    return OpcodeInfo(
        mnemonic,
        (OperandKind.S2,),
        pops=pops,
        is_branch=True,
        is_conditional=True,
    )


OPCODE_TABLE: Dict[Opcode, OpcodeInfo] = {
    Opcode.NOP: OpcodeInfo("nop"),
    Opcode.ICONST: OpcodeInfo("iconst", (OperandKind.I4,), pushes=1),
    Opcode.LDC: OpcodeInfo("ldc", (OperandKind.U2,), pushes=1),
    Opcode.LOAD: OpcodeInfo("load", (OperandKind.U1,), pushes=1),
    Opcode.STORE: OpcodeInfo("store", (OperandKind.U1,), pops=1),
    Opcode.GETSTATIC: OpcodeInfo("getstatic", (OperandKind.U2,), pushes=1),
    Opcode.PUTSTATIC: OpcodeInfo("putstatic", (OperandKind.U2,), pops=1),
    Opcode.ADD: OpcodeInfo("add", pops=2, pushes=1),
    Opcode.SUB: OpcodeInfo("sub", pops=2, pushes=1),
    Opcode.MUL: OpcodeInfo("mul", pops=2, pushes=1),
    Opcode.DIV: OpcodeInfo("div", pops=2, pushes=1),
    Opcode.MOD: OpcodeInfo("mod", pops=2, pushes=1),
    Opcode.NEG: OpcodeInfo("neg", pops=1, pushes=1),
    Opcode.AND: OpcodeInfo("and", pops=2, pushes=1),
    Opcode.OR: OpcodeInfo("or", pops=2, pushes=1),
    Opcode.XOR: OpcodeInfo("xor", pops=2, pushes=1),
    Opcode.SHL: OpcodeInfo("shl", pops=2, pushes=1),
    Opcode.SHR: OpcodeInfo("shr", pops=2, pushes=1),
    Opcode.DUP: OpcodeInfo("dup", pops=1, pushes=2),
    Opcode.POP: OpcodeInfo("pop", pops=1),
    Opcode.SWAP: OpcodeInfo("swap", pops=2, pushes=2),
    Opcode.IFEQ: _cond("ifeq", 1),
    Opcode.IFNE: _cond("ifne", 1),
    Opcode.IFLT: _cond("iflt", 1),
    Opcode.IFGE: _cond("ifge", 1),
    Opcode.IFGT: _cond("ifgt", 1),
    Opcode.IFLE: _cond("ifle", 1),
    Opcode.IF_ICMPEQ: _cond("if_icmpeq", 2),
    Opcode.IF_ICMPNE: _cond("if_icmpne", 2),
    Opcode.IF_ICMPLT: _cond("if_icmplt", 2),
    Opcode.IF_ICMPGE: _cond("if_icmpge", 2),
    Opcode.IF_ICMPGT: _cond("if_icmpgt", 2),
    Opcode.IF_ICMPLE: _cond("if_icmple", 2),
    Opcode.GOTO: OpcodeInfo("goto", (OperandKind.S2,), is_branch=True),
    Opcode.CALL: OpcodeInfo(
        "call", (OperandKind.U2,), pops=-1, pushes=-1, is_call=True
    ),
    Opcode.RETURN: OpcodeInfo("return", is_return=True),
    Opcode.IRETURN: OpcodeInfo("ireturn", pops=1, is_return=True),
    Opcode.NEWARRAY: OpcodeInfo("newarray", pops=1, pushes=1),
    Opcode.ALOAD: OpcodeInfo("aload", pops=2, pushes=1),
    Opcode.ASTORE: OpcodeInfo("astore", pops=3),
    Opcode.ARRAYLEN: OpcodeInfo("arraylen", pops=1, pushes=1),
    Opcode.SYS: OpcodeInfo("sys", (OperandKind.U1,), pops=-1, pushes=-1),
}

MNEMONICS: Dict[str, Opcode] = {
    info.mnemonic: opcode for opcode, info in OPCODE_TABLE.items()
}

CONDITIONAL_BRANCHES = frozenset(
    opcode for opcode, info in OPCODE_TABLE.items() if info.is_conditional
)

#: Conditional branches that compare two stack operands (``if_icmp*``).
COMPARE_BRANCHES = frozenset(
    opcode
    for opcode in CONDITIONAL_BRANCHES
    if OPCODE_TABLE[opcode].pops == 2
)
