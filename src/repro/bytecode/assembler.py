"""Assembling bytecode from text or from a programmatic builder.

Two front ends produce instruction lists:

* :func:`assemble` parses a small textual assembly language with labels,
  used by tests and by hand-written example methods.
* :class:`CodeBuilder` is the programmatic interface used by the
  mini-language compiler (:mod:`repro.lang`) and the synthetic workload
  generator; it supports forward references through :class:`Label`.

Branch operands are *relative to the start of the branch instruction*, as
in the JVM; both front ends compute them from label positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import AssemblyError
from .instructions import Instruction
from .opcodes import MNEMONICS, OPCODE_TABLE, Opcode

__all__ = ["assemble", "CodeBuilder", "Label"]


@dataclass
class Label:
    """A (possibly forward) branch target inside a :class:`CodeBuilder`.

    Attributes:
        name: Optional diagnostic name.
        offset: Byte offset within the code, set when the label is bound.
    """

    name: str = ""
    offset: Optional[int] = None

    @property
    def bound(self) -> bool:
        return self.offset is not None


class CodeBuilder:
    """Incrementally build a method body with automatic label resolution.

    Example:
        >>> builder = CodeBuilder()
        >>> loop = builder.new_label("loop")
        >>> builder.bind(loop)
        >>> builder.emit(Opcode.LOAD, 0)
        >>> builder.branch(Opcode.IFNE, loop)
        >>> builder.emit(Opcode.RETURN)
        >>> instructions = builder.build()
    """

    def __init__(self) -> None:
        self._instructions: List[Instruction] = []
        self._offsets: List[int] = []
        self._position = 0
        # Index of instructions whose sole operand is an unresolved label.
        self._fixups: List[Tuple[int, Label]] = []
        self._labels: List[Label] = []

    @property
    def position(self) -> int:
        """Current byte offset (where the next instruction will start)."""
        return self._position

    def new_label(self, name: str = "") -> Label:
        """Create a fresh, unbound label."""
        label = Label(name=name)
        self._labels.append(label)
        return label

    def bind(self, label: Label) -> None:
        """Bind ``label`` to the current position."""
        if label.bound:
            raise AssemblyError(f"label {label.name!r} bound twice")
        label.offset = self._position

    def emit(self, opcode: Opcode, *operands: int) -> None:
        """Append one instruction with literal operands."""
        instruction = Instruction(opcode, tuple(operands))
        self._append(instruction)

    def branch(self, opcode: Opcode, target: Label) -> None:
        """Append a branch to ``target``, resolving it at :meth:`build`."""
        if not OPCODE_TABLE[opcode].is_branch:
            raise AssemblyError(f"{opcode.name} is not a branch opcode")
        # Placeholder offset 0; patched when the label is resolved.
        instruction = Instruction(opcode, (0,))
        self._fixups.append((len(self._instructions), target))
        self._append(instruction)

    def _append(self, instruction: Instruction) -> None:
        self._instructions.append(instruction)
        self._offsets.append(self._position)
        self._position += instruction.size

    def build(self) -> List[Instruction]:
        """Resolve all branches and return the instruction list."""
        instructions = list(self._instructions)
        for index, label in self._fixups:
            if not label.bound:
                raise AssemblyError(f"unbound label {label.name!r}")
            source = self._offsets[index]
            relative = label.offset - source
            placeholder = instructions[index]
            instructions[index] = Instruction(
                placeholder.opcode, (relative,)
            )
        return instructions


def _parse_operand(token: str) -> int:
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblyError(f"bad operand {token!r}") from exc


@dataclass
class _PendingLine:
    mnemonic: str
    tokens: List[str]
    lineno: int
    offset: int = 0


def assemble(source: str) -> List[Instruction]:
    """Assemble textual bytecode into an instruction list.

    Syntax: one instruction per line, ``;`` starts a comment, a trailing
    ``:`` defines a label, and branch operands may be label names.

    Raises:
        AssemblyError: On unknown mnemonics, bad operands, wrong operand
            counts, duplicate labels, or undefined label references.
    """
    labels: Dict[str, int] = {}
    pending: List[_PendingLine] = []
    position = 0

    for lineno, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        while line.split()[0].endswith(":"):
            name = line.split()[0][:-1]
            if not name:
                raise AssemblyError(f"line {lineno}: empty label")
            if name in labels:
                raise AssemblyError(
                    f"line {lineno}: duplicate label {name!r}"
                )
            labels[name] = position
            line = line.split(None, 1)[1] if " " in line else ""
            line = line.strip()
            if not line:
                break
        if not line:
            continue
        tokens = line.replace(",", " ").split()
        mnemonic = tokens[0].lower()
        opcode = MNEMONICS.get(mnemonic)
        if opcode is None:
            raise AssemblyError(
                f"line {lineno}: unknown mnemonic {mnemonic!r}"
            )
        entry = _PendingLine(mnemonic, tokens[1:], lineno, offset=position)
        pending.append(entry)
        position += OPCODE_TABLE[opcode].size

    instructions: List[Instruction] = []
    for entry in pending:
        opcode = MNEMONICS[entry.mnemonic]
        info = OPCODE_TABLE[opcode]
        if len(entry.tokens) != len(info.operands):
            raise AssemblyError(
                f"line {entry.lineno}: {entry.mnemonic} expects "
                f"{len(info.operands)} operand(s), got {len(entry.tokens)}"
            )
        operands = []
        for token in entry.tokens:
            if info.is_branch and token in labels:
                operands.append(labels[token] - entry.offset)
            elif info.is_branch and not _looks_numeric(token):
                raise AssemblyError(
                    f"line {entry.lineno}: undefined label {token!r}"
                )
            else:
                operands.append(_parse_operand(token))
        try:
            instructions.append(Instruction(opcode, tuple(operands)))
        except Exception as exc:
            raise AssemblyError(f"line {entry.lineno}: {exc}") from exc
    return instructions


def _looks_numeric(token: str) -> bool:
    try:
        int(token, 0)
    except ValueError:
        return False
    return True
