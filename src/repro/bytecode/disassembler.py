"""Disassembling bytecode back to readable text.

The output round-trips through :func:`repro.bytecode.assembler.assemble`:
branches are rendered with synthesized labels (``L<offset>``) rather than
raw relative offsets.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from .encoding import decode
from .instructions import Instruction, offsets_of

__all__ = ["disassemble"]


def disassemble(code: Union[bytes, Sequence[Instruction]]) -> str:
    """Render a code array (bytes or instructions) as assembly text."""
    if isinstance(code, (bytes, bytearray)):
        instructions = decode(bytes(code))
    else:
        instructions = list(code)
    offsets = offsets_of(instructions)

    targets = set()
    for instruction, offset in zip(instructions, offsets):
        if instruction.info.is_branch:
            targets.add(instruction.branch_target(offset))

    lines: List[str] = []
    for instruction, offset in zip(instructions, offsets):
        if offset in targets:
            lines.append(f"L{offset}:")
        lines.append("    " + _render(instruction, offset))
    end = offsets[-1] + instructions[-1].size if instructions else 0
    if end in targets:
        lines.append(f"L{end}:")
    return "\n".join(lines) + ("\n" if lines else "")


def _render(instruction: Instruction, offset: int) -> str:
    if instruction.info.is_branch:
        return f"{instruction.mnemonic} L{instruction.branch_target(offset)}"
    return str(instruction)
