"""The event recorder every traced subsystem writes into.

:class:`TraceRecorder` is deliberately boring: an append-only list of
:class:`~repro.observe.events.TraceEvent` behind a single ``enabled``
check, with one typed helper per taxonomy name so call sites cannot
misspell a schema key.  A disabled recorder's helpers return before
touching any argument, so tracing hooks can stay threaded through hot
paths permanently (the BIT philosophy: instrumentation is part of the
substrate, cost is opt-in).

This is a different animal from :class:`repro.vm.TraceRecorder`, which
records *execution traces* (instruction segments) for replay; this one
records *observability events* about a run already happening.
"""

from __future__ import annotations

from typing import Any, List, Optional

from .events import (
    ANALYSIS_FINDING,
    CACHE_LOOKUP,
    CONNECTION_REJECTED,
    DEGRADED_TO_STRICT,
    DEMAND_FETCH,
    FAULT_INJECTED,
    FRAME_SENT,
    HEDGE_FIRED,
    HEDGE_WON,
    LINK_BUSY,
    LINK_OUTAGE,
    LINK_RESTORED,
    METHOD_FIRST_INVOKE,
    RECONNECT,
    SCHEDULE_DECISION,
    STALL_BEGIN,
    STALL_END,
    STRIPE_REBALANCE,
    UNIT_ARRIVED,
    UNIT_ISSUED,
    UNIT_RETRY,
    TraceEvent,
    validate_event,
)

__all__ = ["TraceRecorder"]


class TraceRecorder:
    """Collects typed span/instant events on one clock.

    Args:
        clock: Unit of every timestamp this recorder holds —
            ``"cycles"`` (simulator), ``"seconds"`` (netserve), or
            ``"instructions"`` (bare VM runs).
        enabled: When False, every helper is a no-op returning
            immediately; flip :attr:`enabled` at any time.
    """

    def __init__(self, clock: str = "cycles", enabled: bool = True) -> None:
        self.clock = clock
        self.enabled = enabled
        self.events: List[TraceEvent] = []

    def __len__(self) -> int:
        return len(self.events)

    def named(self, name: str) -> List[TraceEvent]:
        """Events with one taxonomy name, in emission order."""
        return [event for event in self.events if event.name == name]

    def sorted_events(self) -> List[TraceEvent]:
        """Events in timestamp order (emission order breaks ties)."""
        return sorted(self.events, key=lambda event: event.ts)

    # -- raw emission ------------------------------------------------------

    def emit(
        self,
        name: str,
        ts: float,
        phase: str = "i",
        dur: float = 0.0,
        **args: Any,
    ) -> None:
        """Append one validated event (no-op while disabled).

        Raises:
            ValueError: If ``name`` is not in the taxonomy, a required
                schema arg is missing, or ``phase`` is unsupported.
        """
        if not self.enabled:
            return
        event = TraceEvent(
            name=name, ts=float(ts), args=args, phase=phase,
            dur=float(dur),
        )
        validate_event(event)
        self.events.append(event)

    # -- typed helpers (one per taxonomy name) -----------------------------

    def unit_arrived(
        self,
        ts: float,
        class_name: str,
        kind: str,
        size: int,
        method: Optional[str] = None,
        **extra: Any,
    ) -> None:
        if not self.enabled:
            return
        self.emit(
            UNIT_ARRIVED, ts, class_name=class_name, kind=kind,
            size=size, method=method, **extra,
        )

    def method_first_invoke(
        self,
        ts: float,
        method: str,
        latency: float,
        demand_fetched: bool = False,
        **extra: Any,
    ) -> None:
        if not self.enabled:
            return
        self.emit(
            METHOD_FIRST_INVOKE, ts, method=method, latency=latency,
            demand_fetched=demand_fetched, **extra,
        )

    def stall_begin(self, ts: float, method: str, **extra: Any) -> None:
        if not self.enabled:
            return
        self.emit(STALL_BEGIN, ts, method=method, **extra)

    def stall_end(
        self, ts: float, method: str, duration: float, **extra: Any
    ) -> None:
        """Emit the stall's end instant plus its span in one call."""
        if not self.enabled:
            return
        self.emit(STALL_END, ts, method=method, duration=duration, **extra)
        self.emit(
            STALL_END,
            ts - duration,
            phase="X",
            dur=duration,
            method=method,
            duration=duration,
        )

    def demand_fetch(self, ts: float, method: str, **extra: Any) -> None:
        if not self.enabled:
            return
        self.emit(DEMAND_FETCH, ts, method=method, **extra)

    def frame_sent(
        self, ts: float, kind: str, size: int, **extra: Any
    ) -> None:
        if not self.enabled:
            return
        self.emit(FRAME_SENT, ts, kind=kind, size=size, **extra)

    def schedule_decision(
        self, ts: float, action: str, target: str, **extra: Any
    ) -> None:
        if not self.enabled:
            return
        self.emit(
            SCHEDULE_DECISION, ts, action=action, target=target, **extra
        )

    def fault_injected(self, ts: float, fault: str, **extra: Any) -> None:
        if not self.enabled:
            return
        self.emit(FAULT_INJECTED, ts, fault=fault, **extra)

    def reconnect(self, ts: float, attempt: int, **extra: Any) -> None:
        if not self.enabled:
            return
        self.emit(RECONNECT, ts, attempt=attempt, **extra)

    def unit_retry(self, ts: float, class_name: str, **extra: Any) -> None:
        if not self.enabled:
            return
        self.emit(UNIT_RETRY, ts, class_name=class_name, **extra)

    def degraded_to_strict(
        self, ts: float, reason: str, **extra: Any
    ) -> None:
        if not self.enabled:
            return
        self.emit(DEGRADED_TO_STRICT, ts, reason=reason, **extra)

    def analysis_finding(
        self, ts: float, rule: str, severity: str, target: str, **extra: Any
    ) -> None:
        if not self.enabled:
            return
        self.emit(
            ANALYSIS_FINDING,
            ts,
            rule=rule,
            severity=severity,
            target=target,
            **extra,
        )

    def cache_lookup(self, ts: float, hit: bool, **extra: Any) -> None:
        if not self.enabled:
            return
        self.emit(CACHE_LOOKUP, ts, hit=hit, **extra)

    def connection_rejected(
        self, ts: float, reason: str, **extra: Any
    ) -> None:
        if not self.enabled:
            return
        self.emit(CONNECTION_REJECTED, ts, reason=reason, **extra)

    def unit_issued(
        self, ts: float, class_name: str, link: str, **extra: Any
    ) -> None:
        if not self.enabled:
            return
        self.emit(
            UNIT_ISSUED, ts, class_name=class_name, link=link, **extra
        )

    def link_busy(
        self, ts: float, link: str, duration: float, **extra: Any
    ) -> None:
        """One link-occupancy span (phase ``"X"``), issue → landing."""
        if not self.enabled:
            return
        self.emit(
            LINK_BUSY, ts, phase="X", dur=duration, link=link, **extra
        )

    def stripe_rebalance(
        self, ts: float, reason: str, **extra: Any
    ) -> None:
        if not self.enabled:
            return
        self.emit(STRIPE_REBALANCE, ts, reason=reason, **extra)

    def link_outage(
        self, ts: float, link: str, reason: str, **extra: Any
    ) -> None:
        if not self.enabled:
            return
        self.emit(LINK_OUTAGE, ts, link=link, reason=reason, **extra)

    def link_restored(self, ts: float, link: str, **extra: Any) -> None:
        if not self.enabled:
            return
        self.emit(LINK_RESTORED, ts, link=link, **extra)

    def hedge_fired(
        self, ts: float, class_name: str, link: str, **extra: Any
    ) -> None:
        if not self.enabled:
            return
        self.emit(
            HEDGE_FIRED, ts, class_name=class_name, link=link, **extra
        )

    def hedge_won(
        self,
        ts: float,
        class_name: str,
        link: str,
        role: str,
        **extra: Any,
    ) -> None:
        """A hedged unit arrived; ``role`` is ``"primary"`` or
        ``"hedge"`` depending on which request delivered first."""
        if not self.enabled:
            return
        self.emit(
            HEDGE_WON,
            ts,
            class_name=class_name,
            link=link,
            role=role,
            **extra,
        )
