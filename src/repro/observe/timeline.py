"""ASCII timeline renderer: the paper's per-method tables as a picture.

One row per method, time running left to right across a fixed-width
ruler.  Each row shows the gap between *when the method's unit arrived*
and *when it was first invoked* — the overlap (or stall) the paper's
Tables 4–7 quantify::

    A.main    |U=X###.............................|
    A.helper  |.....U=====X#######................|
    B.run     |............U!X####################|

    U unit arrived   X first invoke   = arrived, not yet invoked
    ! demand fetch   # invoked earlier (method live)   . idle

A trailing ``stalls`` row marks spans where execution sat waiting on
transfer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .events import (
    DEMAND_FETCH,
    METHOD_FIRST_INVOKE,
    STALL_END,
    UNIT_ARRIVED,
)
from .recorder import TraceRecorder

__all__ = ["render_timeline"]


def _method_label(class_name: Optional[str], method: Optional[str]) -> str:
    if class_name and method:
        return f"{class_name}.{method}"
    return method or class_name or "?"


def _column(ts: float, span: float, width: int) -> int:
    if span <= 0:
        return 0
    return min(width - 1, max(0, int(ts / span * width)))


def render_timeline(
    recorder: TraceRecorder, width: int = 60
) -> str:
    """Render the recorder's events into a fixed-width ASCII timeline."""
    if width < 10:
        raise ValueError(f"timeline width must be >= 10, got {width}")
    events = recorder.sorted_events()
    if not events:
        return "(no events)"
    span = max(event.end for event in events) or 1.0

    # Per-method facts: unit arrival, first invoke, demand fetch.
    arrivals: Dict[str, float] = {}
    invokes: Dict[str, Tuple[float, bool]] = {}
    order: List[str] = []
    for event in events:
        if event.name == UNIT_ARRIVED and event.args.get("method"):
            label = _method_label(
                event.args.get("class_name"), event.args.get("method")
            )
            arrivals.setdefault(label, event.ts)
            if label not in order:
                order.append(label)
        elif event.name == METHOD_FIRST_INVOKE:
            label = str(event.args["method"])
            invokes.setdefault(
                label,
                (event.ts, bool(event.args.get("demand_fetched"))),
            )
            if label not in order:
                order.append(label)

    label_width = max((len(label) for label in order), default=6)
    lines: List[str] = [
        f"timeline: {len(events)} events over {span:g} "
        f"{recorder.clock} ({width} cols)"
    ]
    for label in order:
        row = ["."] * width
        arrival = arrivals.get(label)
        invoke = invokes.get(label)
        if arrival is not None:
            start = _column(arrival, span, width)
            end = (
                _column(invoke[0], span, width)
                if invoke is not None
                else width
            )
            for col in range(start, end):
                row[col] = "="
            row[start] = "U"
        if invoke is not None:
            invoke_col = _column(invoke[0], span, width)
            for col in range(invoke_col, width):
                row[col] = "#"
            row[invoke_col] = "!" if invoke[1] else "X"
        lines.append(f"{label:<{label_width}} |{''.join(row)}|")

    stall_row = ["."] * width
    for event in events:
        if event.name == STALL_END and event.phase == "X":
            begin = _column(event.ts, span, width)
            end = _column(event.end, span, width)
            for col in range(begin, end + 1):
                stall_row[col] = "s"
    demand_count = 0
    for event in events:
        if event.name == DEMAND_FETCH:
            stall_row[_column(event.ts, span, width)] = "!"
            demand_count += 1
    lines.append(f"{'stalls':<{label_width}} |{''.join(stall_row)}|")
    lines.append(
        "legend: U unit arrived  X first invoke  ! demand fetch  "
        "= arrived/waiting  # executing  s stalled"
    )
    if demand_count:
        lines.append(f"demand fetches: {demand_count}")
    return "\n".join(lines)
