"""Exporters: JSON-lines and Chrome ``chrome://tracing`` trace events.

Both formats round-trip losslessly through :class:`TraceEvent`:
``events → to_jsonl → events_from_jsonl → events`` is the identity, and
``to_chrome_trace`` emits the trace-event JSON object format that
``chrome://tracing`` and Perfetto load directly (one ``pid`` per run,
one ``tid`` per category lane, timestamps in microseconds).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from .events import EVENT_CATEGORIES, TraceEvent
from .recorder import TraceRecorder

__all__ = [
    "to_jsonl",
    "events_from_jsonl",
    "to_chrome_trace",
    "chrome_trace_json",
]

#: Microseconds per clock unit, per recorder clock.  Cycle and
#: instruction clocks map one unit to 1 µs so relative spacing is
#: preserved exactly without committing to a CPU frequency.
_MICROSECONDS_PER_UNIT: Dict[str, float] = {
    "seconds": 1e6,
    "cycles": 1.0,
    "instructions": 1.0,
}

_LANES = ("transfer", "execute", "schedule", "misc")


def to_jsonl(events: Iterable[TraceEvent]) -> str:
    """One compact JSON object per line, in the given order."""
    lines = [
        json.dumps(
            {
                "name": event.name,
                "ts": event.ts,
                "ph": event.phase,
                "dur": event.dur,
                "args": dict(event.args),
            },
            sort_keys=True,
        )
        for event in events
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def events_from_jsonl(text: str) -> List[TraceEvent]:
    """Parse :func:`to_jsonl` output back into events."""
    events: List[TraceEvent] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"line {line_number} is not valid JSON: {line[:80]!r}"
            ) from exc
        events.append(
            TraceEvent(
                name=record["name"],
                ts=float(record["ts"]),
                args=record.get("args", {}),
                phase=record.get("ph", "i"),
                dur=float(record.get("dur", 0.0)),
            )
        )
    return events


def to_chrome_trace(
    recorder: TraceRecorder,
    process_name: str = "repro",
) -> Dict[str, object]:
    """Render a recorder into the Chrome trace-event object format."""
    scale = _MICROSECONDS_PER_UNIT.get(recorder.clock, 1.0)
    lane_ids = {lane: index + 1 for index, lane in enumerate(_LANES)}
    trace_events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": f"{process_name} ({recorder.clock})"},
        }
    ]
    trace_events.extend(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": lane},
        }
        for lane, tid in lane_ids.items()
    )
    for event in recorder.sorted_events():
        lane = EVENT_CATEGORIES.get(event.name, "misc")
        record: Dict[str, object] = {
            "name": event.name,
            "cat": lane,
            "ph": event.phase,
            "ts": event.ts * scale,
            "pid": 1,
            "tid": lane_ids[lane],
            "args": dict(event.args),
        }
        if event.phase == "i":
            record["s"] = "t"  # thread-scoped instant
        else:
            record["dur"] = event.dur * scale
        trace_events.append(record)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": recorder.clock},
    }


def chrome_trace_json(
    recorder: TraceRecorder,
    process_name: str = "repro",
    indent: Optional[int] = None,
) -> str:
    """:func:`to_chrome_trace` as a JSON string ready to write."""
    return json.dumps(
        to_chrome_trace(recorder, process_name=process_name),
        indent=indent,
        sort_keys=True,
    )
