"""repro.observe — unified tracing and metrics across the stack.

One event model (:mod:`repro.observe.events`) covers the cycle-exact
simulator, the VM, and the real netserve server/client; one recorder
(:class:`TraceRecorder`) collects events on whichever clock the
subsystem runs; exporters render JSON-lines, Chrome
``chrome://tracing`` traces, and ASCII terminal timelines; and a
:class:`MetricsRegistry` holds labeled counters/gauges/histograms.

The package is zero-dependency, and this ``__init__`` is an *import
guard*: every export resolves lazily (PEP 562), so ``import repro`` —
which reaches :mod:`repro.observe.metrics` through the netserve stats
— never loads the exporters, the timeline renderer, or the VM
instrument until something actually uses them.
"""

from __future__ import annotations

import importlib
from typing import Dict

_EXPORTS: Dict[str, str] = {
    # events
    "ANALYSIS_FINDING": "events",
    "CACHE_LOOKUP": "events",
    "CONNECTION_REJECTED": "events",
    "DEGRADED_TO_STRICT": "events",
    "DEMAND_FETCH": "events",
    "EVENT_CATEGORIES": "events",
    "EVENT_SCHEMA": "events",
    "FAULT_INJECTED": "events",
    "FRAME_SENT": "events",
    "RECONNECT": "events",
    "UNIT_RETRY": "events",
    "UNIT_ISSUED": "events",
    "LINK_BUSY": "events",
    "STRIPE_REBALANCE": "events",
    "LINK_OUTAGE": "events",
    "LINK_RESTORED": "events",
    "HEDGE_FIRED": "events",
    "HEDGE_WON": "events",
    "METHOD_FIRST_INVOKE": "events",
    "SCHEDULE_DECISION": "events",
    "STALL_BEGIN": "events",
    "STALL_END": "events",
    "UNIT_ARRIVED": "events",
    "TraceEvent": "events",
    "validate_event": "events",
    # exporters
    "chrome_trace_json": "export",
    "events_from_jsonl": "export",
    "to_chrome_trace": "export",
    "to_jsonl": "export",
    # VM instrument
    "TracingInstrument": "instrument",
    # metrics
    "Counter": "metrics",
    "Gauge": "metrics",
    "Histogram": "metrics",
    "MetricsRegistry": "metrics",
    # recorder
    "TraceRecorder": "recorder",
    # timeline
    "render_timeline": "timeline",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
