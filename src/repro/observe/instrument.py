"""BIT-style VM instrument that feeds a :class:`TraceRecorder`.

Attach a :class:`TracingInstrument` to a
:class:`~repro.vm.interpreter.VirtualMachine` and every first method
invocation lands in the observability event stream, timestamped on the
VM's only meaningful clock: the dynamic instruction count.  Method
activations are also emitted as complete spans, which makes a bare
(untransferred) run loadable in ``chrome://tracing`` next to a
simulated or networked one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..bytecode import Instruction
from ..program import MethodId, Program
from ..vm.instrument import Instrument
from .recorder import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover
    from ..vm.frame import Frame

__all__ = ["TracingInstrument"]


class TracingInstrument(Instrument):
    """Emits ``method_first_invoke`` events and method-activation spans.

    Args:
        recorder: Destination recorder; created on demand (clock
            ``"instructions"``) when not supplied.
        spans: Also emit one complete span per method activation
            (entry to exit).  Off by default: first-invoke instants are
            what the transfer analyses consume, spans are for humans.
    """

    def __init__(
        self,
        recorder: Optional[TraceRecorder] = None,
        spans: bool = False,
    ) -> None:
        self.recorder = recorder or TraceRecorder(clock="instructions")
        self.spans = spans
        self._instructions = 0
        self._seen: Dict[MethodId, int] = {}
        self._entries: List[Tuple[MethodId, int]] = []

    def on_start(self, program: Program) -> None:
        self._instructions = 0

    def on_method_entry(self, method_id: MethodId, frame: "Frame") -> None:
        if method_id not in self._seen:
            self._seen[method_id] = self._instructions
            self.recorder.method_first_invoke(
                ts=float(self._instructions),
                method=str(method_id),
                latency=float(self._instructions),
            )
        if self.spans:
            self._entries.append((method_id, self._instructions))

    def on_method_exit(self, method_id: MethodId) -> None:
        if not self.spans or not self._entries:
            return
        entered_id, entered_at = self._entries.pop()
        self.recorder.emit(
            "method_first_invoke",
            float(entered_at),
            phase="X",
            dur=float(self._instructions - entered_at),
            method=str(entered_id),
            latency=float(entered_at),
            demand_fetched=False,
        )

    def on_instruction(
        self, method_id: MethodId, instruction: Instruction, offset: int
    ) -> None:
        self._instructions += 1

    def first_invoke_instruction(self, method_id: MethodId) -> int:
        """Dynamic instruction count at the method's first entry."""
        return self._seen[method_id]
