"""Counters, gauges, and histograms with labeled series.

A :class:`MetricsRegistry` is a process-local, dependency-free take on
the Prometheus data model: a metric *name* identifies a family, a
frozen set of label pairs identifies one *series* inside it, and
:meth:`MetricsRegistry.snapshot` renders everything into plain dicts
(JSON-ready, stable ordering) for reports and tests.

The netserve server and fetcher keep their per-connection counters in a
registry (labels: ``peer``, ``policy``); the simulator's callers can
pass one to accumulate cross-run series.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

Labels = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (seconds-ish scale; callers
#: with cycle clocks pass their own).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)


class Counter:
    """A monotonically increasing count."""

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0: {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram with count/sum/min/max."""

    def __init__(
        self, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(
                f"bucket bounds must be sorted and non-empty: {buckets}"
            )
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 < q <= 1``) from buckets.

        Linear interpolation inside the owning bucket, the standard
        Prometheus ``histogram_quantile`` estimate; the observed
        ``min``/``max`` clamp the first and overflow buckets so the
        estimate never leaves the observed range.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1]: {q}")
        if not self.count:
            return 0.0
        assert self.min is not None and self.max is not None
        rank = q * self.count
        cumulative = 0
        for index, bound in enumerate(self.bounds):
            in_bucket = self.bucket_counts[index]
            if cumulative + in_bucket >= rank:
                lower = self.min if index == 0 else self.bounds[index - 1]
                lower = min(lower, bound)
                fraction = (
                    (rank - cumulative) / in_bucket if in_bucket else 1.0
                )
                return min(
                    self.max, lower + (bound - lower) * fraction
                )
            cumulative += in_bucket
        return self.max


def _labels_key(labels: Optional[Mapping[str, str]]) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Get-or-create families of labeled counters/gauges/histograms."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, Labels], Counter] = {}
        self._gauges: Dict[Tuple[str, Labels], Gauge] = {}
        self._histograms: Dict[Tuple[str, Labels], Histogram] = {}

    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        key = (name, _labels_key(labels))
        series = self._counters.get(key)
        if series is None:
            series = self._counters[key] = Counter()
        return series

    def gauge(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        key = (name, _labels_key(labels))
        series = self._gauges.get(key)
        if series is None:
            series = self._gauges[key] = Gauge()
        return series

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        key = (name, _labels_key(labels))
        series = self._histograms.get(key)
        if series is None:
            series = self._histograms[key] = Histogram(buckets)
        return series

    def counter_total(self, name: str) -> float:
        """Sum of one counter family across all label series."""
        return sum(
            series.value
            for (family, _), series in self._counters.items()
            if family == name
        )

    def snapshot(self) -> Dict[str, List[Dict[str, object]]]:
        """Plain-dict view of every series, sorted for stable output."""

        def row(key: Tuple[str, Labels], **fields: object) -> Dict[str, object]:
            name, labels = key
            return {"name": name, "labels": dict(labels), **fields}

        return {
            "counters": [
                row(key, value=series.value)
                for key, series in sorted(self._counters.items())
            ],
            "gauges": [
                row(key, value=series.value)
                for key, series in sorted(self._gauges.items())
            ],
            "histograms": [
                row(
                    key,
                    count=series.count,
                    sum=series.total,
                    min=series.min,
                    max=series.max,
                    mean=series.mean,
                    buckets=dict(
                        zip(
                            [str(b) for b in series.bounds] + ["+Inf"],
                            series.bucket_counts,
                        )
                    ),
                )
                for key, series in sorted(self._histograms.items())
            ],
        }
