"""The event taxonomy shared by every traced subsystem.

One :class:`TraceEvent` model covers the cycle-exact simulator, the VM,
and the real network server/client: each event has a *name* drawn from a
small closed taxonomy, a timestamp on the emitting subsystem's clock,
and a typed ``args`` mapping whose required keys are declared in
:data:`EVENT_SCHEMA`.  Because every emitter conforms to the same
schema, a simulated run and a netserve-measured run of the same
workload produce directly comparable event streams — only the ``clock``
differs (``"cycles"`` vs ``"seconds"``).

Taxonomy (the paper's per-method timeline, Tables 4–7, as events):

* ``unit_arrived`` — a transfer unit finished arriving;
* ``method_first_invoke`` — a method's first instruction could run;
* ``stall_begin`` / ``stall_end`` — execution waited for transfer;
* ``demand_fetch`` — a first-use misprediction was corrected (§5.1);
* ``frame_sent`` — the server put a wire frame on the socket;
* ``schedule_decision`` — a transfer controller started, queued, or
  promoted a stream;
* ``fault_injected`` — the fault layer deliberately misbehaved;
* ``reconnect`` — the resilient client re-dialled after a failure;
* ``unit_retry`` — one damaged unit was re-requested on its own;
* ``degraded_to_strict`` — resilience gave up on overlap and fell back
  to a one-shot strict whole-file transfer;
* ``analysis_finding`` — the static analyzer reported a lint finding;
* ``unit_issued`` — the scoreboard issue engine dispatched a transfer
  unit (or stream grain) to a network link;
* ``link_busy`` — one link's occupancy span for one issued grain
  (phase ``"X"`` spans from issue to landing);
* ``stripe_rebalance`` — the multi-link issue engine redistributed
  work (demand escalation or a link outage);
* ``cache_lookup`` — the server resolved a negotiated configuration
  against its shared artifact cache (hit or miss);
* ``connection_rejected`` — admission control turned a connection
  away (e.g. the server was at ``max_connections``);
* ``link_outage`` — a striped fetch declared one link dead (circuit
  opened) and requeued its in-flight units onto the survivors;
* ``link_restored`` — a half-open probe succeeded and the link
  rejoined the striped session;
* ``hedge_fired`` — a demand fetch raced a second copy of the needed
  unit on another link (the hedge request went on the wire);
* ``hedge_won`` — a hedged unit arrived; names the winning link and
  whether the primary or the hedge delivered first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

__all__ = [
    "TraceEvent",
    "EVENT_SCHEMA",
    "EVENT_CATEGORIES",
    "UNIT_ARRIVED",
    "METHOD_FIRST_INVOKE",
    "STALL_BEGIN",
    "STALL_END",
    "DEMAND_FETCH",
    "FRAME_SENT",
    "SCHEDULE_DECISION",
    "FAULT_INJECTED",
    "RECONNECT",
    "UNIT_RETRY",
    "DEGRADED_TO_STRICT",
    "ANALYSIS_FINDING",
    "CACHE_LOOKUP",
    "CONNECTION_REJECTED",
    "UNIT_ISSUED",
    "LINK_BUSY",
    "STRIPE_REBALANCE",
    "LINK_OUTAGE",
    "LINK_RESTORED",
    "HEDGE_FIRED",
    "HEDGE_WON",
    "validate_event",
]

UNIT_ARRIVED = "unit_arrived"
METHOD_FIRST_INVOKE = "method_first_invoke"
STALL_BEGIN = "stall_begin"
STALL_END = "stall_end"
DEMAND_FETCH = "demand_fetch"
FRAME_SENT = "frame_sent"
SCHEDULE_DECISION = "schedule_decision"
FAULT_INJECTED = "fault_injected"
RECONNECT = "reconnect"
UNIT_RETRY = "unit_retry"
DEGRADED_TO_STRICT = "degraded_to_strict"
ANALYSIS_FINDING = "analysis_finding"
CACHE_LOOKUP = "cache_lookup"
CONNECTION_REJECTED = "connection_rejected"
UNIT_ISSUED = "unit_issued"
LINK_BUSY = "link_busy"
STRIPE_REBALANCE = "stripe_rebalance"
LINK_OUTAGE = "link_outage"
LINK_RESTORED = "link_restored"
HEDGE_FIRED = "hedge_fired"
HEDGE_WON = "hedge_won"

#: Required ``args`` keys per event name.  Emitters may add extra keys
#: (they survive every exporter round-trip), but these must be present.
EVENT_SCHEMA: Dict[str, Tuple[str, ...]] = {
    UNIT_ARRIVED: ("class_name", "kind", "size"),
    METHOD_FIRST_INVOKE: ("method", "latency", "demand_fetched"),
    STALL_BEGIN: ("method",),
    STALL_END: ("method", "duration"),
    DEMAND_FETCH: ("method",),
    FRAME_SENT: ("kind", "size"),
    SCHEDULE_DECISION: ("action", "target"),
    FAULT_INJECTED: ("fault",),
    RECONNECT: ("attempt",),
    UNIT_RETRY: ("class_name",),
    DEGRADED_TO_STRICT: ("reason",),
    ANALYSIS_FINDING: ("rule", "severity", "target"),
    CACHE_LOOKUP: ("hit",),
    CONNECTION_REJECTED: ("reason",),
    UNIT_ISSUED: ("class_name", "link"),
    LINK_BUSY: ("link",),
    STRIPE_REBALANCE: ("reason",),
    LINK_OUTAGE: ("link", "reason"),
    LINK_RESTORED: ("link",),
    HEDGE_FIRED: ("class_name", "link"),
    HEDGE_WON: ("class_name", "link", "role"),
}

#: Display lane per event name (Chrome trace "thread", ASCII timeline
#: row grouping).
EVENT_CATEGORIES: Dict[str, str] = {
    UNIT_ARRIVED: "transfer",
    METHOD_FIRST_INVOKE: "execute",
    STALL_BEGIN: "execute",
    STALL_END: "execute",
    DEMAND_FETCH: "schedule",
    FRAME_SENT: "transfer",
    SCHEDULE_DECISION: "schedule",
    FAULT_INJECTED: "fault",
    RECONNECT: "schedule",
    UNIT_RETRY: "schedule",
    DEGRADED_TO_STRICT: "schedule",
    ANALYSIS_FINDING: "analyze",
    CACHE_LOOKUP: "schedule",
    CONNECTION_REJECTED: "schedule",
    UNIT_ISSUED: "schedule",
    LINK_BUSY: "transfer",
    STRIPE_REBALANCE: "schedule",
    LINK_OUTAGE: "fault",
    LINK_RESTORED: "schedule",
    HEDGE_FIRED: "schedule",
    HEDGE_WON: "schedule",
}


@dataclass(frozen=True)
class TraceEvent:
    """One typed observation.

    Attributes:
        name: Taxonomy name (a key of :data:`EVENT_SCHEMA`).
        ts: Timestamp in the recorder's clock units.
        args: Event payload; superset of the schema's required keys.
        phase: ``"i"`` for instants, ``"X"`` for complete spans
            (Chrome trace-event phases).
        dur: Span duration in clock units (``phase == "X"`` only).
    """

    name: str
    ts: float
    args: Mapping[str, Any] = field(default_factory=dict)
    phase: str = "i"
    dur: float = 0.0

    @property
    def category(self) -> str:
        return EVENT_CATEGORIES.get(self.name, "misc")

    @property
    def end(self) -> float:
        return self.ts + self.dur


def validate_event(event: TraceEvent) -> None:
    """Raise ``ValueError`` unless ``event`` conforms to the taxonomy."""
    required = EVENT_SCHEMA.get(event.name)
    if required is None:
        raise ValueError(
            f"unknown event name {event.name!r}; known: "
            f"{sorted(EVENT_SCHEMA)}"
        )
    missing = [key for key in required if key not in event.args]
    if missing:
        raise ValueError(
            f"event {event.name!r} is missing required args {missing} "
            f"(got {sorted(event.args)})"
        )
    if event.phase not in ("i", "X"):
        raise ValueError(f"unsupported phase {event.phase!r}")
