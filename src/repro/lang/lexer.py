"""Lexer for Mini, the toy source language of the workload suite.

Mini is the "compiler-based" front half of the paper's pipeline: the
benchmarks are authored in Mini, compiled to class files, and everything
downstream (profiling, reordering, partitioning, transfer) operates on
the compiled artifacts just as the paper's tools operated on javac
output.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from ..errors import CompileError

__all__ = ["TokenKind", "Token", "tokenize", "KEYWORDS"]


class TokenKind(enum.Enum):
    NAME = "name"
    INT = "int"
    STRING = "string"
    KEYWORD = "keyword"
    OP = "op"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "class",
        "global",
        "func",
        "var",
        "if",
        "else",
        "while",
        "return",
        "print",
        "halt",
        "new",
        "len",
        "rand",
        "time",
    }
)

_OPERATORS = (
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "!",
    "=",
)

_PUNCTUATION = "(){}[];,."


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.text!r} at line {self.line}"


def tokenize(source: str) -> List[Token]:
    """Tokenize Mini source.

    Raises:
        CompileError: On unterminated strings or stray characters.
    """
    tokens: List[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def error(message: str) -> CompileError:
        return CompileError(f"line {line}:{column}: {message}")

    while index < length:
        char = source[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if char == '"':
            end = source.find('"', index + 1)
            if end < 0 or "\n" in source[index + 1 : end]:
                raise error("unterminated string literal")
            text = source[index + 1 : end]
            tokens.append(Token(TokenKind.STRING, text, line, column))
            column += end - index + 1
            index = end + 1
            continue
        if char.isdigit():
            start = index
            while index < length and source[index].isdigit():
                index += 1
            tokens.append(
                Token(TokenKind.INT, source[start:index], line, column)
            )
            column += index - start
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (
                source[index].isalnum() or source[index] == "_"
            ):
                index += 1
            text = source[start:index]
            kind = (
                TokenKind.KEYWORD
                if text in KEYWORDS
                else TokenKind.NAME
            )
            tokens.append(Token(kind, text, line, column))
            column += index - start
            continue
        matched = False
        for operator in _OPERATORS:
            if source.startswith(operator, index):
                tokens.append(
                    Token(TokenKind.OP, operator, line, column)
                )
                index += len(operator)
                column += len(operator)
                matched = True
                break
        if matched:
            continue
        if char in _PUNCTUATION:
            tokens.append(Token(TokenKind.PUNCT, char, line, column))
            index += 1
            column += 1
            continue
        raise error(f"unexpected character {char!r}")

    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
