"""Recursive-descent parser for Mini."""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import CompileError
from . import ast
from .lexer import Token, TokenKind, tokenize

__all__ = ["parse"]


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # -- token plumbing -----------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def error(self, message: str) -> CompileError:
        token = self.current
        return CompileError(
            f"line {token.line}:{token.column}: {message} "
            f"(found {token.text!r})"
        )

    def advance(self) -> Token:
        token = self.current
        if token.kind != TokenKind.EOF:
            self.position += 1
        return token

    def check(self, kind: TokenKind, text: Optional[str] = None) -> bool:
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def accept(
        self, kind: TokenKind, text: Optional[str] = None
    ) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: TokenKind, text: Optional[str] = None) -> Token:
        if not self.check(kind, text):
            expected = text if text is not None else kind.value
            raise self.error(f"expected {expected!r}")
        return self.advance()

    # -- grammar --------------------------------------------------------

    def parse_program(self) -> ast.ProgramNode:
        classes = []
        while not self.check(TokenKind.EOF):
            classes.append(self.parse_class())
        if not classes:
            raise self.error("empty program")
        return ast.ProgramNode(classes=tuple(classes))

    def parse_class(self) -> ast.ClassNode:
        self.expect(TokenKind.KEYWORD, "class")
        name = self.expect(TokenKind.NAME).text
        self.expect(TokenKind.PUNCT, "{")
        globals_: List[ast.GlobalNode] = []
        funcs: List[ast.FuncNode] = []
        while not self.accept(TokenKind.PUNCT, "}"):
            if self.check(TokenKind.KEYWORD, "global"):
                globals_.append(self.parse_global())
            elif self.check(TokenKind.KEYWORD, "func"):
                funcs.append(self.parse_func())
            else:
                raise self.error("expected 'global' or 'func'")
        return ast.ClassNode(
            name=name, globals=tuple(globals_), funcs=tuple(funcs)
        )

    def parse_global(self) -> ast.GlobalNode:
        self.expect(TokenKind.KEYWORD, "global")
        name = self.expect(TokenKind.NAME).text
        initial: Optional[int] = None
        if self.accept(TokenKind.OP, "="):
            negative = bool(self.accept(TokenKind.OP, "-"))
            literal = self.expect(TokenKind.INT)
            initial = -int(literal.text) if negative else int(literal.text)
        self.expect(TokenKind.PUNCT, ";")
        return ast.GlobalNode(name=name, initial_value=initial)

    def parse_func(self) -> ast.FuncNode:
        self.expect(TokenKind.KEYWORD, "func")
        name = self.expect(TokenKind.NAME).text
        self.expect(TokenKind.PUNCT, "(")
        params: List[str] = []
        if not self.check(TokenKind.PUNCT, ")"):
            params.append(self.expect(TokenKind.NAME).text)
            while self.accept(TokenKind.PUNCT, ","):
                params.append(self.expect(TokenKind.NAME).text)
        self.expect(TokenKind.PUNCT, ")")
        body = self.parse_block()
        if len(params) != len(set(params)):
            raise CompileError(
                f"duplicate parameter names in func {name!r}"
            )
        return ast.FuncNode(
            name=name, params=tuple(params), body=body
        )

    def parse_block(self) -> Tuple[ast.Stmt, ...]:
        self.expect(TokenKind.PUNCT, "{")
        statements: List[ast.Stmt] = []
        while not self.accept(TokenKind.PUNCT, "}"):
            statements.append(self.parse_statement())
        return tuple(statements)

    def parse_statement(self) -> ast.Stmt:
        if self.accept(TokenKind.KEYWORD, "var"):
            name = self.expect(TokenKind.NAME).text
            value = None
            if self.accept(TokenKind.OP, "="):
                value = self.parse_expr()
            self.expect(TokenKind.PUNCT, ";")
            return ast.VarDecl(name=name, value=value)
        if self.accept(TokenKind.KEYWORD, "return"):
            value = None
            if not self.check(TokenKind.PUNCT, ";"):
                value = self.parse_expr()
            self.expect(TokenKind.PUNCT, ";")
            return ast.Return(value=value)
        if self.accept(TokenKind.KEYWORD, "print"):
            self.expect(TokenKind.PUNCT, "(")
            value = self.parse_expr()
            self.expect(TokenKind.PUNCT, ")")
            self.expect(TokenKind.PUNCT, ";")
            return ast.Print(value=value)
        if self.accept(TokenKind.KEYWORD, "halt"):
            self.expect(TokenKind.PUNCT, ";")
            return ast.Halt()
        if self.accept(TokenKind.KEYWORD, "if"):
            self.expect(TokenKind.PUNCT, "(")
            condition = self.parse_expr()
            self.expect(TokenKind.PUNCT, ")")
            then_body = self.parse_block()
            else_body: Tuple[ast.Stmt, ...] = ()
            if self.accept(TokenKind.KEYWORD, "else"):
                if self.check(TokenKind.KEYWORD, "if"):
                    else_body = (self.parse_statement(),)
                else:
                    else_body = self.parse_block()
            return ast.If(
                condition=condition,
                then_body=then_body,
                else_body=else_body,
            )
        if self.accept(TokenKind.KEYWORD, "while"):
            self.expect(TokenKind.PUNCT, "(")
            condition = self.parse_expr()
            self.expect(TokenKind.PUNCT, ")")
            body = self.parse_block()
            return ast.While(condition=condition, body=body)
        return self.parse_assignment_or_expr()

    def parse_assignment_or_expr(self) -> ast.Stmt:
        expr = self.parse_expr()
        if self.accept(TokenKind.OP, "="):
            value = self.parse_expr()
            self.expect(TokenKind.PUNCT, ";")
            if isinstance(expr, ast.VarRef):
                return ast.Assign(name=expr.name, value=value)
            if isinstance(expr, ast.GlobalRef):
                return ast.GlobalAssign(
                    class_name=expr.class_name,
                    field_name=expr.field_name,
                    value=value,
                )
            if isinstance(expr, ast.Index):
                return ast.IndexAssign(
                    array=expr.array, index=expr.index, value=value
                )
            raise self.error("invalid assignment target")
        self.expect(TokenKind.PUNCT, ";")
        return ast.ExprStmt(value=expr)

    # -- expressions (precedence climbing) --------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.accept(TokenKind.OP, "||"):
            left = ast.Binary(op="||", left=left, right=self.parse_and())
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_comparison()
        while self.accept(TokenKind.OP, "&&"):
            left = ast.Binary(
                op="&&", left=left, right=self.parse_comparison()
            )
        return left

    _COMPARISONS = ("==", "!=", "<=", ">=", "<", ">")

    def parse_comparison(self) -> ast.Expr:
        left = self.parse_additive()
        for op in self._COMPARISONS:
            if self.accept(TokenKind.OP, op):
                return ast.Binary(
                    op=op, left=left, right=self.parse_additive()
                )
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while True:
            if self.accept(TokenKind.OP, "+"):
                left = ast.Binary(
                    op="+", left=left, right=self.parse_multiplicative()
                )
            elif self.accept(TokenKind.OP, "-"):
                left = ast.Binary(
                    op="-", left=left, right=self.parse_multiplicative()
                )
            else:
                return left

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while True:
            matched = None
            for op in ("*", "/", "%"):
                if self.accept(TokenKind.OP, op):
                    matched = op
                    break
            if matched is None:
                return left
            left = ast.Binary(
                op=matched, left=left, right=self.parse_unary()
            )

    def parse_unary(self) -> ast.Expr:
        if self.accept(TokenKind.OP, "-"):
            return ast.Unary(op="-", operand=self.parse_unary())
        if self.accept(TokenKind.OP, "!"):
            return ast.Unary(op="!", operand=self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while self.accept(TokenKind.PUNCT, "["):
            index = self.parse_expr()
            self.expect(TokenKind.PUNCT, "]")
            expr = ast.Index(array=expr, index=index)
        return expr

    def parse_args(self) -> Tuple[ast.Expr, ...]:
        self.expect(TokenKind.PUNCT, "(")
        args: List[ast.Expr] = []
        if not self.check(TokenKind.PUNCT, ")"):
            args.append(self.parse_expr())
            while self.accept(TokenKind.PUNCT, ","):
                args.append(self.parse_expr())
        self.expect(TokenKind.PUNCT, ")")
        return tuple(args)

    def parse_primary(self) -> ast.Expr:
        if self.accept(TokenKind.PUNCT, "("):
            expr = self.parse_expr()
            self.expect(TokenKind.PUNCT, ")")
            return expr
        token = self.current
        if token.kind == TokenKind.INT:
            self.advance()
            return ast.IntLit(value=int(token.text))
        if token.kind == TokenKind.STRING:
            self.advance()
            return ast.StrLit(value=token.text)
        if self.accept(TokenKind.KEYWORD, "new"):
            self.expect(TokenKind.PUNCT, "[")
            size = self.parse_expr()
            self.expect(TokenKind.PUNCT, "]")
            return ast.NewArray(size=size)
        if self.accept(TokenKind.KEYWORD, "len"):
            self.expect(TokenKind.PUNCT, "(")
            array = self.parse_expr()
            self.expect(TokenKind.PUNCT, ")")
            return ast.Len(array=array)
        if self.accept(TokenKind.KEYWORD, "rand"):
            self.expect(TokenKind.PUNCT, "(")
            self.expect(TokenKind.PUNCT, ")")
            return ast.Rand()
        if self.accept(TokenKind.KEYWORD, "time"):
            self.expect(TokenKind.PUNCT, "(")
            self.expect(TokenKind.PUNCT, ")")
            return ast.Time()
        if token.kind == TokenKind.NAME:
            self.advance()
            if self.accept(TokenKind.PUNCT, "."):
                member = self.expect(TokenKind.NAME).text
                if self.check(TokenKind.PUNCT, "("):
                    return ast.Call(
                        class_name=token.text,
                        func_name=member,
                        args=self.parse_args(),
                    )
                return ast.GlobalRef(
                    class_name=token.text, field_name=member
                )
            if self.check(TokenKind.PUNCT, "("):
                return ast.Call(
                    class_name=None,
                    func_name=token.text,
                    args=self.parse_args(),
                )
            return ast.VarRef(name=token.text)
        raise self.error("expected an expression")


def parse(source: str) -> ast.ProgramNode:
    """Parse Mini source into an AST.

    Raises:
        CompileError: On any lexical or syntactic error.
    """
    return _Parser(tokenize(source)).parse_program()
