"""Abstract syntax tree for Mini."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "ProgramNode",
    "ClassNode",
    "GlobalNode",
    "FuncNode",
    "Stmt",
    "VarDecl",
    "Assign",
    "GlobalAssign",
    "IndexAssign",
    "If",
    "While",
    "Return",
    "Print",
    "Halt",
    "ExprStmt",
    "Expr",
    "IntLit",
    "StrLit",
    "VarRef",
    "GlobalRef",
    "Unary",
    "Binary",
    "Call",
    "NewArray",
    "Index",
    "Len",
    "Rand",
    "Time",
]


# --- expressions -------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base expression node."""


@dataclass(frozen=True)
class IntLit(Expr):
    value: int


@dataclass(frozen=True)
class StrLit(Expr):
    value: str


@dataclass(frozen=True)
class VarRef(Expr):
    name: str


@dataclass(frozen=True)
class GlobalRef(Expr):
    """``Class.field`` (or an unqualified global of the same class)."""

    class_name: Optional[str]
    field_name: str


@dataclass(frozen=True)
class Unary(Expr):
    op: str
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Call(Expr):
    """``f(args)`` (same class) or ``Class.f(args)``."""

    class_name: Optional[str]
    func_name: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class NewArray(Expr):
    size: Expr


@dataclass(frozen=True)
class Index(Expr):
    array: Expr
    index: Expr


@dataclass(frozen=True)
class Len(Expr):
    array: Expr


@dataclass(frozen=True)
class Rand(Expr):
    pass


@dataclass(frozen=True)
class Time(Expr):
    pass


# --- statements --------------------------------------------------------


@dataclass(frozen=True)
class Stmt:
    """Base statement node."""


@dataclass(frozen=True)
class VarDecl(Stmt):
    name: str
    value: Optional[Expr]


@dataclass(frozen=True)
class Assign(Stmt):
    name: str
    value: Expr


@dataclass(frozen=True)
class GlobalAssign(Stmt):
    class_name: Optional[str]
    field_name: str
    value: Expr


@dataclass(frozen=True)
class IndexAssign(Stmt):
    array: Expr
    index: Expr
    value: Expr


@dataclass(frozen=True)
class If(Stmt):
    condition: Expr
    then_body: Tuple[Stmt, ...]
    else_body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class While(Stmt):
    condition: Expr
    body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class Return(Stmt):
    value: Optional[Expr]


@dataclass(frozen=True)
class Print(Stmt):
    value: Expr


@dataclass(frozen=True)
class Halt(Stmt):
    pass


@dataclass(frozen=True)
class ExprStmt(Stmt):
    value: Expr


# --- declarations ------------------------------------------------------


@dataclass(frozen=True)
class GlobalNode:
    name: str
    initial_value: Optional[int]


@dataclass(frozen=True)
class FuncNode:
    name: str
    params: Tuple[str, ...]
    body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class ClassNode:
    name: str
    globals: Tuple[GlobalNode, ...]
    funcs: Tuple[FuncNode, ...]


@dataclass(frozen=True)
class ProgramNode:
    classes: Tuple[ClassNode, ...]
