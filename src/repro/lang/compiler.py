"""Mini → class file compiler.

Two passes: signature collection (so forward and cross-class calls
resolve), then per-function code generation through
:class:`~repro.bytecode.assembler.CodeBuilder`.  The produced
:class:`~repro.program.Program` is indistinguishable from a hand-built
one: it runs on the VM, profiles, reorders, partitions, and transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..bytecode import CodeBuilder, Opcode, SysCall
from ..classfile import ClassFileBuilder
from ..errors import CompileError
from ..program import MethodId, Program
from . import ast
from .parser import parse

__all__ = ["compile_source", "compile_ast"]


@dataclass(frozen=True)
class _Signature:
    arity: int
    returns_value: bool

    @property
    def descriptor(self) -> str:
        return f"({'I' * self.arity}){'I' if self.returns_value else 'V'}"


def _body_returns_value(body: Tuple[ast.Stmt, ...]) -> bool:
    for statement in body:
        if isinstance(statement, ast.Return) and statement.value is not None:
            return True
        if isinstance(statement, ast.If):
            if _body_returns_value(statement.then_body) or (
                _body_returns_value(statement.else_body)
            ):
                return True
        if isinstance(statement, ast.While) and _body_returns_value(
            statement.body
        ):
            return True
    return False


class _SignatureTable:
    """All function signatures and global fields, by class."""

    def __init__(self, program: ast.ProgramNode) -> None:
        self.functions: Dict[Tuple[str, str], _Signature] = {}
        self.globals: Dict[Tuple[str, str], ast.GlobalNode] = {}
        for class_node in program.classes:
            for func in class_node.funcs:
                key = (class_node.name, func.name)
                if key in self.functions:
                    raise CompileError(
                        f"duplicate function {func.name!r} in class "
                        f"{class_node.name!r}"
                    )
                self.functions[key] = _Signature(
                    arity=len(func.params),
                    returns_value=_body_returns_value(func.body),
                )
            for global_node in class_node.globals:
                key = (class_node.name, global_node.name)
                if key in self.globals:
                    raise CompileError(
                        f"duplicate global {global_node.name!r} in "
                        f"class {class_node.name!r}"
                    )
                self.globals[key] = global_node

    def function(self, class_name: str, func_name: str) -> _Signature:
        try:
            return self.functions[(class_name, func_name)]
        except KeyError as exc:
            raise CompileError(
                f"unknown function {class_name}.{func_name}"
            ) from exc

    def has_global(self, class_name: str, field_name: str) -> bool:
        return (class_name, field_name) in self.globals


class _FunctionCompiler:
    """Generates code for one function body."""

    def __init__(
        self,
        class_builder: ClassFileBuilder,
        class_name: str,
        func: ast.FuncNode,
        signatures: _SignatureTable,
    ) -> None:
        self.builder = CodeBuilder()
        self.class_builder = class_builder
        self.class_name = class_name
        self.func = func
        self.signatures = signatures
        self.slots: Dict[str, int] = {
            name: index for index, name in enumerate(func.params)
        }
        self.max_stack = 2

    def error(self, message: str) -> CompileError:
        return CompileError(
            f"in {self.class_name}.{self.func.name}: {message}"
        )

    # -- expression depth (for the Code attribute's max_stack) ----------

    def _depth(self, expr: ast.Expr) -> int:
        if isinstance(expr, (ast.IntLit, ast.StrLit, ast.VarRef,
                             ast.GlobalRef, ast.Rand, ast.Time)):
            return 1
        if isinstance(expr, ast.Unary):
            return max(1, self._depth(expr.operand))
        if isinstance(expr, ast.Binary):
            return max(
                self._depth(expr.left), 1 + self._depth(expr.right)
            )
        if isinstance(expr, ast.Call):
            depth = 1
            for position, arg in enumerate(expr.args):
                depth = max(depth, position + self._depth(arg))
            return depth
        if isinstance(expr, ast.NewArray):
            return self._depth(expr.size)
        if isinstance(expr, ast.Index):
            return max(
                self._depth(expr.array), 1 + self._depth(expr.index)
            )
        if isinstance(expr, ast.Len):
            return self._depth(expr.array)
        raise self.error(f"unknown expression {expr!r}")

    def _track(self, depth: int) -> None:
        self.max_stack = max(self.max_stack, depth + 1)

    # -- slots -------------------------------------------------------------

    def slot_of(self, name: str) -> int:
        try:
            return self.slots[name]
        except KeyError as exc:
            raise self.error(f"undeclared variable {name!r}") from exc

    def declare(self, name: str) -> int:
        if name in self.slots:
            raise self.error(f"variable {name!r} already declared")
        slot = len(self.slots)
        if slot > 255:
            raise self.error("too many local variables")
        self.slots[name] = slot
        return slot

    # -- expressions --------------------------------------------------------

    def compile_expr(self, expr: ast.Expr) -> None:
        """Emit code leaving the expression's value on the stack."""
        self._track(self._depth(expr))
        emit = self.builder.emit
        if isinstance(expr, ast.IntLit):
            emit(Opcode.ICONST, expr.value)
        elif isinstance(expr, ast.StrLit):
            index = self.class_builder.add_string_constant(expr.value)
            emit(Opcode.LDC, index)
        elif isinstance(expr, ast.VarRef):
            emit(Opcode.LOAD, self.slot_of(expr.name))
        elif isinstance(expr, ast.GlobalRef):
            emit(Opcode.GETSTATIC, self._global_ref(expr))
        elif isinstance(expr, ast.Unary):
            self._compile_unary(expr)
        elif isinstance(expr, ast.Binary):
            self._compile_binary(expr)
        elif isinstance(expr, ast.Call):
            self._compile_call(expr, want_value=True)
        elif isinstance(expr, ast.NewArray):
            self.compile_expr(expr.size)
            emit(Opcode.NEWARRAY)
        elif isinstance(expr, ast.Index):
            self.compile_expr(expr.array)
            self.compile_expr(expr.index)
            emit(Opcode.ALOAD)
        elif isinstance(expr, ast.Len):
            self.compile_expr(expr.array)
            emit(Opcode.ARRAYLEN)
        elif isinstance(expr, ast.Rand):
            emit(Opcode.SYS, SysCall.RAND)
        elif isinstance(expr, ast.Time):
            emit(Opcode.SYS, SysCall.TIME)
        else:
            raise self.error(f"cannot compile expression {expr!r}")

    def _global_ref(self, expr: ast.GlobalRef) -> int:
        class_name = expr.class_name or self.class_name
        if not self.signatures.has_global(class_name, expr.field_name):
            raise self.error(
                f"unknown global {class_name}.{expr.field_name}"
            )
        return self.class_builder.field_ref(class_name, expr.field_name)

    def _compile_unary(self, expr: ast.Unary) -> None:
        if expr.op == "-":
            self.compile_expr(expr.operand)
            self.builder.emit(Opcode.NEG)
        elif expr.op == "!":
            self.compile_expr(expr.operand)
            self._emit_bool_from_branch(Opcode.IFEQ)
        else:
            raise self.error(f"unknown unary operator {expr.op!r}")

    _ARITH_OPS = {
        "+": Opcode.ADD,
        "-": Opcode.SUB,
        "*": Opcode.MUL,
        "/": Opcode.DIV,
        "%": Opcode.MOD,
    }
    _COMPARE_OPS = {
        "==": Opcode.IF_ICMPEQ,
        "!=": Opcode.IF_ICMPNE,
        "<": Opcode.IF_ICMPLT,
        "<=": Opcode.IF_ICMPLE,
        ">": Opcode.IF_ICMPGT,
        ">=": Opcode.IF_ICMPGE,
    }

    def _compile_binary(self, expr: ast.Binary) -> None:
        builder = self.builder
        if expr.op in self._ARITH_OPS:
            self.compile_expr(expr.left)
            self.compile_expr(expr.right)
            builder.emit(self._ARITH_OPS[expr.op])
        elif expr.op in self._COMPARE_OPS:
            self.compile_expr(expr.left)
            self.compile_expr(expr.right)
            self._emit_bool_from_branch(self._COMPARE_OPS[expr.op])
        elif expr.op == "&&":
            false_label = builder.new_label("and_false")
            end_label = builder.new_label("and_end")
            self.compile_expr(expr.left)
            builder.branch(Opcode.IFEQ, false_label)
            self.compile_expr(expr.right)
            builder.branch(Opcode.IFEQ, false_label)
            builder.emit(Opcode.ICONST, 1)
            builder.branch(Opcode.GOTO, end_label)
            builder.bind(false_label)
            builder.emit(Opcode.ICONST, 0)
            builder.bind(end_label)
        elif expr.op == "||":
            true_label = builder.new_label("or_true")
            end_label = builder.new_label("or_end")
            self.compile_expr(expr.left)
            builder.branch(Opcode.IFNE, true_label)
            self.compile_expr(expr.right)
            builder.branch(Opcode.IFNE, true_label)
            builder.emit(Opcode.ICONST, 0)
            builder.branch(Opcode.GOTO, end_label)
            builder.bind(true_label)
            builder.emit(Opcode.ICONST, 1)
            builder.bind(end_label)
        else:
            raise self.error(f"unknown operator {expr.op!r}")

    def _emit_bool_from_branch(self, branch_opcode: Opcode) -> None:
        """Turn a conditional branch into a 0/1 value on the stack."""
        builder = self.builder
        true_label = builder.new_label("true")
        end_label = builder.new_label("end")
        builder.branch(branch_opcode, true_label)
        builder.emit(Opcode.ICONST, 0)
        builder.branch(Opcode.GOTO, end_label)
        builder.bind(true_label)
        builder.emit(Opcode.ICONST, 1)
        builder.bind(end_label)

    def _compile_call(self, expr: ast.Call, want_value: bool) -> None:
        class_name = expr.class_name or self.class_name
        signature = self.signatures.function(class_name, expr.func_name)
        if len(expr.args) != signature.arity:
            raise self.error(
                f"{class_name}.{expr.func_name} expects "
                f"{signature.arity} argument(s), got {len(expr.args)}"
            )
        if want_value and not signature.returns_value:
            raise self.error(
                f"{class_name}.{expr.func_name} returns no value"
            )
        for arg in expr.args:
            self.compile_expr(arg)
        ref = self.class_builder.method_ref(
            class_name, expr.func_name, signature.descriptor
        )
        self.builder.emit(Opcode.CALL, ref)
        if not want_value and signature.returns_value:
            self.builder.emit(Opcode.POP)

    # -- statements -----------------------------------------------------------

    def compile_block(self, body: Tuple[ast.Stmt, ...]) -> None:
        for statement in body:
            self.compile_statement(statement)

    def compile_statement(self, statement: ast.Stmt) -> None:
        builder = self.builder
        if isinstance(statement, ast.VarDecl):
            slot = self.declare(statement.name)
            if statement.value is not None:
                self.compile_expr(statement.value)
                builder.emit(Opcode.STORE, slot)
        elif isinstance(statement, ast.Assign):
            self.compile_expr(statement.value)
            builder.emit(Opcode.STORE, self.slot_of(statement.name))
        elif isinstance(statement, ast.GlobalAssign):
            self.compile_expr(statement.value)
            ref = self._global_ref(
                ast.GlobalRef(
                    class_name=statement.class_name,
                    field_name=statement.field_name,
                )
            )
            builder.emit(Opcode.PUTSTATIC, ref)
        elif isinstance(statement, ast.IndexAssign):
            self._track(
                max(
                    self._depth(statement.array),
                    1 + self._depth(statement.index),
                    2 + self._depth(statement.value),
                )
            )
            self.compile_expr(statement.array)
            self.compile_expr(statement.index)
            self.compile_expr(statement.value)
            builder.emit(Opcode.ASTORE)
        elif isinstance(statement, ast.If):
            else_label = builder.new_label("else")
            end_label = builder.new_label("endif")
            self.compile_expr(statement.condition)
            builder.branch(Opcode.IFEQ, else_label)
            self.compile_block(statement.then_body)
            builder.branch(Opcode.GOTO, end_label)
            builder.bind(else_label)
            self.compile_block(statement.else_body)
            builder.bind(end_label)
        elif isinstance(statement, ast.While):
            loop_label = builder.new_label("while")
            end_label = builder.new_label("endwhile")
            builder.bind(loop_label)
            self.compile_expr(statement.condition)
            builder.branch(Opcode.IFEQ, end_label)
            self.compile_block(statement.body)
            builder.branch(Opcode.GOTO, loop_label)
            builder.bind(end_label)
        elif isinstance(statement, ast.Return):
            signature = self.signatures.function(
                self.class_name, self.func.name
            )
            if statement.value is not None:
                if not signature.returns_value:  # pragma: no cover
                    raise self.error("inconsistent return inference")
                self.compile_expr(statement.value)
                builder.emit(Opcode.IRETURN)
            elif signature.returns_value:
                raise self.error(
                    "bare 'return' in a value-returning function"
                )
            else:
                builder.emit(Opcode.RETURN)
        elif isinstance(statement, ast.Print):
            self.compile_expr(statement.value)
            builder.emit(Opcode.SYS, SysCall.PRINT)
        elif isinstance(statement, ast.Halt):
            builder.emit(Opcode.SYS, SysCall.HALT)
        elif isinstance(statement, ast.ExprStmt):
            if isinstance(statement.value, ast.Call):
                self._track(self._depth(statement.value))
                self._compile_call(statement.value, want_value=False)
            else:
                self.compile_expr(statement.value)
                builder.emit(Opcode.POP)
        else:
            raise self.error(f"cannot compile statement {statement!r}")

    def finish(self) -> "list":
        """Terminate and return the instruction list."""
        signature = self.signatures.function(
            self.class_name, self.func.name
        )
        # Fallback epilogue: harmless if every path returned already.
        if signature.returns_value:
            self.builder.emit(Opcode.ICONST, 0)
            self.builder.emit(Opcode.IRETURN)
        else:
            self.builder.emit(Opcode.RETURN)
        return self.builder.build()


def compile_ast(program_node: ast.ProgramNode) -> Program:
    """Compile a parsed Mini program into class files."""
    signatures = _SignatureTable(program_node)
    classes = []
    entry: Optional[MethodId] = None
    for class_node in program_node.classes:
        builder = ClassFileBuilder(class_node.name)
        for global_node in class_node.globals:
            builder.add_field(
                global_node.name,
                initial_value=global_node.initial_value,
            )
        for func in class_node.funcs:
            compiler = _FunctionCompiler(
                builder, class_node.name, func, signatures
            )
            compiler.compile_block(func.body)
            instructions = compiler.finish()
            signature = signatures.function(class_node.name, func.name)
            builder.add_method(
                func.name,
                signature.descriptor,
                instructions,
                max_stack=compiler.max_stack,
                max_locals=max(len(compiler.slots), 1),
            )
            if func.name == "main" and entry is None:
                entry = MethodId(class_node.name, "main")
        classes.append(builder.build())
    if entry is None:
        raise CompileError("no 'main' function in any class")
    return Program(classes=classes, entry_point=entry)


def compile_source(source: str) -> Program:
    """Compile Mini source text into a runnable Program.

    Raises:
        CompileError: On any lexical, syntactic, or semantic error.
    """
    return compile_ast(parse(source))
