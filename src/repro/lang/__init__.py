"""Mini: the toy source language and compiler for workload authoring."""

from .compiler import compile_ast, compile_source
from .lexer import Token, TokenKind, tokenize
from .parser import parse

__all__ = [
    "compile_ast",
    "compile_source",
    "Token",
    "TokenKind",
    "tokenize",
    "parse",
]
