"""Class file restructuring (paper §4, Figure 3).

Restructuring reorders the methods *within* each class file into
first-use order and, for the transfer engine's benefit, permutes the
program's class list into class-first-use order.  Method bodies, global
data, and sizes are untouched — only layout changes.
"""

from __future__ import annotations

from ..program import Program
from .first_use import FirstUseOrder

__all__ = ["restructure"]


def restructure(program: Program, order: FirstUseOrder) -> Program:
    """Apply a first-use order to a program's layout.

    Returns:
        A new :class:`~repro.program.Program`; the input is unchanged.

    Raises:
        ReorderError: If ``order`` does not cover the program exactly.
    """
    order.validate_against(program)
    reordered = program.restructured(order.method_orders())
    class_order = order.class_order()
    # A class with no methods (globals only) never appears in a
    # first-use order; keep it, at the end, in original order.
    for classfile in program.classes:
        if classfile.name not in class_order:
            class_order.append(classfile.name)
    return reordered.with_class_order(class_order)
