"""First-use reordering: static estimation, profiles, restructuring."""

from .first_use import FirstUseEntry, FirstUseOrder, textual_first_use
from .profile_estimator import (
    order_from_profile,
    profile_first_use,
    profile_program,
)
from .restructure import restructure
from .splitting import split_large_methods, split_method
from .static_estimator import StaticFirstUseEstimator, estimate_first_use
from .weighted import weighted_first_use

__all__ = [
    "FirstUseEntry",
    "FirstUseOrder",
    "textual_first_use",
    "order_from_profile",
    "profile_first_use",
    "profile_program",
    "restructure",
    "split_large_methods",
    "split_method",
    "StaticFirstUseEstimator",
    "estimate_first_use",
    "weighted_first_use",
]
