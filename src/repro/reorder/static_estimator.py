"""Static first-use estimation (paper §4.1).

A modified depth-first search over the interprocedural control-flow
graph predicts the order in which procedures will first execute:

* At a forward conditional branch, the path with the **greatest number
  of static loops** ahead of it is followed first (looping implies code
  reuse and therefore overlap opportunity); ties fall to the path with
  the most static instructions.
* Inside a loop, **all basic blocks of the loop body are traversed
  (searching for procedure calls) before any loop-exit edge** is
  followed.  Loop-exit and back edges encountered at conditional
  branches are pushed as ``(block id, loop-header id)`` place-holder
  pairs on a stack, and popped — resuming the pseudo-DFS on the exit
  edges — once the loop body is exhausted.
* The order in which procedures are first encountered during the
  traversal is the predicted first-use order; call sites are visited in
  block-traversal order, recursing into unvisited callees.

Methods not reachable from the entry point are appended in program file
order, so the result is a total order (the paper places unexecuted
procedures "during placement using the static approach").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..cfg import (
    CallGraph,
    ControlFlowGraph,
    Edge,
    LoopAnalysis,
    analyze_loops,
    build_call_graph,
)
from ..program import MethodId, Program
from .first_use import FirstUseEntry, FirstUseOrder

__all__ = ["StaticFirstUseEstimator", "estimate_first_use"]


def _edge_priority(
    analysis: LoopAnalysis, edge: Edge
) -> Tuple[int, int]:
    """Sort key for forward edges: loops ahead, then instructions."""
    return (
        analysis.forward_loop_count.get(edge.target, 0),
        analysis.forward_instruction_count.get(edge.target, 0),
    )


class _MethodTraversal:
    """The modified DFS over one method's CFG, yielding call sites.

    With ``loop_priority=False`` the heuristics are disabled (plain
    DFS in textual successor order, no loop-exit deferral) — the
    ablation baseline for the paper's §4.1 heuristics.
    """

    def __init__(
        self, cfg: ControlFlowGraph, loop_priority: bool = True
    ) -> None:
        self.cfg = cfg
        self.analysis = analyze_loops(cfg)
        self.loop_priority = loop_priority
        self.block_order: List[int] = []
        self._visited: Set[int] = set()
        # The paper's place-holder stack of (block id, loop header id).
        self._deferred: List[Tuple[int, int]] = []
        self._run()

    def _innermost_loop_header(self, block_id: int) -> Optional[int]:
        """Header of the smallest loop containing ``block_id``."""
        best = None
        best_size = None
        for loop in self.analysis.loops:
            if block_id in loop:
                if best_size is None or len(loop.body) < best_size:
                    best = loop.header
                    best_size = len(loop.body)
        return best

    def _run(self) -> None:
        self._dfs(self.cfg.entry.block_id)
        # Pop place-holders: continue on loop-exit edges only after the
        # loop bodies have been fully traversed.
        while self._deferred:
            target, _header = self._deferred.pop()
            self._dfs(target)

    def _dfs(self, root: int) -> None:
        stack = [root]
        while stack:
            block_id = stack.pop()
            if block_id in self._visited:
                continue
            self._visited.add(block_id)
            self.block_order.append(block_id)

            forward: List[Edge] = []
            for edge in self.cfg.successor_edges(block_id):
                if self.analysis.is_back_edge(edge.source, edge.target):
                    # Control returns to the loop header: nothing new.
                    continue
                if self.loop_priority and self.analysis.is_loop_exit_edge(
                    edge
                ):
                    header = self._innermost_loop_header(edge.source)
                    if header is not None:
                        self._deferred.append((edge.target, header))
                        continue
                forward.append(edge)
            if self.loop_priority:
                # Follow the loop-richest path first: push lower-priority
                # targets deeper so the highest priority pops first.
                forward.sort(
                    key=lambda e: _edge_priority(self.analysis, e)
                )
            else:
                # Plain DFS: textual order (reversed so the first
                # successor pops first).
                forward.reverse()
            for edge in forward:
                if edge.target not in self._visited:
                    stack.append(edge.target)

    def call_pool_order(self) -> List[int]:
        """Call-site instruction indexes in traversal order."""
        order: List[int] = []
        for block_id in self.block_order:
            block = self.cfg.block(block_id)
            for call_site in block.call_sites:
                order.append(call_site.instruction_index)
        return order


class StaticFirstUseEstimator:
    """Predicts a program's first-use order without executing it.

    Args:
        program: The program to analyze.
        loop_priority: Enable the §4.1 heuristics (loop-priority path
            selection and loop-exit deferral).  Disable for the
            plain-DFS ablation baseline.
    """

    def __init__(
        self, program: Program, loop_priority: bool = True
    ) -> None:
        self.program = program
        self.loop_priority = loop_priority
        self.call_graph: CallGraph = build_call_graph(program)
        self._traversals: Dict[MethodId, _MethodTraversal] = {}

    def traversal(self, method_id: MethodId) -> _MethodTraversal:
        if method_id not in self._traversals:
            self._traversals[method_id] = _MethodTraversal(
                self.call_graph.cfg(method_id),
                loop_priority=self.loop_priority,
            )
        return self._traversals[method_id]

    def _ordered_callees(self, method_id: MethodId) -> List[MethodId]:
        """Internal callees in modified-DFS traversal order."""
        call_order = {
            instruction_index: position
            for position, instruction_index in enumerate(
                self.traversal(method_id).call_pool_order()
            )
        }
        edges = [
            edge
            for edge in self.call_graph.calls_from(method_id)
            if edge.internal and edge.instruction_index in call_order
        ]
        edges.sort(key=lambda e: call_order[e.instruction_index])
        seen: Set[MethodId] = set()
        callees: List[MethodId] = []
        for edge in edges:
            if edge.callee not in seen:
                seen.add(edge.callee)
                callees.append(edge.callee)
        return callees

    def estimate(self) -> FirstUseOrder:
        """Produce the static first-use order for the whole program."""
        entry = self.program.resolve_entry()
        order: List[MethodId] = []
        visited: Set[MethodId] = set()

        def visit(method_id: MethodId) -> None:
            stack = [method_id]
            while stack:
                current = stack.pop()
                if current in visited:
                    continue
                visited.add(current)
                order.append(current)
                callees = self._ordered_callees(current)
                # Depth-first: earliest call site explored first.
                for callee in reversed(callees):
                    if callee not in visited:
                        stack.append(callee)

        visit(entry)
        # Unreachable methods: append in program file order.
        for method_id in self.program.method_ids():
            if method_id not in visited:
                visited.add(method_id)
                order.append(method_id)

        entries: List[FirstUseEntry] = []
        cumulative = 0
        cumulative_instructions = 0
        for method_id in order:
            entries.append(
                FirstUseEntry(
                    method=method_id,
                    bytes_before=cumulative,
                    instructions_before=cumulative_instructions,
                    estimated=True,
                )
            )
            method = self.program.method(method_id)
            cumulative += method.size
            cumulative_instructions += len(method.instructions)
        result = FirstUseOrder(entries=entries, source="static")
        result.validate_against(self.program)
        return result


def estimate_first_use(
    program: Program, loop_priority: bool = True
) -> FirstUseOrder:
    """Convenience wrapper: static first-use order of ``program``."""
    return StaticFirstUseEstimator(
        program, loop_priority=loop_priority
    ).estimate()
