"""First-use orderings: the product of §4's estimators.

A :class:`FirstUseOrder` is a predicted (or measured) order in which the
program's methods will be *first* executed, annotated with the number of
bytes expected to be executed before each first use — the "unique bytes"
the parallel transfer scheduler accumulates (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import ReorderError
from ..program import MethodId, Program

__all__ = ["FirstUseEntry", "FirstUseOrder", "textual_first_use"]


@dataclass(frozen=True)
class FirstUseEntry:
    """One method in a first-use order.

    Attributes:
        method: The method.
        bytes_before: Bytes predicted to be executed before this first
            use.  For a static order this accumulates static procedure
            sizes; for a profile order it is the measured unique
            executed bytes (paper §5.1's two "unique bytes" variants).
        instructions_before: Instructions predicted to execute before
            this first use — the transfer scheduler multiplies this by
            CPI to obtain the unit's deadline in cycles.
        estimated: True when this entry's position came from static
            estimation rather than an observed execution (profiles fall
            back to the static order for never-executed methods, §4.2).
    """

    method: MethodId
    bytes_before: int
    instructions_before: int = 0
    estimated: bool = True


@dataclass
class FirstUseOrder:
    """A total first-use order over all methods of a program.

    Attributes:
        entries: All methods, exactly once each, in first-use order.
        source: ``"static"``, ``"profile"``, or other provenance tag.
    """

    entries: List[FirstUseEntry]
    source: str = "static"

    def __post_init__(self) -> None:
        methods = [entry.method for entry in self.entries]
        if len(methods) != len(set(methods)):
            raise ReorderError("first-use order contains duplicates")
        self._positions: Dict[MethodId, int] = {
            method: index for index, method in enumerate(methods)
        }

    @property
    def order(self) -> List[MethodId]:
        return [entry.method for entry in self.entries]

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, method_id: MethodId) -> bool:
        return method_id in self._positions

    def position(self, method_id: MethodId) -> int:
        try:
            return self._positions[method_id]
        except KeyError as exc:
            raise ReorderError(
                f"{method_id} is not in the first-use order"
            ) from exc

    def entry_for(self, method_id: MethodId) -> FirstUseEntry:
        return self.entries[self.position(method_id)]

    def bytes_before(self, method_id: MethodId) -> int:
        return self.entry_for(method_id).bytes_before

    def class_order(self) -> List[str]:
        """Classes ordered by the first use of any of their methods."""
        seen: Dict[str, None] = {}
        for entry in self.entries:
            seen.setdefault(entry.method.class_name, None)
        return list(seen)

    def method_orders(self) -> Dict[str, List[str]]:
        """Per-class method order, for
        :meth:`repro.program.Program.restructured`."""
        orders: Dict[str, List[str]] = {}
        for entry in self.entries:
            orders.setdefault(entry.method.class_name, []).append(
                entry.method.method_name
            )
        return orders

    def validate_against(self, program: Program) -> None:
        """Check the order covers the program exactly.

        Raises:
            ReorderError: If any method is missing or extraneous.
        """
        expected = set(program.method_ids())
        actual = set(self._positions)
        if expected != actual:
            missing = expected - actual
            extra = actual - expected
            raise ReorderError(
                f"first-use order mismatch: missing={sorted(map(str, missing))} "
                f"extra={sorted(map(str, extra))}"
            )

    def interleaved_order(self) -> List[MethodId]:
        """The method order of the virtual interleaved file (§5.2)."""
        return self.order


def textual_first_use(program: Program) -> FirstUseOrder:
    """The no-reordering baseline: methods in textual (file) order.

    Models a class file laid out exactly as the source was written —
    what non-strict execution gets *without* the paper's restructuring.
    Used by the reordering ablation.
    """
    entries: List[FirstUseEntry] = []
    cumulative = 0
    cumulative_instructions = 0
    for method_id in program.method_ids():
        entries.append(
            FirstUseEntry(
                method=method_id,
                bytes_before=cumulative,
                instructions_before=cumulative_instructions,
                estimated=True,
            )
        )
        method = program.method(method_id)
        cumulative += method.size
        cumulative_instructions += len(method.instructions)
    return FirstUseOrder(entries=entries, source="textual")
