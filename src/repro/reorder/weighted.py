"""The ``weighted`` first-use strategy: optimized transfer layout.

The paper predicts first-use order two ways — a static call-graph DFS
(SCG, §4.1) and a training profile (Train, §4.2) — and lays methods out
*in predicted first-use order*.  Train is provably optimal on its own
trace, so the only room to improve is how unprofiled methods are
handled: Train dumps every method the training input never used at the
tail of the stream, and the interleaved methodology has no demand
fetch, so one early-needed unseen method stalls execution until nearly
the whole file has arrived — poisoning every later first use.

This module adds the third strategy from ROADMAP ("Optimizing Function
Layout for Mobile Applications", Meta 2022), built on the weighted
call graph of :mod:`repro.analyze.interproc`:

1. **Measured spine.**  Profiled methods are laid out in measured
   first-use order (identical to Train over that subset — their
   relative order is ground truth).

2. **Affinity-anchor placement.**  Each unprofiled-but-reachable
   method is anchored to its strongest-affinity *measured* neighbour
   in the weighted call graph and scheduled for insertion immediately
   after it: cold code rides with the hot caller/callee most likely to
   fault it in.  Methods with no measured neighbour stay at the tail.

3. **Economic insertion gate.**  An anchored insertion ships bytes
   that delay every later first use — a certain cost — against the
   *expected* cost of tail placement: the stall from the anchor's time
   until tail arrival plus the poisoning of every first use inside
   that window, discounted by the prior :data:`P_UNSEEN_USE` that an
   unseen method is used at all.  Execution-bound sessions (file lands
   before late first uses) keep the tail free, and the layout
   degenerates towards Train; stall-bound sessions insert.

4. **Balanced-partitioning tail.**  Interprocedurally dead methods are
   laid out by recursive graph bisection over call-edge affinity, so a
   misprediction that faults one in tends to have already fetched its
   neighbours.

Without a profile the layout degrades to a pure-static mode (the
SCG-comparable configuration): probability-discounted interprocedural
distances order every reachable method.  The resulting
:class:`~repro.reorder.first_use.FirstUseOrder` carries
``source="weighted"`` and plugs into every consumer of SCG/Train
orders: the simulator, the transfer-plan analyzer, netserve planning,
the CLI, and the load generator.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..analyze.interproc import InterprocAnalysis, analyze_interproc
from ..classfile import class_layout
from ..program import MethodId, Program
from ..transfer.link import T1_LINK, NetworkLink
from ..vm import FirstUseProfile
from .first_use import FirstUseEntry, FirstUseOrder

__all__ = ["weighted_first_use"]

#: Default CPI matching the paper's simulator configuration.
DEFAULT_CPI = 30.0

#: Prior probability that a method unseen by the training input is
#: first-used by another input (Laplace's rule of succession after one
#: miss: (0 + 1) / (1 + 2)).
P_UNSEEN_USE = 1.0 / 3.0

#: Below this size the bisection recursion stops and keeps input order.
_BISECT_LEAF = 4

_BISECT_SWEEPS = 4


def _affinity_graph(
    analysis: InterprocAnalysis,
) -> Dict[MethodId, Dict[MethodId, float]]:
    """Symmetric call-edge affinity between methods."""
    affinity: Dict[MethodId, Dict[MethodId, float]] = {}
    for edge, weight in analysis.edge_weights.items():
        if edge.caller == edge.callee:
            continue
        value = max(weight, 1.0)
        for a, b in ((edge.caller, edge.callee), (edge.callee, edge.caller)):
            affinity.setdefault(a, {})[b] = (
                affinity.get(a, {}).get(b, 0.0) + value
            )
    # Dead methods have no feasible edges; fall back to the raw graph so
    # the tail still clusters callers with their callees.
    for edge in analysis.call_graph.edges:
        if not edge.internal or edge.caller == edge.callee:
            continue
        for a, b in ((edge.caller, edge.callee), (edge.callee, edge.caller)):
            affinity.setdefault(a, {}).setdefault(b, 1.0)
    return affinity


def _affinity_order(
    nodes: Sequence[MethodId],
    affinity: Dict[MethodId, Dict[MethodId, float]],
) -> List[MethodId]:
    """Recursive balanced bisection keeping high-affinity pairs close.

    A lightweight Kernighan–Lin refinement swaps the best cross-half
    pair while it improves the cut, then each half recurses.  Input
    order is the deterministic tie-break.
    """
    nodes = list(nodes)
    if len(nodes) <= _BISECT_LEAF:
        return nodes
    mid = (len(nodes) + 1) // 2
    left, right = nodes[:mid], nodes[mid:]

    def side_weight(node: MethodId, side: List[MethodId]) -> float:
        edges = affinity.get(node, {})
        return sum(edges.get(other, 0.0) for other in side)

    for _ in range(_BISECT_SWEEPS):
        best_gain = 0.0
        best_pair: Optional[Tuple[int, int]] = None
        for i, a in enumerate(left):
            gain_a = side_weight(a, right) - side_weight(a, left)
            for j, b in enumerate(right):
                gain_b = side_weight(b, left) - side_weight(b, right)
                pair_gain = (
                    gain_a + gain_b - 2.0 * affinity.get(a, {}).get(b, 0.0)
                )
                if pair_gain > best_gain + 1e-12:
                    best_gain = pair_gain
                    best_pair = (i, j)
        if best_pair is None:
            break
        i, j = best_pair
        left[i], right[j] = right[j], left[i]
    return _affinity_order(left, affinity) + _affinity_order(right, affinity)


def _predicted_first_use(
    program: Program,
    analysis: InterprocAnalysis,
    profile: Optional[FirstUseProfile],
    cpi: float,
) -> Tuple[Dict[MethodId, float], Dict[MethodId, bool]]:
    """Predicted first-use time in cycles per method.

    Profiled methods use measured dynamic instructions before first
    use.  Unprofiled-but-reachable methods fall back to the
    interprocedural probability-discounted distance (in instructions)
    scaled by ``cpi`` — comparable *to each other*, not to measured
    times, which is why placement anchors them to measured neighbours
    instead of merging the two scales.  Interprocedurally unreachable
    methods are ``inf``.
    """
    times: Dict[MethodId, float] = {}
    measured: Dict[MethodId, bool] = {}
    if profile is not None:
        for event in profile.events:
            times[event.method] = event.dynamic_instructions_before * cpi
            measured[event.method] = True
    for method_id in program.method_ids():
        if method_id in times:
            continue
        measured[method_id] = False
        distance = analysis.expected_first_use(method_id)
        times[method_id] = (
            math.inf if math.isinf(distance) else distance * cpi
        )
    return times, measured


def weighted_first_use(
    program: Program,
    profile: Optional[FirstUseProfile] = None,
    entry: Optional[MethodId] = None,
    analysis: Optional[InterprocAnalysis] = None,
    link: Optional[NetworkLink] = None,
    cpi: float = DEFAULT_CPI,
) -> FirstUseOrder:
    """Build the optimized-layout first-use order for ``program``.

    Args:
        program: The program to lay out.
        profile: Optional training profile; when given, measured
            first-use times drive the layout (the Train-comparable
            configuration).  Without it the layout is fully static
            (the SCG-comparable configuration).
        entry: Entry override, defaulting to the program's.
        analysis: Pre-computed interprocedural analysis to reuse.
        link: Link whose byte rate prices the insertion gate
            (default T1).
        cpi: Cycles per executed instruction for first-use times.
    """
    analysis = analysis or analyze_interproc(program, entry=entry)
    link = link or T1_LINK
    times, measured = _predicted_first_use(program, analysis, profile, cpi)
    affinity = _affinity_graph(analysis)

    file_rank = {m: i for i, m in enumerate(program.method_ids())}
    anchored = [m for m in file_rank if measured.get(m, False)]
    anchored.sort(key=lambda m: (times[m], file_rank[m]))
    dead = [m for m in file_rank if math.isinf(times[m])]

    if not anchored:
        # Static mode: no measured spine to anchor to — discounted
        # interprocedural distance orders every reachable method.
        live = [m for m in file_rank if not math.isinf(times[m])]
        live.sort(key=lambda m: (times[m], file_rank[m]))
        layout = live + _affinity_order(dead, affinity)
        return _as_order(program, layout, measured)

    unseen = [
        m
        for m in file_rank
        if not measured.get(m, False) and not math.isinf(times[m])
    ]

    # Affinity-anchor placement: each unseen method is scheduled at its
    # strongest measured neighbour's time.  Sort keys make measured
    # methods sort first at equal times (secondary key -1 < file_rank).
    placed: List[Tuple[float, int, MethodId]] = []
    tail: List[MethodId] = []
    for method_id in unseen:
        best: Optional[MethodId] = None
        best_weight = 0.0
        for neighbour, weight in affinity.get(method_id, {}).items():
            if measured.get(neighbour, False) and weight > best_weight:
                best, best_weight = neighbour, weight
        if best is None:
            tail.append(method_id)
        else:
            placed.append((times[best], file_rank[method_id], method_id))
    placed.sort()

    # Economic insertion gate: the candidate's shipped bytes delay
    # every later first use (certain cost); tail placement risks a
    # stall from its anchored need time until tail arrival plus the
    # poisoning of every first use inside that window — the
    # interleaved stream has no demand fetch, so one early-needed tail
    # method releases everything after it at its own arrival
    # (expected cost, discounted by P_UNSEEN_USE).
    rate = link.cycles_per_byte
    global_bytes = {
        classfile.name: class_layout(classfile).global_bytes
        for classfile in program.classes
    }
    sizes = {
        method_id: program.method(method_id).size for method_id in file_rank
    }
    candidate_layout = (
        anchored + [m for _, _, m in placed] + tail + dead
    )
    arrivals: Dict[MethodId, float] = {}
    prefix = 0.0
    seen_classes: set = set()
    for method_id in candidate_layout:
        prefix += sizes[method_id]
        if method_id.class_name not in seen_classes:
            seen_classes.add(method_id.class_name)
            prefix += global_bytes[method_id.class_name]
        arrivals[method_id] = prefix * rate
    anchored_times = sorted((times[m], arrivals[m]) for m in anchored)

    inserted: List[Tuple[float, int, MethodId]] = []
    for need, rank, method_id in placed:
        arrival = arrivals[method_id]
        if need >= arrival:
            tail.append(method_id)
            continue
        stall = arrival - need
        poison = sum(
            arrival - max(u_j, a_j)
            for u_j, a_j in anchored_times
            if need < u_j < arrival and a_j < arrival
        )
        later = sum(1 for u_j, _ in anchored_times if u_j > need)
        insert_cost = (
            sizes[method_id] + global_bytes[method_id.class_name]
        ) * rate * later
        if P_UNSEEN_USE * (stall + poison) > insert_cost:
            inserted.append((need, rank, method_id))
        else:
            tail.append(method_id)

    merged = [(times[m], -1, m) for m in anchored] + inserted
    merged.sort(key=lambda item: (item[0], item[1]))
    layout = (
        [m for _, _, m in merged]
        + sorted(tail, key=lambda m: file_rank[m])
        + _affinity_order(dead, affinity)
    )
    return _as_order(program, layout, measured)


def _as_order(
    program: Program,
    layout: Sequence[MethodId],
    measured: Dict[MethodId, bool],
) -> FirstUseOrder:
    entries: List[FirstUseEntry] = []
    cumulative = 0
    cumulative_instructions = 0
    for method_id in layout:
        entries.append(
            FirstUseEntry(
                method=method_id,
                bytes_before=cumulative,
                instructions_before=cumulative_instructions,
                estimated=not measured.get(method_id, False),
            )
        )
        method = program.method(method_id)
        cumulative += method.size
        cumulative_instructions += len(method.instructions)
    order = FirstUseOrder(entries=entries, source="weighted")
    order.validate_against(program)
    return order
