"""Profile-guided first-use ordering (paper §4.2).

A first-use profile records the order in which procedures were invoked
while running a *training* input.  Methods never executed by the
training input are placed after all profiled methods, in the static
estimator's order — exactly the paper's fallback rule.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ReorderError
from ..program import MethodId, Program
from ..vm import FirstUseProfile, TraceRecorder, VirtualMachine
from .first_use import FirstUseEntry, FirstUseOrder
from .static_estimator import estimate_first_use

__all__ = ["order_from_profile", "profile_program", "profile_first_use"]


def profile_program(
    program: Program,
    entry: Optional[MethodId] = None,
    args=(),
    max_instructions: int = 50_000_000,
) -> FirstUseProfile:
    """Run ``program`` under the profiler and return its profile."""
    recorder = TraceRecorder()
    machine = VirtualMachine(
        program,
        instruments=[recorder],
        max_instructions=max_instructions,
    )
    machine.run(entry=entry, args=args)
    return recorder.profile


def order_from_profile(
    program: Program,
    profile: FirstUseProfile,
    static_order: Optional[FirstUseOrder] = None,
) -> FirstUseOrder:
    """Build a total first-use order from a training profile.

    Args:
        program: The program being reordered.
        profile: A first-use profile (typically from the *train* input).
        static_order: Fallback order for unexecuted methods; computed
            from ``program`` when not supplied.

    Raises:
        ReorderError: If the profile mentions methods the program lacks.
    """
    for event in profile.events:
        if not program.has_method(event.method):
            raise ReorderError(
                f"profile mentions unknown method {event.method}"
            )
    entries: List[FirstUseEntry] = [
        FirstUseEntry(
            method=event.method,
            bytes_before=event.unique_bytes_before,
            instructions_before=event.dynamic_instructions_before,
            estimated=False,
        )
        for event in profile.events
    ]
    profiled = {event.method for event in profile.events}
    # Every profiled method's first use happens before the program ends,
    # so unexecuted methods sort after the total executed unique bytes.
    executed_bytes = sum(
        stats.unique_bytes for stats in profile.method_stats.values()
    )
    fallback = static_order or estimate_first_use(program)
    cumulative = executed_bytes
    cumulative_instructions = profile.total_instructions
    for method_id in fallback.order:
        if method_id in profiled:
            continue
        entries.append(
            FirstUseEntry(
                method=method_id,
                bytes_before=cumulative,
                instructions_before=cumulative_instructions,
                estimated=True,
            )
        )
        method = program.method(method_id)
        cumulative += method.size
        cumulative_instructions += len(method.instructions)
    order = FirstUseOrder(entries=entries, source="profile")
    order.validate_against(program)
    return order


def profile_first_use(
    program: Program,
    entry: Optional[MethodId] = None,
    args=(),
) -> FirstUseOrder:
    """Profile ``program`` and derive its first-use order in one step."""
    profile = profile_program(program, entry=entry, args=args)
    return order_from_profile(program, profile)
