"""Procedure splitting (the paper's §4 future-work hook).

The paper notes that "large procedures can still benefit by using the
compiler to break the procedure up into smaller procedures", but does
not implement it.  This module provides a conservative splitter:

* only **straight-line** methods (no branches) are split — exactly the
  shape of large initializer/table-building methods, the usual outliers;
* split points are placed where the simulated operand stack is empty,
  so each piece is a well-formed method;
* each piece passes the locals the next piece reads as arguments and
  tail-calls it, propagating the return value.

The transformation preserves semantics (tested against the VM) and
turns one oversized transfer unit into several smaller ones.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..bytecode import Instruction, Opcode, SysCall
from ..classfile import ClassFile, MethodInfo, parse_descriptor
from ..errors import ReorderError
from ..program import Program

__all__ = ["split_method", "split_large_methods"]


def _stack_effect(
    classfile: ClassFile, instruction: Instruction
) -> Tuple[int, int]:
    """(pops, pushes) including data-dependent CALL/SYS."""
    info = instruction.info
    if instruction.opcode == Opcode.CALL:
        _, _, descriptor = classfile.constant_pool.member_ref(
            instruction.operand
        )
        parsed = parse_descriptor(descriptor)
        return parsed.arity, 1 if parsed.returns_value else 0
    if instruction.opcode == Opcode.SYS:
        try:
            return SysCall.STACK_EFFECT[instruction.operand]
        except KeyError as exc:
            raise ReorderError(
                f"unknown SYS code {instruction.operand}"
            ) from exc
    if info.pops < 0 or info.pushes < 0:  # pragma: no cover - closed set
        raise ReorderError(f"unmodelled stack effect for {info.mnemonic}")
    return info.pops, info.pushes


def _split_points(
    classfile: ClassFile, instructions: List[Instruction]
) -> List[int]:
    """Indexes *after* which the operand stack is statically empty."""
    points: List[int] = []
    depth = 0
    for index, instruction in enumerate(instructions[:-1]):
        pops, pushes = _stack_effect(classfile, instruction)
        depth -= pops
        if depth < 0:
            raise ReorderError("stack underflow in straight-line code")
        depth += pushes
        if depth == 0:
            points.append(index + 1)
    return points


def _max_local_used(instructions: List[Instruction]) -> int:
    """1 + highest LOAD/STORE slot, or 0 when none are used."""
    highest = -1
    for instruction in instructions:
        if instruction.opcode in (Opcode.LOAD, Opcode.STORE):
            highest = max(highest, instruction.operand)
    return highest + 1


def split_method(
    classfile: ClassFile,
    method_name: str,
    max_unit_bytes: int,
) -> ClassFile:
    """Split one straight-line method into pieces of bounded size.

    Args:
        classfile: Class containing the method.
        method_name: Method to split.
        max_unit_bytes: Target maximum code bytes per piece.

    Returns:
        A new :class:`ClassFile`; untouched methods are shared.

    Raises:
        ReorderError: If the method branches, has no usable split
            point, or is already within the bound.
    """
    method = classfile.method(method_name)
    instructions = method.instructions
    if any(
        instruction.info.is_branch for instruction in instructions
    ):
        raise ReorderError(
            f"{method_name!r} has branches; only straight-line methods "
            "can be split"
        )
    if any(
        instruction.info.is_return
        for instruction in instructions[:-1]
    ):
        raise ReorderError(f"{method_name!r} has early returns")
    if method.code_bytes <= max_unit_bytes:
        raise ReorderError(
            f"{method_name!r} is already within {max_unit_bytes} bytes"
        )

    candidate_points = _split_points(classfile, instructions)
    if not candidate_points:
        raise ReorderError(f"{method_name!r} has no empty-stack point")

    # Greedy: cut at the last candidate that keeps the piece in bounds.
    pieces: List[List[Instruction]] = []
    start = 0
    while start < len(instructions):
        budget = 0
        cut: Optional[int] = None
        for index in range(start, len(instructions)):
            budget += instructions[index].size
            if budget > max_unit_bytes and cut is not None:
                break
            if index + 1 in candidate_points:
                cut = index + 1
        if cut is None or cut <= start or budget <= max_unit_bytes:
            pieces.append(instructions[start:])
            break
        pieces.append(instructions[start:cut])
        start = cut

    if len(pieces) < 2:
        raise ReorderError(
            f"{method_name!r}: no split produces more than one piece"
        )

    return_type = method.parsed_descriptor.return_type
    pool = classfile.constant_pool
    new_methods: List[MethodInfo] = []
    # Build from the last piece backwards so each piece can call the next.
    next_name: Optional[str] = None
    next_arg_count = 0
    for piece_number in range(len(pieces) - 1, -1, -1):
        piece = pieces[piece_number]
        is_first = piece_number == 0
        is_last = piece_number == len(pieces) - 1
        if is_first:
            name = method.name
            arg_count = method.parsed_descriptor.arity
            descriptor = method.descriptor
        else:
            name = f"{method.name}${piece_number}"
            # This piece reads its own slots and forwards the next
            # piece's arguments, so it needs the larger of the two.
            arg_count = max(_max_local_used(piece), next_arg_count)
            descriptor = f"({'I' * arg_count}){return_type}"
        code = list(piece)
        if not is_last:
            assert next_name is not None
            for slot in range(next_arg_count):
                code.append(Instruction(Opcode.LOAD, (slot,)))
            ref = pool.add_method_ref(
                classfile.name,
                next_name,
                f"({'I' * next_arg_count}){return_type}",
            )
            code.append(Instruction(Opcode.CALL, (ref,)))
            code.append(
                Instruction(
                    Opcode.IRETURN if return_type != "V" else Opcode.RETURN
                )
            )
        new_methods.append(
            MethodInfo(
                name=name,
                descriptor=descriptor,
                instructions=code,
                max_stack=method.max_stack + next_arg_count,
                max_locals=max(method.max_locals, arg_count),
                local_data=method.local_data if is_first else b"",
                access_flags=method.access_flags,
            )
        )
        next_name = name
        next_arg_count = arg_count

    new_methods.reverse()
    methods: List[MethodInfo] = []
    for existing in classfile.methods:
        if existing.name == method_name:
            methods.extend(new_methods)
        else:
            methods.append(existing)
    return ClassFile(
        name=classfile.name,
        constant_pool=pool,
        access_flags=classfile.access_flags,
        interfaces=classfile.interfaces,
        fields=classfile.fields,
        methods=methods,
        attributes=classfile.attributes,
    )


def split_large_methods(
    program: Program, max_unit_bytes: int
) -> Program:
    """Split every splittable oversized method in a program.

    Methods that cannot be split (branches, no split point) are left
    alone — splitting is an opportunistic optimization.
    """
    classes = []
    for classfile in program.classes:
        current = classfile
        for method in list(classfile.methods):
            if method.code_bytes <= max_unit_bytes:
                continue
            try:
                current = split_method(
                    current, method.name, max_unit_bytes
                )
            except ReorderError:
                continue
        classes.append(current)
    return Program(classes=classes, entry_point=program.entry_point)
