"""repro — non-strict execution for mobile programs.

A full reproduction of Krintz, Calder, Lee & Zorn, *Overlapping
Execution with Transfer Using Non-Strict Execution for Mobile
Programs* (ASPLOS 1998): a Java-like class file substrate, bytecode VM
with BIT-style instrumentation, first-use reordering (static and
profile-guided), global data partitioning, strict/parallel/interleaved
transfer simulation, and the full experiment harness.

Quickstart::

    import repro

    program = repro.figure1_program()
    result, recorder = repro.record_run(program)
    order = repro.estimate_first_use(program)
    sim = repro.run_nonstrict(
        program, recorder.trace, order, repro.T1_LINK, cpi=50,
    )
    base = repro.strict_baseline(
        program, recorder.trace, repro.T1_LINK, cpi=50,
    )
    print(f"{sim.normalized_to(base.total_cycles):.1f}% of strict")
"""

from .core import (
    InvocationLatencyReport,
    MethodInvocationLatency,
    SimulationResult,
    Simulator,
    StallEvent,
    StrictBaseline,
    invocation_latency_cycles,
    program_wire_bytes,
    run_nonstrict,
    run_strict,
    strict_baseline,
)
from .errors import ReproError
from .faults import FaultPlan
from .lang import compile_source
from .netserve import (
    ClassFileServer,
    NetworkRunResult,
    NonStrictFetcher,
    ResilientFetcher,
    fetch_and_run,
    run_networked,
)
from .program import MethodId, Program
from .storage import (
    load_profile,
    load_program,
    load_trace,
    save_profile,
    save_program,
    save_trace,
)
from .reorder import (
    FirstUseEntry,
    FirstUseOrder,
    estimate_first_use,
    order_from_profile,
    profile_first_use,
    profile_program,
    restructure,
    split_large_methods,
    split_method,
)
from .transfer import (
    MODEM_LINK,
    T1_LINK,
    LossyLink,
    NetworkLink,
    TransferPolicy,
    link_from_bandwidth,
    lossy_link,
)
from .vm import (
    ExecutionTrace,
    FirstUseProfile,
    TraceRecorder,
    TraceSegment,
    VirtualMachine,
    record_run,
    synthesize_profile,
)
from .workloads import (
    countdown_program,
    fibonacci_program,
    figure1_program,
    mutual_recursion_program,
)
from .workloads.spec import PAPER_BENCHMARKS, BenchmarkSpec, benchmark_spec
from .workloads.synthetic import SyntheticWorkload, generate_workload

__version__ = "1.0.0"

__all__ = [
    "InvocationLatencyReport",
    "MethodInvocationLatency",
    "ClassFileServer",
    "FaultPlan",
    "NetworkRunResult",
    "NonStrictFetcher",
    "ResilientFetcher",
    "fetch_and_run",
    "run_networked",
    "SimulationResult",
    "Simulator",
    "StallEvent",
    "StrictBaseline",
    "invocation_latency_cycles",
    "program_wire_bytes",
    "run_nonstrict",
    "run_strict",
    "strict_baseline",
    "ReproError",
    "compile_source",
    "MethodId",
    "Program",
    "load_profile",
    "load_program",
    "load_trace",
    "save_profile",
    "save_program",
    "save_trace",
    "FirstUseEntry",
    "FirstUseOrder",
    "estimate_first_use",
    "order_from_profile",
    "profile_first_use",
    "profile_program",
    "restructure",
    "split_large_methods",
    "split_method",
    "MODEM_LINK",
    "T1_LINK",
    "LossyLink",
    "NetworkLink",
    "TransferPolicy",
    "link_from_bandwidth",
    "lossy_link",
    "ExecutionTrace",
    "FirstUseProfile",
    "TraceRecorder",
    "TraceSegment",
    "VirtualMachine",
    "record_run",
    "synthesize_profile",
    "countdown_program",
    "fibonacci_program",
    "figure1_program",
    "mutual_recursion_program",
    "PAPER_BENCHMARKS",
    "BenchmarkSpec",
    "benchmark_spec",
    "SyntheticWorkload",
    "generate_workload",
    "__version__",
]
