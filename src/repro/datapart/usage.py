"""First-use analysis of global data (paper §7.3, Table 9).

Determines, for each class file, which constant pool entries are

* **needed first** — required before any method can execute: the class's
  own identity, interfaces, field declarations (preparation needs their
  names/descriptors and ConstantValue payloads), and class attributes;
* **needed by methods** — first referenced by a particular method's
  code (LDC, CALL, GETSTATIC/PUTSTATIC operands and the method's own
  name/descriptor/attribute strings), assigned to that method's
  GlobalMethodData (GMD);
* **unused** — present in the class file but referenced by nothing.

References are closed transitively (a MethodRef needs its Class and
NameAndType entries, which need their Utf8 entries, ...).
"""

from __future__ import annotations

from typing import List, Set

from ..bytecode import Opcode
from ..classfile import (
    CODE_ATTRIBUTE,
    LOCAL_DATA_ATTRIBUTE,
    ClassEntry,
    ClassFile,
    ConstantPool,
    FieldRefEntry,
    InterfaceMethodRefEntry,
    MethodInfo,
    MethodRefEntry,
    NameAndTypeEntry,
    StringEntry,
)

__all__ = [
    "reference_closure",
    "method_pool_references",
    "setup_pool_references",
]

_POOL_OPERAND_OPCODES = frozenset(
    {Opcode.LDC, Opcode.CALL, Opcode.GETSTATIC, Opcode.PUTSTATIC}
)


def reference_closure(pool: ConstantPool, roots: Set[int]) -> Set[int]:
    """Transitively close a set of constant pool indices."""
    closed: Set[int] = set()
    frontier = list(roots)
    while frontier:
        index = frontier.pop()
        if index in closed:
            continue
        closed.add(index)
        entry = pool.get(index)
        if isinstance(entry, ClassEntry):
            frontier.append(entry.name_index)
        elif isinstance(entry, StringEntry):
            frontier.append(entry.utf8_index)
        elif isinstance(
            entry,
            (FieldRefEntry, MethodRefEntry, InterfaceMethodRefEntry),
        ):
            frontier.append(entry.class_index)
            frontier.append(entry.name_and_type_index)
        elif isinstance(entry, NameAndTypeEntry):
            frontier.append(entry.name_index)
            frontier.append(entry.descriptor_index)
    return closed


def _utf8_roots(pool: ConstantPool, values: List[str]) -> Set[int]:
    roots: Set[int] = set()
    for value in values:
        index = pool.find_utf8(value)
        if index is not None:
            roots.add(index)
    return roots


def method_pool_references(
    classfile: ClassFile, method: MethodInfo
) -> Set[int]:
    """All pool indices method execution and verification touch."""
    pool = classfile.constant_pool
    roots: Set[int] = set()
    for instruction in method.instructions:
        if instruction.opcode in _POOL_OPERAND_OPCODES:
            roots.add(instruction.operand)
    names = [method.name, method.descriptor, CODE_ATTRIBUTE]
    if method.local_data:
        names.append(LOCAL_DATA_ATTRIBUTE)
    for attribute in method.attributes:
        names.append(attribute.name)
    roots |= _utf8_roots(pool, names)
    # The method's own MethodRef (created for intra-program calls).
    for index, entry in pool.entries():
        if isinstance(entry, MethodRefEntry):
            class_name, member, descriptor = pool.member_ref(index)
            if (
                class_name == classfile.name
                and member == method.name
                and descriptor == method.descriptor
            ):
                roots.add(index)
    return reference_closure(pool, roots)


def setup_pool_references(classfile: ClassFile) -> Set[int]:
    """Pool indices needed before any method runs (verification steps
    1–2 and preparation, §3.1)."""
    pool = classfile.constant_pool
    roots: Set[int] = set()
    this_index = pool.find_utf8(classfile.name)
    if this_index is not None:
        roots.add(this_index)
    for index, entry in pool.entries():
        if isinstance(entry, ClassEntry):
            name = pool.utf8(entry.name_index)
            if name == classfile.name or name in classfile.interfaces:
                roots.add(index)
    names: List[str] = []
    for field_info in classfile.fields:
        names.append(field_info.name)
        names.append(field_info.descriptor)
        for attribute in field_info.attributes:
            names.append(attribute.name)
            if attribute.name == "ConstantValue":
                roots.add(int.from_bytes(attribute.data, "big"))
    for attribute in classfile.attributes:
        names.append(attribute.name)
    roots |= _utf8_roots(pool, names)
    return reference_closure(pool, roots)
