"""GlobalMethodData (GMD) partitioning of class file global data.

The paper (§7.3) proposes placing a GMD structure before each procedure
containing "only the data in the constant pool and attributes that are
needed to execute up to and including the procedure".  This module
computes those partitions: every constant pool entry is attributed to
the *first* method (in file order) that references it; entries needed
for class setup go to the up-front chunk; unreferenced entries are
unused and transfer last.

Byte accounting is exact:
``first_bytes + sum(gmd sizes) + unused_bytes == ClassLayout.global_bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..classfile import ClassFile, class_layout
from ..errors import ClassFileError
from ..program import Program
from .usage import method_pool_references, setup_pool_references

__all__ = ["DataPartition", "partition_class", "partition_program"]


@dataclass(frozen=True)
class DataPartition:
    """How one class's global data splits under partitioning.

    Attributes:
        class_name: The class.
        first_bytes: Global data that must precede all execution —
            structural framing, field/interface/attribute tables, and
            setup-referenced pool entries.
        setup_pool_bytes: The constant-pool-entry portion of
            ``first_bytes`` (what the wire's needed-first chunk carries
            beyond the fixed framing).
        gmd_sizes: ``(method name, GMD bytes)`` in file order; each GMD
            holds the pool entries first referenced by that method.
        unused_bytes: Pool entries no method or setup references.
    """

    class_name: str
    first_bytes: int
    setup_pool_bytes: int
    gmd_sizes: Tuple[Tuple[str, int], ...]
    unused_bytes: int

    @property
    def total_global_bytes(self) -> int:
        return (
            self.first_bytes
            + sum(size for _, size in self.gmd_sizes)
            + self.unused_bytes
        )

    @property
    def method_bytes(self) -> int:
        return sum(size for _, size in self.gmd_sizes)

    def gmd_size(self, method_name: str) -> int:
        for name, size in self.gmd_sizes:
            if name == method_name:
                return size
        raise ClassFileError(
            f"no GMD for method {method_name!r} in {self.class_name!r}"
        )

    def percentages(self) -> Dict[str, float]:
        """Table 9's three percentage columns for this class."""
        total = self.total_global_bytes or 1
        return {
            "needed_first": 100.0 * self.first_bytes / total,
            "in_methods": 100.0 * self.method_bytes / total,
            "unused": 100.0 * self.unused_bytes / total,
        }


def partition_class(classfile: ClassFile) -> DataPartition:
    """Partition one class's global data by first use (file order)."""
    layout = class_layout(classfile)
    pool = classfile.constant_pool
    entry_sizes = {index: entry.size for index, entry in pool.entries()}

    setup = setup_pool_references(classfile)
    assigned: Set[int] = set(setup)
    gmd_sizes: List[Tuple[str, int]] = []
    for method in classfile.methods:
        fresh = method_pool_references(classfile, method) - assigned
        assigned |= fresh
        gmd_sizes.append(
            (method.name, sum(entry_sizes[index] for index in fresh))
        )
    unused = set(entry_sizes) - assigned
    unused_bytes = sum(entry_sizes[index] for index in unused)

    # 'Needed first' = setup pool entries plus every non-pool global
    # byte (file framing, field table, interfaces, class attributes,
    # and the pool count header).
    setup_pool_bytes = sum(entry_sizes[index] for index in setup)
    pool_entry_bytes = sum(entry_sizes.values())
    non_pool_global = layout.global_size - pool_entry_bytes
    first_bytes = setup_pool_bytes + non_pool_global

    partition = DataPartition(
        class_name=classfile.name,
        first_bytes=first_bytes,
        setup_pool_bytes=setup_pool_bytes,
        gmd_sizes=tuple(gmd_sizes),
        unused_bytes=unused_bytes,
    )
    if partition.total_global_bytes != layout.global_size:
        raise ClassFileError(
            f"{classfile.name}: partition accounts for "
            f"{partition.total_global_bytes} global bytes, layout has "
            f"{layout.global_size}"
        )
    return partition


def partition_program(program: Program) -> Dict[str, DataPartition]:
    """Partition every class of a program, keyed by class name."""
    return {
        classfile.name: partition_class(classfile)
        for classfile in program.classes
    }
