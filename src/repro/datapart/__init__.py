"""Global data partitioning (GMD) — paper §7.3."""

from .gmd import DataPartition, partition_class, partition_program
from .usage import (
    method_pool_references,
    reference_closure,
    setup_pool_references,
)

__all__ = [
    "DataPartition",
    "partition_class",
    "partition_program",
    "method_pool_references",
    "reference_closure",
    "setup_pool_references",
]
