"""netserve: a real asyncio class-file server and non-strict fetcher.

The simulator (:mod:`repro.core`) models transfer in CPU cycles; this
package moves the same :class:`~repro.transfer.TransferUnit` streams
over real TCP sockets, with bandwidth pacing and §5.1 demand-fetch
priority, so the model can be validated against wall-clock transfers.
"""

from .bridge import NetworkRunResult, fetch_and_run, run_networked
from .cache import ArtifactCache, SessionArtifact, program_fingerprint
from .client import NonStrictFetcher
from .loadgen import (
    CellResult,
    LoadCell,
    SweepReport,
    run_cell,
    run_sweep,
    sweep_cells,
    write_bench_json,
)
from .resilient import ResilientFetcher
from .payloads import (
    DELIMITER_FILLER,
    build_class_payloads,
    build_program_payloads,
    fit_payload,
)
from .protocol import (
    FRAME_OVERHEAD,
    MAGIC,
    PROTOCOL_VERSION,
    Frame,
    FrameKind,
    decode_frame,
    demand_fetch_frame,
    encode_frame,
    eof_frame,
    error_frame,
    hello_ack_frame,
    hello_frame,
    read_frame,
    read_raw_frame,
    resume_ack_frame,
    resume_frame,
    salvage_unit_key,
    unit_frame,
    unit_kind_from_code,
    unit_wire_key,
)
from .server import REORDER_STRATEGIES, ClassFileServer, TokenBucket
from .striped import LinkState, StripedResilientFetcher
from .stats import (
    ConnectionStats,
    FetchStats,
    ServerStats,
    format_fetch_stats,
)

__all__ = [
    "NetworkRunResult",
    "fetch_and_run",
    "run_networked",
    "ArtifactCache",
    "SessionArtifact",
    "program_fingerprint",
    "NonStrictFetcher",
    "CellResult",
    "LoadCell",
    "SweepReport",
    "run_cell",
    "run_sweep",
    "sweep_cells",
    "write_bench_json",
    "ResilientFetcher",
    "DELIMITER_FILLER",
    "build_class_payloads",
    "build_program_payloads",
    "fit_payload",
    "FRAME_OVERHEAD",
    "MAGIC",
    "PROTOCOL_VERSION",
    "Frame",
    "FrameKind",
    "decode_frame",
    "demand_fetch_frame",
    "encode_frame",
    "eof_frame",
    "error_frame",
    "hello_ack_frame",
    "hello_frame",
    "read_frame",
    "read_raw_frame",
    "resume_ack_frame",
    "resume_frame",
    "salvage_unit_key",
    "unit_frame",
    "unit_kind_from_code",
    "unit_wire_key",
    "REORDER_STRATEGIES",
    "ClassFileServer",
    "TokenBucket",
    "LinkState",
    "StripedResilientFetcher",
    "ConnectionStats",
    "FetchStats",
    "ServerStats",
    "format_fetch_stats",
]
