"""Length-prefixed binary wire protocol for transfer units.

Every message is a *frame*::

    u16  magic   (0x524E, "RN")
    u8   version (1)
    u8   kind    (FrameKind)
    u32  body length
    ...  body
    u32  CRC32 of the body

Control frames (``HELLO``, ``HELLO_ACK``, ``DEMAND_FETCH``, ``ERROR``,
``RESUME``, ``RESUME_ACK``) carry a UTF-8 JSON object as their body;
``EOF`` has an empty body.  A
``UNIT`` frame carries one :class:`~repro.transfer.TransferUnit` plus
its payload bytes::

    u8   unit kind (UnitKind code)
    u16  class-name length, then UTF-8 class name
    u16  method-name length (0 = none), then UTF-8 method name
    u32  declared unit size
    ...  payload (exactly the declared size)

Corruption is detected, never silently tolerated: a bad magic, version,
kind, CRC, or inconsistent body raises
:class:`~repro.errors.FrameCorruptionError`; an incomplete buffer
raises :class:`~repro.errors.TruncatedFrameError` so stream readers
know to wait for more bytes; a vanished peer surfaces as
:class:`~repro.errors.ConnectionLostError`.
"""

from __future__ import annotations

import asyncio
import enum
import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Tuple

from ..errors import (
    ConnectionLostError,
    FrameCorruptionError,
    TransferError,
    TruncatedFrameError,
)
from ..program import MethodId
from ..transfer import TransferUnit, UnitKind

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "FRAME_OVERHEAD",
    "MAX_BODY_BYTES",
    "FrameKind",
    "Frame",
    "hello_frame",
    "hello_ack_frame",
    "unit_frame",
    "demand_fetch_frame",
    "resume_frame",
    "resume_ack_frame",
    "error_frame",
    "eof_frame",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "read_raw_frame",
    "salvage_unit_key",
    "unit_kind_code",
    "unit_kind_from_code",
    "unit_wire_key",
]

MAGIC = 0x524E  # "RN"
PROTOCOL_VERSION = 1

_HEADER = struct.Struct(">HBBI")
_CRC = struct.Struct(">I")
_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")

#: Fixed per-frame framing bytes (header + CRC trailer).
FRAME_OVERHEAD = _HEADER.size + _CRC.size

#: Upper bound on a frame body — no legitimate unit is anywhere near
#: this, so larger declared lengths are treated as corruption rather
#: than honored with a giant allocation.
MAX_BODY_BYTES = 64 * 1024 * 1024


class FrameKind(enum.IntEnum):
    """What a frame carries."""

    HELLO = 1  # client -> server: policy/strategy negotiation
    HELLO_ACK = 2  # server -> client: accepted config + manifest
    UNIT = 3  # server -> client: one transfer unit
    DEMAND_FETCH = 4  # client -> server: mispredict correction
    ERROR = 5  # either direction: fatal, typed message
    EOF = 6  # server -> client: stream complete
    RESUME = 7  # client -> server: resume a session, skipping held units
    RESUME_ACK = 8  # server -> client: accepted resume + remaining manifest


_UNIT_KIND_CODES: Dict[UnitKind, int] = {
    UnitKind.CLASS_FILE: 1,
    UnitKind.GLOBAL_DATA: 2,
    UnitKind.GLOBAL_FIRST: 3,
    UnitKind.METHOD: 4,
    UnitKind.GLOBAL_UNUSED: 5,
}
_UNIT_KINDS_BY_CODE = {code: kind for kind, code in _UNIT_KIND_CODES.items()}


def unit_kind_from_code(code: int) -> UnitKind:
    """Wire code back to a :class:`~repro.transfer.UnitKind`."""
    kind = _UNIT_KINDS_BY_CODE.get(code)
    if kind is None:
        raise FrameCorruptionError(f"unknown unit kind code {code}")
    return kind


def unit_kind_code(kind: UnitKind) -> int:
    """A :class:`~repro.transfer.UnitKind`'s wire code."""
    return _UNIT_KIND_CODES[kind]


def unit_wire_key(unit: TransferUnit) -> Tuple[int, str, Optional[str]]:
    """A unit's stable wire identity: (kind code, class, method).

    This is what RESUME's ``have`` set and the duplicate filter use, so
    the same unit is recognized across reconnects and re-sends.
    """
    return (
        _UNIT_KIND_CODES[unit.kind],
        unit.class_name,
        unit.method.method_name if unit.method is not None else None,
    )


@dataclass(frozen=True)
class Frame:
    """One decoded frame.

    Attributes:
        kind: The frame kind.
        fields: JSON fields, for control frames.
        unit: The transfer unit, for ``UNIT`` frames.
        payload: The unit's payload bytes, for ``UNIT`` frames.
        wire_size: Encoded size in bytes (set by the decoder; not part
            of frame identity).
    """

    kind: FrameKind
    fields: Tuple[Tuple[str, Any], ...] = ()
    unit: Optional[TransferUnit] = None
    payload: bytes = b""
    wire_size: int = field(default=0, compare=False)

    @property
    def field_dict(self) -> Dict[str, Any]:
        return dict(self.fields)


def _json_frame(kind: FrameKind, fields: Dict[str, Any]) -> Frame:
    return Frame(kind=kind, fields=tuple(sorted(fields.items())))


def hello_frame(
    policy: str, strategy: str = "static", **extra: Any
) -> Frame:
    """Client hello: requested transfer policy and reorder strategy."""
    return _json_frame(
        FrameKind.HELLO,
        {"policy": policy, "strategy": strategy, **extra},
    )


def hello_ack_frame(**fields: Any) -> Frame:
    """Server acknowledgement: accepted config plus stream manifest."""
    return _json_frame(FrameKind.HELLO_ACK, fields)


def unit_frame(unit: TransferUnit, payload: bytes) -> Frame:
    """A transfer unit and its payload (padded to the unit's size)."""
    if len(payload) != unit.size:
        raise TransferError(
            f"payload is {len(payload)} bytes but unit declares "
            f"{unit.size}: {unit}"
        )
    return Frame(kind=FrameKind.UNIT, unit=unit, payload=payload)


def demand_fetch_frame(
    class_name: str,
    method_name: Optional[str] = None,
    *,
    kind: Optional[UnitKind] = None,
    resend: bool = False,
) -> Frame:
    """Client mispredict correction: prioritize this class/method.

    With ``resend=True`` the server also re-enqueues matching units it
    already sent — the recovery path for a unit whose frame arrived
    damaged.  ``kind`` narrows a resend to one unit kind so a single
    corrupted frame costs exactly one re-transmission.
    """
    fields: Dict[str, Any] = {"class": class_name, "method": method_name}
    if kind is not None:
        fields["kind"] = _UNIT_KIND_CODES[kind]
    if resend:
        fields["resend"] = True
    return _json_frame(FrameKind.DEMAND_FETCH, fields)


def resume_frame(
    policy: str,
    strategy: str = "static",
    have: Iterable[Tuple[int, str, Optional[str]]] = (),
    **extra: Any,
) -> Frame:
    """Client reconnect: negotiate like HELLO, but skip held units.

    ``have`` is an iterable of unit wire keys (:func:`unit_wire_key`)
    the client already holds intact; the server filters them out of the
    resumed stream.
    """
    have_list = sorted(
        ([int(code), cls, method] for code, cls, method in have),
        key=lambda key: (key[0], key[1], key[2] or ""),
    )
    return _json_frame(
        FrameKind.RESUME,
        {
            "policy": policy,
            "strategy": strategy,
            "have": have_list,
            **extra,
        },
    )


def resume_ack_frame(**fields: Any) -> Frame:
    """Server acceptance of a resume: config plus *remaining* manifest."""
    return _json_frame(FrameKind.RESUME_ACK, fields)


def error_frame(message: str, code: Optional[str] = None) -> Frame:
    """A fatal typed error.

    ``code`` is an optional machine-readable discriminator (e.g.
    ``"busy"`` for admission-control rejections) so clients can react
    without parsing the human-readable message.
    """
    fields: Dict[str, Any] = {"message": message}
    if code is not None:
        fields["code"] = code
    return _json_frame(FrameKind.ERROR, fields)


def eof_frame() -> Frame:
    return Frame(kind=FrameKind.EOF)


# --- encoding ----------------------------------------------------------


def _encode_body(frame: Frame) -> bytes:
    if frame.kind == FrameKind.UNIT:
        unit = frame.unit
        if unit is None:
            raise TransferError("UNIT frame without a unit")
        class_bytes = unit.class_name.encode("utf-8")
        method_bytes = (
            unit.method.method_name.encode("utf-8")
            if unit.method is not None
            else b""
        )
        return b"".join(
            (
                _U8.pack(_UNIT_KIND_CODES[unit.kind]),
                _U16.pack(len(class_bytes)),
                class_bytes,
                _U16.pack(len(method_bytes)),
                method_bytes,
                _U32.pack(unit.size),
                frame.payload,
            )
        )
    if frame.kind == FrameKind.EOF:
        return b""
    return json.dumps(frame.field_dict, sort_keys=True).encode("utf-8")


def encode_frame(frame: Frame) -> bytes:
    """Serialize a frame to wire bytes."""
    body = _encode_body(frame)
    return b"".join(
        (
            _HEADER.pack(
                MAGIC, PROTOCOL_VERSION, int(frame.kind), len(body)
            ),
            body,
            _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF),
        )
    )


# --- decoding ----------------------------------------------------------


def _decode_unit_body(body: bytes, wire_size: int) -> Frame:
    try:
        offset = 0
        (kind_code,) = _U8.unpack_from(body, offset)
        offset += _U8.size
        (class_len,) = _U16.unpack_from(body, offset)
        offset += _U16.size
        if offset + class_len > len(body):
            raise FrameCorruptionError("class name overruns body")
        class_name = body[offset : offset + class_len].decode("utf-8")
        offset += class_len
        (method_len,) = _U16.unpack_from(body, offset)
        offset += _U16.size
        if offset + method_len > len(body):
            raise FrameCorruptionError("method name overruns body")
        method_name = (
            body[offset : offset + method_len].decode("utf-8")
            if method_len
            else None
        )
        offset += method_len
        (declared_size,) = _U32.unpack_from(body, offset)
        offset += _U32.size
    except (struct.error, UnicodeDecodeError) as exc:
        raise FrameCorruptionError(
            f"malformed UNIT body: {exc}"
        ) from exc
    payload = body[offset:]
    if len(payload) != declared_size:
        raise FrameCorruptionError(
            f"UNIT payload is {len(payload)} bytes, declared "
            f"{declared_size}"
        )
    unit_kind = _UNIT_KINDS_BY_CODE.get(kind_code)
    if unit_kind is None:
        raise FrameCorruptionError(f"unknown unit kind code {kind_code}")
    try:
        unit = TransferUnit(
            kind=unit_kind,
            class_name=class_name,
            size=declared_size,
            method=(
                MethodId(class_name, method_name)
                if method_name is not None
                else None
            ),
        )
    except TransferError as exc:
        raise FrameCorruptionError(f"inconsistent unit: {exc}") from exc
    return Frame(
        kind=FrameKind.UNIT,
        unit=unit,
        payload=payload,
        wire_size=wire_size,
    )


def _decode_validated(
    kind_code: int, body: bytes, wire_size: int
) -> Frame:
    try:
        kind = FrameKind(kind_code)
    except ValueError as exc:
        raise FrameCorruptionError(
            f"unknown frame kind {kind_code}"
        ) from exc
    if kind == FrameKind.UNIT:
        return _decode_unit_body(body, wire_size)
    if kind == FrameKind.EOF:
        if body:
            raise FrameCorruptionError("EOF frame with a body")
        return Frame(kind=kind, wire_size=wire_size)
    try:
        fields = json.loads(body.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise FrameCorruptionError(
            f"control frame body is not JSON: {exc}"
        ) from exc
    if not isinstance(fields, dict):
        raise FrameCorruptionError("control frame body is not an object")
    return Frame(
        kind=kind,
        fields=tuple(sorted(fields.items())),
        wire_size=wire_size,
    )


def decode_frame(data: bytes, offset: int = 0) -> Tuple[Frame, int]:
    """Decode one frame from ``data`` starting at ``offset``.

    Returns:
        The frame and the offset just past it.

    Raises:
        TruncatedFrameError: If the buffer ends mid-frame.
        FrameCorruptionError: If the frame is malformed.
    """
    if len(data) - offset < _HEADER.size:
        raise TruncatedFrameError(
            f"need {_HEADER.size} header bytes, have {len(data) - offset}"
        )
    magic, version, kind_code, body_len = _HEADER.unpack_from(
        data, offset
    )
    if magic != MAGIC:
        raise FrameCorruptionError(f"bad magic 0x{magic:04x}")
    if version != PROTOCOL_VERSION:
        raise FrameCorruptionError(f"unsupported protocol v{version}")
    if body_len > MAX_BODY_BYTES:
        raise FrameCorruptionError(
            f"declared body of {body_len} bytes exceeds the "
            f"{MAX_BODY_BYTES}-byte limit"
        )
    end = offset + _HEADER.size + body_len + _CRC.size
    if len(data) < end:
        raise TruncatedFrameError(
            f"need {end - offset} bytes, have {len(data) - offset}"
        )
    body = data[offset + _HEADER.size : end - _CRC.size]
    (expected_crc,) = _CRC.unpack_from(data, end - _CRC.size)
    actual_crc = zlib.crc32(body) & 0xFFFFFFFF
    if actual_crc != expected_crc:
        raise FrameCorruptionError(
            f"CRC mismatch: computed 0x{actual_crc:08x}, frame says "
            f"0x{expected_crc:08x}"
        )
    return _decode_validated(kind_code, body, end - offset), end


async def read_raw_frame(reader: asyncio.StreamReader) -> bytes:
    """Read one frame's complete wire bytes, deferring validation.

    Only the framing itself is checked here (magic, version, sane body
    length) — enough to know how many bytes to pull off the stream.
    CRC and body validation happen in :func:`decode_frame`, so a caller
    that wants to *salvage* a damaged frame (see
    :func:`salvage_unit_key`) still gets the bytes.

    Raises:
        ConnectionLostError: If the peer closed or reset mid-frame (or
            before a frame started).
        FrameCorruptionError: If the framing is unreadable — there is
            no way to find the next frame boundary after this.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
        magic, version, kind_code, body_len = _HEADER.unpack(header)
        if magic != MAGIC:
            raise FrameCorruptionError(f"bad magic 0x{magic:04x}")
        if version != PROTOCOL_VERSION:
            raise FrameCorruptionError(f"unsupported protocol v{version}")
        if body_len > MAX_BODY_BYTES:
            raise FrameCorruptionError(
                f"declared body of {body_len} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        rest = await reader.readexactly(body_len + _CRC.size)
    except asyncio.IncompleteReadError as exc:
        raise ConnectionLostError(
            "connection closed mid-frame"
        ) from exc
    except (ConnectionError, OSError) as exc:
        raise ConnectionLostError(f"connection lost: {exc}") from exc
    return header + rest


async def read_frame(reader: asyncio.StreamReader) -> Frame:
    """Read exactly one validated frame from an asyncio stream.

    Raises:
        ConnectionLostError: If the peer closed or reset mid-frame (or
            before a frame started).
        FrameCorruptionError: If the frame fails validation.
    """
    frame, _ = decode_frame(await read_raw_frame(reader))
    return frame


def salvage_unit_key(
    data: bytes,
) -> Optional[Tuple[int, str, Optional[str]]]:
    """Best-effort unit wire key from a possibly corrupt UNIT frame.

    A single flipped payload byte fails the CRC but leaves the header
    and the short name prefix intact, and that prefix names exactly
    which unit was damaged — enough for the client to re-request that
    one unit instead of tearing the connection down.  Returns ``None``
    whenever the needed bytes are themselves unreadable.
    """
    try:
        magic, _version, kind_code, body_len = _HEADER.unpack_from(data, 0)
        if magic != MAGIC or kind_code != int(FrameKind.UNIT):
            return None
        body = data[_HEADER.size : _HEADER.size + body_len]
        offset = 0
        (unit_kind_code,) = _U8.unpack_from(body, offset)
        offset += _U8.size
        (class_len,) = _U16.unpack_from(body, offset)
        offset += _U16.size
        if offset + class_len > len(body):
            return None
        class_name = body[offset : offset + class_len].decode("utf-8")
        offset += class_len
        (method_len,) = _U16.unpack_from(body, offset)
        offset += _U16.size
        if offset + method_len > len(body):
            return None
        method_name = (
            body[offset : offset + method_len].decode("utf-8")
            if method_len
            else None
        )
    except (struct.error, UnicodeDecodeError):
        return None
    if unit_kind_code not in _UNIT_KINDS_BY_CODE:
        return None
    return (unit_kind_code, class_name, method_name)
