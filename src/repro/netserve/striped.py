"""The striped resilient fetch client: one fetch over many sockets.

:class:`StripedResilientFetcher` opens one *pull-mode* session per
endpoint (possibly several to the same :class:`~.server.ClassFileServer`,
or one each to CDN-style replicas) and drives every connection from a
client-side :class:`repro.sched.Scoreboard` — the same out-of-order
issue structure the cycle-exact simulator's
:class:`~repro.sched.StripedController` uses.  Each transfer unit is
one issue grain; the arbiter dispatches ready grains to the
least-loaded healthy link; landings may happen in any order, but a
unit only becomes *observable* (method availability, arrival time) at
its scoreboard **retire** time, after its class's leading global unit
has retired — so the real transfer obeys exactly the semantics the
simulator models.

Per-link health is a circuit breaker:

* ``HEALTHY`` — full issue window.
* ``DEGRADED`` — a recent failure; stays in rotation behind healthy
  links and reconnects immediately, one landing heals it.
* ``OPEN`` — ``failure_threshold`` consecutive failures (or a failed
  probe): the circuit is open, in-flight units are requeued onto
  survivors, and the link re-dials with per-link seeded backoff
  (:func:`repro.faults.derive_rng` keyed by link index, so concurrent
  links never draw correlated jitter).
* ``HALF_OPEN`` — a probe connection after an open circuit: issue
  window of one; its first landing restores the link
  (``link_restored``), another failure re-opens the circuit.

Reconnects reuse :class:`.resilient.ResilientFetcher`'s RESUME
machinery per link — the resumed manifest is filtered by the units the
*whole session* already holds, so a flapping link never re-fetches
bytes a survivor landed.  A first-use misprediction escalates the
demanded unit's grain (front of every queue) and, if it stays missing
for ``hedge_delay``, issues a duplicate request on the next-best link
(``hedge_fired``); whichever copy lands first wins (``hedge_won``) and
the loser is suppressed by wire key.

The degradation ladder never gives up early: N links → the surviving
links → the last resilient link (each link reconnects up to
``max_reconnects`` times) → a one-shot strict whole-file fetch tried
against every endpoint — and only when *that* fails does the fetch
surface :class:`~repro.errors.ResilienceExhaustedError`.
"""

from __future__ import annotations

import asyncio
import enum
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..errors import (
    ConnectionLostError,
    FrameCorruptionError,
    ProtocolError,
    ResilienceExhaustedError,
    ServerBusyError,
    TransferError,
)
from ..faults.rng import derive_rng
from ..program import MethodId
from ..sched import IssueItem, ItemState, Scoreboard
from ..transfer import TransferUnit, UnitKind
from .protocol import (
    Frame,
    FrameKind,
    decode_frame,
    demand_fetch_frame,
    encode_frame,
    hello_frame,
    read_frame,
    read_raw_frame,
    resume_frame,
    salvage_unit_key,
    unit_kind_from_code,
    unit_wire_key,
)
from .resilient import ResilientFetcher, UnitKey

if TYPE_CHECKING:  # pragma: no cover
    from ..observe import TraceRecorder

__all__ = ["LinkState", "StripedResilientFetcher"]

#: A server endpoint: (host, port).
Endpoint = Tuple[str, int]


class LinkState(enum.IntEnum):
    """Circuit-breaker state of one striped link.

    The integer value is what ``netserve_link_state`` publishes, so
    dashboards can graph transitions.
    """

    HEALTHY = 0
    DEGRADED = 1
    HALF_OPEN = 2
    OPEN = 3


class _Link:
    """One striped connection's mutable state (owned by the fetcher)."""

    def __init__(self, index: int, host: str, port: int) -> None:
        self.index = index
        self.host = host
        self.port = port
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.state = LinkState.OPEN  # not yet connected
        #: In-flight requests on this socket: wire key ->
        #: (scoreboard label, monotonic issue time).
        self.in_flight: Dict[UnitKey, Tuple[str, float]] = {}
        self.consecutive_failures = 0
        self.reconnects_used = 0
        self.probes = 0
        self.broken = False  # transport closed, failure not yet handled
        self.stalled = False  # watchdog verdict for the next failure
        self.dead = False  # reconnect budget exhausted
        self.task: Optional["asyncio.Task[None]"] = None

    @property
    def usable(self) -> bool:
        """True when the arbiter may issue on this link."""
        return (
            self.writer is not None
            and not self.broken
            and not self.dead
            and self.state is not LinkState.OPEN
        )


class StripedResilientFetcher(ResilientFetcher):
    """A resilient fetcher striping one session across many links.

    Args:
        endpoints: ``(host, port)`` pairs, one pull-mode connection
            each.  Repeating one endpoint stripes across several
            sockets to a single server; distinct endpoints stripe
            across replicas (every endpoint must serve the same
            program).
        window: Maximum in-flight unit requests per healthy link
            (half-open probes get a window of one).
        hedge_delay: Seconds a demand-fetched unit may stay missing
            before a duplicate request races on the next-best link.
        stall_timeout: Seconds without any frame while requests are in
            flight before a link is declared stalled (the one-slow-link
            failure mode) and its units requeue onto survivors.
        failure_threshold: Consecutive failures that open a link's
            circuit.
        max_reconnects: Reconnect budget *per link*; a link that
            exhausts it is dead for the session.  Only when every link
            is dead does the strict whole-file fallback run.

    All other arguments match :class:`.resilient.ResilientFetcher`;
    ``seed`` and ``rng_scope`` derive one independent backoff RNG per
    link.
    """

    def __init__(
        self,
        endpoints: Sequence[Endpoint],
        policy: str = "non_strict",
        strategy: str = "static",
        demand_timeout: float = 5.0,
        demand_retries: int = 3,
        connect_timeout: Optional[float] = 10.0,
        max_reconnects: int = 4,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        backoff_jitter: float = 0.25,
        deadline: Optional[float] = None,
        seed: int = 0,
        rng_scope: str = "",
        window: int = 4,
        hedge_delay: float = 0.25,
        stall_timeout: float = 5.0,
        failure_threshold: int = 3,
        recorder: Optional["TraceRecorder"] = None,
    ) -> None:
        if not endpoints:
            raise TransferError(
                "StripedResilientFetcher needs at least one endpoint"
            )
        if window < 1:
            raise TransferError(f"window must be >= 1: {window}")
        if failure_threshold < 1:
            raise TransferError(
                f"failure_threshold must be >= 1: {failure_threshold}"
            )
        host, port = endpoints[0]
        super().__init__(
            host,
            port,
            policy=policy,
            strategy=strategy,
            demand_timeout=demand_timeout,
            demand_retries=demand_retries,
            connect_timeout=connect_timeout,
            max_reconnects=max_reconnects,
            backoff_base=backoff_base,
            backoff_cap=backoff_cap,
            backoff_jitter=backoff_jitter,
            deadline=deadline,
            seed=seed,
            rng_scope=rng_scope,
            recorder=recorder,
        )
        self.endpoints: Tuple[Endpoint, ...] = tuple(
            (str(h), int(p)) for h, p in endpoints
        )
        self.window = window
        self.hedge_delay = hedge_delay
        self.stall_timeout = stall_timeout
        self.failure_threshold = failure_threshold
        self._links: List[_Link] = [
            _Link(index, h, p)
            for index, (h, p) in enumerate(self.endpoints)
        ]
        self._link_rngs = [
            derive_rng(seed, "backoff", rng_scope, "link", link.index)
            for link in self._links
        ]
        self._board: Optional[Scoreboard] = None
        self._unit_by_key: Dict[UnitKey, TransferUnit] = {}
        self._label_by_key: Dict[UnitKey, str] = {}
        self._lead_key_of_class: Dict[str, UnitKey] = {}
        #: Hedge races in flight: wire key -> (primary link, hedge link).
        self._hedges: Dict[UnitKey, Tuple[int, int]] = {}
        self._dispatch_lock = asyncio.Lock()
        self._watchdog: Optional["asyncio.Task[None]"] = None
        self._degrading = False

    # -- lifecycle --------------------------------------------------------

    async def connect(self) -> Dict:
        """Open every link in pull mode; returns the shared manifest.

        At least one link must negotiate; the rest join late through
        their reconnect path.  The scoreboard is built from the first
        manifest, the per-link receive tasks and the stall watchdog
        start, and the first arbitration round issues the plan's head.
        """
        self._t0 = time.monotonic()
        if self.deadline is not None:
            self._deadline_at = time.monotonic() + self.deadline
        errors = await asyncio.gather(
            *(self._try_initial(link) for link in self._links)
        )
        if all(error is not None for error in errors):
            first = next(e for e in errors if e is not None)
            raise first
        self._build_board()
        self._watchdog = asyncio.create_task(self._watchdog_loop())
        for link, error in zip(self._links, errors):
            link.task = asyncio.create_task(
                self._link_main(link, connected=error is None)
            )
        await self._dispatch()
        return self.manifest

    async def _try_initial(
        self, link: _Link
    ) -> Optional[BaseException]:
        try:
            await self._link_connect(link, resume=False)
            return None
        except (ConnectionLostError, ProtocolError) as error:
            return error

    async def aclose(self) -> None:
        """Tear the whole stripe down without leaking anything.

        Every background task is cancelled and awaited (the count lands
        in ``netserve_cancelled_tasks_total``), every link transport is
        closed and awaited closed, then the base teardown closes any
        strict-fallback connection.
        """
        tasks = [self._watchdog] + [link.task for link in self._links]
        live = [t for t in tasks if t is not None]
        cancelled = sum(1 for t in live if not t.done())
        for task in live:
            task.cancel()
        for task in live:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self.stats.record_cancelled_tasks(cancelled)
        for link in self._links:
            writer = link.writer
            link.reader = link.writer = None
            if writer is not None:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
        await super().aclose()

    # -- per-link connection ----------------------------------------------

    async def _link_connect(self, link: _Link, resume: bool) -> None:
        """Dial one link in pull mode and fold in its manifest.

        A fresh link sends ``HELLO``; a reconnecting link sends
        ``RESUME`` carrying every wire key the *session* holds, so the
        resumed manifest covers only what is still missing anywhere.
        """
        if resume:
            greeting = resume_frame(
                self.policy,
                self.strategy,
                have=sorted(
                    self._received_keys,
                    key=lambda k: (k[0], k[1], k[2] or ""),
                ),
                pull=True,
            )
            expected = FrameKind.RESUME_ACK
        else:
            greeting = hello_frame(
                self.policy, self.strategy, pull=True
            )
            expected = FrameKind.HELLO_ACK
        reader, writer, ack = await self._dial(
            link.host, link.port, greeting
        )
        if ack.kind is not expected:
            writer.close()
            raise ProtocolError(
                f"link {link.index}: expected {expected.name}, got "
                f"{ack.kind.name}"
            )
        self._merge_manifest(ack.field_dict)
        if not self.manifest:
            self.manifest = ack.field_dict
            self.stats.strategy = self.manifest.get(
                "strategy", self.strategy
            )
        link.reader, link.writer = reader, writer
        link.broken = False
        link.stalled = False
        if link.state is LinkState.OPEN and resume:
            self._set_state(link, LinkState.HALF_OPEN)
        elif link.consecutive_failures:
            self._set_state(link, LinkState.DEGRADED)
        else:
            self._set_state(link, LinkState.HEALTHY)

    async def _dial(
        self, host: str, port: int, greeting: Frame
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter, Frame]:
        """One handshake under ``connect_timeout``, typed on failure."""
        opened: Dict[str, asyncio.StreamWriter] = {}

        async def _handshake() -> Tuple[
            asyncio.StreamReader, asyncio.StreamWriter, Frame
        ]:
            reader, writer = await asyncio.open_connection(host, port)
            opened["writer"] = writer
            writer.write(encode_frame(greeting))
            await writer.drain()
            return reader, writer, await read_frame(reader)

        try:
            reader, writer, ack = await asyncio.wait_for(
                _handshake(), timeout=self.connect_timeout
            )
        except asyncio.TimeoutError as error:
            leaked = opened.get("writer")
            if leaked is not None:
                leaked.close()
            raise ConnectionLostError(
                f"connect to {host}:{port} timed out"
            ) from error
        except OSError as error:
            raise ConnectionLostError(
                f"cannot connect to {host}:{port}: {error}"
            ) from error
        if ack.kind is FrameKind.ERROR:
            writer.close()
            fields = ack.field_dict
            if fields.get("code") == "busy":
                raise ServerBusyError(
                    f"server busy: {fields.get('message')}"
                )
            raise ProtocolError(
                f"server rejected session: {fields.get('message')}"
            )
        return reader, writer, ack

    def _set_state(self, link: _Link, state: LinkState) -> None:
        link.state = state
        self.stats.set_link_state(link.index, int(state))

    # -- scoreboard construction ------------------------------------------

    def _build_board(self) -> None:
        """One issue grain per manifest unit, plus retire hazards.

        Mirrors :meth:`repro.sched.StripedController._build_scoreboard`:
        a class's leading global unit is a retire dependency of every
        other unit of the class, so out-of-order landings never make a
        method observable before its global data.
        """
        units: List[TransferUnit] = []
        for row in self.manifest.get("sequence", []):
            kind_value, class_name, method_name, size = (
                row[0],
                row[1],
                row[2],
                row[3],
            )
            kind = UnitKind(kind_value)
            units.append(
                TransferUnit(
                    kind=kind,
                    class_name=str(class_name),
                    size=int(size),
                    method=(
                        MethodId(str(class_name), str(method_name))
                        if method_name is not None
                        else None
                    ),
                )
            )
        board = Scoreboard()
        leading: Dict[str, TransferUnit] = {}
        for unit in units:
            if unit.kind in (
                UnitKind.GLOBAL_DATA,
                UnitKind.GLOBAL_FIRST,
            ):
                leading.setdefault(unit.class_name, unit)
        for seq, unit in enumerate(units):
            tail = (
                unit.method.method_name
                if unit.method is not None
                else unit.kind.value
            )
            label = f"{seq}:{unit.class_name}.{tail}"
            board.add_item(
                IssueItem(label=label, units=(unit,), seq=seq)
            )
            key = unit_wire_key(unit)
            self._unit_by_key[key] = unit
            self._label_by_key[key] = label
            lead = leading.get(unit.class_name)
            if lead is not None:
                if unit is lead:
                    self._lead_key_of_class[unit.class_name] = key
                else:
                    board.add_unit_dep(unit, lead)
        self._board = board

    # -- arbitration and issue --------------------------------------------

    def _capacity(self, link: _Link) -> int:
        return 1 if link.state is LinkState.HALF_OPEN else self.window

    def _pick_link(self, exclude: Optional[int] = None) -> Optional[_Link]:
        """The best link with free window: healthiest, least loaded.

        An idle half-open link outranks everyone for exactly one unit —
        its circuit can only close by proving itself on a landing, and
        a busy healthy link would otherwise starve the probe forever.
        """
        candidates = [
            link
            for link in self._links
            if link.usable
            and link.index != exclude
            and len(link.in_flight) < self._capacity(link)
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda link: (
                0
                if link.state is LinkState.HALF_OPEN
                and not link.in_flight
                else 1,
                int(link.state),
                len(link.in_flight),
                link.index,
            ),
        )

    async def _dispatch(self) -> None:
        """Issue ready grains to links until windows or work run out.

        Serialized by a lock: landings, reconnects, and demand
        escalations all call this, and scoreboard transitions plus the
        matching sends must stay atomic per grain.
        """
        async with self._dispatch_lock:
            board = self._board
            if board is None:
                return
            while not self._eof.is_set():
                ready = board.ready_items(lambda item: 0.0)
                if not ready:
                    return
                link = self._pick_link()
                if link is None:
                    return
                item = ready[0]
                key = unit_wire_key(item.units[0])
                board.mark_issued(
                    item.label, link.index, self.elapsed()
                )
                link.in_flight[key] = (item.label, time.monotonic())
                await self._send_request(link, key)

    async def _send_request(self, link: _Link, key: UnitKey) -> bool:
        """Put one pull request on a link; False when the send failed
        (the transport is closed and the link task handles recovery)."""
        code, class_name, method_name = key
        frame = demand_fetch_frame(
            class_name,
            method_name,
            kind=unit_kind_from_code(code),
            resend=True,
        )
        writer = link.writer
        if writer is None:
            return False
        try:
            writer.write(encode_frame(frame))
            await writer.drain()
            return True
        except (ConnectionError, OSError):
            link.broken = True
            writer.close()
            return False

    # -- receive path -----------------------------------------------------

    async def _link_main(self, link: _Link, connected: bool) -> None:
        """One link's whole life: drain, fail, back off, resume."""
        error: Optional[BaseException] = ConnectionLostError(
            f"link {link.index} never connected"
        )
        try:
            while True:
                if not connected:
                    if not await self._link_reconnect(link, error):
                        return
                    # The fresh link needs work before it blocks in
                    # its read loop, or a fully-requeued stripe stalls.
                    await self._dispatch()
                connected = False
                try:
                    await self._link_drain(link)
                    return  # the stripe completed
                except (ConnectionLostError, ProtocolError) as exc:
                    if self._eof.is_set():
                        return
                    error = exc
                    await self._on_link_failure(link, exc)
                    await self._dispatch()
        except asyncio.CancelledError:
            raise
        except TransferError as exc:
            # Deadline exhaustion or another non-recoverable failure:
            # surface it to every waiter instead of dying silently.
            self._fail(exc)

    async def _link_reconnect(
        self, link: _Link, error: BaseException
    ) -> bool:
        """Back off and re-dial until the link resumes or dies."""
        while True:
            if self._eof.is_set() or self._failure is not None:
                return False
            if link.reconnects_used >= self.max_reconnects:
                link.dead = True
                self._set_state(link, LinkState.OPEN)
                await self._on_link_dead(link, error)
                return False
            link.reconnects_used += 1
            if link.state is LinkState.OPEN:
                link.probes += 1
            attempt = link.reconnects_used
            self._check_deadline()
            await asyncio.sleep(self._link_backoff(link, attempt))
            self._check_deadline()
            self.stats.record_link_reconnect(link.index)
            if self.recorder is not None:
                self.recorder.reconnect(
                    self.elapsed(),
                    attempt=attempt,
                    link=str(link.index),
                    error=str(error),
                )
            try:
                await self._link_connect(link, resume=True)
                return True
            except (ConnectionLostError, ProtocolError) as exc:
                error = exc

    def _link_backoff(self, link: _Link, attempt: int) -> float:
        """Per-link capped exponential backoff with independent jitter."""
        backoff = min(
            self.backoff_cap,
            self.backoff_base * (2 ** (attempt - 1)),
        )
        rng = self._link_rngs[link.index]
        return backoff + rng.uniform(
            0.0, self.backoff_jitter * backoff
        )

    async def _link_drain(self, link: _Link) -> None:
        """Receive on one link until the stripe completes or it fails."""
        while True:
            raw = await self._read_link_raw(link)
            try:
                frame, _ = decode_frame(raw)
            except FrameCorruptionError as error:
                key = salvage_unit_key(raw)
                if key is None:
                    raise self._decode_error(raw, error) from error
                self._wire_bytes += len(raw)
                await self._retry_on_link(link, key, error)
                continue
            self._wire_bytes += len(raw)
            self.stats.record_frame(frame.wire_size)
            if frame.kind is FrameKind.UNIT:
                assert frame.unit is not None
                self._land_unit(link, frame.unit, frame.payload)
                if self._eof.is_set():
                    return
                await self._dispatch()
            elif frame.kind is FrameKind.ERROR:
                raise ProtocolError(
                    f"server error: {frame.field_dict.get('message')}"
                )
            else:
                raise ProtocolError(
                    f"unexpected {frame.kind.name} frame in a pull "
                    f"session"
                )

    async def _read_link_raw(self, link: _Link) -> bytes:
        reader = link.reader
        assert reader is not None
        if self._deadline_at is None:
            return await read_raw_frame(reader)
        remaining = self._deadline_at - time.monotonic()
        if remaining <= 0:
            raise self._deadline_error()
        try:
            return await asyncio.wait_for(
                read_raw_frame(reader), timeout=remaining
            )
        except asyncio.TimeoutError as exc:
            raise self._deadline_error() from exc

    async def _retry_on_link(
        self, link: _Link, key: UnitKey, error: FrameCorruptionError
    ) -> None:
        """Re-request one damaged unit on the link that owns it."""
        self.stats.record_unit_retry()
        if self.recorder is not None:
            self.recorder.unit_retry(
                self.elapsed(),
                class_name=key[1],
                method=key[2],
                link=str(link.index),
                reason=str(error),
            )
        await self._send_request(link, key)

    # -- landing and retire -----------------------------------------------

    def _land_unit(
        self, link: _Link, unit: TransferUnit, payload: bytes
    ) -> None:
        """Record a landing; observability waits for the retire cascade.

        Duplicates (hedge losers, resume races, repeated faults) are
        suppressed by wire key before they can touch the scoreboard, so
        ``mark_landed`` never sees a unit twice.
        """
        key = unit_wire_key(unit)
        link.in_flight.pop(key, None)
        hedge = self._hedges.pop(key, None)
        if key in self._received_keys:
            self.stats.record_duplicate_unit()
            self._link_success(link)
            return
        now = self.elapsed()
        self.unit_log.append((unit, now))
        self._received_keys.add(key)
        self.stats.record_unit(len(payload))
        self.stats.record_link_unit(link.index, len(payload))
        if self.recorder is not None:
            self.recorder.unit_arrived(
                now,
                class_name=unit.class_name,
                kind=unit.kind.value,
                size=unit.size,
                method=(
                    unit.method.method_name if unit.method else None
                ),
                link=str(link.index),
            )
        if unit.kind is UnitKind.CLASS_FILE:
            self.buffers[unit.class_name] = [(unit, payload)]
        else:
            self.buffers.setdefault(unit.class_name, []).append(
                (unit, payload)
            )
        if hedge is not None:
            role = "hedge" if link.index == hedge[1] else "primary"
            self.stats.record_hedge_win(role)
            if self.recorder is not None:
                self.recorder.hedge_won(
                    now,
                    class_name=unit.class_name,
                    link=str(link.index),
                    role=role,
                )
        board = self._board
        board_unit = self._unit_by_key.get(key)
        if board is None or board_unit is None:
            self._signal_available(unit, now)
        else:
            for retired, retire_time in board.mark_landed(
                board_unit, now
            ):
                self._signal_available(retired, retire_time)
        self._link_success(link)
        if board is not None and not board.outstanding:
            self._finish()

    def _signal_available(self, unit: TransferUnit, at: float) -> None:
        """A unit retired: its methods may now execute (arrival = retire
        time, exactly the simulator's observable-arrival rule)."""
        if unit.kind is UnitKind.METHOD and unit.method is not None:
            self._method_arrivals.setdefault(unit.method, at)
            self._event_for(unit.method).set()
        elif unit.kind is UnitKind.CLASS_FILE:
            self._classes_complete.add(unit.class_name)
            for method_id, event in self._events.items():
                if method_id.class_name == unit.class_name:
                    self._method_arrivals.setdefault(method_id, at)
                    event.set()

    def _link_success(self, link: _Link) -> None:
        """A landing proves the link; heal its circuit state."""
        link.consecutive_failures = 0
        if link.state is LinkState.HALF_OPEN:
            self._set_state(link, LinkState.HEALTHY)
            if self.recorder is not None:
                self.recorder.link_restored(
                    self.elapsed(),
                    link=str(link.index),
                    probes=link.probes,
                )
            link.probes = 0
        elif link.state is LinkState.DEGRADED:
            self._set_state(link, LinkState.HEALTHY)

    def _finish(self) -> None:
        """Every grain retired: close the pull sessions (no EOF comes)."""
        self._eof.set()
        for link in self._links:
            if link.writer is not None:
                link.writer.close()

    # -- failure handling --------------------------------------------------

    async def _on_link_failure(
        self, link: _Link, error: BaseException
    ) -> None:
        """Requeue a failed link's flight onto survivors; open the
        circuit past the failure threshold."""
        link.consecutive_failures += 1
        board = self._board
        requeued = 0
        for key, (label, _issued) in list(link.in_flight.items()):
            link.in_flight.pop(key, None)
            if board is None:
                continue
            item = board.items.get(label)
            if (
                item is not None
                and item.state is ItemState.ISSUED
                and item.channel == link.index
            ):
                board.requeue(label, item.units)
                requeued += 1
        writer = link.writer
        link.reader = link.writer = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        link.broken = False
        reason = (
            f"stalled: no frame for {self.stall_timeout:.1f}s"
            if link.stalled
            else str(error)
        )
        link.stalled = False
        opened = (
            link.state is LinkState.HALF_OPEN
            or link.consecutive_failures >= self.failure_threshold
        )
        was_open = link.state is LinkState.OPEN
        self._set_state(
            link, LinkState.OPEN if opened else LinkState.DEGRADED
        )
        if opened and not was_open:
            self.stats.record_link_outage(link.index)
            if self.recorder is not None:
                self.recorder.link_outage(
                    self.elapsed(),
                    link=str(link.index),
                    reason=reason,
                    requeued=requeued,
                )

    async def _on_link_dead(
        self, link: _Link, error: BaseException
    ) -> None:
        """A link exhausted its budget; degrade only when all have."""
        if any(not peer.dead for peer in self._links):
            return
        if self._degrading or self._eof.is_set():
            return
        self._degrading = True
        reason = (
            f"all {len(self._links)} links exhausted "
            f"({self.max_reconnects} reconnects each): {error}"
        )
        try:
            await self._degrade_striped(reason)
        except TransferError as exc:
            self._fail(exc)

    async def _degrade_striped(self, reason: str) -> None:
        """The ladder's last rung: one-shot strict fetch, any endpoint."""
        last: Optional[TransferError] = None
        for host, port in self.endpoints:
            self.host, self.port = host, port
            try:
                await self._degrade(reason)
                return
            except ResilienceExhaustedError as exc:
                last = exc
        assert last is not None
        raise last

    async def _watchdog_loop(self) -> None:
        """Detect the one-slow-link stall: in-flight but nothing lands.

        Closing the stalled transport makes its receive loop fail with
        a typed error, which requeues the flight onto survivors — a
        slow link is handled exactly like a dead one.
        """
        interval = max(self.stall_timeout / 4.0, 0.01)
        while not self._eof.is_set() and self._failure is None:
            await asyncio.sleep(interval)
            now = time.monotonic()
            for link in self._links:
                if link.writer is None or link.broken or link.dead:
                    continue
                if not link.in_flight:
                    continue
                oldest = min(
                    issued for _, issued in link.in_flight.values()
                )
                if now - oldest > self.stall_timeout:
                    link.broken = True
                    link.stalled = True
                    link.writer.close()

    # -- demand fetches and hedging ---------------------------------------

    def _needed_key(self, method_id: MethodId) -> Optional[UnitKey]:
        """The wire key whose retire makes ``method_id`` available."""
        for unit in self._unit_by_key.values():
            if (
                unit.kind is UnitKind.METHOD
                and unit.method == method_id
            ):
                return unit_wire_key(unit)
            if (
                unit.kind is UnitKind.CLASS_FILE
                and unit.class_name == method_id.class_name
            ):
                return unit_wire_key(unit)
        return None

    def _escalate_for(
        self, method_id: MethodId, key: Optional[UnitKey]
    ) -> None:
        board = self._board
        if board is None or key is None:
            return
        labels = []
        label = self._label_by_key.get(key)
        if label is not None:
            labels.append(label)
        lead_key = self._lead_key_of_class.get(method_id.class_name)
        if lead_key is not None and lead_key != key:
            lead_label = self._label_by_key.get(lead_key)
            if lead_label is not None:
                labels.append(lead_label)
        for entry in labels:
            board.escalate(entry)

    async def _fire_hedge(
        self, method_id: MethodId, key: Optional[UnitKey]
    ) -> None:
        """Race a missing demanded unit on the next-best link."""
        if key is None or key in self._received_keys:
            return
        if key in self._hedges:
            return
        board = self._board
        label = self._label_by_key.get(key)
        if board is None or label is None:
            return
        item = board.items[label]
        if item.state is not ItemState.ISSUED or item.channel is None:
            return  # not in flight; escalation re-issues it instead
        link = self._pick_hedge_link(exclude=item.channel)
        if link is None:
            return
        self.stats.record_hedge()
        if self.recorder is not None:
            self.recorder.hedge_fired(
                self.elapsed(),
                class_name=method_id.class_name,
                link=str(link.index),
                method=method_id.method_name,
            )
        self._hedges[key] = (item.channel, link.index)
        link.in_flight.setdefault(key, (label, time.monotonic()))
        await self._send_request(link, key)

    def _pick_hedge_link(self, exclude: int) -> Optional[_Link]:
        """Best link other than the primary; a hedge may overfill the
        window (it races latency, it does not wait for capacity)."""
        candidates = [
            link
            for link in self._links
            if link.usable and link.index != exclude
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda link: (
                int(link.state),
                len(link.in_flight),
                link.index,
            ),
        )

    async def _demand(
        self, method_id: MethodId, event: asyncio.Event
    ) -> None:
        """Striped misprediction correction: escalate, then hedge.

        The demanded grain jumps every queue (scoreboard escalation —
        the §5.1 front-of-queue rule); if it is still missing after
        ``hedge_delay`` a duplicate request races on the next-best
        link.  Falls back to the base single-socket demand while the
        strict-degradation connection is active.
        """
        if self._board is None or self._degrading:
            await super()._demand(method_id, event)
            return
        self._demanded.add(method_id)
        key = self._needed_key(method_id)
        for attempt in range(self.demand_retries):
            self._escalate_for(method_id, key)
            await self._dispatch()
            self.stats.record_demand_fetch()
            if self.recorder is not None:
                self.recorder.demand_fetch(
                    self.elapsed(),
                    method=str(method_id),
                    attempt=attempt + 1,
                )
            timeout = self.demand_timeout
            if attempt == 0 and self.hedge_delay < timeout:
                if await self._wait_available(
                    method_id, event, self.hedge_delay
                ):
                    return
                await self._fire_hedge(method_id, key)
                timeout = max(timeout - self.hedge_delay, 0.001)
            if await self._wait_available(method_id, event, timeout):
                return
        self._check_failure()
        raise TransferError(
            f"demand fetch for {method_id} timed out after "
            f"{self.demand_retries} attempts of "
            f"{self.demand_timeout:.1f}s"
        )

    async def _wait_available(
        self, method_id: MethodId, event: asyncio.Event, timeout: float
    ) -> bool:
        """Wait on the method's event; True once it is available."""
        try:
            await asyncio.wait_for(event.wait(), timeout=timeout)
        except asyncio.TimeoutError:
            return False
        self._check_failure()
        if self.is_method_available(method_id):
            return True
        # The event can wake spuriously (failure broadcast cleared):
        # re-arm and let the caller retry.
        event.clear()
        return False
