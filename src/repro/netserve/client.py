"""The non-strict fetch client.

:class:`NonStrictFetcher` connects to a
:class:`~repro.netserve.server.ClassFileServer`, negotiates a policy,
and receives transfer units into per-class arrival buffers.  It exposes
the same "is this method available / wait until it is" interface the
simulator's runtime uses, and on a first-use misprediction it issues a
``DEMAND_FETCH`` (with timeout and bounded retry) so the server
promotes the missing class to the front of its send queue.

Robustness rule: a connection lost mid-stream must surface as a typed
:class:`~repro.errors.ConnectionLostError` from every waiter — never a
hang.  The receive loop records the failure and wakes all waiting
events; waiters re-check the failure before trusting their event.
"""

from __future__ import annotations

import asyncio
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from ..errors import (
    ConnectionLostError,
    FrameCorruptionError,
    ProtocolError,
    ServerBusyError,
    StreamDecodeError,
    TransferError,
)
from ..program import MethodId
from ..transfer import TransferUnit, UnitKind
from .protocol import (
    Frame,
    FrameKind,
    decode_frame,
    demand_fetch_frame,
    encode_frame,
    hello_frame,
    read_frame,
    read_raw_frame,
    salvage_unit_key,
    unit_wire_key,
)
from .stats import FetchStats

if TYPE_CHECKING:  # pragma: no cover
    from ..observe import TraceRecorder

__all__ = ["NonStrictFetcher"]


class NonStrictFetcher:
    """Receives a unit stream and answers method-availability queries.

    Args:
        host, port: Server address.
        policy: ``"strict"``, ``"non_strict"``, or
            ``"data_partitioned"``.
        strategy: Reorder strategy to request (``"static"``,
            ``"textual"``, ``"profile"``).
        demand_timeout: Seconds to wait for a demanded unit before
            retrying the ``DEMAND_FETCH``.
        demand_retries: Demand attempts before giving up with a
            :class:`~repro.errors.TransferError`.
        connect_timeout: Seconds allowed for the whole session
            handshake — TCP connect, HELLO, and the server's ack.  A
            server that accepts but never answers surfaces as a typed
            :class:`~repro.errors.ConnectionLostError`, never a hang.
            ``None`` disables the limit.
        recorder: Optional :class:`repro.observe.TraceRecorder` (clock
            ``"seconds"``); arrivals and demand fetches are emitted as
            events timestamped in seconds since the session started.
    """

    def __init__(
        self,
        host: str,
        port: int,
        policy: str = "non_strict",
        strategy: str = "static",
        demand_timeout: float = 5.0,
        demand_retries: int = 3,
        connect_timeout: Optional[float] = 10.0,
        recorder: Optional["TraceRecorder"] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.policy = policy
        self.strategy = strategy
        self.demand_timeout = demand_timeout
        self.demand_retries = demand_retries
        self.connect_timeout = connect_timeout
        self.recorder = recorder
        self.stats = FetchStats(policy=policy, strategy=strategy)
        self.manifest: Dict = {}
        #: Units in arrival order, with arrival seconds since connect.
        self.unit_log: List[Tuple[TransferUnit, float]] = []
        #: Per-class arrival buffers: (unit, payload) in arrival order.
        self.buffers: Dict[str, List[Tuple[TransferUnit, bytes]]] = {}
        self._method_arrivals: Dict[MethodId, float] = {}
        self._classes_complete: Set[str] = set()
        #: Wire keys of units held intact (resume/duplicate filtering).
        self._received_keys: Set[Tuple[int, str, Optional[str]]] = set()
        self._wire_bytes = 0
        self._demanded: Set[MethodId] = set()
        self._events: Dict[MethodId, asyncio.Event] = {}
        self._eof = asyncio.Event()
        self._failure: Optional[BaseException] = None
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._receiver: Optional[asyncio.Task] = None
        self._t0 = 0.0

    # -- lifecycle --------------------------------------------------------

    async def _open_and_negotiate(self, greeting: Frame) -> Frame:
        """Dial the server, send ``greeting``, return its ack frame.

        The whole handshake — TCP connect, greeting write, ack read —
        runs under ``connect_timeout``; on success ``self._reader`` /
        ``self._writer`` point at the new connection.
        """
        opened: Dict[str, asyncio.StreamWriter] = {}

        async def _dial() -> Tuple[
            asyncio.StreamReader, asyncio.StreamWriter, Frame
        ]:
            reader, writer = await asyncio.open_connection(
                self.host, self.port
            )
            opened["writer"] = writer
            writer.write(encode_frame(greeting))
            await writer.drain()
            return reader, writer, await read_frame(reader)

        try:
            reader, writer, ack = await asyncio.wait_for(
                _dial(), timeout=self.connect_timeout
            )
        except asyncio.TimeoutError as error:
            leaked = opened.get("writer")
            if leaked is not None:
                leaked.close()
            raise ConnectionLostError(
                f"connect to {self.host}:{self.port} timed out after "
                f"{self.connect_timeout:.1f}s"
            ) from error
        except OSError as error:
            raise ConnectionLostError(
                f"cannot connect to {self.host}:{self.port}: {error}"
            ) from error
        if ack.kind == FrameKind.ERROR:
            writer.close()
            fields = ack.field_dict
            if fields.get("code") == "busy":
                raise ServerBusyError(
                    f"server busy: {fields.get('message')}"
                )
            raise ProtocolError(
                f"server rejected session: {fields.get('message')}"
            )
        self._reader, self._writer = reader, writer
        return ack

    async def connect(self) -> Dict:
        """Open the connection and negotiate; returns the manifest."""
        ack = await self._open_and_negotiate(
            hello_frame(self.policy, self.strategy)
        )
        if ack.kind != FrameKind.HELLO_ACK:
            raise ProtocolError(
                f"expected HELLO_ACK, got {ack.kind.name}"
            )
        self.manifest = ack.field_dict
        self.stats.strategy = self.manifest.get(
            "strategy", self.strategy
        )
        self._t0 = time.monotonic()
        self._receiver = asyncio.create_task(self._receive_loop())
        return self.manifest

    def elapsed(self) -> float:
        """Seconds since the session started."""
        return time.monotonic() - self._t0

    async def aclose(self) -> None:
        if self._receiver is not None:
            self._receiver.cancel()
            try:
                await self._receiver
            except (asyncio.CancelledError, Exception):
                pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- receive path -----------------------------------------------------

    def _event_for(self, method_id: MethodId) -> asyncio.Event:
        event = self._events.get(method_id)
        if event is None:
            event = asyncio.Event()
            self._events[method_id] = event
        return event

    def _fail(self, error: BaseException) -> None:
        if self._failure is None:
            self._failure = error
        self._eof.set()
        for event in self._events.values():
            event.set()

    def _record_unit(self, unit: TransferUnit, payload: bytes) -> None:
        now = self.elapsed()
        self.unit_log.append((unit, now))
        self._received_keys.add(unit_wire_key(unit))
        if self.recorder is not None:
            self.recorder.unit_arrived(
                now,
                class_name=unit.class_name,
                kind=unit.kind.value,
                size=unit.size,
                method=(
                    unit.method.method_name if unit.method else None
                ),
            )
        if unit.kind == UnitKind.CLASS_FILE:
            # A whole-class unit supersedes any partial units for that
            # class (the strict-degradation path re-sends whole files);
            # replace rather than append so class_bytes never
            # double-counts.
            self.buffers[unit.class_name] = [(unit, payload)]
        else:
            self.buffers.setdefault(unit.class_name, []).append(
                (unit, payload)
            )
        if unit.kind == UnitKind.METHOD and unit.method is not None:
            self._method_arrivals.setdefault(unit.method, now)
            self._event_for(unit.method).set()
        elif unit.kind == UnitKind.CLASS_FILE:
            # Strict: the whole class arrived; every method it holds is
            # now available, including ones nobody asked about yet.
            self._classes_complete.add(unit.class_name)
            for method_id, event in self._events.items():
                if method_id.class_name == unit.class_name:
                    self._method_arrivals.setdefault(method_id, now)
                    event.set()

    def _handle_unit_frame(self, frame: Frame) -> None:
        assert frame.unit is not None
        self.stats.record_unit(len(frame.payload))
        self._record_unit(frame.unit, frame.payload)

    def _decode_error(
        self, raw: bytes, error: FrameCorruptionError
    ) -> StreamDecodeError:
        """Attach unit context to a mid-stream decode failure."""
        key = salvage_unit_key(raw)
        unit = (
            f" while decoding unit {key[1]}"
            + (f".{key[2]}" if key[2] else "")
            if key
            else ""
        )
        return StreamDecodeError(
            f"stream decode failed at byte {self._wire_bytes}"
            f"{unit}: {error}",
            class_name=key[1] if key else None,
            method_name=key[2] if key else None,
            byte_offset=self._wire_bytes,
        )

    async def _receive_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                raw = await read_raw_frame(self._reader)
                try:
                    frame, _ = decode_frame(raw)
                except FrameCorruptionError as error:
                    raise self._decode_error(raw, error) from error
                self._wire_bytes += len(raw)
                self.stats.record_frame(frame.wire_size)
                if frame.kind == FrameKind.UNIT:
                    self._handle_unit_frame(frame)
                elif frame.kind == FrameKind.EOF:
                    self._eof.set()
                    return
                elif frame.kind == FrameKind.ERROR:
                    raise ProtocolError(
                        f"server error: "
                        f"{frame.field_dict.get('message')}"
                    )
                else:
                    raise ProtocolError(
                        f"unexpected {frame.kind.name} frame mid-stream"
                    )
        except TransferError as error:
            self._fail(error)
        except asyncio.CancelledError:
            self._fail(ConnectionLostError("fetcher closed"))
            raise

    # -- availability interface -------------------------------------------

    def _check_failure(self) -> None:
        if self._failure is not None:
            raise self._failure

    def is_method_available(self, method_id: MethodId) -> bool:
        """True once the method's required unit has arrived."""
        return (
            method_id in self._method_arrivals
            or method_id.class_name in self._classes_complete
        )

    def arrival_time(self, method_id: MethodId) -> float:
        """Seconds after connect at which the method became available."""
        try:
            return self._method_arrivals[method_id]
        except KeyError as exc:
            raise TransferError(
                f"method has not arrived: {method_id}"
            ) from exc

    def was_demand_fetched(self, method_id: MethodId) -> bool:
        return method_id in self._demanded

    async def wait_for_method(
        self, method_id: MethodId, demand: bool = True
    ) -> float:
        """Block until ``method_id`` may execute; returns arrival time.

        A miss with ``demand=True`` is a first-use misprediction: a
        ``DEMAND_FETCH`` goes to the server (bounded retries), exactly
        the §5.1 correction.  With ``demand=False`` the wait is
        passive.

        Raises:
            ConnectionLostError: If the connection died while waiting.
            TransferError: If every demand retry timed out.
        """
        self._check_failure()
        if self.is_method_available(method_id):
            return self.arrival_time(method_id)
        waited_from = self.elapsed()
        event = self._event_for(method_id)
        if not demand:
            await event.wait()
            self._check_failure()
        else:
            await self._demand(method_id, event)
        self.stats.record_stall(
            method_id, self.elapsed() - waited_from
        )
        return self.arrival_time(method_id)

    async def _send_demand_frame(self, frame: Frame) -> None:
        """Put a client->server frame on the wire, typed on failure."""
        assert self._writer is not None
        try:
            self._writer.write(encode_frame(frame))
            await self._writer.drain()
        except (ConnectionError, OSError) as error:
            raise ConnectionLostError(
                f"demand channel lost: {error}"
            ) from error

    async def _demand(
        self, method_id: MethodId, event: asyncio.Event
    ) -> None:
        self._demanded.add(method_id)
        for attempt in range(self.demand_retries):
            await self._send_demand_frame(
                demand_fetch_frame(
                    method_id.class_name, method_id.method_name
                )
            )
            self.stats.record_demand_fetch()
            if self.recorder is not None:
                self.recorder.demand_fetch(
                    self.elapsed(),
                    method=str(method_id),
                    attempt=attempt + 1,
                )
            try:
                await asyncio.wait_for(
                    event.wait(), timeout=self.demand_timeout
                )
            except asyncio.TimeoutError:
                continue
            self._check_failure()
            if self.is_method_available(method_id):
                return
        self._check_failure()
        raise TransferError(
            f"demand fetch for {method_id} timed out after "
            f"{self.demand_retries} attempts of "
            f"{self.demand_timeout:.1f}s"
        )

    async def wait_until_complete(self) -> None:
        """Block until the server's EOF (or a typed failure)."""
        await self._eof.wait()
        self._check_failure()

    # -- reassembly -------------------------------------------------------

    def class_bytes(self, class_name: str) -> bytes:
        """Concatenated payload bytes received for one class so far."""
        return b"".join(
            payload
            for _, payload in self.buffers.get(class_name, [])
        )
