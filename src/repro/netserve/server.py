"""The asyncio class-file server.

:class:`ClassFileServer` holds one :class:`~repro.program.Program` and
serves it to many concurrent clients.  Each connection negotiates a
transfer policy (strict / non-strict / data-partitioned) and a reorder
strategy via ``HELLO``; the server restructures the program, builds the
per-class transfer plans, and streams the unit sequence over the
socket.

Two behaviours mirror the paper's transfer fabric (§5.1/§5.2):

* **Bandwidth pacing** — an optional token bucket caps the send rate in
  bytes/second, so a T1- or modem-shaped link is reproducible on
  localhost and overlap effects are observable in wall-clock time.
* **Demand-fetch priority** — a ``DEMAND_FETCH`` from the client (a
  first-use misprediction) promotes the demanded class's still-pending
  units, as a block and in order, to the *front* of the send queue —
  the same front-of-queue rule :meth:`repro.transfer.StreamEngine`
  applies to demand-fetched streams.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from ..errors import ConnectionLostError, ProtocolError, ReproError
from ..faults import ConnectionFaults, FaultInjector, FaultPlan, FrameDirective
from ..program import Program
from ..reorder import (
    FirstUseOrder,
    estimate_first_use,
    order_from_profile,
    restructure,
    textual_first_use,
)
from ..transfer import (
    TransferPolicy,
    TransferUnit,
    build_interleaved_file,
    build_program_plans,
)
from ..vm import FirstUseProfile
from .payloads import build_program_payloads
from .protocol import (
    FrameKind,
    encode_frame,
    eof_frame,
    error_frame,
    hello_ack_frame,
    read_frame,
    resume_ack_frame,
    unit_frame,
    unit_wire_key,
)
from .stats import ConnectionStats, ServerStats

if TYPE_CHECKING:  # pragma: no cover
    from ..observe import TraceRecorder

__all__ = ["TokenBucket", "ClassFileServer", "REORDER_STRATEGIES"]

#: Reorder strategies a client may request in its ``HELLO``.
REORDER_STRATEGIES = ("static", "textual", "profile")


class TokenBucket:
    """Paces sends to ``rate`` bytes/second with a bounded burst.

    The bucket may run a deficit: a frame larger than the burst is sent
    whole, and subsequent sends wait until the deficit refills — so the
    long-run rate converges to ``rate`` regardless of frame sizes.
    """

    def __init__(self, rate: float, burst: float = 256.0) -> None:
        if rate <= 0:
            raise ProtocolError(f"pacing rate must be positive: {rate}")
        self.rate = float(rate)
        self.burst = max(float(burst), 1.0)
        self._tokens = self.burst
        self._last = time.monotonic()

    def _refill(self) -> None:
        now = time.monotonic()
        self._tokens = min(
            self.burst, self._tokens + (now - self._last) * self.rate
        )
        self._last = now

    async def consume(self, amount: float) -> None:
        """Take ``amount`` tokens, sleeping until the rate allows it."""
        self._refill()
        self._tokens -= amount
        if self._tokens < 0:
            await asyncio.sleep(-self._tokens / self.rate)
            self._refill()


class ClassFileServer:
    """Serves a program's transfer-unit streams over TCP.

    Args:
        program: The program to serve (original layout; restructured
            per-connection according to the negotiated strategy).
        host: Bind address.
        port: Bind port (0 = ephemeral; read :attr:`address` after
            :meth:`start`).
        bandwidth: Optional pacing cap in *bytes per second* (frame
            overhead counts against it, like real link framing).
        burst: Token-bucket burst size in bytes.
        profile: Optional training profile backing the ``profile``
            reorder strategy; without one the server falls back to
            ``static`` and says so in the ``HELLO_ACK``.
        once: Stop accepting after the first connection finishes
            (handy for demos and CLI pipelines).
        fault_plan: Optional :class:`repro.faults.FaultPlan`; outgoing
            post-negotiation frames pass through its per-connection
            fault state (cuts, corruption, drops, duplicates, stalls,
            jitter), each applied fault emitted as a ``fault_injected``
            event and counted in ``netserve_faults_injected``.
        recorder: Optional :class:`repro.observe.TraceRecorder` (clock
            ``"seconds"``); when given, every wire frame becomes a
            ``frame_sent`` event and every demand-fetch promotion a
            ``schedule_decision``, timestamped relative to server
            start.
    """

    def __init__(
        self,
        program: Program,
        host: str = "127.0.0.1",
        port: int = 0,
        bandwidth: Optional[float] = None,
        burst: float = 256.0,
        profile: Optional[FirstUseProfile] = None,
        once: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        recorder: Optional["TraceRecorder"] = None,
    ) -> None:
        self.program = program
        self.host = host
        self.port = port
        self.bandwidth = bandwidth
        self.burst = burst
        self.profile = profile
        self.once = once
        self.fault_plan = fault_plan
        self._injector = (
            FaultInjector(fault_plan)
            if fault_plan is not None and not fault_plan.is_noop
            else None
        )
        self.recorder = recorder
        self.stats = ServerStats()
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: List[asyncio.StreamWriter] = []
        self._finished = asyncio.Event()
        self._t0 = time.monotonic()

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound address."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self._t0 = time.monotonic()
        return self.address

    def _now(self) -> float:
        """Seconds since the server started (the recorder clock)."""
        return time.monotonic() - self._t0

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None or not self._server.sockets:
            raise ProtocolError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def serve_until_done(self) -> None:
        """Serve until closed (or, with ``once``, one connection ends)."""
        if self._server is None:
            await self.start()
        if self.once:
            await self._finished.wait()
        else:
            assert self._server is not None
            await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting and drop every live connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        self._finished.set()

    # -- per-connection negotiation ---------------------------------------

    def _order_for(self, strategy: str) -> Tuple[FirstUseOrder, str]:
        """Resolve a requested strategy to an order (with fallback)."""
        if strategy == "textual":
            return textual_first_use(self.program), "textual"
        if strategy == "profile":
            if self.profile is not None:
                return (
                    order_from_profile(self.program, self.profile),
                    "profile",
                )
            strategy = "static"  # honest fallback, reported in the ack
        if strategy != "static":
            raise ProtocolError(
                f"unknown reorder strategy {strategy!r}; pick from "
                f"{REORDER_STRATEGIES}"
            )
        return estimate_first_use(self.program), "static"

    def _plan_session(
        self, policy: TransferPolicy, strategy: str
    ) -> Tuple[List[TransferUnit], Dict[TransferUnit, bytes], str]:
        order, actual_strategy = self._order_for(strategy)
        if policy == TransferPolicy.STRICT:
            # Whole files, in class-first-use order: the strict
            # methodology still benefits from sending the entry class
            # first, and the comparison stays apples-to-apples.
            target = restructure(self.program, order)
            plans = build_program_plans(target, policy)
            sequence = [
                unit
                for classfile in target.classes
                for unit in plans[classfile.name].units
            ]
        else:
            target = restructure(self.program, order)
            plans = build_program_plans(target, policy)
            sequence = build_interleaved_file(plans, order)
        payloads = build_program_payloads(target, plans)
        return sequence, payloads, actual_strategy

    @staticmethod
    def _manifest(sequence: List[TransferUnit]) -> List[List]:
        return [
            [
                unit.kind.value,
                unit.class_name,
                unit.method.method_name if unit.method else None,
                unit.size,
            ]
            for unit in sequence
        ]

    # -- connection handling ----------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = self.stats.open_connection(
            peer=str(writer.get_extra_info("peername")),
            started_at=time.monotonic(),
        )
        self._writers.append(writer)
        faults = (
            self._injector.connection()
            if self._injector is not None
            else None
        )
        demand_task: Optional[asyncio.Task] = None
        try:
            try:
                sequence, payloads, full_sequence = await self._negotiate(
                    reader, writer, conn
                )
            except ConnectionLostError:
                conn.aborted = True
                return
            except ReproError as error:
                writer.write(encode_frame(error_frame(str(error))))
                await writer.drain()
                conn.aborted = True
                return
            pending: Deque[TransferUnit] = deque(sequence)
            demand_task = asyncio.create_task(
                self._demand_loop(reader, pending, full_sequence, conn)
            )
            await self._send_units(writer, pending, payloads, conn, faults)
        except (ConnectionLostError, ConnectionError, OSError):
            conn.aborted = True
        except asyncio.CancelledError:
            # Server shutdown mid-send: end the handler quietly (the
            # asyncio.streams callback would log a re-raise as noise).
            conn.aborted = True
        finally:
            if demand_task is not None:
                demand_task.cancel()
            conn.finished_at = time.monotonic()
            writer.close()
            if writer in self._writers:
                self._writers.remove(writer)
            if self.once:
                self._finished.set()

    async def _negotiate(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        conn: ConnectionStats,
    ) -> Tuple[
        List[TransferUnit],
        Dict[TransferUnit, bytes],
        List[TransferUnit],
    ]:
        """Negotiate a session; returns (to-send, payloads, full plan).

        Accepts a fresh ``HELLO`` or a ``RESUME`` carrying the unit
        wire keys the client already holds; a resume replays the same
        session plan minus the held units, so a reconnecting client
        pays only for what it lost.
        """
        hello = await read_frame(reader)
        if hello.kind not in (FrameKind.HELLO, FrameKind.RESUME):
            raise ProtocolError(
                f"expected HELLO or RESUME, got {hello.kind.name}"
            )
        fields = hello.field_dict
        try:
            policy = TransferPolicy(fields.get("policy", "non_strict"))
        except ValueError as exc:
            raise ProtocolError(
                f"unknown policy {fields.get('policy')!r}"
            ) from exc
        strategy = fields.get("strategy", "static")
        full_sequence, payloads, actual_strategy = self._plan_session(
            policy, strategy
        )
        sequence = full_sequence
        resumed = hello.kind == FrameKind.RESUME
        if resumed:
            have = self._have_keys(fields.get("have", []))
            sequence = [
                unit
                for unit in full_sequence
                if unit_wire_key(unit) not in have
            ]
            conn.record_resume(len(full_sequence) - len(sequence))
        conn.policy = policy.value
        conn.strategy = actual_strategy
        entry = self.program.entry_point
        ack_fields = dict(
            policy=policy.value,
            strategy=actual_strategy,
            unit_count=len(sequence),
            total_bytes=sum(unit.size for unit in sequence),
            bandwidth=self.bandwidth,
            entry=(
                [entry.class_name, entry.method_name] if entry else None
            ),
            sequence=self._manifest(sequence),
        )
        if resumed:
            ack = resume_ack_frame(
                skipped=len(full_sequence) - len(sequence),
                **ack_fields,
            )
        else:
            ack = hello_ack_frame(**ack_fields)
        writer.write(encode_frame(ack))
        await writer.drain()
        return sequence, payloads, full_sequence

    @staticmethod
    def _have_keys(raw: object) -> set:
        """Parse a RESUME's ``have`` list into unit wire keys."""
        if not isinstance(raw, list):
            raise ProtocolError("RESUME 'have' must be a list")
        keys = set()
        for entry in raw:
            try:
                code, class_name, method_name = entry
                keys.add(
                    (
                        int(code),
                        str(class_name),
                        None
                        if method_name is None
                        else str(method_name),
                    )
                )
            except (TypeError, ValueError) as exc:
                raise ProtocolError(
                    f"malformed RESUME 'have' entry {entry!r}"
                ) from exc
        return keys

    async def _send_units(
        self,
        writer: asyncio.StreamWriter,
        pending: Deque[TransferUnit],
        payloads: Dict[TransferUnit, bytes],
        conn: ConnectionStats,
        faults: Optional[ConnectionFaults] = None,
    ) -> None:
        bucket = (
            TokenBucket(self.bandwidth, burst=self.burst)
            if self.bandwidth is not None
            else None
        )
        while pending:
            unit = pending.popleft()
            data = encode_frame(unit_frame(unit, payloads[unit]))
            if bucket is not None:
                await bucket.consume(len(data))
            alive = await self._transmit(
                writer, data, conn, faults, kind="UNIT", unit=unit
            )
            if not alive:
                return
        eof = encode_frame(eof_frame())
        if not await self._transmit(
            writer, eof, conn, faults, kind="EOF"
        ):
            return

    async def _transmit(
        self,
        writer: asyncio.StreamWriter,
        data: bytes,
        conn: ConnectionStats,
        faults: Optional[ConnectionFaults],
        kind: str,
        unit: Optional[TransferUnit] = None,
    ) -> bool:
        """Send one frame through the fault layer.

        Returns False when the directive severed the connection (the
        handler must stop sending on this socket).
        """
        directive = (
            faults.next_directive(len(data))
            if faults is not None
            else None
        )
        if directive is not None and directive.delay_seconds > 0:
            await asyncio.sleep(directive.delay_seconds)
        if directive is not None:
            self._record_faults(directive, conn)
        if directive is not None and directive.cut_at is not None:
            if directive.cut_at > 0:
                writer.write(data[: directive.cut_at])
                conn.record_frame(directive.cut_at)
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
            writer.close()
            conn.aborted = True
            return False
        if directive is not None and directive.drop:
            return True
        if directive is not None and directive.corrupt_offset is not None:
            damaged = bytearray(data)
            damaged[directive.corrupt_offset] ^= 0xFF
            data = bytes(damaged)
        copies = directive.copies if directive is not None else 1
        for _ in range(copies):
            writer.write(data)
            await writer.drain()
            conn.record_frame(len(data), unit=unit is not None)
            if self.recorder is not None:
                self.recorder.frame_sent(
                    self._now(),
                    kind=kind,
                    size=len(data),
                    class_name=unit.class_name if unit else None,
                    method=(
                        unit.method.method_name
                        if unit and unit.method
                        else None
                    ),
                    peer=conn.peer,
                )
        return True

    def _record_faults(
        self, directive: FrameDirective, conn: ConnectionStats
    ) -> None:
        for fault in directive.faults:
            conn.record_fault(fault.kind)
            if self.recorder is not None:
                self.recorder.fault_injected(
                    self._now(),
                    fault=fault.kind,
                    detail=fault.detail,
                    frame=directive.frame_index,
                    peer=conn.peer,
                )

    async def _demand_loop(
        self,
        reader: asyncio.StreamReader,
        pending: Deque[TransferUnit],
        full_sequence: List[TransferUnit],
        conn: ConnectionStats,
    ) -> None:
        """Serve DEMAND_FETCH frames by promoting pending units.

        A plain demand promotes the demanded class's still-pending
        units to the front.  A ``resend`` demand (a client recovering a
        damaged frame) additionally re-enqueues already-sent units from
        the session plan that match the given class / method / kind.

        Runs concurrently with the sender; the deque rearrangement is
        synchronous (no await between read and write of ``pending``),
        so the single-threaded event loop makes it atomic.
        """
        while True:
            try:
                frame = await read_frame(reader)
            except ReproError:
                return  # peer gone or talking garbage; sender notices
            if frame.kind != FrameKind.DEMAND_FETCH:
                continue  # tolerate chatty clients; units keep flowing
            fields = frame.field_dict
            demanded = fields.get("class")
            promoted = [
                unit
                for unit in pending
                if unit.class_name == demanded
            ]
            if fields.get("resend"):
                in_pending = set(pending)
                method = fields.get("method")
                kind_code = fields.get("kind")

                def matches(unit: TransferUnit) -> bool:
                    code, class_name, method_name = unit_wire_key(unit)
                    if class_name != demanded:
                        return False
                    if kind_code is not None and code != int(kind_code):
                        return False
                    if method is not None and method_name != method:
                        return False
                    return True

                promoted = [
                    unit
                    for unit in full_sequence
                    if unit not in in_pending and matches(unit)
                ] + promoted
            conn.record_demand_fetch(len(promoted))
            if self.recorder is not None:
                self.recorder.demand_fetch(
                    self._now(),
                    method=f"{demanded}.{fields.get('method')}",
                    peer=conn.peer,
                )
            if not promoted:
                continue  # already sent (or unknown): nothing to jump
            promoted_set = set(promoted)
            remaining = [
                unit
                for unit in pending
                if unit not in promoted_set
            ]
            pending.clear()
            pending.extend(promoted)
            pending.extend(remaining)
            if self.recorder is not None:
                self.recorder.schedule_decision(
                    self._now(),
                    action="promote",
                    target=str(demanded),
                    promoted_units=len(promoted),
                    peer=conn.peer,
                )
