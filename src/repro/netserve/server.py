"""The asyncio class-file server.

:class:`ClassFileServer` holds one :class:`~repro.program.Program` and
serves it to many concurrent clients.  Each connection negotiates a
transfer policy (strict / non-strict / data-partitioned) and a reorder
strategy via ``HELLO``; the server resolves the negotiated
configuration to a shared immutable :class:`~.cache.SessionArtifact`
(restructured program, transfer plan, payload bytes, and pre-encoded
``UNIT`` frames) and streams the unit sequence over the socket.

Two behaviours mirror the paper's transfer fabric (§5.1/§5.2):

* **Bandwidth pacing** — an optional token bucket caps the send rate in
  bytes/second, so a T1- or modem-shaped link is reproducible on
  localhost and overlap effects are observable in wall-clock time.
  The bucket is *server-level*: it models one shared physical link, so
  aggregate egress respects ``bandwidth`` no matter how many clients
  are connected (each connection may additionally be capped with
  ``per_connection_bandwidth``).
* **Demand-fetch priority** — a ``DEMAND_FETCH`` from the client (a
  first-use misprediction) promotes the demanded class's still-pending
  units, as a block and in order, to the *front* of the send queue —
  the same front-of-queue rule :meth:`repro.transfer.StreamEngine`
  applies to demand-fetched streams.

Striped sessions negotiate *pull mode* (``HELLO`` with ``pull:
true``): the server answers with the full manifest but pushes nothing;
every unit is requested explicitly through the demand path (a
``DEMAND_FETCH`` with ``resend: true`` naming one wire key), so a
multi-link client's issue engine — not the server — decides which unit
travels on which connection and when.  A pull session has no ``EOF``;
the client closes the connection once its scoreboard drains.

Fleet-scale controls:

* **Admission control** — with ``max_connections`` set, a connection
  past the limit receives a clean ``ERROR`` frame with ``code:
  "busy"`` and is closed, instead of silently degrading every other
  session.
* **Send backpressure** — each connection's transport write buffer is
  bounded (``write_buffer_high``), so ``drain()`` genuinely pauses the
  sender for a slow client instead of buffering the whole stream in
  memory.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional, Tuple

from ..errors import ConnectionLostError, ProtocolError, ReproError
from ..faults import ConnectionFaults, FaultInjector, FaultPlan, FrameDirective
from ..program import Program
from ..reorder import (
    FirstUseOrder,
    estimate_first_use,
    order_from_profile,
    restructure,
    textual_first_use,
    weighted_first_use,
)
from ..transfer import (
    TransferPolicy,
    TransferUnit,
    build_interleaved_file,
    build_program_plans,
)
from ..vm import FirstUseProfile
from .cache import ArtifactCache, SessionArtifact, program_fingerprint
from .payloads import build_program_payloads
from .protocol import (
    FrameKind,
    encode_frame,
    eof_frame,
    error_frame,
    hello_ack_frame,
    read_frame,
    resume_ack_frame,
    unit_frame,
    unit_wire_key,
)
from .stats import ConnectionStats, ServerStats

if TYPE_CHECKING:  # pragma: no cover
    from ..observe import TraceRecorder

__all__ = ["TokenBucket", "ClassFileServer", "REORDER_STRATEGIES"]

#: Reorder strategies a client may request in its ``HELLO``.
REORDER_STRATEGIES = ("static", "textual", "profile", "weighted")


class TokenBucket:
    """Paces sends to ``rate`` bytes/second with a bounded burst.

    The bucket may run a deficit: a frame larger than the burst is sent
    whole, and subsequent sends wait until the deficit refills — so the
    long-run rate converges to ``rate`` regardless of frame sizes.

    :meth:`consume` is serialized through an :class:`asyncio.Lock`, so
    one bucket shared by many connections is a fair FIFO model of one
    physical link: concurrent senders queue in arrival order and the
    aggregate rate never exceeds ``rate``.
    """

    def __init__(self, rate: float, burst: float = 256.0) -> None:
        if rate <= 0:
            raise ProtocolError(f"pacing rate must be positive: {rate}")
        self.rate = float(rate)
        self.burst = max(float(burst), 1.0)
        self._tokens = self.burst
        self._last = time.monotonic()
        self._lock = asyncio.Lock()

    def _refill(self) -> None:
        now = time.monotonic()
        self._tokens = min(
            self.burst, self._tokens + (now - self._last) * self.rate
        )
        self._last = now

    async def consume(self, amount: float) -> None:
        """Take ``amount`` tokens, sleeping until the rate allows it."""
        async with self._lock:
            self._refill()
            self._tokens -= amount
            if self._tokens < 0:
                await asyncio.sleep(-self._tokens / self.rate)
                self._refill()


class ClassFileServer:
    """Serves a program's transfer-unit streams over TCP.

    Args:
        program: The program to serve (original layout; restructured
            per negotiated configuration, shared via the artifact
            cache).
        host: Bind address.
        port: Bind port (0 = ephemeral; read :attr:`address` after
            :meth:`start`).
        bandwidth: Optional pacing cap in *bytes per second* for the
            server's whole egress link (frame overhead counts against
            it, like real link framing).  Shared by every connection.
        burst: Token-bucket burst size in bytes.
        per_connection_bandwidth: Optional additional per-connection
            cap in bytes/second (each connection gets its own bucket
            on top of the shared link bucket).
        max_connections: Optional admission limit; a connection past
            it receives an ``ERROR`` frame with ``code: "busy"`` and
            is closed.
        write_buffer_high: High-water mark in bytes for each
            connection's transport write buffer (send backpressure).
        cache: Optional shared :class:`~.cache.ArtifactCache`; one
            private cache is created when omitted.  Passing the same
            cache to several servers shares planned artifacts across
            them.
        profile: Optional training profile backing the ``profile``
            reorder strategy; without one the server falls back to
            ``static`` and says so in the ``HELLO_ACK``.
        once: Stop accepting after the first connection finishes
            (handy for demos and CLI pipelines).
        fault_plan: Optional :class:`repro.faults.FaultPlan`; outgoing
            post-negotiation frames pass through its per-connection
            fault state (cuts, corruption, drops, duplicates, stalls,
            jitter), each applied fault emitted as a ``fault_injected``
            event and counted in ``netserve_faults_injected``.
        recorder: Optional :class:`repro.observe.TraceRecorder` (clock
            ``"seconds"``); when given, every wire frame becomes a
            ``frame_sent`` event, every demand-fetch promotion a
            ``schedule_decision``, every plan lookup a ``cache_lookup``
            and every admission rejection a ``connection_rejected``,
            timestamped relative to server start.
    """

    def __init__(
        self,
        program: Program,
        host: str = "127.0.0.1",
        port: int = 0,
        bandwidth: Optional[float] = None,
        burst: float = 256.0,
        per_connection_bandwidth: Optional[float] = None,
        max_connections: Optional[int] = None,
        write_buffer_high: int = 64 * 1024,
        cache: Optional[ArtifactCache] = None,
        profile: Optional[FirstUseProfile] = None,
        once: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        recorder: Optional["TraceRecorder"] = None,
    ) -> None:
        self.program = program
        self.host = host
        self.port = port
        self.bandwidth = bandwidth
        self.burst = burst
        self.per_connection_bandwidth = per_connection_bandwidth
        if max_connections is not None and max_connections < 1:
            raise ProtocolError(
                f"max_connections must be >= 1: {max_connections}"
            )
        self.max_connections = max_connections
        self.write_buffer_high = write_buffer_high
        self.profile = profile
        self.once = once
        self.fault_plan = fault_plan
        self._injector = (
            FaultInjector(fault_plan)
            if fault_plan is not None and not fault_plan.is_noop
            else None
        )
        self.recorder = recorder
        self.stats = ServerStats()
        self.artifact_cache = (
            cache if cache is not None else ArtifactCache()
        )
        self._fingerprint: Optional[str] = None
        self._bucket: Optional[TokenBucket] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: List[asyncio.StreamWriter] = []
        self._finished = asyncio.Event()
        self._t0 = time.monotonic()

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound address."""
        if self.bandwidth is not None and self._bucket is None:
            # One bucket for the whole server: the shared link.
            self._bucket = TokenBucket(self.bandwidth, burst=self.burst)
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self._t0 = time.monotonic()
        return self.address

    def _now(self) -> float:
        """Seconds since the server started (the recorder clock)."""
        return time.monotonic() - self._t0

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None or not self._server.sockets:
            raise ProtocolError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def serve_until_done(self) -> None:
        """Serve until closed (or, with ``once``, one connection ends)."""
        if self._server is None:
            await self.start()
        if self.once:
            await self._finished.wait()
        else:
            assert self._server is not None
            await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting and drop every live connection.

        Waits for each transport to actually close (no leaked
        transports, no ``ResourceWarning`` under load).
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        writers = list(self._writers)
        for writer in writers:
            writer.close()
        for writer in writers:
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._finished.set()

    # -- per-connection negotiation ---------------------------------------

    def _resolve_strategy(self, strategy: str) -> str:
        """Validate a requested strategy and apply the profile fallback.

        Cheap (no planning work), so it can gate the cache lookup.
        """
        if strategy == "profile" and self.profile is None:
            return "static"  # honest fallback, reported in the ack
        if strategy not in REORDER_STRATEGIES:
            raise ProtocolError(
                f"unknown reorder strategy {strategy!r}; pick from "
                f"{REORDER_STRATEGIES}"
            )
        return strategy

    def _order_for(self, strategy: str) -> FirstUseOrder:
        """First-use order for an already-resolved strategy."""
        if strategy == "textual":
            return textual_first_use(self.program)
        if strategy == "profile":
            assert self.profile is not None  # resolved upstream
            return order_from_profile(self.program, self.profile)
        if strategy == "weighted":
            # Degrades to the pure-static layout without a profile.
            return weighted_first_use(self.program, profile=self.profile)
        return estimate_first_use(self.program)

    def _build_artifact(
        self, policy: TransferPolicy, strategy: str
    ) -> SessionArtifact:
        """Do the full planning work for one configuration (cache miss)."""
        order = self._order_for(strategy)
        target = restructure(self.program, order)
        plans = build_program_plans(target, policy)
        if policy == TransferPolicy.STRICT:
            # Whole files, in class-first-use order: the strict
            # methodology still benefits from sending the entry class
            # first, and the comparison stays apples-to-apples.
            sequence = [
                unit
                for classfile in target.classes
                for unit in plans[classfile.name].units
            ]
        else:
            sequence = build_interleaved_file(plans, order)
        payloads = build_program_payloads(target, plans)
        frames = {
            unit: encode_frame(unit_frame(unit, payloads[unit]))
            for unit in sequence
        }
        manifest = tuple(
            (
                unit.kind.value,
                unit.class_name,
                unit.method.method_name if unit.method else None,
                unit.size,
            )
            for unit in sequence
        )
        return SessionArtifact(
            sequence=tuple(sequence),
            payloads=payloads,
            frames=frames,
            manifest=manifest,
            strategy=strategy,
            total_bytes=sum(unit.size for unit in sequence),
            wire_bytes=sum(len(data) for data in frames.values()),
        )

    def _plan_session(
        self, policy: TransferPolicy, strategy: str
    ) -> SessionArtifact:
        """Resolve a negotiated configuration to a shared artifact."""
        resolved = self._resolve_strategy(strategy)
        if self._fingerprint is None:
            self._fingerprint = program_fingerprint(self.program)
        key = (self._fingerprint, policy.value, resolved)
        before = self.artifact_cache.misses
        artifact = self.artifact_cache.get_or_build(
            key, lambda: self._build_artifact(policy, resolved)
        )
        if self.recorder is not None:
            self.recorder.cache_lookup(
                self._now(),
                hit=self.artifact_cache.misses == before,
                policy=policy.value,
                strategy=resolved,
            )
        return artifact

    # -- connection handling ----------------------------------------------

    def _reject_busy(self) -> bool:
        """True when admission control must turn a connection away."""
        return (
            self.max_connections is not None
            and len(self._writers) >= self.max_connections
        )

    async def _turn_away(self, writer: asyncio.StreamWriter) -> None:
        """Send the clean BUSY error frame and close the transport."""
        peer = str(writer.get_extra_info("peername"))
        self.stats.record_rejected()
        if self.recorder is not None:
            self.recorder.connection_rejected(
                self._now(),
                reason="busy",
                peer=peer,
                limit=self.max_connections,
            )
        try:
            writer.write(
                encode_frame(
                    error_frame(
                        f"server at capacity "
                        f"({self.max_connections} connections)",
                        code="busy",
                    )
                )
            )
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._reject_busy():
            await self._turn_away(writer)
            return
        conn = self.stats.open_connection(
            peer=str(writer.get_extra_info("peername")),
            started_at=time.monotonic(),
        )
        self._writers.append(writer)
        self.stats.set_active(len(self._writers))
        transport = writer.transport
        if transport is not None:
            # Bound the kernel-side buffering so drain() exerts real
            # backpressure against slow clients.
            transport.set_write_buffer_limits(
                high=self.write_buffer_high
            )
        faults = (
            self._injector.connection()
            if self._injector is not None
            else None
        )
        demand_task: Optional[asyncio.Task] = None
        demand_error: Optional[BaseException] = None
        try:
            try:
                sequence, artifact, pull = await self._negotiate(
                    reader, writer, conn
                )
            except ConnectionLostError:
                conn.aborted = True
                return
            except ReproError as error:
                writer.write(encode_frame(error_frame(str(error))))
                await writer.drain()
                conn.aborted = True
                return
            pending: Deque[TransferUnit] = deque(
                () if pull else sequence
            )
            wake = asyncio.Event()
            reader_done = asyncio.Event()
            demand_task = asyncio.create_task(
                self._demand_loop(
                    reader,
                    pending,
                    artifact.sequence,
                    conn,
                    wake=wake,
                    reader_done=reader_done,
                )
            )
            await self._send_units(
                writer,
                pending,
                artifact,
                conn,
                faults,
                pull=pull,
                wake=wake,
                reader_done=reader_done,
            )
        except (ConnectionLostError, ConnectionError, OSError):
            conn.aborted = True
        except asyncio.CancelledError:
            # Server shutdown mid-send: end the handler quietly (the
            # asyncio.streams callback would log a re-raise as noise).
            conn.aborted = True
        finally:
            if demand_task is not None:
                demand_task.cancel()
                try:
                    await demand_task
                except asyncio.CancelledError:
                    pass
                except Exception as error:  # noqa: BLE001 - surfaced below
                    # A real demand-loop failure (not teardown): count
                    # it and re-raise after cleanup so it is never
                    # silently swallowed.
                    demand_error = error
                    self.stats.record_demand_loop_error()
            conn.finished_at = time.monotonic()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            if writer in self._writers:
                self._writers.remove(writer)
            self.stats.set_active(len(self._writers))
            if self.once:
                self._finished.set()
            if demand_error is not None:
                raise demand_error

    async def _negotiate(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        conn: ConnectionStats,
    ) -> Tuple[List[TransferUnit], SessionArtifact, bool]:
        """Negotiate a session; returns (units to send, artifact, pull).

        Accepts a fresh ``HELLO`` or a ``RESUME`` carrying the unit
        wire keys the client already holds; a resume replays the same
        cached session plan minus the held units, so a reconnecting
        client pays only for what it lost — and the server pays one
        cache lookup, not a re-plan.

        A ``pull: true`` field in either greeting puts the session in
        pull mode: the ack still carries the full (resume-filtered)
        manifest, but nothing is queued for push — the client drives
        every unit through ``DEMAND_FETCH``/``resend``.
        """
        hello = await read_frame(reader)
        if hello.kind not in (FrameKind.HELLO, FrameKind.RESUME):
            raise ProtocolError(
                f"expected HELLO or RESUME, got {hello.kind.name}"
            )
        fields = hello.field_dict
        try:
            policy = TransferPolicy(fields.get("policy", "non_strict"))
        except ValueError as exc:
            raise ProtocolError(
                f"unknown policy {fields.get('policy')!r}"
            ) from exc
        strategy = fields.get("strategy", "static")
        pull = bool(fields.get("pull"))
        artifact = self._plan_session(policy, strategy)
        full_sequence = list(artifact.sequence)
        sequence = full_sequence
        resumed = hello.kind == FrameKind.RESUME
        if resumed:
            have = self._have_keys(fields.get("have", []))
            sequence = [
                unit
                for unit in full_sequence
                if unit_wire_key(unit) not in have
            ]
            conn.record_resume(len(full_sequence) - len(sequence))
        conn.policy = policy.value
        conn.strategy = artifact.strategy
        entry = self.program.entry_point
        if resumed:
            manifest = artifact.manifest_rows(sequence)
            total_bytes = sum(unit.size for unit in sequence)
        else:
            manifest = [list(row) for row in artifact.manifest]
            total_bytes = artifact.total_bytes
        ack_fields = dict(
            policy=policy.value,
            strategy=artifact.strategy,
            unit_count=len(sequence),
            total_bytes=total_bytes,
            bandwidth=self.bandwidth,
            entry=(
                [entry.class_name, entry.method_name] if entry else None
            ),
            sequence=manifest,
        )
        if pull:
            ack_fields["pull"] = True
            conn.record_pull_session()
        if resumed:
            ack = resume_ack_frame(
                skipped=len(full_sequence) - len(sequence),
                **ack_fields,
            )
        else:
            ack = hello_ack_frame(**ack_fields)
        writer.write(encode_frame(ack))
        await writer.drain()
        return sequence, artifact, pull

    @staticmethod
    def _have_keys(raw: object) -> set:
        """Parse a RESUME's ``have`` list into unit wire keys."""
        if not isinstance(raw, list):
            raise ProtocolError("RESUME 'have' must be a list")
        keys = set()
        for entry in raw:
            try:
                code, class_name, method_name = entry
                keys.add(
                    (
                        int(code),
                        str(class_name),
                        None
                        if method_name is None
                        else str(method_name),
                    )
                )
            except (TypeError, ValueError) as exc:
                raise ProtocolError(
                    f"malformed RESUME 'have' entry {entry!r}"
                ) from exc
        return keys

    async def _send_units(
        self,
        writer: asyncio.StreamWriter,
        pending: Deque[TransferUnit],
        artifact: SessionArtifact,
        conn: ConnectionStats,
        faults: Optional[ConnectionFaults] = None,
        pull: bool = False,
        wake: Optional[asyncio.Event] = None,
        reader_done: Optional[asyncio.Event] = None,
    ) -> None:
        """Drain ``pending`` to the wire, pacing through the buckets.

        Push sessions send the negotiated sequence then ``EOF``.  Pull
        sessions start with an empty deque and sleep on ``wake`` until
        the demand loop promotes units into it; they end — without an
        ``EOF`` — when ``reader_done`` is set (client closed its side)
        and nothing is left to send.
        """
        conn_bucket = (
            TokenBucket(self.per_connection_bandwidth, burst=self.burst)
            if self.per_connection_bandwidth is not None
            else None
        )
        while True:
            while pending:
                unit = pending.popleft()
                data = artifact.frames[unit]
                if conn_bucket is not None:
                    await conn_bucket.consume(len(data))
                if self._bucket is not None:
                    await self._bucket.consume(len(data))
                alive = await self._transmit(
                    writer, data, conn, faults, kind="UNIT", unit=unit
                )
                if not alive:
                    return
            if not pull:
                break
            assert wake is not None and reader_done is not None
            if reader_done.is_set():
                return  # pull sessions end silently: no EOF
            # No await between the drain above and this clear, so a
            # promotion cannot slip through unnoticed.
            wake.clear()
            await wake.wait()
        eof = encode_frame(eof_frame())
        if not await self._transmit(
            writer, eof, conn, faults, kind="EOF"
        ):
            return

    async def _transmit(
        self,
        writer: asyncio.StreamWriter,
        data: bytes,
        conn: ConnectionStats,
        faults: Optional[ConnectionFaults],
        kind: str,
        unit: Optional[TransferUnit] = None,
    ) -> bool:
        """Send one frame through the fault layer.

        Returns False when the directive severed the connection (the
        handler must stop sending on this socket).
        """
        directive = (
            faults.next_directive(len(data))
            if faults is not None
            else None
        )
        if directive is not None and directive.delay_seconds > 0:
            await asyncio.sleep(directive.delay_seconds)
        if directive is not None:
            self._record_faults(directive, conn)
        if directive is not None and directive.cut_at is not None:
            if directive.cut_at > 0:
                writer.write(data[: directive.cut_at])
                conn.record_frame(directive.cut_at)
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
            writer.close()
            conn.aborted = True
            return False
        if directive is not None and directive.drop:
            return True
        if directive is not None and directive.corrupt_offset is not None:
            damaged = bytearray(data)
            damaged[directive.corrupt_offset] ^= 0xFF
            data = bytes(damaged)
        copies = directive.copies if directive is not None else 1
        for _ in range(copies):
            writer.write(data)
            await writer.drain()
            conn.record_frame(len(data), unit=unit is not None)
            if self.recorder is not None:
                self.recorder.frame_sent(
                    self._now(),
                    kind=kind,
                    size=len(data),
                    class_name=unit.class_name if unit else None,
                    method=(
                        unit.method.method_name
                        if unit and unit.method
                        else None
                    ),
                    peer=conn.peer,
                )
        return True

    def _record_faults(
        self, directive: FrameDirective, conn: ConnectionStats
    ) -> None:
        for fault in directive.faults:
            conn.record_fault(fault.kind)
            if self.recorder is not None:
                self.recorder.fault_injected(
                    self._now(),
                    fault=fault.kind,
                    detail=fault.detail,
                    frame=directive.frame_index,
                    peer=conn.peer,
                )

    async def _demand_loop(
        self,
        reader: asyncio.StreamReader,
        pending: Deque[TransferUnit],
        full_sequence: Tuple[TransferUnit, ...],
        conn: ConnectionStats,
        wake: Optional[asyncio.Event] = None,
        reader_done: Optional[asyncio.Event] = None,
    ) -> None:
        """Serve DEMAND_FETCH frames by promoting pending units.

        A plain demand promotes the demanded class's still-pending
        units to the front.  A ``resend`` demand (a client recovering a
        damaged frame, or a pull session naming its next unit)
        additionally re-enqueues already-sent units from the session
        plan that match the given class / method / kind.

        Runs concurrently with the sender; the deque rearrangement is
        synchronous (no await between read and write of ``pending``),
        so the single-threaded event loop makes it atomic.  After a
        promotion the sender is nudged through ``wake``; when the
        client's read side closes, ``reader_done`` (then ``wake``) is
        set so a pull sender can finish.
        """
        try:
            await self._demand_requests(
                reader, pending, full_sequence, conn, wake
            )
        finally:
            if reader_done is not None:
                reader_done.set()
            if wake is not None:
                wake.set()

    async def _demand_requests(
        self,
        reader: asyncio.StreamReader,
        pending: Deque[TransferUnit],
        full_sequence: Tuple[TransferUnit, ...],
        conn: ConnectionStats,
        wake: Optional[asyncio.Event],
    ) -> None:
        while True:
            try:
                frame = await read_frame(reader)
            except ReproError:
                return  # peer gone or talking garbage; sender notices
            if frame.kind != FrameKind.DEMAND_FETCH:
                continue  # tolerate chatty clients; units keep flowing
            fields = frame.field_dict
            demanded = fields.get("class")
            promoted = [
                unit
                for unit in pending
                if unit.class_name == demanded
            ]
            if fields.get("resend"):
                in_pending = set(pending)
                method = fields.get("method")
                kind_code = fields.get("kind")

                def matches(unit: TransferUnit) -> bool:
                    code, class_name, method_name = unit_wire_key(unit)
                    if class_name != demanded:
                        return False
                    if kind_code is not None and code != int(kind_code):
                        return False
                    if method is not None and method_name != method:
                        return False
                    return True

                promoted = [
                    unit
                    for unit in full_sequence
                    if unit not in in_pending and matches(unit)
                ] + promoted
            conn.record_demand_fetch(len(promoted))
            if self.recorder is not None:
                self.recorder.demand_fetch(
                    self._now(),
                    method=f"{demanded}.{fields.get('method')}",
                    peer=conn.peer,
                )
            if not promoted:
                continue  # already sent (or unknown): nothing to jump
            promoted_set = set(promoted)
            remaining = [
                unit
                for unit in pending
                if unit not in promoted_set
            ]
            pending.clear()
            pending.extend(promoted)
            pending.extend(remaining)
            if wake is not None:
                wake.set()
            if self.recorder is not None:
                self.recorder.schedule_decision(
                    self._now(),
                    action="promote",
                    target=str(demanded),
                    promoted_units=len(promoted),
                    peer=conn.peer,
                )
