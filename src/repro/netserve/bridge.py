"""Bridge: run the non-strict execution model against *real* arrivals.

:func:`run_networked` is the wall-clock twin of
:meth:`repro.core.simulation.Simulator.run`: it replays the same
:class:`~repro.vm.ExecutionTrace` the cycle-exact simulator consumes,
but gates each trace segment on a :class:`NonStrictFetcher`'s real
socket arrivals instead of simulated unit-arrival times.  Execution
cost uses the same model (instructions × CPI, converted to seconds at
the paper's CPU clock), and transfer genuinely overlaps it — the
receive loop keeps draining the socket while the "CPU" sleeps through
its compute time.

Measured per-method first-invocation latencies land in the existing
:class:`repro.core.metrics.InvocationLatencyReport` structure (unit
``"seconds"``), so measured and simulated numbers print side by side.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from ..core.metrics import InvocationLatencyReport

from ..core.simulation import StallEvent
from ..transfer import CPU_HZ
from ..vm import ExecutionTrace
from .client import NonStrictFetcher
from .resilient import ResilientFetcher
from .stats import FetchStats

if TYPE_CHECKING:  # pragma: no cover
    from ..observe import TraceRecorder

__all__ = ["NetworkRunResult", "run_networked", "fetch_and_run"]


@dataclass
class NetworkRunResult:
    """Outcome of one networked non-strict run (all times in seconds).

    Attributes:
        wall_seconds: Invocation-to-completion wall time.
        execution_seconds: Modeled compute time (instructions × CPI at
            the configured clock).
        stall_seconds: Wall time execution spent waiting on arrivals.
        invocation_latency: Seconds until the first instruction ran.
        latencies: Measured per-method first-invocation latencies.
        stalls: Every stall, in order (seconds, session-relative).
        demand_fetches: Mispredict corrections issued.
        bytes_received: Wire bytes received by session end.
        reconnects: Resume reconnects the fetcher needed (resilient
            sessions only; 0 on a clean link).
        degraded: True when the fetch fell back to a one-shot strict
            transfer after exhausting its reconnect budget.
    """

    wall_seconds: float
    execution_seconds: float
    stall_seconds: float
    invocation_latency: float
    latencies: InvocationLatencyReport
    stalls: List[StallEvent] = field(default_factory=list)
    demand_fetches: int = 0
    bytes_received: int = 0
    reconnects: int = 0
    degraded: bool = False

    @property
    def stall_count(self) -> int:
        return len(self.stalls)


async def run_networked(
    fetcher: NonStrictFetcher,
    trace: ExecutionTrace,
    cpi: float,
    cpu_hz: float = float(CPU_HZ),
    recorder: Optional["TraceRecorder"] = None,
) -> NetworkRunResult:
    """Replay ``trace`` against the fetcher's real arrivals.

    Args:
        fetcher: A connected :class:`NonStrictFetcher`.
        trace: The execution trace to replay (same object the
            simulator consumes).
        cpi: Average cycles per bytecode instruction.
        cpu_hz: Clock used to convert compute cycles to wall seconds.
            The paper's 500 MHz Alpha by default; lower it to stretch
            compute phases and make overlap visible in a demo.
        recorder: Optional :class:`repro.observe.TraceRecorder` (clock
            ``"seconds"``): stalls and first invocations are emitted
            on the fetcher's session clock, so its events and the
            fetcher's own arrival events share one timebase.

    Returns:
        A :class:`NetworkRunResult` with measured latencies for every
        method the trace invoked.
    """
    if recorder is None:
        recorder = fetcher.recorder
    seconds_per_instruction = cpi / cpu_hz
    latencies = InvocationLatencyReport(unit="seconds")
    stalls: List[StallEvent] = []
    stall_seconds = 0.0
    invocation_latency: Optional[float] = None
    started = time.monotonic()

    for segment in trace.segments:
        demanded = False
        if not fetcher.is_method_available(segment.method):
            stall_start = time.monotonic() - started
            if recorder is not None:
                recorder.stall_begin(
                    fetcher.elapsed(), method=str(segment.method)
                )
            await fetcher.wait_for_method(segment.method)
            demanded = fetcher.was_demand_fetched(segment.method)
            duration = (time.monotonic() - started) - stall_start
            stalls.append(
                StallEvent(
                    method=segment.method,
                    start=stall_start,
                    duration=duration,
                )
            )
            stall_seconds += duration
            if recorder is not None:
                recorder.stall_end(
                    fetcher.elapsed(),
                    method=str(segment.method),
                    duration=duration,
                )
        if segment.method not in latencies:
            now = fetcher.elapsed()
            latencies.record(
                segment.method, now, demand_fetched=demanded
            )
            if recorder is not None:
                recorder.method_first_invoke(
                    now,
                    method=str(segment.method),
                    latency=now,
                    demand_fetched=demanded,
                )
            if invocation_latency is None:
                invocation_latency = now
        # Compute phase: transfer keeps flowing while we "execute".
        await asyncio.sleep(
            segment.instructions * seconds_per_instruction
        )

    wall = time.monotonic() - started
    return NetworkRunResult(
        wall_seconds=wall,
        execution_seconds=(
            trace.total_instructions * seconds_per_instruction
        ),
        stall_seconds=stall_seconds,
        invocation_latency=invocation_latency or 0.0,
        latencies=latencies,
        stalls=stalls,
        demand_fetches=fetcher.stats.demand_fetches,
        bytes_received=fetcher.stats.bytes_received,
        reconnects=fetcher.stats.reconnects,
        degraded=bool(fetcher.stats.degraded),
    )


async def fetch_and_run(
    host: str,
    port: int,
    trace: ExecutionTrace,
    cpi: float,
    policy: str = "non_strict",
    strategy: str = "static",
    cpu_hz: float = float(CPU_HZ),
    demand_timeout: float = 5.0,
    connect_timeout: Optional[float] = 10.0,
    max_reconnects: Optional[int] = None,
    deadline: Optional[float] = None,
    recorder: Optional["TraceRecorder"] = None,
) -> "tuple[NetworkRunResult, FetchStats]":
    """Connect, replay a trace, close; the one-call convenience path.

    Passing ``max_reconnects`` or ``deadline`` selects the
    :class:`ResilientFetcher` (reconnect + resume + strict fallback);
    otherwise the plain :class:`NonStrictFetcher` is used.
    """
    if max_reconnects is not None or deadline is not None:
        fetcher: NonStrictFetcher = ResilientFetcher(
            host,
            port,
            policy=policy,
            strategy=strategy,
            demand_timeout=demand_timeout,
            connect_timeout=connect_timeout,
            max_reconnects=(
                max_reconnects if max_reconnects is not None else 4
            ),
            deadline=deadline,
            recorder=recorder,
        )
    else:
        fetcher = NonStrictFetcher(
            host,
            port,
            policy=policy,
            strategy=strategy,
            demand_timeout=demand_timeout,
            connect_timeout=connect_timeout,
            recorder=recorder,
        )
    await fetcher.connect()
    try:
        result = await run_networked(
            fetcher, trace, cpi, cpu_hz=cpu_hz, recorder=recorder
        )
    finally:
        await fetcher.aclose()
    return result, fetcher.stats
