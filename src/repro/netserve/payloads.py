"""Concrete payload bytes for each transfer unit.

The simulator only needs unit *sizes*; the network server needs actual
*bytes*.  Payloads come from the canonical wire image
(:func:`repro.classfile.serializer.serialize`): the global unit carries
the image's global prefix, each method unit carries its method's slice.
Overhead bytes the transfer model adds on top of the canonical image —
method delimiters, GMD framing — are materialized as a repeating filler
pattern so every payload is exactly ``unit.size`` bytes and the bytes
on the wire equal the bytes the simulator charges for.

Since the fleet-scale refactor these payload maps are built once per
``(program, policy, strategy)`` configuration and shared *immutably*
across every connection through :class:`repro.netserve.cache
.ArtifactCache` — callers must never mutate a returned mapping or its
``bytes`` values.
"""

from __future__ import annotations

from typing import Dict

from ..classfile import class_layout, serialize
from ..program import Program
from ..transfer import ClassTransferPlan, TransferUnit, UnitKind

__all__ = [
    "DELIMITER_FILLER",
    "fit_payload",
    "build_class_payloads",
    "build_program_payloads",
]

#: Filler pattern for delimiter/GMD overhead bytes (and the visible
#: method delimiter itself).
DELIMITER_FILLER = b"\xfa\xce\xc0\xde"


def fit_payload(data: bytes, size: int) -> bytes:
    """Pad (with the filler pattern) or truncate ``data`` to ``size``."""
    if len(data) >= size:
        return data[:size]
    missing = size - len(data)
    repeats = missing // len(DELIMITER_FILLER) + 1
    return data + (DELIMITER_FILLER * repeats)[:missing]


def build_class_payloads(
    classfile, plan: ClassTransferPlan
) -> Dict[TransferUnit, bytes]:
    """Payload bytes for every unit of one class's plan."""
    image = serialize(classfile)
    layout = class_layout(classfile)
    global_image = image[: layout.global_size]
    method_slices: Dict[str, bytes] = {}
    offset = layout.global_size
    for method_name, method_size in layout.method_sizes:
        method_slices[method_name] = image[offset : offset + method_size]
        offset += method_size

    payloads: Dict[TransferUnit, bytes] = {}
    for unit in plan.units:
        if unit.kind == UnitKind.CLASS_FILE:
            data = image
        elif unit.kind in (UnitKind.GLOBAL_DATA, UnitKind.GLOBAL_FIRST):
            data = global_image
        elif unit.kind == UnitKind.METHOD:
            assert unit.method is not None  # guaranteed by TransferUnit
            data = method_slices[unit.method.method_name]
        else:  # GLOBAL_UNUSED: the trailing end of the global section
            data = global_image[-unit.size :] if unit.size else b""
        payloads[unit] = fit_payload(data, unit.size)
    return payloads


def build_program_payloads(
    program: Program, plans: Dict[str, ClassTransferPlan]
) -> Dict[TransferUnit, bytes]:
    """Payloads for every unit of every class plan of a program."""
    payloads: Dict[TransferUnit, bytes] = {}
    for classfile in program.classes:
        plan = plans.get(classfile.name)
        if plan is not None:
            payloads.update(build_class_payloads(classfile, plan))
    return payloads
