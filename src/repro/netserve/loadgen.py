"""Fleet-scale load generation: a run-table sweep over the server.

Modelled on experiment-runner-style replication packages: a *run
table* of cells — each a ``clients × bandwidth × fault-plan``
configuration — is executed against an in-process
:class:`~.server.ClassFileServer`, and every cell reports the measured
first-invocation latency distribution (p50/p99/p999), the plan-cache
hit rate, aggregate egress, and failure/rejection counts.  The whole
sweep serializes to ``BENCH_serve.json`` so the serving performance
trajectory is tracked across PRs, the same way the simulator's
``BENCH_*`` files track modelled performance.

The measured latency is the entry method's availability time (seconds
from session start until the entry point could first execute) — the
paper's *invocation latency*, observed on a real socket.  Latencies
are recorded both as raw samples (exact percentiles) and into a
``netserve_first_invoke_seconds`` histogram in a
:class:`~repro.observe.MetricsRegistry`, labeled per cell.

A cell may also stripe its clients across several *links* (one paced
server endpoint per bandwidth, clients assigned round-robin, mirroring
:mod:`repro.sched`'s multi-link transfer in the real-socket harness).
Every cell result carries a per-link and a per-worker latency
breakdown into ``BENCH_serve.json``, so a slow link or a straggler
worker is attributable instead of being averaged away.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ServerBusyError, TransferError
from ..observe.metrics import MetricsRegistry
from ..program import MethodId, Program
from .cache import ArtifactCache
from .client import NonStrictFetcher
from .resilient import ResilientFetcher
from .server import ClassFileServer
from .striped import StripedResilientFetcher

__all__ = [
    "LoadCell",
    "CellResult",
    "SweepReport",
    "percentile",
    "sweep_cells",
    "run_cell",
    "run_sweep",
    "write_bench_json",
]

#: Latency histogram bounds in seconds (localhost to paced-modem).
FIRST_INVOKE_BUCKETS = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Imported lazily by type only to avoid a hard dependency cycle.
FaultPlanLike = Any


@dataclass(frozen=True)
class LoadCell:
    """One row of the run table.

    Attributes:
        clients: Number of concurrent fetch sessions.
        bandwidth: Server-side shared-link pacing in bytes/second
            (``None`` = unpaced).
        policy: Transfer policy every client negotiates.
        strategy: Reorder strategy every client negotiates.
        fault_plan: Optional :class:`repro.faults.FaultPlan` applied to
            the server for this cell; selects the resilient fetcher.
        links: Optional per-link bandwidths (bytes/second, ``None`` =
            unpaced).  When set, one server endpoint is started per
            link and workers are striped round-robin across them
            (worker ``i`` fetches over link ``i % len(links)``);
            ``bandwidth`` is ignored.
        striped: With ``links`` set, make every worker a
            :class:`~.striped.StripedResilientFetcher` over *all*
            endpoints at once (true multi-socket transfer) instead of
            the round-robin single-link assignment.
        link_fault_plans: Optional per-link fault plans, one entry per
            link (``None`` = that link is clean).  This is how a cell
            models *one* outage-prone link in an otherwise healthy
            stripe; ``fault_plan`` still applies to every link when
            set and this is not.
    """

    clients: int
    bandwidth: Optional[float] = None
    policy: str = "non_strict"
    strategy: str = "static"
    fault_plan: Optional[FaultPlanLike] = None
    links: Optional[Tuple[Optional[float], ...]] = None
    striped: bool = False
    link_fault_plans: Optional[
        Tuple[Optional[FaultPlanLike], ...]
    ] = None

    def __post_init__(self) -> None:
        if self.striped and not self.links:
            raise ValueError("a striped cell needs `links`")
        if self.link_fault_plans is not None and (
            not self.links
            or len(self.link_fault_plans) != len(self.links)
        ):
            raise ValueError(
                "link_fault_plans must match `links` one-to-one"
            )

    @property
    def faulted(self) -> bool:
        """True when any link of this cell injects faults."""
        if self.fault_plan is not None:
            return True
        return self.link_fault_plans is not None and any(
            plan is not None for plan in self.link_fault_plans
        )

    def plan_for_link(self, link: int) -> Optional[FaultPlanLike]:
        """The fault plan applied to one link's server."""
        if self.link_fault_plans is not None:
            return self.link_fault_plans[link]
        return self.fault_plan

    @property
    def link_bandwidths(self) -> Tuple[Optional[float], ...]:
        """The cell's link set (single ``bandwidth`` when unstriped)."""
        if self.links:
            return tuple(self.links)
        return (self.bandwidth,)

    @property
    def label(self) -> str:
        if self.links:
            paced = "+".join(
                "unpaced" if bw is None else f"{bw:g}"
                for bw in self.links
            )
            mode = "striped" if self.striped else "links"
            pacing = f"{mode}{len(self.links)}[{paced}]"
        elif self.bandwidth is None:
            pacing = "unpaced"
        else:
            pacing = f"bw{self.bandwidth:g}"
        parts = [
            f"c{self.clients}",
            pacing,
            self.policy,
            self.strategy,
        ]
        if self.faulted:
            parts.append("faults")
        return "-".join(parts)


@dataclass
class CellResult:
    """Measured outcome of one run-table cell."""

    label: str
    clients: int
    bandwidth: Optional[float]
    policy: str
    strategy: str
    faulted: bool
    completed: int
    failed: int
    busy_rejected: int
    wall_seconds: float
    p50_ms: float
    p99_ms: float
    p999_ms: float
    mean_ms: float
    max_ms: float
    aggregate_bytes: int
    achieved_bytes_per_second: float
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    demand_fetches: int
    errors: List[str] = field(default_factory=list)
    per_link: List[Dict[str, Any]] = field(default_factory=list)
    per_worker: List[Dict[str, Any]] = field(default_factory=list)

    def to_json(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "clients": self.clients,
            "bandwidth": self.bandwidth,
            "policy": self.policy,
            "strategy": self.strategy,
            "faulted": self.faulted,
            "completed": self.completed,
            "failed": self.failed,
            "busy_rejected": self.busy_rejected,
            "wall_seconds": round(self.wall_seconds, 6),
            "latency_ms": {
                "p50": round(self.p50_ms, 3),
                "p99": round(self.p99_ms, 3),
                "p999": round(self.p999_ms, 3),
                "mean": round(self.mean_ms, 3),
                "max": round(self.max_ms, 3),
            },
            "aggregate_bytes": self.aggregate_bytes,
            "achieved_bytes_per_second": round(
                self.achieved_bytes_per_second, 1
            ),
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": round(self.cache_hit_rate, 4),
            },
            "demand_fetches": self.demand_fetches,
            "errors": self.errors[:10],
            "per_link": self.per_link,
            "per_worker": self.per_worker,
        }


@dataclass
class SweepReport:
    """Every cell of one sweep plus sweep-wide metadata."""

    cells: List[CellResult]
    wall_seconds: float
    metrics: MetricsRegistry

    @property
    def overall_cache_hit_rate(self) -> float:
        hits = sum(cell.cache_hits for cell in self.cells)
        misses = sum(cell.cache_misses for cell in self.cells)
        lookups = hits + misses
        return hits / lookups if lookups else 0.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": "repro.netserve.loadgen/1",
            "wall_seconds": round(self.wall_seconds, 3),
            "overall_cache_hit_rate": round(
                self.overall_cache_hit_rate, 4
            ),
            "cells": [cell.to_json() for cell in self.cells],
        }


def percentile(values: Sequence[float], q: float) -> float:
    """Exact ``q``-percentile (``0 <= q <= 100``), linear interpolation."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100]: {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def sweep_cells(
    clients: Sequence[int],
    bandwidths: Sequence[Optional[float]] = (None,),
    policy: str = "non_strict",
    strategy: str = "static",
    fault_plans: Sequence[Optional[FaultPlanLike]] = (None,),
    link_sets: Sequence[
        Optional[Tuple[Optional[float], ...]]
    ] = (None,),
    striped: bool = False,
) -> List[LoadCell]:
    """The full cross product clients × bandwidth × fault plans.

    ``link_sets`` adds multi-link rows: each non-``None`` entry is a
    tuple of per-link bandwidths striped round-robin across workers
    (``bandwidths`` is ignored for those rows).  With ``striped`` the
    multi-link rows run every worker across all endpoints at once.
    """
    return [
        LoadCell(
            clients=count,
            bandwidth=bandwidth,
            policy=policy,
            strategy=strategy,
            fault_plan=plan,
            links=links,
            striped=striped and links is not None,
        )
        for count in clients
        for bandwidth in bandwidths
        for plan in fault_plans
        for links in link_sets
    ]


async def _one_session(
    host: str,
    port: int,
    cell: LoadCell,
    connect_timeout: float,
) -> float:
    """One client session; returns first-invocation latency (seconds)."""
    fetcher: NonStrictFetcher
    if cell.faulted:
        fetcher = ResilientFetcher(
            host,
            port,
            policy=cell.policy,
            strategy=cell.strategy,
            connect_timeout=connect_timeout,
        )
    else:
        fetcher = NonStrictFetcher(
            host,
            port,
            policy=cell.policy,
            strategy=cell.strategy,
            connect_timeout=connect_timeout,
        )
    return await _drive_session(fetcher)


async def _one_striped_session(
    endpoints: Sequence[Tuple[str, int]],
    cell: LoadCell,
    connect_timeout: float,
    worker: int,
) -> float:
    """One striped worker fetching across every endpoint at once."""
    fetcher = StripedResilientFetcher(
        endpoints,
        policy=cell.policy,
        strategy=cell.strategy,
        connect_timeout=connect_timeout,
        rng_scope=f"worker-{worker}",
    )
    return await _drive_session(fetcher)


async def _drive_session(fetcher: NonStrictFetcher) -> float:
    """Connect, time the entry method, drain, close; returns latency."""
    manifest = await fetcher.connect()
    try:
        entry = manifest.get("entry")
        if not entry:
            raise TransferError("served program has no entry point")
        latency = await fetcher.wait_for_method(
            MethodId(str(entry[0]), str(entry[1])), demand=False
        )
        await fetcher.wait_until_complete()
    finally:
        await fetcher.aclose()
    return latency


async def run_cell(
    program: Program,
    cell: LoadCell,
    cache: Optional[ArtifactCache] = None,
    metrics: Optional[MetricsRegistry] = None,
    max_connections: Optional[int] = None,
    per_connection_bandwidth: Optional[float] = None,
    connect_timeout: float = 30.0,
) -> CellResult:
    """Run one cell: start a server, drive its clients, measure.

    Args:
        program: The program to serve.
        cell: The cell configuration.
        cache: Optional shared :class:`~.cache.ArtifactCache`; passing
            one across cells measures warm-cache serving (hit-rate
            deltas are still attributed per cell).
        metrics: Registry receiving the per-cell
            ``netserve_first_invoke_seconds`` histogram.
        max_connections: Optional server admission limit; rejected
            clients count into ``busy_rejected``.
        per_connection_bandwidth: Optional per-connection cap on top
            of the shared link.
        connect_timeout: Per-client handshake timeout in seconds.
    """
    registry = metrics if metrics is not None else MetricsRegistry()
    shared_cache = cache if cache is not None else ArtifactCache()
    hits_before = shared_cache.hits
    misses_before = shared_cache.misses
    bandwidths = cell.link_bandwidths
    servers = [
        ClassFileServer(
            program,
            bandwidth=link_bandwidth,
            per_connection_bandwidth=per_connection_bandwidth,
            max_connections=max_connections,
            cache=shared_cache,
            fault_plan=cell.plan_for_link(link),
        )
        for link, link_bandwidth in enumerate(bandwidths)
    ]
    endpoints = [await server.start() for server in servers]
    # Worker i fetches over link i % N — round-robin striping —
    # unless the cell is striped, in which case every worker spans
    # all endpoints at once and latency attributes to no single link.
    assignment: List[Optional[int]]
    if cell.striped:
        assignment = [None] * cell.clients
        sessions = [
            _one_striped_session(
                endpoints, cell, connect_timeout, worker
            )
            for worker in range(cell.clients)
        ]
    else:
        assignment = [
            worker % len(servers) for worker in range(cell.clients)
        ]
        sessions = [
            _one_session(
                endpoints[link][0],
                endpoints[link][1],
                cell,
                connect_timeout,
            )
            for link in assignment
            if link is not None
        ]
    started = time.monotonic()
    try:
        outcomes = await asyncio.gather(
            *sessions,
            return_exceptions=True,
        )
    finally:
        elapsed = time.monotonic() - started
        for server in servers:
            await server.aclose()

    latencies: List[float] = []
    errors: List[str] = []
    busy = 0
    histogram = registry.histogram(
        "netserve_first_invoke_seconds",
        {"cell": cell.label},
        buckets=FIRST_INVOKE_BUCKETS,
    )
    per_worker: List[Dict[str, Any]] = []
    link_samples: List[List[float]] = [[] for _ in servers]
    link_counts = [
        {"completed": 0, "failed": 0, "busy_rejected": 0}
        for _ in servers
    ]
    for worker, (link, outcome) in enumerate(
        zip(assignment, outcomes)
    ):
        row: Dict[str, Any] = {
            "worker": worker,
            "link": "striped" if link is None else link,
        }
        if isinstance(outcome, ServerBusyError):
            busy += 1
            if link is not None:
                link_counts[link]["busy_rejected"] += 1
            row["status"] = "busy"
        elif isinstance(outcome, BaseException):
            errors.append(f"{type(outcome).__name__}: {outcome}")
            if link is not None:
                link_counts[link]["failed"] += 1
            row["status"] = "error"
        else:
            latencies.append(outcome)
            histogram.observe(outcome)
            if link is not None:
                link_samples[link].append(outcome * 1e3)
                link_counts[link]["completed"] += 1
            row["status"] = "ok"
            row["latency_ms"] = round(outcome * 1e3, 3)
        per_worker.append(row)

    per_link: List[Dict[str, Any]] = []
    for link, server in enumerate(servers):
        samples = link_samples[link]
        per_link.append(
            {
                "link": link,
                "bandwidth": bandwidths[link],
                "workers": (
                    cell.clients
                    if cell.striped
                    else assignment.count(link)
                ),
                **link_counts[link],
                "latency_ms": {
                    "p50": round(percentile(samples, 50.0), 3),
                    "p99": round(percentile(samples, 99.0), 3),
                    "mean": round(
                        sum(samples) / len(samples) if samples else 0.0,
                        3,
                    ),
                    "max": round(max(samples) if samples else 0.0, 3),
                },
                "bytes_sent": server.stats.bytes_sent,
                "demand_fetches": server.stats.demand_fetches,
            }
        )

    to_ms = [value * 1e3 for value in latencies]
    aggregate_bytes = sum(
        server.stats.bytes_sent for server in servers
    )
    return CellResult(
        label=cell.label,
        clients=cell.clients,
        bandwidth=cell.bandwidth,
        policy=cell.policy,
        strategy=cell.strategy,
        faulted=cell.faulted,
        completed=len(latencies),
        failed=len(errors),
        busy_rejected=busy,
        wall_seconds=elapsed,
        p50_ms=percentile(to_ms, 50.0),
        p99_ms=percentile(to_ms, 99.0),
        p999_ms=percentile(to_ms, 99.9),
        mean_ms=(sum(to_ms) / len(to_ms)) if to_ms else 0.0,
        max_ms=max(to_ms) if to_ms else 0.0,
        aggregate_bytes=aggregate_bytes,
        achieved_bytes_per_second=(
            aggregate_bytes / elapsed if elapsed > 0 else 0.0
        ),
        cache_hits=shared_cache.hits - hits_before,
        cache_misses=shared_cache.misses - misses_before,
        cache_hit_rate=_rate(
            shared_cache.hits - hits_before,
            shared_cache.misses - misses_before,
        ),
        demand_fetches=sum(
            server.stats.demand_fetches for server in servers
        ),
        errors=errors,
        per_link=per_link,
        per_worker=per_worker,
    )


def _rate(hits: int, misses: int) -> float:
    lookups = hits + misses
    return hits / lookups if lookups else 0.0


async def run_sweep(
    program: Program,
    cells: Sequence[LoadCell],
    max_connections: Optional[int] = None,
    per_connection_bandwidth: Optional[float] = None,
    connect_timeout: float = 30.0,
) -> SweepReport:
    """Run every cell in order over one shared artifact cache."""
    metrics = MetricsRegistry()
    cache = ArtifactCache(metrics=metrics)
    results: List[CellResult] = []
    started = time.monotonic()
    for cell in cells:
        results.append(
            await run_cell(
                program,
                cell,
                cache=cache,
                metrics=metrics,
                max_connections=max_connections,
                per_connection_bandwidth=per_connection_bandwidth,
                connect_timeout=connect_timeout,
            )
        )
    return SweepReport(
        cells=results,
        wall_seconds=time.monotonic() - started,
        metrics=metrics,
    )


def write_bench_json(
    report: SweepReport, path: Union[str, Path]
) -> Path:
    """Persist a sweep as ``BENCH_serve.json`` (stable, sorted keys)."""
    target = Path(path)
    target.write_text(
        json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n"
    )
    return target


def format_report(report: SweepReport) -> str:
    """Human-readable run table for the CLI."""
    header = (
        f"{'cell':34} {'ok':>4} {'fail':>4} {'busy':>4} "
        f"{'p50ms':>8} {'p99ms':>8} {'p999ms':>8} "
        f"{'B/s':>10} {'hit%':>6}"
    )
    lines = [header, "-" * len(header)]
    for cell in report.cells:
        lines.append(
            f"{cell.label:34} {cell.completed:>4} {cell.failed:>4} "
            f"{cell.busy_rejected:>4} "
            f"{cell.p50_ms:>8.2f} {cell.p99_ms:>8.2f} "
            f"{cell.p999_ms:>8.2f} "
            f"{cell.achieved_bytes_per_second:>10.0f} "
            f"{cell.cache_hit_rate * 100:>5.1f}%"
        )
    lines.append(
        f"sweep: {len(report.cells)} cells in "
        f"{report.wall_seconds:.2f}s, overall cache hit rate "
        f"{report.overall_cache_hit_rate * 100:.1f}%"
    )
    return "\n".join(lines)
