"""Shared immutable session artifacts for fleet-scale serving.

Restructuring a program, building its transfer plans, materializing
payload bytes, and encoding UNIT frames is identical work for every
connection that negotiates the same ``(program, policy, strategy)``
triple.  :class:`ArtifactCache` does that work once and shares the
immutable result — a :class:`SessionArtifact` — across all concurrent
and future connections, so a thousand-client fleet pays the planning
cost O(distinct configurations) instead of O(connections).

The cache is a size-bounded LRU.  Every lookup bumps a hit or miss
counter in its :class:`~repro.observe.MetricsRegistry` and every
eviction an eviction counter, with ``netserve_cache_entries`` /
``netserve_cache_bytes`` gauges tracking occupancy, so fleet runs can
prove their hit rate from the same metrics pipeline as everything else.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..classfile import serialize
from ..observe.metrics import MetricsRegistry
from ..program import Program
from ..transfer import TransferUnit

__all__ = [
    "ArtifactKey",
    "SessionArtifact",
    "ArtifactCache",
    "program_fingerprint",
]

#: Cache key: (program fingerprint, transfer policy, reorder strategy).
ArtifactKey = Tuple[str, str, str]


def program_fingerprint(program: Program) -> str:
    """Stable content identity for a program's served classes.

    Hashes every class's canonical wire image plus the entry point, so
    two servers holding byte-identical programs share cache entries
    while any code change produces a different key.
    """
    digest = hashlib.sha256()
    for classfile in program.classes:
        digest.update(classfile.name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(serialize(classfile))
    digest.update(str(program.entry_point).encode("utf-8"))
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class SessionArtifact:
    """Everything one negotiated configuration needs, precomputed.

    Attributes:
        sequence: The full unit send order for the configuration.
        payloads: Payload bytes per unit (exactly ``unit.size`` each).
        frames: Pre-encoded ``UNIT`` wire frames per unit — what the
            send loop actually writes, so steady-state serving does no
            per-connection encoding at all.
        manifest: Wire-manifest rows aligned index-for-index with
            ``sequence`` (``[kind, class, method, size]`` each), so a
            RESUME's filtered manifest is a row selection, not a
            rebuild.
        strategy: The *resolved* reorder strategy (after any
            profile-to-static fallback), echoed in acks.
        total_bytes: Sum of unit sizes (the ack's ``total_bytes``).
        wire_bytes: Sum of encoded frame sizes; what this entry
            charges against the cache's byte budget.
    """

    sequence: Tuple[TransferUnit, ...]
    payloads: Mapping[TransferUnit, bytes]
    frames: Mapping[TransferUnit, bytes]
    manifest: Tuple[Tuple[Any, ...], ...]
    strategy: str
    total_bytes: int
    wire_bytes: int

    def manifest_rows(
        self, sequence: List[TransferUnit]
    ) -> List[List[Any]]:
        """Manifest rows for an arbitrary subsequence of units."""
        by_unit: Dict[TransferUnit, Tuple[Any, ...]] = dict(
            zip(self.sequence, self.manifest)
        )
        return [list(by_unit[unit]) for unit in sequence]


class ArtifactCache:
    """Size-bounded LRU over :class:`SessionArtifact` values.

    Args:
        max_entries: Upper bound on cached configurations.
        max_bytes: Optional upper bound on the sum of cached
            ``wire_bytes``.  The most recently used entry is never
            evicted, so a single oversized artifact still serves.
        metrics: Registry receiving the hit/miss/eviction counters and
            occupancy gauges; a private one is created when omitted.
    """

    def __init__(
        self,
        max_entries: int = 64,
        max_bytes: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1: {max_entries}"
            )
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._entries: "OrderedDict[ArtifactKey, SessionArtifact]" = (
            OrderedDict()
        )
        self._bytes = 0

    # -- metrics views ------------------------------------------------------

    @property
    def hits(self) -> int:
        return int(self.metrics.counter("netserve_cache_hits").value)

    @property
    def misses(self) -> int:
        return int(self.metrics.counter("netserve_cache_misses").value)

    @property
    def evictions(self) -> int:
        return int(
            self.metrics.counter("netserve_cache_evictions").value
        )

    @property
    def hit_rate(self) -> float:
        """Hits over lookups so far (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    @property
    def cached_bytes(self) -> int:
        return self._bytes

    def keys(self) -> List[ArtifactKey]:
        """Cached keys, least recently used first."""
        return list(self._entries)

    # -- core ---------------------------------------------------------------

    def get_or_build(
        self,
        key: ArtifactKey,
        builder: Callable[[], SessionArtifact],
    ) -> SessionArtifact:
        """Return the cached artifact for ``key``, building on miss.

        A hit refreshes the entry's recency; a miss runs ``builder``,
        stores the result, and evicts least-recently-used entries until
        both bounds hold again.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.metrics.counter("netserve_cache_hits").inc()
            return entry
        self.metrics.counter("netserve_cache_misses").inc()
        artifact = builder()
        self._entries[key] = artifact
        self._bytes += artifact.wire_bytes
        self._evict()
        self._update_gauges()
        return artifact

    def _evict(self) -> None:
        def over_budget() -> bool:
            if len(self._entries) > self.max_entries:
                return True
            return (
                self.max_bytes is not None
                and self._bytes > self.max_bytes
            )

        # Never evict the most recently used entry: it is the one the
        # current connection is about to serve from.
        while over_budget() and len(self._entries) > 1:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.wire_bytes
            self.metrics.counter("netserve_cache_evictions").inc()

    def _update_gauges(self) -> None:
        self.metrics.gauge("netserve_cache_entries").set(
            len(self._entries)
        )
        self.metrics.gauge("netserve_cache_bytes").set(self._bytes)

    def clear(self) -> None:
        """Drop every entry (counters keep their history)."""
        self._entries.clear()
        self._bytes = 0
        self._update_gauges()
